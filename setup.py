"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` also works on offline environments whose
setuptools/pip combination cannot build PEP 660 editable wheels (no
``wheel`` package available).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Amalur: Data Integration Meets Machine Learning' (ICDE 2023)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)

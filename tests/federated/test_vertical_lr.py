"""Tests for repro.federated.vertical_lr (the §V-A VFL objective)."""

import numpy as np
import pytest

from repro.exceptions import FederatedError
from repro.federated.party import Party
from repro.federated.vertical_lr import VerticalFederatedLinearRegression
from repro.learning.linear_regression import LinearRegression
from repro.silos.network import SimulatedNetwork


@pytest.fixture
def vfl_parties(rng):
    """Two parties sharing 80 entities; party A holds labels + 2 features,
    party B holds 3 features. The label depends on both feature spaces."""
    n = 80
    ids = [f"patient_{i}" for i in range(n)]
    features_a = rng.standard_normal((n, 2))
    features_b = rng.standard_normal((n, 3))
    weights_a = np.array([1.0, -2.0])
    weights_b = np.array([0.5, 1.5, -1.0])
    labels = features_a @ weights_a + features_b @ weights_b + 0.01 * rng.standard_normal(n)

    # Party B stores its rows shuffled to exercise the alignment step.
    permutation = rng.permutation(n)
    party_a = Party("A", features_a, ["a0", "a1"], labels=labels, entity_ids=ids)
    party_b = Party(
        "B",
        features_b[permutation],
        ["b0", "b1", "b2"],
        entity_ids=[ids[i] for i in permutation],
    )
    centralized_features = np.hstack([features_a, features_b])
    return party_a, party_b, centralized_features, labels


class TestTraining:
    def test_matches_centralized_gradient_descent(self, vfl_parties):
        party_a, party_b, features, labels = vfl_parties
        vfl = VerticalFederatedLinearRegression(
            learning_rate=0.05, n_iterations=150, use_encryption=False
        ).fit([party_a, party_b])
        central = LinearRegression(
            solver="gd", learning_rate=0.05, n_iterations=150, fit_intercept=False
        ).fit(features, labels)
        assert np.allclose(vfl.centralized_equivalent_weights(), central.coef_, atol=1e-8)

    def test_encryption_does_not_change_results(self, vfl_parties):
        party_a, party_b, _, _ = vfl_parties
        plain = VerticalFederatedLinearRegression(
            learning_rate=0.05, n_iterations=60, use_encryption=False
        ).fit([party_a, party_b])
        encrypted = VerticalFederatedLinearRegression(
            learning_rate=0.05, n_iterations=60, use_encryption=True
        ).fit([party_a, party_b])
        assert np.allclose(
            plain.centralized_equivalent_weights(), encrypted.centralized_equivalent_weights()
        )

    def test_loss_decreases(self, vfl_parties):
        party_a, party_b, _, _ = vfl_parties
        model = VerticalFederatedLinearRegression(n_iterations=100, use_encryption=False).fit(
            [party_a, party_b]
        )
        assert model.report_.loss_history[-1] < model.report_.loss_history[0]

    def test_ridge_penalty_supported(self, vfl_parties):
        party_a, party_b, _, _ = vfl_parties
        plain = VerticalFederatedLinearRegression(n_iterations=80, use_encryption=False).fit(
            [party_a, party_b]
        )
        ridge = VerticalFederatedLinearRegression(
            n_iterations=80, l2_penalty=50.0, use_encryption=False
        ).fit([party_a, party_b])
        assert np.linalg.norm(ridge.centralized_equivalent_weights()) < np.linalg.norm(
            plain.centralized_equivalent_weights()
        )

    def test_predict_joint_prediction(self, vfl_parties):
        party_a, party_b, features, labels = vfl_parties
        model = VerticalFederatedLinearRegression(
            learning_rate=0.05, n_iterations=200, use_encryption=False
        ).fit([party_a, party_b])
        predictions = model.predict([party_a, party_b])
        assert predictions.shape == labels.shape
        assert np.corrcoef(predictions, labels)[0, 1] > 0.95


class TestAccounting:
    def test_encryption_and_communication_overhead_reported(self, vfl_parties):
        party_a, party_b, _, _ = vfl_parties
        network = SimulatedNetwork()
        model = VerticalFederatedLinearRegression(
            n_iterations=10, use_encryption=True, network=network
        ).fit([party_a, party_b])
        report = model.report_
        assert report.encryption_operations > 0
        assert report.bytes_transferred == network.total_bytes > 0
        assert report.n_messages > 0
        assert report.n_aligned_rows == 80
        assert set(report.weights) == {"A", "B"}

    def test_encryption_increases_message_count(self, vfl_parties):
        party_a, party_b, _, _ = vfl_parties
        plain_network, encrypted_network = SimulatedNetwork(), SimulatedNetwork()
        VerticalFederatedLinearRegression(
            n_iterations=10, use_encryption=False, network=plain_network
        ).fit([party_a, party_b])
        VerticalFederatedLinearRegression(
            n_iterations=10, use_encryption=True, network=encrypted_network
        ).fit([party_a, party_b])
        assert encrypted_network.n_messages > plain_network.n_messages


class TestValidation:
    def test_needs_two_parties(self, vfl_parties):
        party_a, _, _, _ = vfl_parties
        with pytest.raises(FederatedError):
            VerticalFederatedLinearRegression().fit([party_a])

    def test_needs_a_label_holder(self, rng):
        parties = [
            Party("A", rng.standard_normal((3, 1)), ["x"], entity_ids=[1, 2, 3]),
            Party("B", rng.standard_normal((3, 1)), ["y"], entity_ids=[1, 2, 3]),
        ]
        with pytest.raises(FederatedError):
            VerticalFederatedLinearRegression().fit(parties)

    def test_no_shared_entities(self, rng):
        parties = [
            Party("A", rng.standard_normal((2, 1)), ["x"], labels=np.zeros(2), entity_ids=[1, 2]),
            Party("B", rng.standard_normal((2, 1)), ["y"], entity_ids=[3, 4]),
        ]
        with pytest.raises(FederatedError):
            VerticalFederatedLinearRegression().fit(parties)

    def test_predict_before_fit(self, vfl_parties):
        party_a, party_b, _, _ = vfl_parties
        with pytest.raises(FederatedError):
            VerticalFederatedLinearRegression().predict([party_a, party_b])

"""Tests for repro.federated.horizontal (FedAvg over the union scenario)."""

import numpy as np
import pytest

from repro.exceptions import FederatedError
from repro.federated.horizontal import FederatedAveraging
from repro.federated.party import Party
from repro.silos.network import SimulatedNetwork


@pytest.fixture
def hfl_parties(rng):
    """Three parties with the same feature schema and disjoint samples."""
    weights = np.array([2.0, -1.0, 0.5])
    parties = []
    all_features = []
    all_labels = []
    for index, n in enumerate((60, 80, 40)):
        features = rng.standard_normal((n, 3))
        labels = (features @ weights + 0.05 * rng.standard_normal(n) > 0).astype(float)
        parties.append(Party(f"silo_{index}", features, ["f0", "f1", "f2"], labels=labels))
        all_features.append(features)
        all_labels.append(labels)
    return parties, np.vstack(all_features), np.concatenate(all_labels)


class TestFedAvg:
    def test_logistic_fedavg_learns(self, hfl_parties):
        parties, features, labels = hfl_parties
        model = FederatedAveraging(
            model="logistic", n_rounds=60, local_epochs=3, learning_rate=0.5
        ).fit(parties)
        accuracy = float(np.mean(model.predict(features) == labels))
        assert accuracy > 0.9

    def test_linear_fedavg_loss_decreases(self, hfl_parties, rng):
        parties, _, _ = hfl_parties
        linear_parties = [
            Party(p.name, p.data, p.feature_names, labels=p.data @ np.array([1.0, 2.0, -1.0]))
            for p in parties
        ]
        model = FederatedAveraging(model="linear", n_rounds=40, learning_rate=0.2).fit(
            linear_parties
        )
        assert model.report_.loss_history[-1] < model.report_.loss_history[0]

    def test_single_party_fedavg_equals_local_training(self, hfl_parties):
        parties, _, _ = hfl_parties
        single = FederatedAveraging(model="logistic", n_rounds=30, learning_rate=0.5).fit(
            [parties[0]]
        )
        assert single.coef_ is not None

    def test_communication_accounting(self, hfl_parties):
        parties, _, _ = hfl_parties
        network = SimulatedNetwork()
        model = FederatedAveraging(model="logistic", n_rounds=5, network=network).fit(parties)
        # one weights-down and one weights-up message per party per round
        assert model.report_.n_messages == 5 * len(parties) * 2
        assert model.report_.bytes_transferred > 0
        assert model.report_.participants == [p.name for p in parties]

    def test_differential_privacy_adds_noise(self, hfl_parties):
        parties, _, _ = hfl_parties
        clean = FederatedAveraging(model="logistic", n_rounds=10, learning_rate=0.5).fit(parties)
        noisy = FederatedAveraging(
            model="logistic", n_rounds=10, learning_rate=0.5, dp_epsilon=0.5
        ).fit(parties)
        assert not np.allclose(clean.coef_, noisy.coef_)


class TestValidation:
    def test_needs_parties(self):
        with pytest.raises(FederatedError):
            FederatedAveraging().fit([])

    def test_unknown_model(self, hfl_parties):
        parties, _, _ = hfl_parties
        with pytest.raises(FederatedError):
            FederatedAveraging(model="svm").fit(parties)

    def test_feature_schema_mismatch(self, hfl_parties, rng):
        parties, _, _ = hfl_parties
        bad = Party("bad", rng.standard_normal((5, 3)), ["x", "y", "z"], labels=np.zeros(5))
        with pytest.raises(FederatedError):
            FederatedAveraging().fit([parties[0], bad])

    def test_label_free_party_rejected(self, hfl_parties, rng):
        parties, _, _ = hfl_parties
        unlabeled = Party("nolabels", rng.standard_normal((5, 3)), ["f0", "f1", "f2"])
        with pytest.raises(FederatedError):
            FederatedAveraging().fit([parties[0], unlabeled])

    def test_predict_before_fit(self, hfl_parties):
        _, features, _ = hfl_parties
        with pytest.raises(FederatedError):
            FederatedAveraging().predict(features)

"""Telemetry coverage of the federated training paths (PR 10 satellite).

The federated and silo layers are instrumented with ``train.federated.*``
spans and per-party network counters; these tests assert the instrumentation
fires and matches the models' own communication accounting — and that it is
completely inert when telemetry is disabled.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.federated.horizontal import FederatedAveraging
from repro.federated.party import Party
from repro.federated.vertical_lr import VerticalFederatedLinearRegression
from repro.silos.network import SimulatedNetwork


@pytest.fixture
def vfl_parties(rng):
    n = 60
    ids = [f"e{i}" for i in range(n)]
    features_a = rng.standard_normal((n, 2))
    features_b = rng.standard_normal((n, 3))
    labels = features_a @ np.array([1.0, -2.0]) + features_b @ np.array([0.5, 1.5, -1.0])
    party_a = Party("A", features_a, ["a0", "a1"], labels=labels, entity_ids=ids)
    party_b = Party("B", features_b, ["b0", "b1", "b2"], entity_ids=ids)
    return [party_a, party_b]


@pytest.fixture
def hfl_parties(rng):
    weights = np.array([2.0, -1.0, 0.5])
    parties = []
    for index, n in enumerate((40, 50)):
        features = rng.standard_normal((n, 3))
        labels = (features @ weights > 0).astype(float)
        parties.append(Party(f"silo_{index}", features, ["f0", "f1", "f2"], labels=labels))
    return parties


def span_names(session):
    return [record.name for record in session.tracer.records]


class TestVerticalSpans:
    def test_fit_emits_spans_and_counters(self, vfl_parties):
        n_iterations = 7
        with telemetry.collect(sample_memory=False) as session:
            model = VerticalFederatedLinearRegression(
                n_iterations=n_iterations, use_encryption=False
            ).fit(vfl_parties)
        names = span_names(session)
        assert names.count("train.federated.vertical_lr") == 1
        assert names.count("train.federated.vertical_lr.round") == n_iterations
        assert "train.federated.align" in names

        (fit_span,) = [
            r for r in session.tracer.records
            if r.name == "train.federated.vertical_lr"
        ]
        assert fit_span.attrs["parties"] == 2
        assert fit_span.attrs["final_loss"] == pytest.approx(
            model.report_.loss_history[-1]
        )
        assert fit_span.attrs["messages"] == model.report_.n_messages

        counters = session.metrics.counter_values()
        assert counters["federated.rounds"] == float(n_iterations)
        assert counters["federated.vertical.rounds"] == float(n_iterations)
        assert counters["federated.aligned_rows"] == 60.0

        losses = session.metrics.histogram_summaries()["federated.vertical.loss"]
        assert losses["count"] == n_iterations

    def test_network_counters_match_the_model_report(self, vfl_parties):
        network = SimulatedNetwork()
        with telemetry.collect(sample_memory=False) as session:
            model = VerticalFederatedLinearRegression(
                n_iterations=5, use_encryption=False, network=network
            ).fit(vfl_parties)
        counters = session.metrics.counter_values()
        assert counters["network.messages"] == float(model.report_.n_messages)
        assert counters["network.bytes"] == float(model.report_.bytes_transferred)
        per_party = [
            name for name in counters if name.startswith("network.bytes_sent.")
        ]
        assert per_party  # at least one sender accounted
        assert sum(counters[name] for name in per_party) == counters["network.bytes"]


class TestHorizontalSpans:
    def test_fedavg_emits_spans_and_counters(self, hfl_parties):
        n_rounds = 6
        with telemetry.collect(sample_memory=False) as session:
            FederatedAveraging(
                model="logistic", n_rounds=n_rounds, learning_rate=0.5
            ).fit(hfl_parties)
        names = span_names(session)
        assert names.count("train.federated.fedavg") == 1
        assert names.count("train.federated.fedavg.round") == n_rounds

        (fit_span,) = [
            r for r in session.tracer.records if r.name == "train.federated.fedavg"
        ]
        assert fit_span.attrs["parties"] == 2
        assert fit_span.attrs["model"] == "logistic"
        assert fit_span.attrs["total_rows"] == 90

        counters = session.metrics.counter_values()
        assert counters["federated.fedavg.rounds"] == float(n_rounds)
        losses = session.metrics.histogram_summaries()["federated.fedavg.loss"]
        assert losses["count"] == n_rounds


class TestDisabledPathUnchanged:
    def test_training_results_identical_with_and_without_telemetry(self, vfl_parties):
        baseline = VerticalFederatedLinearRegression(
            n_iterations=10, use_encryption=False
        ).fit(vfl_parties)
        with telemetry.collect(sample_memory=False):
            instrumented = VerticalFederatedLinearRegression(
                n_iterations=10, use_encryption=False
            ).fit(vfl_parties)
        assert np.array_equal(
            baseline.centralized_equivalent_weights(),
            instrumented.centralized_equivalent_weights(),
        )

    def test_no_session_means_no_spans(self, hfl_parties):
        assert telemetry.active_session() is None
        FederatedAveraging(model="logistic", n_rounds=2).fit(hfl_parties)
        assert telemetry.active_session() is None

"""Tests for repro.federated.party and repro.federated.alignment."""

import numpy as np
import pytest

from repro.exceptions import FederatedError
from repro.federated.alignment import build_alignment, private_set_intersection
from repro.federated.party import Party


class TestParty:
    def test_basic_construction(self, rng):
        party = Party("A", rng.standard_normal((5, 2)), ["x", "y"], labels=np.zeros(5))
        assert party.n_rows == 5
        assert party.n_features == 2
        assert party.has_labels

    def test_validation(self, rng):
        with pytest.raises(FederatedError):
            Party("A", rng.standard_normal((5, 2)), ["x"])
        with pytest.raises(FederatedError):
            Party("A", rng.standard_normal((5, 2)), ["x", "y"], labels=np.zeros(3))
        with pytest.raises(FederatedError):
            Party("A", rng.standard_normal((5, 2)), ["x", "y"], entity_ids=[1, 2])

    def test_aligned_features_and_labels(self, rng):
        data = rng.standard_normal((4, 2))
        party = Party("A", data, ["x", "y"], labels=np.array([0.0, 1.0, 2.0, 3.0]))
        assert np.allclose(party.aligned_features([2, 0]), data[[2, 0]])
        assert party.aligned_labels([2, 0]).tolist() == [2.0, 0.0]
        with pytest.raises(FederatedError):
            party.aligned_features([9])
        labelless = Party("B", data, ["x", "y"])
        with pytest.raises(FederatedError):
            labelless.aligned_labels([0])


class TestPrivateSetIntersection:
    def test_intersection_preserves_first_party_order(self):
        shared = private_set_intersection([["c", "a", "b", "z"], ["b", "a", "c", "y"]])
        assert shared == ["c", "a", "b"]

    def test_empty_inputs(self):
        assert private_set_intersection([]) == []
        assert private_set_intersection([["a"], []]) == []

    def test_duplicates_counted_once(self):
        shared = private_set_intersection([["a", "a", "b"], ["a"]])
        assert shared == ["a"]

    def test_salt_changes_hashes_not_result(self):
        ids = [["x", "y"], ["y", "x"]]
        assert private_set_intersection(ids, salt="one") == private_set_intersection(
            ids, salt="two"
        )


class TestBuildAlignment:
    def test_alignment_row_indices(self, rng):
        party_a = Party(
            "A", rng.standard_normal((4, 1)), ["x"], entity_ids=["p1", "p2", "p3", "p4"]
        )
        party_b = Party(
            "B", rng.standard_normal((3, 1)), ["y"], entity_ids=["p3", "p9", "p1"]
        )
        alignment = build_alignment([party_a, party_b])
        assert alignment["A"] == [0, 2]  # p1, p3 in A's order
        assert alignment["B"] == [2, 0]

    def test_missing_entity_ids_rejected(self, rng):
        party_a = Party("A", rng.standard_normal((2, 1)), ["x"], entity_ids=["a", "b"])
        party_b = Party("B", rng.standard_normal((2, 1)), ["y"])
        with pytest.raises(FederatedError):
            build_alignment([party_a, party_b])

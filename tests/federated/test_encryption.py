"""Tests for repro.federated.encryption."""

import numpy as np
import pytest

from repro.exceptions import FederatedError
from repro.federated.encryption import (
    EncryptedNumber,
    SecretSharer,
    SimulatedPaillier,
    gaussian_mechanism,
)


class TestSimulatedPaillier:
    def test_encrypt_decrypt_round_trip(self):
        paillier = SimulatedPaillier(key_id=1)
        assert paillier.decrypt(paillier.encrypt(3.5)) == 3.5

    def test_additive_homomorphism(self):
        paillier = SimulatedPaillier(key_id=1)
        a, b = paillier.encrypt(2.0), paillier.encrypt(5.0)
        assert paillier.decrypt(a + b) == 7.0
        assert paillier.decrypt(a + 1.0) == 3.0
        assert paillier.decrypt(3.0 * b) == 15.0

    def test_ciphertext_multiplication_forbidden(self):
        paillier = SimulatedPaillier(key_id=1)
        a, b = paillier.encrypt(2.0), paillier.encrypt(5.0)
        with pytest.raises(FederatedError):
            _ = a * b

    def test_cross_key_operations_rejected(self):
        first, second = SimulatedPaillier(key_id=1), SimulatedPaillier(key_id=2)
        with pytest.raises(FederatedError):
            _ = first.encrypt(1.0) + second.encrypt(1.0)
        with pytest.raises(FederatedError):
            second.decrypt(first.encrypt(1.0))

    def test_vector_helpers_and_counters(self):
        paillier = SimulatedPaillier(key_id=1)
        values = np.array([1.0, 2.0, 3.0])
        ciphertexts = paillier.encrypt_vector(values)
        assert np.allclose(paillier.decrypt_vector(ciphertexts), values)
        assert paillier.encryptions == 3
        assert paillier.decryptions == 3
        paillier.add(ciphertexts[0], ciphertexts[1])
        paillier.scale(ciphertexts[0], 2.0)
        assert paillier.homomorphic_ops == 2
        assert paillier.total_operations == 8


class TestSecretSharing:
    def test_shares_reconstruct(self, rng):
        values = rng.standard_normal((5, 3))
        shares = SecretSharer(seed=1).share(values, n_shares=3)
        assert len(shares) == 3
        assert np.allclose(SecretSharer.reconstruct(shares), values)

    def test_single_share_rejected(self):
        with pytest.raises(FederatedError):
            SecretSharer().share(np.zeros(3), n_shares=1)
        with pytest.raises(FederatedError):
            SecretSharer.reconstruct([])

    def test_individual_share_reveals_nothing_obvious(self, rng):
        values = np.full(100, 7.0)
        shares = SecretSharer(seed=2).share(values)
        assert not np.allclose(shares[0], values)


class TestDifferentialPrivacy:
    def test_noise_scales_with_epsilon(self):
        values = np.zeros(10_000)
        loose = gaussian_mechanism(values, sensitivity=1.0, epsilon=10.0, seed=1)
        tight = gaussian_mechanism(values, sensitivity=1.0, epsilon=0.1, seed=1)
        assert np.std(tight) > np.std(loose)

    def test_invalid_parameters(self):
        with pytest.raises(FederatedError):
            gaussian_mechanism(np.zeros(3), 1.0, epsilon=0.0)
        with pytest.raises(FederatedError):
            gaussian_mechanism(np.zeros(3), 1.0, epsilon=1.0, delta=0.0)

    def test_deterministic_given_seed(self):
        values = np.ones(5)
        first = gaussian_mechanism(values, 1.0, 1.0, seed=3)
        second = gaussian_mechanism(values, 1.0, 1.0, seed=3)
        assert np.allclose(first, second)

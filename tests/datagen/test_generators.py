"""Tests for repro.datagen: hospital, scenarios, synthetic and hamlet."""

import numpy as np
import pytest

from repro.datagen.hamlet import HAMLET_DATASETS, generate_hamlet_dataset, generate_hamlet_morpheus
from repro.datagen.hospital import hospital_integrated_dataset, hospital_tables
from repro.datagen.scenarios import ScenarioSpec, generate_scenario_dataset, generate_scenario_tables
from repro.datagen.synthetic import (
    OneHotSpec,
    SyntheticSiloSpec,
    generate_integrated_pair,
    generate_one_hot_pair,
    generate_table3_grid,
)
from repro.exceptions import MappingError
from repro.metadata.mappings import ScenarioType


class TestHospitalExample:
    def test_tables_match_figure2(self):
        s1, s2 = hospital_tables()
        assert s1.n_rows == 4 and s2.n_rows == 3
        assert s1.schema.names == ["m", "n", "a", "hr"]
        assert s2.schema.names == ["m", "n", "a", "o", "dd"]
        assert s1.cell(3, "n") == "Jane" and s2.cell(2, "n") == "Jane"

    @pytest.mark.parametrize(
        "scenario, expected_rows",
        [
            (ScenarioType.FULL_OUTER_JOIN, 6),
            (ScenarioType.INNER_JOIN, 1),
            (ScenarioType.LEFT_JOIN, 4),
            (ScenarioType.UNION, 7),
        ],
        ids=lambda v: v.value if isinstance(v, ScenarioType) else str(v),
    )
    def test_scenario_row_counts(self, scenario, expected_rows):
        assert hospital_integrated_dataset(scenario).n_target_rows == expected_rows


class TestScenarioGenerator:
    def test_overlap_rows_respected(self):
        spec = ScenarioSpec(scenario=ScenarioType.INNER_JOIN, base_rows=30, other_rows=20,
                            overlap_rows=12, seed=0)
        dataset = generate_scenario_dataset(spec)
        assert dataset.n_target_rows == 12

    def test_full_outer_join_row_count(self):
        spec = ScenarioSpec(scenario=ScenarioType.FULL_OUTER_JOIN, base_rows=30, other_rows=20,
                            overlap_rows=12, seed=0)
        assert generate_scenario_dataset(spec).n_target_rows == 30 + 20 - 12

    def test_union_stacks_all_rows(self):
        spec = ScenarioSpec(scenario=ScenarioType.UNION, base_rows=30, other_rows=20, seed=0)
        assert generate_scenario_dataset(spec).n_target_rows == 50

    def test_column_overlap_creates_source_redundancy(self):
        spec = ScenarioSpec(scenario=ScenarioType.LEFT_JOIN, base_rows=20, other_rows=15,
                            overlap_rows=10, overlap_columns=2, seed=1)
        dataset = generate_scenario_dataset(spec)
        assert dataset.factor("S2").redundancy.n_redundant > 0

    def test_overlap_clamped_to_table_sizes(self):
        spec = ScenarioSpec(scenario=ScenarioType.INNER_JOIN, base_rows=5, other_rows=4,
                            overlap_rows=100, overlap_columns=100)
        assert spec.overlap_rows == 4
        assert spec.overlap_columns <= 4

    def test_tables_and_metadata_shapes(self):
        spec = ScenarioSpec(scenario=ScenarioType.LEFT_JOIN, base_rows=12, other_rows=8,
                            overlap_rows=5, seed=3)
        base, other, column_matches, row_matches, target_columns = generate_scenario_tables(spec)
        assert base.n_rows == 12 and other.n_rows == 8
        assert len(row_matches) == 5
        assert "label" in target_columns
        assert any(m.left_column == "id" for m in column_matches)

    def test_deterministic_given_seed(self):
        spec = ScenarioSpec(scenario=ScenarioType.INNER_JOIN, base_rows=10, other_rows=8,
                            overlap_rows=5, seed=9)
        first = generate_scenario_dataset(spec).materialize()
        second = generate_scenario_dataset(spec).materialize()
        assert np.allclose(first, second)


class TestSyntheticGenerator:
    def test_target_redundancy_reuses_other_rows(self):
        dataset = generate_integrated_pair(
            SyntheticSiloSpec(base_rows=100, base_columns=1, other_rows=10, other_columns=5,
                              redundancy_in_target=True, seed=0)
        )
        other_indicator = dataset.factor("S2").indicator
        assert other_indicator.n_mapped == 100  # every target row has an S2 row
        assert dataset.n_target_rows / 10 == pytest.approx(10.0)

    def test_no_target_redundancy_one_to_one(self):
        dataset = generate_integrated_pair(
            SyntheticSiloSpec(base_rows=100, base_columns=1, other_rows=20, other_columns=5,
                              redundancy_in_target=False, seed=0)
        )
        compressed = dataset.factor("S2").indicator.compressed
        mapped = compressed[compressed >= 0]
        assert len(mapped) == 20 and len(set(mapped.tolist())) == 20

    def test_source_redundancy_flag(self):
        redundant = generate_integrated_pair(
            SyntheticSiloSpec(base_rows=50, base_columns=4, other_rows=10, other_columns=6,
                              redundancy_in_sources=True, seed=0)
        )
        clean = generate_integrated_pair(
            SyntheticSiloSpec(base_rows=50, base_columns=4, other_rows=10, other_columns=6,
                              redundancy_in_sources=False, seed=0)
        )
        assert redundant.factor("S2").redundancy.n_redundant > 0
        assert clean.factor("S2").redundancy.n_redundant == 0
        assert len(redundant.target_columns) < len(clean.target_columns)

    def test_null_ratio_zeroes_cells(self):
        dataset = generate_integrated_pair(
            SyntheticSiloSpec(base_rows=100, base_columns=10, other_rows=20, other_columns=10,
                              null_ratio=0.5, seed=1)
        )
        base_data = dataset.factor("S1").data
        assert np.mean(base_data == 0.0) > 0.3

    def test_invalid_spec_rejected(self):
        with pytest.raises(MappingError):
            SyntheticSiloSpec(base_rows=0, base_columns=1, other_rows=1, other_columns=1)
        with pytest.raises(MappingError):
            SyntheticSiloSpec(base_rows=1, base_columns=0, other_rows=1, other_columns=1)

    def test_one_to_one_clamps_other_rows(self):
        spec = SyntheticSiloSpec(base_rows=10, base_columns=1, other_rows=50, other_columns=2,
                                 redundancy_in_target=False)
        assert spec.other_rows == 10

    def test_table3_grid(self):
        specs = generate_table3_grid([10, 100], seeds_per_point=3)
        assert len(specs) == 6
        assert specs[0].other_rows == 2  # 0.2 × 10
        assert all(s.base_columns == 1 and s.other_columns == 100 for s in specs)


class TestHamletGenerator:
    def test_registry_contains_published_datasets(self):
        assert {"expedia", "movies", "yelp", "walmart", "lastfm", "books", "flights"} <= set(
            HAMLET_DATASETS
        )
        assert HAMLET_DATASETS["walmart"].tuple_ratios[1] > 1000

    def test_scaled_dataset_preserves_tuple_ratio_order_of_magnitude(self):
        dataset = generate_hamlet_dataset("walmart", row_scale=0.01, seed=0)
        spec = HAMLET_DATASETS["walmart"]
        generated_ratio = dataset.n_target_rows / dataset.factor("dim1").n_rows
        assert generated_ratio > 100  # published ratio is ~9000; scaling keeps it large

    def test_dataset_has_label_and_disjoint_columns(self):
        dataset = generate_hamlet_dataset("flights", row_scale=0.02, seed=1)
        assert dataset.label_column == "label"
        assert set(np.unique(dataset.labels())) <= {0.0, 1.0}
        for factor in dataset.factors:
            assert factor.redundancy.is_trivial

    def test_morpheus_and_amalur_shapes_consistent(self):
        morpheus = generate_hamlet_morpheus("expedia", row_scale=0.001, seed=2)
        amalur = generate_hamlet_dataset("expedia", row_scale=0.001, seed=2, with_label=False)
        assert morpheus.n_rows == amalur.n_target_rows

    def test_without_label(self):
        dataset = generate_hamlet_dataset("yelp", row_scale=0.005, with_label=False)
        assert dataset.label_column is None


class TestOneHotGenerator:
    def test_shapes_and_density(self):
        spec = OneHotSpec(n_rows=200, n_categories=25, base_columns=4)
        dataset = generate_one_hot_pair(spec)
        base, one_hot = dataset.factors
        assert base.data.shape == (200, 4)
        assert one_hot.data.shape == (25, 25)  # n_entities defaults to n_categories
        assert one_hot.density == pytest.approx(spec.one_hot_density) == pytest.approx(1 / 25)
        assert spec.sparsity == pytest.approx(0.96)
        assert dataset.n_target_rows == 200
        assert len(dataset.target_columns) == 4 + 25

    def test_each_entity_row_is_one_hot(self):
        dataset = generate_one_hot_pair(OneHotSpec(n_rows=50, n_categories=10, n_entities=30))
        one_hot = dataset.factors[1].data
        assert one_hot.shape == (30, 10)
        assert np.all(one_hot.sum(axis=1) == 1.0)
        assert set(np.unique(one_hot)) == {0.0, 1.0}

    def test_materialization_equals_factorized(self):
        dataset = generate_one_hot_pair(OneHotSpec(n_rows=80, n_categories=12, seed=3))
        from repro.factorized.normalized_matrix import AmalurMatrix

        target = dataset.materialize()
        x = np.random.default_rng(0).standard_normal((target.shape[1], 2))
        assert np.allclose(AmalurMatrix(dataset).lmm(x), target @ x)

    def test_no_redundancy(self):
        dataset = generate_one_hot_pair(OneHotSpec(n_rows=40, n_categories=8))
        for factor in dataset.factors:
            assert factor.redundancy.is_trivial

    def test_backend_attachment(self):
        dataset = generate_one_hot_pair(
            OneHotSpec(n_rows=40, n_categories=20), backend="auto"
        )
        assert dataset.backend.name == "auto"
        assert dataset.factors[1].backend is dataset.backend

    def test_validation(self):
        with pytest.raises(MappingError):
            OneHotSpec(n_rows=0, n_categories=5)
        with pytest.raises(MappingError):
            OneHotSpec(n_rows=10, n_categories=1)

"""Parity and structure tests for the compiled operator plans.

Every operator (``lmm``/``rmm``/``transpose_lmm``/``crossprod``) running
on compiled :class:`~repro.factorized.OperatorPlan` index arrays must
match the materialized ground truth to 1e-10 across all four Table I
integration scenarios × every backend — including many-to-one joins and
partial column mappings — and the plan caches must be rebuilt (never
shared) by ``with_backend``/``select_columns``/``scale``.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.datagen.scenarios import ScenarioSpec, generate_scenario_dataset
from repro.datagen.synthetic import OneHotSpec, generate_one_hot_pair
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.metadata.mappings import ScenarioType

ATOL = 1e-10
BACKENDS = ["dense", "sparse", "auto"]


def _scenario_dataset(scenario: ScenarioType):
    spec = ScenarioSpec(
        scenario=scenario,
        base_rows=40,
        other_rows=30,
        base_features=4,
        other_features=5,
        overlap_rows=12,
        overlap_columns=2,  # source redundancy → correction paths exercised
        seed=11,
    )
    return generate_scenario_dataset(spec)


def _assert_parity(matrix: AmalurMatrix, target: np.ndarray, rng) -> None:
    x = rng.standard_normal((target.shape[1], 3))
    y = rng.standard_normal((target.shape[0], 2))
    z = rng.standard_normal((2, target.shape[0]))
    np.testing.assert_allclose(matrix.lmm(x), target @ x, atol=ATOL, rtol=0)
    np.testing.assert_allclose(matrix.transpose_lmm(y), target.T @ y, atol=ATOL, rtol=0)
    np.testing.assert_allclose(matrix.rmm(z), z @ target, atol=ATOL, rtol=0)
    np.testing.assert_allclose(matrix.crossprod(), target.T @ target, atol=ATOL, rtol=0)


class TestCompiledPlanParity:
    """Compiled plans match materialize() across scenarios × backends."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("scenario", list(ScenarioType), ids=lambda s: s.value)
    def test_scenario_backend_parity(self, scenario, backend, rng):
        dataset = _scenario_dataset(scenario)
        matrix = AmalurMatrix(dataset, backend=backend)
        _assert_parity(matrix, dataset.materialize(), rng)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_many_to_one_join_parity(self, backend, rng):
        # 12 entity rows feed 150 target rows: the indicator is not
        # injective, so the plan's CSR projector path is exercised.
        dataset = generate_one_hot_pair(
            OneHotSpec(n_rows=150, n_categories=12, n_entities=12, seed=5),
            backend=backend,
        )
        matrix = AmalurMatrix(dataset)
        assert not matrix._plans[1].rows_injective
        assert sparse.issparse(matrix._plans[1].projector)
        _assert_parity(matrix, dataset.materialize(), rng)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_partial_column_mapping_parity(self, backend, rng):
        # Column projection drops target columns, leaving factors whose
        # mappings cover the target schema only partially.
        dataset = _scenario_dataset(ScenarioType.FULL_OUTER_JOIN)
        matrix = AmalurMatrix(dataset, backend=backend)
        keep = dataset.target_columns[1:]
        selected = matrix.select_columns(keep)
        indices = [dataset.target_columns.index(c) for c in keep]
        _assert_parity(selected, dataset.materialize()[:, indices], rng)

    def test_hospital_running_example(self, hospital_dataset, rng):
        for backend in BACKENDS:
            matrix = AmalurMatrix(hospital_dataset, backend=backend)
            _assert_parity(matrix, hospital_dataset.materialize(), rng)

    def test_synthetic_redundant_parity(self, synthetic_redundant_dataset, rng):
        for backend in BACKENDS:
            matrix = AmalurMatrix(synthetic_redundant_dataset, backend=backend)
            _assert_parity(matrix, synthetic_redundant_dataset.materialize(), rng)


class TestPlanStructure:
    """The precomputed index arrays have compiled-kernel-ready form."""

    def test_index_arrays_are_intp_and_read_only(self):
        dataset = _scenario_dataset(ScenarioType.LEFT_JOIN)
        for plan in AmalurMatrix(dataset)._plans:
            for arr in (
                plan.target_cols,
                plan.source_cols,
                plan.target_rows,
                plan.source_rows,
            ):
                assert isinstance(arr, np.ndarray)
                assert arr.dtype == np.intp
                assert not arr.flags.writeable

    def test_injective_join_has_no_projector(self):
        dataset = _scenario_dataset(ScenarioType.INNER_JOIN)
        for plan in AmalurMatrix(dataset)._plans:
            assert plan.rows_injective
            assert plan.projector is None

    def test_mapped_counts_match_metadata(self):
        dataset = _scenario_dataset(ScenarioType.FULL_OUTER_JOIN)
        for factor, plan in zip(dataset.factors, AmalurMatrix(dataset)._plans):
            assert plan.n_mapped_rows == factor.indicator.n_mapped
            assert plan.n_mapped_cols == factor.mapping.n_mapped

    def test_effective_contribution_cached(self):
        dataset = _scenario_dataset(ScenarioType.FULL_OUTER_JOIN)
        matrix = AmalurMatrix(dataset)
        plan = matrix._plans[1]
        assert plan.effective_contribution() is plan.effective_contribution()

    def test_correction_cached_on_plan(self, synthetic_redundant_dataset, rng):
        matrix = AmalurMatrix(synthetic_redundant_dataset)
        operand = rng.standard_normal((matrix.n_columns, 1))
        matrix.lmm(operand)
        assert matrix._correction(1) is matrix._correction(1)


class TestPlanInvalidation:
    """Operations producing a new factorized view rebuild their plans."""

    def test_with_backend_builds_new_plans(self):
        dataset = _scenario_dataset(ScenarioType.INNER_JOIN)
        matrix = AmalurMatrix(dataset, backend="dense")
        rebound = matrix.with_backend("sparse")
        assert rebound._plans is not matrix._plans
        assert all(p.backend is rebound.backend for p in rebound._plans)

    def test_select_columns_builds_new_plans(self):
        dataset = _scenario_dataset(ScenarioType.FULL_OUTER_JOIN)
        matrix = AmalurMatrix(dataset)
        selected = matrix.select_columns(dataset.target_columns[1:])
        assert selected._plans is not matrix._plans
        assert selected._plans[0].n_mapped_cols <= matrix._plans[0].n_mapped_cols

    def test_scale_builds_new_plans_and_gram(self, rng):
        dataset = _scenario_dataset(ScenarioType.INNER_JOIN)
        matrix = AmalurMatrix(dataset)
        gram = matrix.crossprod()
        scaled = matrix.scale(3.0)
        assert scaled._plans is not matrix._plans
        np.testing.assert_allclose(scaled.crossprod(), 9.0 * gram, atol=1e-8, rtol=0)


class TestGramCache:
    def test_crossprod_cached_and_read_only(self):
        dataset = _scenario_dataset(ScenarioType.LEFT_JOIN)
        matrix = AmalurMatrix(dataset)
        gram = matrix.crossprod()
        assert matrix.crossprod() is gram
        assert not gram.flags.writeable

    def test_cache_not_shared_across_views(self):
        dataset = _scenario_dataset(ScenarioType.LEFT_JOIN)
        matrix = AmalurMatrix(dataset)
        gram = matrix.crossprod()
        rebound = matrix.with_backend("sparse")
        assert rebound.gram_cache.value is None
        np.testing.assert_allclose(rebound.crossprod(), gram, atol=ATOL, rtol=0)

    def test_counter_not_recharged_on_cache_hit(self):
        dataset = _scenario_dataset(ScenarioType.INNER_JOIN)
        matrix = AmalurMatrix(dataset)
        matrix.crossprod()
        total = matrix.counter.total
        matrix.crossprod()
        assert matrix.counter.total == total


class TestOperandFastPath:
    """Float64 operands pass through validation without copies."""

    def test_float64_2d_operand_not_copied(self):
        dataset = _scenario_dataset(ScenarioType.INNER_JOIN)
        matrix = AmalurMatrix(dataset)
        x = np.zeros((matrix.n_columns, 2))
        assert matrix._check_lmm_operand(x) is x
        y = np.zeros((matrix.n_rows, 2))
        assert matrix._check_transpose_operand(y) is y
        z = np.zeros((2, matrix.n_rows))
        assert matrix._check_rmm_operand(z) is z

    def test_non_float64_operand_still_converted(self):
        dataset = _scenario_dataset(ScenarioType.INNER_JOIN)
        matrix = AmalurMatrix(dataset)
        x = np.zeros((matrix.n_columns, 2), dtype=np.float32)
        checked = matrix._check_lmm_operand(x)
        assert checked is not x
        assert checked.dtype == np.float64

"""Tests for repro.factorized.normalized_matrix (the Eq. 2 rewrites)."""

import numpy as np
import pytest

from repro.exceptions import FactorizationError
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.factorized.ops_counter import FlopCounter


@pytest.fixture
def hospital_matrix(hospital_dataset):
    return AmalurMatrix(hospital_dataset), hospital_dataset.materialize()


@pytest.fixture
def scenario_matrix(scenario_dataset):
    return AmalurMatrix(scenario_dataset), scenario_dataset.materialize()


class TestOperatorEquivalence:
    """Every factorized operator equals its materialized counterpart."""

    def test_lmm(self, scenario_matrix, rng):
        matrix, target = scenario_matrix
        operand = rng.standard_normal((target.shape[1], 3))
        assert np.allclose(matrix.lmm(operand), target @ operand)

    def test_lmm_vector_operand(self, scenario_matrix, rng):
        matrix, target = scenario_matrix
        operand = rng.standard_normal(target.shape[1])
        assert np.allclose(matrix.lmm(operand)[:, 0], target @ operand)

    def test_rmm(self, scenario_matrix, rng):
        matrix, target = scenario_matrix
        operand = rng.standard_normal((2, target.shape[0]))
        assert np.allclose(matrix.rmm(operand), operand @ target)

    def test_transpose_lmm(self, scenario_matrix, rng):
        matrix, target = scenario_matrix
        operand = rng.standard_normal((target.shape[0], 4))
        assert np.allclose(matrix.transpose_lmm(operand), target.T @ operand)

    def test_crossprod(self, scenario_matrix):
        matrix, target = scenario_matrix
        assert np.allclose(matrix.crossprod(), target.T @ target)

    def test_row_sums_column_sums_total(self, scenario_matrix):
        matrix, target = scenario_matrix
        assert np.allclose(matrix.row_sums(), target.sum(axis=1))
        assert np.allclose(matrix.column_sums(), target.sum(axis=0))
        assert matrix.total_sum() == pytest.approx(target.sum())
        assert np.allclose(matrix.column_means(), target.mean(axis=0))

    def test_scale(self, scenario_matrix, rng):
        matrix, target = scenario_matrix
        scaled = matrix.scale(2.5)
        assert np.allclose(scaled.materialize(), 2.5 * target)
        operand = rng.standard_normal((target.shape[1], 2))
        assert np.allclose(scaled.lmm(operand), 2.5 * (target @ operand))

    def test_materialize(self, scenario_matrix):
        matrix, target = scenario_matrix
        assert np.allclose(matrix.materialize(), target)


class TestRedundancyHandling:
    def test_hospital_lmm_with_redundancy(self, hospital_matrix, rng):
        matrix, target = hospital_matrix
        operand = rng.standard_normal((4, 3))
        assert np.allclose(matrix.lmm(operand), target @ operand)

    def test_synthetic_redundant_all_ops(self, synthetic_redundant_dataset, rng):
        matrix = AmalurMatrix(synthetic_redundant_dataset)
        target = synthetic_redundant_dataset.materialize()
        x = rng.standard_normal((target.shape[1], 2))
        y = rng.standard_normal((target.shape[0], 2))
        z = rng.standard_normal((3, target.shape[0]))
        assert np.allclose(matrix.lmm(x), target @ x)
        assert np.allclose(matrix.transpose_lmm(y), target.T @ y)
        assert np.allclose(matrix.rmm(z), z @ target)
        assert np.allclose(matrix.crossprod(), target.T @ target)

    def test_correction_matrices_cached(self, synthetic_redundant_dataset, rng):
        matrix = AmalurMatrix(synthetic_redundant_dataset)
        operand = rng.standard_normal((matrix.n_columns, 1))
        matrix.lmm(operand)
        first = matrix._correction(1)
        matrix.lmm(operand)
        assert matrix._correction(1) is first


class TestColumnSelection:
    def test_column_extraction(self, hospital_matrix):
        matrix, target = hospital_matrix
        assert np.allclose(matrix.column("hr"), target[:, 2])
        assert np.allclose(matrix.labels(), target[:, 0])

    def test_unknown_column(self, hospital_matrix):
        matrix, _ = hospital_matrix
        with pytest.raises(FactorizationError):
            matrix.column("zzz")

    def test_feature_matrix_view_drops_label(self, hospital_matrix, rng):
        matrix, target = hospital_matrix
        features = matrix.feature_matrix_view()
        assert features.n_columns == 3
        operand = rng.standard_normal((3, 2))
        assert np.allclose(features.lmm(operand), target[:, 1:] @ operand)

    def test_select_columns_equivalence(self, scenario_matrix, rng):
        matrix, target = scenario_matrix
        dataset = matrix.dataset
        keep = dataset.target_columns[1:]
        selected = matrix.select_columns(keep)
        indices = [dataset.target_columns.index(c) for c in keep]
        operand = rng.standard_normal((len(keep), 2))
        assert np.allclose(selected.lmm(operand), target[:, indices] @ operand)
        assert np.allclose(selected.materialize(), target[:, indices])

    def test_select_columns_unknown(self, hospital_matrix):
        matrix, _ = hospital_matrix
        with pytest.raises(FactorizationError):
            matrix.select_columns(["nope"])


class TestOperandValidation:
    def test_bad_shapes_rejected(self, hospital_matrix):
        matrix, _ = hospital_matrix
        with pytest.raises(FactorizationError):
            matrix.lmm(np.ones((7, 1)))
        with pytest.raises(FactorizationError):
            matrix.transpose_lmm(np.ones((7, 1)))
        with pytest.raises(FactorizationError):
            matrix.rmm(np.ones((1, 7)))


class TestFlopAccounting:
    def test_counter_accumulates(self, hospital_dataset, rng):
        counter = FlopCounter()
        matrix = AmalurMatrix(hospital_dataset, counter)
        matrix.lmm(rng.standard_normal((4, 2)))
        assert counter.total > 0
        assert "lmm.local" in counter.by_operation
        assert "lmm.correction" in counter.by_operation

    def test_counter_reset_and_merge(self):
        counter = FlopCounter()
        counter.add("op", 10)
        other = FlopCounter()
        other.add("op", 5)
        counter.merge(other)
        assert counter.total == 15
        counter.reset()
        assert counter.total == 0 and counter.by_operation == {}

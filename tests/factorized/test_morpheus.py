"""Tests for repro.factorized.morpheus (the Chen et al. baseline)."""

import numpy as np
import pytest

from repro.exceptions import FactorizationError
from repro.factorized.morpheus import MorpheusMatrix


@pytest.fixture
def star(rng):
    """A small star schema: 50 entity rows, two dimension tables."""
    entity = rng.standard_normal((50, 3))
    dim_a = rng.standard_normal((10, 4))
    dim_b = rng.standard_normal((5, 2))
    fk_a = rng.integers(0, 10, size=50)
    fk_b = rng.integers(0, 5, size=50)
    matrix = MorpheusMatrix(entity, [dim_a, dim_b], [fk_a, fk_b])
    target = np.hstack([entity, dim_a[fk_a], dim_b[fk_b]])
    return matrix, target


class TestEquivalence:
    def test_materialize(self, star):
        matrix, target = star
        assert np.allclose(matrix.materialize(), target)
        assert matrix.shape == target.shape

    def test_lmm(self, star, rng):
        matrix, target = star
        operand = rng.standard_normal((target.shape[1], 3))
        assert np.allclose(matrix.lmm(operand), target @ operand)

    def test_transpose_lmm(self, star, rng):
        matrix, target = star
        operand = rng.standard_normal((target.shape[0], 2))
        assert np.allclose(matrix.transpose_lmm(operand), target.T @ operand)

    def test_rmm(self, star, rng):
        matrix, target = star
        operand = rng.standard_normal((2, target.shape[0]))
        assert np.allclose(matrix.rmm(operand), operand @ target)

    def test_crossprod(self, star):
        matrix, target = star
        assert np.allclose(matrix.crossprod(), target.T @ target)

    def test_aggregations(self, star):
        matrix, target = star
        assert np.allclose(matrix.row_sums(), target.sum(axis=1))
        assert np.allclose(matrix.column_sums(), target.sum(axis=0))
        assert matrix.total_sum() == pytest.approx(target.sum())

    def test_vector_operands(self, star, rng):
        matrix, target = star
        weights = rng.standard_normal(target.shape[1])
        assert np.allclose(matrix.lmm(weights)[:, 0], target @ weights)


class TestWithoutEntityBlock:
    def test_key_only_entity_table(self, rng):
        dim = rng.standard_normal((4, 3))
        fk = rng.integers(0, 4, size=20)
        matrix = MorpheusMatrix(None, [dim], [fk])
        target = dim[fk]
        assert matrix.shape == (20, 3)
        assert np.allclose(matrix.materialize(), target)
        operand = rng.standard_normal((3, 2))
        assert np.allclose(matrix.lmm(operand), target @ operand)


class TestValidation:
    def test_indicator_count_mismatch(self, rng):
        with pytest.raises(FactorizationError):
            MorpheusMatrix(rng.standard_normal((5, 2)), [rng.standard_normal((2, 2))], [])

    def test_needs_at_least_one_block(self):
        with pytest.raises(FactorizationError):
            MorpheusMatrix(None, [], [])

    def test_dense_indicator_must_be_exact_one_hot(self, rng):
        dim = rng.standard_normal((3, 2))
        bad = np.zeros((4, 3))
        with pytest.raises(FactorizationError):
            MorpheusMatrix(None, [dim], [bad])

    def test_dense_one_hot_indicator_accepted(self, rng):
        dim = rng.standard_normal((3, 2))
        one_hot = np.zeros((4, 3))
        one_hot[np.arange(4), [0, 1, 2, 0]] = 1.0
        matrix = MorpheusMatrix(None, [dim], [one_hot])
        assert np.allclose(matrix.materialize(), dim[[0, 1, 2, 0]])

    def test_indicator_out_of_range(self, rng):
        dim = rng.standard_normal((3, 2))
        with pytest.raises(FactorizationError):
            MorpheusMatrix(None, [dim], [np.array([0, 5])])

    def test_row_count_mismatch_between_blocks(self, rng):
        entity = rng.standard_normal((4, 2))
        dim = rng.standard_normal((3, 2))
        with pytest.raises(FactorizationError):
            MorpheusMatrix(entity, [dim], [np.array([0, 1, 2])])

    def test_operand_shape_validation(self, star):
        matrix, _ = star
        with pytest.raises(FactorizationError):
            matrix.lmm(np.ones((99, 1)))
        with pytest.raises(FactorizationError):
            matrix.transpose_lmm(np.ones((99, 1)))
        with pytest.raises(FactorizationError):
            matrix.rmm(np.ones((1, 99)))


class TestAmalurGeneralizesMorpheus:
    def test_same_result_on_star_schema(self, rng):
        """On the inner-join/no-redundancy case both representations agree."""
        from repro.datagen.hamlet import generate_hamlet_dataset, generate_hamlet_morpheus
        from repro.factorized.normalized_matrix import AmalurMatrix

        amalur = AmalurMatrix(generate_hamlet_dataset("walmart", row_scale=0.001, seed=5))
        morpheus = generate_hamlet_morpheus("walmart", row_scale=0.001, seed=5)
        # Shapes line up (same generator scale); both match their own target.
        assert np.allclose(amalur.materialize().shape[0], morpheus.materialize().shape[0])

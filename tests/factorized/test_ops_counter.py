"""Tests for repro.factorized.ops_counter."""

import pytest

from repro.factorized.ops_counter import (
    FlopCounter,
    dense_matmul_flops,
    factorized_crossprod_flops,
    factorized_lmm_flops,
    materialized_lmm_flops,
    sparse_crossprod_flops,
    sparse_matmul_flops,
)


class TestFlopFormulas:
    def test_dense_matmul(self):
        assert dense_matmul_flops(10, 20, 30) == 6000.0

    def test_materialized_lmm(self):
        assert materialized_lmm_flops(100, 5, 2) == 1000.0

    def test_factorized_lmm_without_redundancy(self):
        flops = factorized_lmm_flops([(10, 2), (4, 3)], n_target_rows=10, x_cols=2)
        # 10*2*2 + 10*2 (lift) + 4*3*2 + 10*2 (lift) = 40 + 20 + 24 + 20
        assert flops == 104.0

    def test_factorized_lmm_redundancy_correction(self):
        base = factorized_lmm_flops([(10, 2)], 10, 2)
        with_redundancy = factorized_lmm_flops([(10, 2)], 10, 2, redundant_cells=5)
        assert with_redundancy - base == 10.0

    def test_factorization_wins_with_high_tuple_ratio(self):
        """Sanity: the formulas reproduce the classic factorization win."""
        n_target, dim_rows, dim_cols = 100_000, 100, 50
        materialized = materialized_lmm_flops(n_target, dim_cols + 1, 1)
        factorized = factorized_lmm_flops([(n_target, 1), (dim_rows, dim_cols)], n_target, 1)
        assert factorized < materialized


class TestSparseFlopFormulas:
    def test_sparse_matmul(self):
        assert sparse_matmul_flops(100, 3) == 300.0

    def test_sparse_matmul_undercuts_dense_below_full_density(self):
        # A 100x100 matrix with 500 stored cells (5% dense).
        assert sparse_matmul_flops(500, 4) < dense_matmul_flops(100, 100, 4)

    def test_sparse_crossprod(self):
        assert sparse_crossprod_flops(500, 100) == 50_000.0
        assert sparse_crossprod_flops(500, 100) < dense_matmul_flops(100, 100, 100)

    def test_nnz_aware_lmm_matches_dense_when_full(self):
        shapes = [(10, 2), (4, 3)]
        dense = factorized_lmm_flops(shapes, n_target_rows=10, x_cols=2)
        nnz_full = factorized_lmm_flops(
            shapes, n_target_rows=10, x_cols=2, source_nnz=[20, 12]
        )
        assert dense == nnz_full

    def test_nnz_aware_lmm_counts_stored_cells(self):
        shapes = [(10, 2), (100, 50)]
        dense = factorized_lmm_flops(shapes, n_target_rows=10, x_cols=2)
        # Second source is one-hot: only 100 of the 5000 cells are stored.
        sparse = factorized_lmm_flops(
            shapes, n_target_rows=10, x_cols=2, source_nnz=[None, 100]
        )
        assert sparse < dense
        assert dense - sparse == (100 * 50 - 100) * 2

    def test_nnz_aware_lmm_short_nnz_list_pads_dense(self):
        shapes = [(10, 2), (4, 3)]
        assert factorized_lmm_flops(
            shapes, n_target_rows=10, x_cols=2, source_nnz=[20]
        ) == factorized_lmm_flops(shapes, n_target_rows=10, x_cols=2)

    def test_nnz_list_longer_than_shapes_rejected(self):
        with pytest.raises(ValueError):
            factorized_lmm_flops([(10, 2)], n_target_rows=10, x_cols=2, source_nnz=[20, 5])
        with pytest.raises(ValueError):
            factorized_crossprod_flops([(10, 2)], source_nnz=[20, 5])

    def test_factorized_crossprod_dense_and_sparse(self):
        shapes = [(100, 4), (50, 20)]
        dense = factorized_crossprod_flops(shapes)
        assert dense == 4 * 100 * 4 + 20 * 50 * 20
        sparse = factorized_crossprod_flops(shapes, source_nnz=[None, 50])
        assert sparse == 4 * 100 * 4 + 50 * 20


class TestMappedRowAwareFormulas:
    """Gather/scatter costs charged by mapped rows, not r_T (plan parity)."""

    def test_mapped_rows_reduce_lift_charge(self):
        shapes = [(10, 2), (4, 3)]
        full = factorized_lmm_flops(shapes, n_target_rows=10, x_cols=2)
        partial = factorized_lmm_flops(
            shapes, n_target_rows=10, x_cols=2, mapped_rows=[10, 4]
        )
        # Second source covers only 4 of the 10 target rows: 6·2 fewer adds.
        assert full - partial == 12.0

    def test_full_coverage_matches_default(self):
        shapes = [(10, 2), (4, 3)]
        assert factorized_lmm_flops(
            shapes, n_target_rows=10, x_cols=2, mapped_rows=[10, 10]
        ) == factorized_lmm_flops(shapes, n_target_rows=10, x_cols=2)

    def test_none_entries_fall_back_to_target_rows(self):
        shapes = [(10, 2), (4, 3)]
        assert factorized_lmm_flops(
            shapes, n_target_rows=10, x_cols=2, mapped_rows=[None, 4]
        ) == factorized_lmm_flops(shapes, n_target_rows=10, x_cols=2, mapped_rows=[10, 4])

    def test_mapped_rows_longer_than_shapes_rejected(self):
        with pytest.raises(ValueError):
            factorized_lmm_flops(
                [(10, 2)], n_target_rows=10, x_cols=2, mapped_rows=[10, 4]
            )

    def test_composes_with_source_nnz(self):
        shapes = [(10, 2), (100, 50)]
        flops = factorized_lmm_flops(
            shapes, n_target_rows=10, x_cols=1, source_nnz=[None, 100], mapped_rows=[10, 5]
        )
        assert flops == 10 * 2 * 1 + 10 + 100 * 1 + 5


class TestFlopCounter:
    def test_add_and_total(self):
        counter = FlopCounter()
        counter.add("a", 10)
        counter.add("a", 5)
        counter.add("b", 1)
        assert counter.total == 16
        assert counter.by_operation == {"a": 15.0, "b": 1.0}

    def test_merge_keeps_labels(self):
        left, right = FlopCounter(), FlopCounter()
        left.add("x", 2)
        right.add("x", 3)
        right.add("y", 4)
        left.merge(right)
        assert left.by_operation == {"x": 5.0, "y": 4.0}
        assert left.total == 9.0

"""Tests for repro.factorized.queries (virtual aggregate queries, §III-C)."""

import numpy as np
import pytest

from repro.datagen.hospital import hospital_integrated_dataset
from repro.exceptions import FactorizationError
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.factorized.queries import VirtualQueryEngine
from repro.metadata.mappings import ScenarioType


@pytest.fixture
def engine(hospital_dataset):
    return VirtualQueryEngine(hospital_dataset)


class TestSection3CExample:
    def test_patients_aged_above_30_counted_once(self, engine):
        """The paper's motivating query: the correct answer is 3, not 4."""
        result = engine.count(where=[("a", ">", 30)])
        assert result.value == 3
        assert result.n_matching_rows == 3

    def test_all_rows_count(self, engine):
        assert engine.count().value == 6

    def test_mortality_group_by(self, engine):
        groups = engine.group_by_count("m")
        assert groups == {0.0: 3, 1.0: 3}


class TestAggregates:
    def test_avg_ignores_uncovered_cells(self, engine):
        # Only three patients have an oxygen reading; the zeros standing in
        # for missing values must not drag the average down.
        result = engine.avg("o")
        assert result.value == pytest.approx((92 + 95 + 97) / 3)
        assert result.n_matching_rows == 3

    def test_sum_min_max(self, engine):
        assert engine.sum("hr").value == pytest.approx(60 + 58 + 65 + 70)
        assert engine.min("a").value == 20
        assert engine.max("a").value == 45

    def test_predicates_combine_conjunctively(self, engine):
        result = engine.count(where=[("a", ">", 30), ("m", "==", 1)])
        assert result.value == 3  # Sam, Jane, Rose

    def test_aggregate_with_predicate(self, engine):
        result = engine.avg("o", where=[("a", ">", 30)])
        assert result.value == pytest.approx((92 + 95) / 2)

    def test_empty_selection_raises(self, engine):
        with pytest.raises(FactorizationError):
            engine.avg("o", where=[("a", ">", 1000)])

    def test_unknown_column_and_operator(self, engine):
        with pytest.raises(FactorizationError):
            engine.count(where=[("zzz", ">", 1)])
        with pytest.raises(FactorizationError):
            engine.count(where=[("a", "~", 1)])


class TestAgainstMaterializedAnswers:
    def test_counts_match_materialized_target(self, scenario_dataset):
        engine = VirtualQueryEngine(scenario_dataset)
        target = scenario_dataset.materialize()
        label_index = scenario_dataset.target_columns.index("label")
        expected = int((target[:, label_index] == 1).sum())
        assert engine.count(where=[("label", "==", 1)]).value == expected

    def test_accepts_amalur_matrix_input(self, hospital_dataset):
        engine = VirtualQueryEngine(AmalurMatrix(hospital_dataset))
        assert engine.count().value == 6

    def test_inner_join_scenario_counts(self):
        dataset = hospital_integrated_dataset(ScenarioType.INNER_JOIN)
        engine = VirtualQueryEngine(dataset)
        assert engine.count().value == 1  # only Jane overlaps
        assert engine.count(where=[("a", ">", 30)]).value == 1

    def test_coverage_mask(self, engine):
        coverage = engine.column_coverage("hr")
        assert coverage.tolist() == [True, True, True, True, False, False]
        coverage_o = engine.column_coverage("o")
        assert coverage_o.sum() == 3

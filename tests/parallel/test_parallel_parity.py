"""Parallel-engine parity: results must not depend on the worker count.

The contract under test, for every scenario x chunk size x worker count:

* built factors are **bit-identical** to the serial build (assembly is
  pure data movement into disjoint row slices);
* StreamingGD weights agree with the single-threaded fit to <= 1e-8, and
  are bit-identical between any two worker counts >= 2 (fixed partition +
  ordered reduction);
* the factorized operators agree with the serial rewrites to <= 1e-8 with
  exactly equal FLOP counters;
* chunked CSV ingest produces byte-identical chunks.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import parallel
from repro.datagen.scenarios import (
    ScenarioSpec,
    generate_scenario_dataset,
    generate_scenario_streams,
)
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.learning import StreamingGD
from repro.metadata.mappings import ScenarioType
from repro.streaming import ChunkedCsvReader, SpillStore, integrate_streams

CHUNK_SIZES = (1, 7, 10_000)
WORKER_COUNTS = (1, 2, 8)
TOLERANCE = 1e-8


def _storage_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Bitwise column equality, treating NaN == NaN (NULL float cells)."""
    if a.dtype != b.dtype or a.shape != b.shape:
        return False
    if np.issubdtype(a.dtype, np.floating):
        return bool(np.array_equal(a, b, equal_nan=True))
    return bool(np.array_equal(a, b))


def _spec(scenario: ScenarioType, seed: int = 21) -> ScenarioSpec:
    return ScenarioSpec(
        scenario, base_rows=180, other_rows=140, base_features=5,
        other_features=6, overlap_rows=60, overlap_columns=2, seed=seed,
    )


def _build_and_train(scenario, chunk_rows, workers, store, spec=None):
    """Spilled stream build + streaming fit at a given worker count."""
    parallel.set_num_workers(workers)
    base, other, matches, row_matches, targets = generate_scenario_streams(
        spec or _spec(scenario), chunk_rows=chunk_rows
    )
    dataset = integrate_streams(
        base, other, matches, row_matches, targets, scenario,
        label_column="label", store=store, chunk_rows=chunk_rows,
    )
    factors = [np.array(factor.data) for factor in dataset.factors]
    model = StreamingGD(
        task="linear", block_rows=53, n_iterations=6,
        num_workers=workers, release_pages=store.release,
    )
    model.fit(AmalurMatrix(dataset))
    return factors, model.coef_.copy(), float(model.intercept_)


class TestBuildAndTrainParity:
    @pytest.mark.parametrize("scenario", list(ScenarioType), ids=lambda s: s.value)
    @pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
    def test_factors_bit_identical_and_weights_close(self, scenario, chunk_rows):
        results = {}
        for workers in WORKER_COUNTS:
            with SpillStore() as store:
                results[workers] = _build_and_train(scenario, chunk_rows, workers, store)
        serial_factors, serial_coef, serial_intercept = results[1]
        for workers in WORKER_COUNTS[1:]:
            factors, coef, intercept = results[workers]
            for built, reference in zip(factors, serial_factors):
                assert np.array_equal(built, reference), (
                    f"factor differs at {workers} workers, chunk {chunk_rows}"
                )
            assert np.max(np.abs(coef - serial_coef)) <= TOLERANCE
            assert abs(intercept - serial_intercept) <= TOLERANCE
        # Any two parallel worker counts agree bit-for-bit.
        assert np.array_equal(results[2][1], results[8][1])
        assert results[2][2] == results[8][2]


class TestOperatorParity:
    @pytest.mark.parametrize("scenario", list(ScenarioType), ids=lambda s: s.value)
    def test_parallel_operators_match_serial(self, scenario):
        dataset = generate_scenario_dataset(_spec(scenario))
        parallel.set_min_parallel_rows(0)
        parallel.set_block_rows(29)

        outputs = {}
        for workers in WORKER_COUNTS:
            parallel.set_num_workers(workers)
            matrix = AmalurMatrix(dataset)
            x = np.random.default_rng(6).standard_normal((matrix.n_columns, 3))
            xt = np.random.default_rng(7).standard_normal((matrix.n_rows, 2))
            outputs[workers] = (
                matrix.lmm(x),
                matrix.transpose_lmm(xt),
                matrix.crossprod(),
                matrix.counter.total,
            )
        lmm1, tlmm1, gram1, flops1 = outputs[1]
        for workers in WORKER_COUNTS[1:]:
            lmm, tlmm, gram, flops = outputs[workers]
            assert np.max(np.abs(lmm - lmm1)) <= TOLERANCE
            assert np.max(np.abs(tlmm - tlmm1)) <= TOLERANCE
            assert np.max(np.abs(gram - gram1)) <= TOLERANCE
            assert flops == flops1, "parallel paths must charge the legacy FLOPs"
        for left, right in zip(outputs[2][:3], outputs[8][:3]):
            assert np.array_equal(left, right)


class TestIngestParity:
    def test_csv_chunks_identical_across_worker_counts(self, tmp_path):
        path = tmp_path / "cells.csv"
        rows = ["id,a,b,s"]
        rows += [f"{i},{i * 0.25},{i % 3 == 0},v{i}" for i in range(83)]
        rows[10] = "9,,true,"  # NULL cells survive the parallel parse
        path.write_text("\n".join(rows) + "\n")

        per_workers = {}
        for workers in WORKER_COUNTS:
            parallel.set_num_workers(workers)
            reader = ChunkedCsvReader(path, chunk_rows=7)
            per_workers[workers] = (reader.schema, list(reader.chunks()))
        schema1, chunks1 = per_workers[1]
        for workers in WORKER_COUNTS[1:]:
            schema, chunks = per_workers[workers]
            assert schema.names == schema1.names
            assert [c.dtype for c in schema] == [c.dtype for c in schema1]
            assert len(chunks) == len(chunks1)
            for chunk, reference in zip(chunks, chunks1):
                assert chunk.offset == reference.offset
                for name in schema.names:
                    assert _storage_equal(
                        chunk.data[name], reference.data[name]
                    ), f"column {name} differs at {workers} workers"
                    assert np.array_equal(chunk.valid[name], reference.valid[name])


@st.composite
def scenario_specs(draw):
    scenario = draw(st.sampled_from(list(ScenarioType)))
    # An inner join's target has exactly overlap_rows rows, and fitting a
    # 0-row matrix is undefined at any worker count (seed behavior).
    min_overlap = 1 if scenario is ScenarioType.INNER_JOIN else 0
    return ScenarioSpec(
        scenario=scenario,
        base_rows=draw(st.integers(min_value=5, max_value=60)),
        other_rows=draw(st.integers(min_value=5, max_value=40)),
        base_features=draw(st.integers(min_value=1, max_value=4)),
        other_features=draw(st.integers(min_value=1, max_value=4)),
        overlap_rows=draw(st.integers(min_value=min_overlap, max_value=5)),
        overlap_columns=draw(st.integers(min_value=0, max_value=1)),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )


class TestPropertyParity:
    @settings(max_examples=12, deadline=None, suppress_health_check=list(HealthCheck))
    @given(
        spec=scenario_specs(),
        chunk_rows=st.sampled_from(CHUNK_SIZES),
        workers=st.sampled_from(WORKER_COUNTS[1:]),
    )
    def test_random_scenarios_match_serial(self, spec, chunk_rows, workers):
        with SpillStore() as store:
            serial_factors, serial_coef, serial_intercept = _build_and_train(
                spec.scenario, chunk_rows, 1, store, spec=spec
            )
        with SpillStore() as store:
            factors, coef, intercept = _build_and_train(
                spec.scenario, chunk_rows, workers, store, spec=spec
            )
        for built, reference in zip(factors, serial_factors):
            assert np.array_equal(built, reference)
        assert np.max(np.abs(coef - serial_coef)) <= TOLERANCE
        assert abs(intercept - serial_intercept) <= TOLERANCE

"""The block-parallel scheduler: pools, ordered maps, prefetch, config."""

from __future__ import annotations

import threading
import time

import pytest

from repro import parallel
from repro.parallel import pool as pool_module


class TestConfig:
    def test_set_num_workers_clamps_and_restores_default(self):
        assert parallel.set_num_workers(0) == 1
        assert parallel.set_num_workers(6) == 6
        assert parallel.set_num_workers(None) == parallel.available_cores()

    def test_num_threads_context_manager_restores(self):
        before = parallel.get_num_workers()
        with parallel.num_threads(3) as applied:
            assert applied == 3
            assert parallel.get_num_workers() == 3
        assert parallel.get_num_workers() == before

    def test_should_parallelize_respects_threshold_and_workers(self):
        parallel.set_min_parallel_rows(100)
        parallel.set_num_workers(4)
        assert parallel.should_parallelize(100)
        assert not parallel.should_parallelize(99)
        parallel.set_num_workers(1)
        assert not parallel.should_parallelize(10_000)

    def test_effective_workers_bounded_by_tasks(self):
        parallel.set_num_workers(8)
        assert parallel.effective_workers(3) == 3
        assert parallel.effective_workers(100) == 8
        assert parallel.effective_workers(0) == 1


class TestParallelMap:
    def test_matches_serial_map_and_preserves_order(self):
        items = list(range(50))
        parallel.set_num_workers(4)
        assert parallel.parallel_map(lambda i: i * i, items) == [i * i for i in items]

    def test_one_worker_runs_inline(self):
        parallel.set_num_workers(1)
        main = threading.get_ident()
        threads = parallel.parallel_map(lambda _: threading.get_ident(), range(5))
        assert set(threads) == {main}

    def test_uses_pool_threads_when_parallel(self):
        parallel.set_num_workers(4)
        main = threading.get_ident()
        threads = set(parallel.parallel_map(lambda _: threading.get_ident(), range(32)))
        assert main not in threads

    def test_nested_map_runs_inline_without_deadlock(self):
        parallel.set_num_workers(2)

        def outer(i):
            inner = parallel.parallel_map(lambda j: (i, j, threading.get_ident()), range(3))
            worker = threading.get_ident()
            assert all(t == worker for _, _, t in inner)
            return [(a, b) for a, b, _ in inner]

        result = parallel.parallel_map(outer, range(4))
        assert result == [[(i, j) for j in range(3)] for i in range(4)]

    def test_exceptions_propagate(self):
        parallel.set_num_workers(4)

        def boom(i):
            if i == 7:
                raise ValueError("task 7")
            return i

        with pytest.raises(ValueError, match="task 7"):
            parallel.parallel_map(boom, range(16))


class TestImapOrdered:
    def test_order_matches_input(self):
        parallel.set_num_workers(4)
        out = list(parallel.imap_ordered(lambda i: i * 3, range(40)))
        assert out == [i * 3 for i in range(40)]

    def test_window_bounds_in_flight_tasks(self):
        parallel.set_num_workers(2)
        pulled = []

        def source():
            for i in range(100):
                pulled.append(i)
                yield i

        iterator = parallel.imap_ordered(lambda i: i, source(), window=3)
        assert next(iterator) == 0
        # One yielded + at most the window in flight; the source must not
        # have been drained eagerly.
        assert len(pulled) <= 5
        assert list(iterator) == list(range(1, 100))

    def test_serial_fallback_is_lazy(self):
        parallel.set_num_workers(1)
        pulled = []

        def source():
            for i in range(10):
                pulled.append(i)
                yield i

        iterator = parallel.imap_ordered(lambda i: i + 1, source())
        assert next(iterator) == 1
        assert pulled == [0]

    def test_exceptions_propagate(self):
        parallel.set_num_workers(4)

        def boom(i):
            if i == 5:
                raise RuntimeError("chunk 5")
            return i

        with pytest.raises(RuntimeError, match="chunk 5"):
            list(parallel.imap_ordered(boom, range(12)))


class TestPrefetch:
    def test_preserves_order_and_items(self):
        parallel.set_num_workers(4)
        assert list(parallel.prefetch(iter(range(200)), depth=2)) == list(range(200))

    def test_runs_producer_on_background_thread(self):
        parallel.set_num_workers(4)
        producer_threads = []

        def source():
            for i in range(5):
                producer_threads.append(threading.get_ident())
                yield i

        assert list(parallel.prefetch(source(), depth=2)) == list(range(5))
        assert threading.get_ident() not in set(producer_threads)

    def test_serial_at_one_worker(self):
        parallel.set_num_workers(1)
        producer_threads = []

        def source():
            producer_threads.append(threading.get_ident())
            yield 1

        assert list(parallel.prefetch(source())) == [1]
        assert producer_threads == [threading.get_ident()]

    def test_exceptions_propagate(self):
        parallel.set_num_workers(4)

        def source():
            yield 1
            raise OSError("stream died")

        iterator = parallel.prefetch(source(), depth=2)
        assert next(iterator) == 1
        with pytest.raises(OSError, match="stream died"):
            list(iterator)


class TestPoolReuse:
    def test_executor_cached_per_size(self):
        parallel.set_num_workers(3)
        parallel.parallel_map(lambda i: i, range(6))
        first = pool_module._executors.get(3)
        parallel.parallel_map(lambda i: i, range(6))
        assert pool_module._executors.get(3) is first

    def test_workers_overlap_in_time(self):
        """Two sleeping tasks on two workers finish in ~one sleep, not two."""
        parallel.set_num_workers(2)
        started = time.perf_counter()
        parallel.parallel_map(lambda _: time.sleep(0.2), range(2))
        assert time.perf_counter() - started < 0.35

"""Restore the global parallel configuration around every test."""

from __future__ import annotations

import pytest

from repro import parallel


@pytest.fixture(autouse=True)
def restore_parallel_config():
    workers = parallel.get_num_workers()
    min_rows = parallel.get_min_parallel_rows()
    block_rows = parallel.get_block_rows()
    yield
    parallel.set_num_workers(workers)
    parallel.set_min_parallel_rows(min_rows)
    parallel.set_block_rows(block_rows)

"""Tests for repro.learning.gaussian_nmf."""

import numpy as np
import pytest

from repro.factorized.normalized_matrix import AmalurMatrix
from repro.learning.gaussian_nmf import GaussianNMF


@pytest.fixture
def low_rank_data(rng):
    weights = rng.random((60, 3))
    components = rng.random((3, 8))
    return weights @ components


class TestNMF:
    def test_reconstruction_error_decreases(self, low_rank_data):
        model = GaussianNMF(n_components=3, n_iterations=100, random_state=0).fit(low_rank_data)
        assert model.error_history_[-1] < model.error_history_[0]

    def test_low_rank_matrix_reconstructed_well(self, low_rank_data):
        model = GaussianNMF(n_components=3, n_iterations=300, random_state=0).fit(low_rank_data)
        relative_error = np.linalg.norm(low_rank_data - model.reconstruct()) / np.linalg.norm(
            low_rank_data
        )
        assert relative_error < 0.05

    def test_factors_are_non_negative(self, low_rank_data):
        model = GaussianNMF(n_components=3, n_iterations=50).fit(low_rank_data)
        assert (model.weights_ >= 0).all()
        assert (model.components_ >= 0).all()

    def test_transform_shape(self, low_rank_data):
        model = GaussianNMF(n_components=3, n_iterations=50).fit(low_rank_data)
        projected = model.transform(low_rank_data[:10])
        assert projected.shape == (10, 3)

    def test_unfitted_errors(self, low_rank_data):
        with pytest.raises(ValueError):
            GaussianNMF().transform(low_rank_data)
        with pytest.raises(ValueError):
            GaussianNMF().reconstruct()


class TestFactorizedEquivalence:
    def test_factorized_equals_materialized_updates(self, synthetic_redundant_dataset):
        """GNMF touches T only through LMM/transpose-LMM, so updates match."""
        matrix = AmalurMatrix(synthetic_redundant_dataset)
        target = synthetic_redundant_dataset.materialize()
        # NMF needs non-negative data: shift via the factorized scale trick —
        # here we simply compare on the absolute values of the same target.
        shifted = np.abs(target)
        factorized_input = AmalurMatrix(_abs_dataset(synthetic_redundant_dataset))
        factorized = GaussianNMF(n_components=2, n_iterations=30, random_state=1).fit(
            factorized_input
        )
        materialized = GaussianNMF(n_components=2, n_iterations=30, random_state=1).fit(shifted)
        assert np.allclose(factorized.components_, materialized.components_, atol=1e-8)
        assert np.allclose(factorized.weights_, materialized.weights_, atol=1e-8)


def _abs_dataset(dataset):
    """Clone a dataset with element-wise absolute values of the source data."""
    from repro.matrices.builder import IntegratedDataset, SourceFactor

    factors = [
        SourceFactor(
            factor.name,
            np.abs(factor.data),
            list(factor.source_columns),
            factor.mapping,
            factor.indicator,
            factor.redundancy,
        )
        for factor in dataset.factors
    ]
    return IntegratedDataset(
        target_columns=list(dataset.target_columns),
        n_target_rows=dataset.n_target_rows,
        factors=factors,
        scenario=dataset.scenario,
        label_column=dataset.label_column,
        name=dataset.name,
    )

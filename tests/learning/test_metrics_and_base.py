"""Tests for repro.learning.metrics and repro.learning.base."""

import numpy as np
import pytest

from repro.exceptions import FactorizationError
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.learning.base import DenseMatrix, as_linop
from repro.learning.metrics import accuracy_score, log_loss, mean_squared_error, r2_score


class TestMetrics:
    def test_mean_squared_error(self):
        assert mean_squared_error([1, 2, 3], [1, 2, 3]) == 0.0
        assert mean_squared_error([0, 0], [1, 1]) == 1.0
        with pytest.raises(ValueError):
            mean_squared_error([1, 2], [1])

    def test_r2_score(self):
        truth = np.array([1.0, 2.0, 3.0, 4.0])
        assert r2_score(truth, truth) == 1.0
        assert r2_score(truth, np.full(4, truth.mean())) == pytest.approx(0.0)
        assert r2_score([1.0, 1.0], [1.0, 1.0]) == 1.0
        assert r2_score([1.0, 1.0], [0.0, 0.0]) == 0.0

    def test_accuracy(self):
        assert accuracy_score([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)
        assert accuracy_score([], []) == 0.0
        with pytest.raises(ValueError):
            accuracy_score([1], [1, 2])

    def test_log_loss(self):
        assert log_loss([1, 0], [1.0, 0.0]) < 1e-10
        assert log_loss([1, 0], [0.5, 0.5]) == pytest.approx(np.log(2))


class TestDenseMatrix:
    def test_interface_matches_numpy(self, rng):
        data = rng.standard_normal((10, 4))
        dense = DenseMatrix(data)
        x = rng.standard_normal((4, 2))
        y = rng.standard_normal((10, 3))
        assert dense.shape == (10, 4)
        assert np.allclose(dense.lmm(x), data @ x)
        assert np.allclose(dense.transpose_lmm(y), data.T @ y)
        assert np.allclose(dense.rmm(np.ones((1, 10))), np.ones((1, 10)) @ data)
        assert np.allclose(dense.crossprod(), data.T @ data)
        assert np.allclose(dense.row_sums(), data.sum(axis=1))
        assert np.allclose(dense.column_sums(), data.sum(axis=0))
        assert dense.total_sum() == pytest.approx(data.sum())
        assert np.allclose(dense.materialize(), data)

    def test_materialize_returns_copy(self, rng):
        data = rng.standard_normal((3, 3))
        dense = DenseMatrix(data)
        dense.materialize()[0, 0] = 999.0
        assert dense.materialize()[0, 0] != 999.0

    def test_rejects_non_2d(self):
        with pytest.raises(FactorizationError):
            DenseMatrix(np.zeros(3))


class TestAsLinop:
    def test_wraps_numpy(self, rng):
        operand = as_linop(rng.standard_normal((5, 2)))
        assert isinstance(operand, DenseMatrix)

    def test_passes_through_amalur_matrix(self, hospital_dataset):
        matrix = AmalurMatrix(hospital_dataset)
        assert as_linop(matrix) is matrix

    def test_rejects_unknown_types(self):
        with pytest.raises(FactorizationError):
            as_linop("not a matrix")

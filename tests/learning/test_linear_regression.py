"""Tests for repro.learning.linear_regression."""

import numpy as np
import pytest

from repro.factorized.normalized_matrix import AmalurMatrix
from repro.learning.base import DenseMatrix
from repro.learning.linear_regression import LinearRegression


@pytest.fixture
def regression_data(rng):
    n, d = 200, 4
    features = rng.standard_normal((n, d))
    true_weights = np.array([1.5, -2.0, 0.5, 3.0])
    targets = features @ true_weights + 0.01 * rng.standard_normal(n)
    return features, targets, true_weights


class TestSolvers:
    def test_normal_equations_recover_weights(self, regression_data):
        features, targets, true_weights = regression_data
        model = LinearRegression(solver="normal", fit_intercept=False).fit(features, targets)
        assert np.allclose(model.coef_, true_weights, atol=0.05)

    def test_gradient_descent_converges(self, regression_data):
        features, targets, true_weights = regression_data
        model = LinearRegression(
            solver="gd", learning_rate=0.1, n_iterations=500, fit_intercept=False
        ).fit(features, targets)
        assert np.allclose(model.coef_, true_weights, atol=0.1)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_unknown_solver(self, regression_data):
        features, targets, _ = regression_data
        with pytest.raises(ValueError):
            LinearRegression(solver="banana").fit(features, targets)

    def test_l2_penalty_shrinks_weights(self, regression_data):
        features, targets, _ = regression_data
        plain = LinearRegression(solver="normal", fit_intercept=False).fit(features, targets)
        ridge = LinearRegression(solver="normal", l2_penalty=100.0, fit_intercept=False).fit(
            features, targets
        )
        assert np.linalg.norm(ridge.coef_) < np.linalg.norm(plain.coef_)

    def test_intercept_captures_target_mean(self, rng):
        features = rng.standard_normal((100, 2))
        targets = features @ np.array([1.0, 1.0]) + 10.0
        model = LinearRegression(solver="normal").fit(features, targets)
        assert model.intercept_ == pytest.approx(10.0, abs=0.5)

    def test_early_stopping_tolerance(self, regression_data):
        features, targets, _ = regression_data
        model = LinearRegression(
            solver="gd", learning_rate=0.1, n_iterations=1000, tolerance=1e-3,
            fit_intercept=False,
        ).fit(features, targets)
        assert len(model.loss_history_) < 1000


class TestValidation:
    def test_shape_mismatch(self, regression_data):
        features, targets, _ = regression_data
        with pytest.raises(ValueError):
            LinearRegression().fit(features, targets[:-5])

    def test_predict_before_fit(self, regression_data):
        features, _, _ = regression_data
        with pytest.raises(ValueError):
            LinearRegression().predict(features)

    def test_score_r2(self, regression_data):
        features, targets, _ = regression_data
        model = LinearRegression(solver="normal", fit_intercept=False).fit(features, targets)
        assert model.score(features, targets) > 0.99


class TestFactorizedEquivalence:
    def test_factorized_equals_materialized_training(self, scenario_dataset):
        """Paper §IV: factorized learning does not affect accuracy."""
        matrix = AmalurMatrix(scenario_dataset)
        target = scenario_dataset.materialize()
        label_index = scenario_dataset.target_columns.index("label")
        feature_indices = [i for i in range(target.shape[1]) if i != label_index]
        dense_features = target[:, feature_indices]
        labels = target[:, label_index]

        factorized_model = LinearRegression(
            solver="gd", learning_rate=0.05, n_iterations=60, fit_intercept=False
        ).fit(matrix.feature_matrix_view(), labels)
        materialized_model = LinearRegression(
            solver="gd", learning_rate=0.05, n_iterations=60, fit_intercept=False
        ).fit(DenseMatrix(dense_features), labels)
        assert np.allclose(factorized_model.coef_, materialized_model.coef_)
        assert np.allclose(factorized_model.loss_history_, materialized_model.loss_history_)

    def test_normal_solver_on_factorized_data(self, synthetic_redundant_dataset):
        matrix = AmalurMatrix(synthetic_redundant_dataset)
        target = synthetic_redundant_dataset.materialize()
        labels = target[:, 0]
        features_factorized = matrix.select_columns(synthetic_redundant_dataset.target_columns[1:])
        features_dense = target[:, 1:]
        factorized = LinearRegression(solver="normal", fit_intercept=False).fit(
            features_factorized, labels
        )
        materialized = LinearRegression(solver="normal", fit_intercept=False).fit(
            features_dense, labels
        )
        assert np.allclose(factorized.coef_, materialized.coef_, atol=1e-8)

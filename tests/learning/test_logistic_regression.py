"""Tests for repro.learning.logistic_regression."""

import numpy as np
import pytest

from repro.factorized.normalized_matrix import AmalurMatrix
from repro.learning.base import DenseMatrix
from repro.learning.logistic_regression import LogisticRegression


@pytest.fixture
def classification_data(rng):
    n, d = 300, 3
    features = rng.standard_normal((n, d))
    logits = features @ np.array([2.0, -1.5, 1.0])
    labels = (logits + 0.1 * rng.standard_normal(n) > 0).astype(float)
    return features, labels


class TestTraining:
    def test_reaches_high_accuracy_on_separable_data(self, classification_data):
        features, labels = classification_data
        model = LogisticRegression(learning_rate=0.5, n_iterations=300).fit(features, labels)
        assert model.score(features, labels) > 0.95

    def test_loss_decreases(self, classification_data):
        features, labels = classification_data
        model = LogisticRegression(learning_rate=0.3, n_iterations=100).fit(features, labels)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_predict_proba_bounds(self, classification_data):
        features, labels = classification_data
        model = LogisticRegression(n_iterations=50).fit(features, labels)
        probabilities = model.predict_proba(features)
        assert probabilities.min() >= 0.0 and probabilities.max() <= 1.0

    def test_l2_penalty_shrinks_weights(self, classification_data):
        features, labels = classification_data
        plain = LogisticRegression(n_iterations=200).fit(features, labels)
        ridge = LogisticRegression(n_iterations=200, l2_penalty=50.0).fit(features, labels)
        assert np.linalg.norm(ridge.coef_) < np.linalg.norm(plain.coef_)

    def test_intercept_learns_class_imbalance(self, rng):
        features = rng.standard_normal((200, 2)) * 0.01
        labels = np.ones(200)
        labels[:20] = 0.0
        model = LogisticRegression(n_iterations=300, learning_rate=0.5).fit(features, labels)
        assert model.intercept_ > 0.0

    def test_tolerance_early_stop(self, classification_data):
        features, labels = classification_data
        model = LogisticRegression(n_iterations=1000, tolerance=1e-4).fit(features, labels)
        assert len(model.loss_history_) <= 1000


class TestValidation:
    def test_non_binary_labels_rejected(self, classification_data):
        features, labels = classification_data
        with pytest.raises(ValueError):
            LogisticRegression().fit(features, labels * 3)

    def test_shape_mismatch(self, classification_data):
        features, labels = classification_data
        with pytest.raises(ValueError):
            LogisticRegression().fit(features, labels[:-1])

    def test_predict_before_fit(self, classification_data):
        features, _ = classification_data
        with pytest.raises(ValueError):
            LogisticRegression().predict(features)


class TestFactorizedEquivalence:
    def test_factorized_equals_materialized_training(self, scenario_dataset):
        matrix = AmalurMatrix(scenario_dataset)
        target = scenario_dataset.materialize()
        label_index = scenario_dataset.target_columns.index("label")
        feature_indices = [i for i in range(target.shape[1]) if i != label_index]
        labels = target[:, label_index]

        factorized = LogisticRegression(learning_rate=0.1, n_iterations=40).fit(
            matrix.feature_matrix_view(), labels
        )
        materialized = LogisticRegression(learning_rate=0.1, n_iterations=40).fit(
            DenseMatrix(target[:, feature_indices]), labels
        )
        assert np.allclose(factorized.coef_, materialized.coef_)
        assert factorized.intercept_ == pytest.approx(materialized.intercept_)

    def test_hospital_mortality_prediction(self, hospital_dataset):
        """The running example's downstream task trains end to end."""
        matrix = AmalurMatrix(hospital_dataset)
        labels = matrix.labels()
        model = LogisticRegression(learning_rate=0.01, n_iterations=50).fit(
            matrix.feature_matrix_view(), labels
        )
        assert model.predict(matrix.feature_matrix_view()).shape == (6,)

"""Tests for repro.learning.kmeans."""

import numpy as np
import pytest

from repro.factorized.normalized_matrix import AmalurMatrix
from repro.learning.kmeans import KMeans


@pytest.fixture
def blobs(rng):
    centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
    points = []
    labels = []
    for index, center in enumerate(centers):
        points.append(center + rng.standard_normal((40, 2)))
        labels.extend([index] * 40)
    return np.vstack(points), np.array(labels)


class TestClustering:
    def test_recovers_well_separated_blobs(self, blobs):
        points, true_labels = blobs
        model = KMeans(n_clusters=3, random_state=1).fit(points)
        # Clusters should be pure: every true cluster maps to one predicted label.
        for cluster in range(3):
            predicted = model.labels_[true_labels == cluster]
            assert len(set(predicted.tolist())) == 1

    def test_inertia_positive_and_reported(self, blobs):
        points, _ = blobs
        model = KMeans(n_clusters=3, random_state=1).fit(points)
        assert model.inertia_ > 0.0
        assert model.n_iter_ >= 1

    def test_predict_assigns_nearest_center(self, blobs):
        points, _ = blobs
        model = KMeans(n_clusters=3, random_state=1).fit(points)
        new_points = np.array([[0.2, -0.1], [9.8, 10.4]])
        predictions = model.predict(new_points)
        centers = model.cluster_centers_
        for point, label in zip(new_points, predictions):
            distances = np.linalg.norm(centers - point, axis=1)
            assert label == distances.argmin()

    def test_more_clusters_than_rows_rejected(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=10).fit(np.zeros((3, 2)))

    def test_predict_before_fit(self, blobs):
        points, _ = blobs
        with pytest.raises(ValueError):
            KMeans().predict(points)

    def test_deterministic_given_seed(self, blobs):
        points, _ = blobs
        first = KMeans(n_clusters=3, random_state=7).fit(points)
        second = KMeans(n_clusters=3, random_state=7).fit(points)
        assert np.allclose(first.cluster_centers_, second.cluster_centers_)


class TestFactorizedEquivalence:
    def test_factorized_equals_materialized_clustering(self, scenario_dataset):
        matrix = AmalurMatrix(scenario_dataset)
        target = scenario_dataset.materialize()
        factorized = KMeans(n_clusters=3, random_state=5, n_iterations=20).fit(matrix)
        materialized = KMeans(n_clusters=3, random_state=5, n_iterations=20).fit(target)
        assert np.allclose(factorized.cluster_centers_, materialized.cluster_centers_)
        assert np.array_equal(factorized.labels_, materialized.labels_)
        assert factorized.inertia_ == pytest.approx(materialized.inertia_)

    def test_factorized_with_redundancy(self, synthetic_redundant_dataset):
        matrix = AmalurMatrix(synthetic_redundant_dataset)
        target = synthetic_redundant_dataset.materialize()
        factorized = KMeans(n_clusters=2, random_state=3, n_iterations=15).fit(matrix)
        materialized = KMeans(n_clusters=2, random_state=3, n_iterations=15).fit(target)
        assert np.allclose(factorized.cluster_centers_, materialized.cluster_centers_)

"""Tests for repro.matrices.tensor (the §III-D tensor view)."""

import numpy as np

from repro.matrices.tensor import MetadataTensor, stack_metadata_tensor


class TestMetadataTensor:
    def test_shape(self, hospital_dataset):
        tensor = stack_metadata_tensor(hospital_dataset)
        assert tensor.shape == (2, 3, 6, 4)
        assert tensor.source_names == ["S1", "S2"]
        assert tensor.target_columns == ["m", "a", "hr", "o"]

    def test_slices(self, hospital_dataset):
        tensor = stack_metadata_tensor(hospital_dataset)
        assert np.allclose(tensor.data(0), hospital_dataset.factors[0].contribution())
        assert np.allclose(
            tensor.redundancy(1), hospital_dataset.factors[1].redundancy.to_dense()
        )
        coverage = tensor.coverage(0)
        assert coverage[0, 0] == 1.0  # S1 covers row 0, column m
        assert coverage[0, 3] == 0.0  # S1 does not cover column o
        assert coverage[4, 0] == 0.0  # S1 does not cover the S2-only rows

    def test_tensor_materialization_equals_dataset(self, hospital_dataset):
        tensor = stack_metadata_tensor(hospital_dataset)
        assert np.allclose(tensor.materialize(), hospital_dataset.materialize())

    def test_tensor_materialization_on_synthetic(self, synthetic_redundant_dataset):
        tensor = stack_metadata_tensor(synthetic_redundant_dataset)
        assert np.allclose(tensor.materialize(), synthetic_redundant_dataset.materialize())

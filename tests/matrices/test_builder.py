"""Tests for repro.matrices.builder: the integrated (factorized) dataset."""

import numpy as np
import pytest

from repro.exceptions import MappingError
from repro.matrices.builder import (
    IntegratedDataset,
    SourceFactor,
    build_integrated_dataset,
    integrate_tables,
)
from repro.matrices.indicator_matrix import IndicatorMatrix
from repro.matrices.mapping_matrix import MappingMatrix
from repro.matrices.redundancy_matrix import RedundancyMatrix
from repro.metadata.mappings import ScenarioType
from repro.relational.joins import full_outer_join, inner_join, left_join, union_all
from repro.relational.table import Table
from repro.datagen.hospital import (
    hospital_column_matches,
    hospital_integrated_dataset,
    hospital_row_matches,
    hospital_tables,
)
from repro.datagen.scenarios import ScenarioSpec, generate_scenario_tables


class TestHospitalRunningExample:
    def test_figure2d_target_table(self, hospital_dataset):
        """The materialized full-outer-join target must match Figure 2d."""
        target = hospital_dataset.materialize()
        assert target.shape == (6, 4)
        expected = np.array(
            [
                [0, 20, 60, 0],
                [1, 35, 58, 0],
                [0, 22, 65, 0],
                [1, 37, 70, 92],  # Jane: merged from both sources
                [1, 45, 0, 95],
                [0, 20, 0, 97],
            ],
            dtype=float,
        )
        assert np.array_equal(target, expected)

    def test_redundancy_zeroes_janes_duplicate_cells(self, hospital_dataset):
        s2_factor = hospital_dataset.factor("S2")
        redundancy = s2_factor.redundancy.to_dense()
        # Jane is target row 3; S2's m and a values repeat S1's.
        assert redundancy[3, 0] == 0.0
        assert redundancy[3, 1] == 0.0
        assert s2_factor.redundancy.n_redundant == 2

    def test_contribution_plus_mask_identity(self, hospital_dataset):
        """T1 + (T2 ∘ R2) == T, but T1 + T2 != T (the Figure 4c point)."""
        t1 = hospital_dataset.factors[0].masked_contribution()
        t2_raw = hospital_dataset.factors[1].contribution()
        t2_masked = hospital_dataset.factors[1].masked_contribution()
        target = hospital_dataset.materialize()
        assert np.allclose(t1 + t2_masked, target)
        assert not np.allclose(t1 + t2_raw, target)

    def test_labels_and_features(self, hospital_dataset):
        assert hospital_dataset.label_column == "m"
        assert hospital_dataset.labels().tolist() == [0, 1, 0, 1, 1, 0]
        assert hospital_dataset.features().shape == (6, 3)

    def test_materialize_table_roles(self, hospital_dataset):
        table = hospital_dataset.materialize_table()
        assert table.schema["m"].is_label
        assert table.n_rows == 6


class TestScenarioEquivalenceWithJoins:
    """Factorized reconstruction must equal the relational join, per scenario."""

    def _join_for(self, scenario, base, other, target_columns):
        if scenario is ScenarioType.INNER_JOIN:
            return inner_join(base, other, on=["id"], target_columns=target_columns)
        if scenario is ScenarioType.LEFT_JOIN:
            return left_join(base, other, on=["id"], target_columns=target_columns)
        if scenario is ScenarioType.FULL_OUTER_JOIN:
            return full_outer_join(base, other, on=["id"], target_columns=target_columns)
        return union_all(base, other, target_columns=target_columns)

    @pytest.mark.parametrize("scenario", list(ScenarioType), ids=lambda s: s.value)
    def test_materialization_equals_relational_join(self, scenario):
        spec = ScenarioSpec(
            scenario=scenario,
            base_rows=20,
            other_rows=14,
            base_features=3,
            other_features=4,
            overlap_rows=8,
            overlap_columns=1,
            seed=11,
        )
        base, other, column_matches, row_matches, target_columns = generate_scenario_tables(spec)
        dataset = integrate_tables(
            base, other, column_matches, row_matches, target_columns, scenario, label_column="label"
        )
        join_result = self._join_for(scenario, base, other, target_columns)
        expected = join_result.table.to_matrix(target_columns)
        assert dataset.shape == expected.shape
        assert np.allclose(np.sort(dataset.materialize(), axis=0), np.sort(expected, axis=0))


class TestDatasetStatistics:
    def test_tuple_and_feature_ratios(self, synthetic_redundant_dataset):
        dataset = synthetic_redundant_dataset
        assert dataset.tuple_ratio() == pytest.approx(1.0)
        assert dataset.feature_ratio() > 1.0
        assert dataset.total_source_cells() == 120 * 3 + 24 * 8
        # half of min(3, 8) = 2 columns overlap, so c_T = 3 + 8 - 2 = 9
        assert dataset.target_cells() == 120 * 9

    def test_redundancy_in_target_detects_overlap(self, hospital_dataset):
        assert hospital_dataset.redundancy_in_target() > 0.0

    def test_factor_lookup(self, hospital_dataset):
        assert hospital_dataset.factor("S1").name == "S1"
        with pytest.raises(MappingError):
            hospital_dataset.factor("missing")


class TestValidation:
    def test_label_column_must_be_in_target(self, hospital):
        s1, s2 = hospital
        with pytest.raises(MappingError):
            integrate_tables(
                s1, s2, hospital_column_matches(), hospital_row_matches(),
                ["m", "a", "hr", "o"], ScenarioType.INNER_JOIN, label_column="missing",
            )

    def test_source_without_numeric_mapped_columns_rejected(self):
        base = Table.from_dict("B", {"id": [1, 2], "x": [1.0, 2.0]}, id={"is_key": True})
        other = Table.from_dict("O", {"id": [1, 2], "note": ["a", "b"]}, id={"is_key": True})
        with pytest.raises(MappingError):
            integrate_tables(base, other, [], [], ["x", "note"], ScenarioType.LEFT_JOIN)

    def test_empty_dataset_rejected(self):
        with pytest.raises(MappingError):
            IntegratedDataset(target_columns=["a"], n_target_rows=1, factors=[])

    def test_factor_shape_validation(self):
        mapping = MappingMatrix("S", ["a"], ["x"], {"x": "a"})
        indicator = IndicatorMatrix("S", 2, 2, [0, 1])
        redundancy = RedundancyMatrix.all_ones("S", 2, 1)
        with pytest.raises(MappingError):
            SourceFactor("S", np.zeros((2, 2)), ["x"], mapping, indicator, redundancy)
        with pytest.raises(MappingError):
            SourceFactor("S", np.zeros((3, 1)), ["x"], mapping, indicator, redundancy)

    def test_dataset_factor_consistency(self):
        mapping = MappingMatrix("S", ["a"], ["x"], {"x": "a"})
        indicator = IndicatorMatrix("S", 2, 2, [0, 1])
        redundancy = RedundancyMatrix.all_ones("S", 2, 1)
        factor = SourceFactor("S", np.zeros((2, 1)), ["x"], mapping, indicator, redundancy)
        with pytest.raises(MappingError):
            IntegratedDataset(target_columns=["a", "b"], n_target_rows=2, factors=[factor])
        with pytest.raises(MappingError):
            IntegratedDataset(target_columns=["a"], n_target_rows=5, factors=[factor])


class TestGenericBuilder:
    def test_three_source_integration(self):
        base = Table.from_dict("A", {"x": [1.0, 2.0, 3.0]})
        second = Table.from_dict("B", {"y": [10.0, 20.0, 30.0]})
        third = Table.from_dict("C", {"x": [9.0, 9.0, 9.0]})  # redundant with A
        dataset = build_integrated_dataset(
            sources=[base, second, third],
            correspondences={"A": {"x": "x"}, "B": {"y": "y"}, "C": {"x": "x"}},
            row_maps={"A": [0, 1, 2], "B": [0, 1, 2], "C": [0, 1, 2]},
            target_columns=["x", "y"],
            n_target_rows=3,
        )
        target = dataset.materialize()
        # The base table's x wins; C's overlapping values are masked out.
        assert target[:, 0].tolist() == [1.0, 2.0, 3.0]
        assert target[:, 1].tolist() == [10.0, 20.0, 30.0]
        assert dataset.factor("C").redundancy.n_redundant == 3

    def test_row_map_length_validation(self):
        base = Table.from_dict("A", {"x": [1.0]})
        with pytest.raises(MappingError):
            build_integrated_dataset(
                sources=[base],
                correspondences={"A": {"x": "x"}},
                row_maps={"A": [0, 1]},
                target_columns=["x"],
                n_target_rows=1,
            )

    def test_needs_at_least_one_source(self):
        with pytest.raises(MappingError):
            build_integrated_dataset(
                sources=[], correspondences={}, row_maps={}, target_columns=["x"], n_target_rows=0
            )

"""Tests for repro.matrices.indicator_matrix (paper §III-B, Figure 4b)."""

import numpy as np
import pytest

from repro.exceptions import MappingError
from repro.matrices.indicator_matrix import IndicatorMatrix


@pytest.fixture
def ci1():
    """CI1 of the running example under the full outer join: 6 target rows,
    the first four map to S1 rows 0..3, the last two are S2-only."""
    return IndicatorMatrix("S1", 6, 4, [0, 1, 2, 3, -1, -1])


@pytest.fixture
def ci2():
    """CI2: only target row 3 (Jane) maps to S2 row 2; rows 4-5 are S2-only."""
    return IndicatorMatrix("S2", 6, 3, [-1, -1, -1, 2, 0, 1])


class TestStructure:
    def test_shapes_and_counts(self, ci1, ci2):
        assert ci1.shape == (6, 4)
        assert ci1.n_mapped == 4
        assert ci2.n_mapped == 3
        assert ci1.density == pytest.approx(4 / 24)

    def test_dense_form(self, ci2):
        dense = ci2.to_dense()
        assert dense.shape == (6, 3)
        assert dense[3, 2] == 1.0
        assert dense[0].sum() == 0.0
        assert dense.sum() == 3.0

    def test_sparse_equals_dense(self, ci1):
        assert np.array_equal(ci1.to_sparse().toarray(), ci1.to_dense())

    def test_lookups(self, ci2):
        assert np.array_equal(ci2.mapped_target_rows(), [3, 4, 5])
        assert ci2.source_row_of(3) == 2
        assert ci2.source_row_of(0) is None

    def test_validation(self):
        with pytest.raises(MappingError):
            IndicatorMatrix("S", 2, 2, [0])  # wrong length
        with pytest.raises(MappingError):
            IndicatorMatrix("S", 2, 2, [0, 5])  # out of range
        with pytest.raises(MappingError):
            IndicatorMatrix("S", 2, 2, [-2, 0])  # invalid negative


class TestApply:
    def test_apply_equals_dense_multiplication(self, ci2, rng):
        data = rng.standard_normal((3, 5))
        assert np.allclose(ci2.apply(data), ci2.to_dense() @ data)

    def test_apply_fill_value_for_unmapped_rows(self, ci2):
        data = np.ones((3, 1))
        lifted = ci2.apply(data, fill=-7.0)
        assert lifted[0, 0] == -7.0
        assert lifted[3, 0] == 1.0

    def test_apply_transpose_equals_dense(self, ci1, rng):
        target = rng.standard_normal((6, 2))
        assert np.allclose(ci1.apply_transpose(target), ci1.to_dense().T @ target)

    def test_apply_transpose_accumulates_duplicates(self):
        # Two target rows map to the same source row (a many-to-one join).
        indicator = IndicatorMatrix("S", 3, 2, [0, 0, 1])
        target = np.array([[1.0], [2.0], [3.0]])
        result = indicator.apply_transpose(target)
        assert result[0, 0] == pytest.approx(3.0)
        assert result[1, 0] == pytest.approx(3.0)

    def test_apply_shape_validation(self, ci1):
        with pytest.raises(MappingError):
            ci1.apply(np.ones((5, 1)))
        with pytest.raises(MappingError):
            ci1.apply_transpose(np.ones((5, 1)))


class TestRoundTrips:
    def test_from_row_pairs(self, ci2):
        rebuilt = IndicatorMatrix.from_row_pairs("S2", 6, 3, [(3, 2), (4, 0), (5, 1)])
        assert rebuilt == ci2

    def test_from_row_pairs_validation(self):
        with pytest.raises(MappingError):
            IndicatorMatrix.from_row_pairs("S", 2, 2, [(0, 0), (0, 1)])  # target row twice
        with pytest.raises(MappingError):
            IndicatorMatrix.from_row_pairs("S", 2, 2, [(5, 0)])
        with pytest.raises(MappingError):
            IndicatorMatrix.from_row_pairs("S", 2, 2, [(0, 5)])

    def test_from_dense_round_trip(self, ci1):
        rebuilt = IndicatorMatrix.from_dense("S1", ci1.to_dense())
        assert rebuilt == ci1

    def test_from_dense_rejects_multiple_sources_per_target_row(self):
        dense = np.array([[1.0, 1.0], [0.0, 0.0]])
        with pytest.raises(MappingError):
            IndicatorMatrix.from_dense("S", dense)

    def test_from_dense_rejects_non_binary(self):
        with pytest.raises(MappingError):
            IndicatorMatrix.from_dense("S", np.array([[0.5, 0.0]]))

"""Tests for repro.matrices.mapping_matrix (paper §III-A, Figure 4a)."""

import numpy as np
import pytest

from repro.exceptions import MappingError
from repro.matrices.mapping_matrix import MappingMatrix


TARGET = ["m", "a", "hr", "o"]


@pytest.fixture
def m1():
    """M1 of the running example: S1(m, a, hr) → T(m, a, hr, o)."""
    return MappingMatrix("S1", TARGET, ["m", "a", "hr"], {"m": "m", "a": "a", "hr": "hr"})


@pytest.fixture
def m2():
    """M2 of the running example: S2(m, a, o) → T(m, a, hr, o)."""
    return MappingMatrix("S2", TARGET, ["m", "a", "o"], {"m": "m", "a": "a", "o": "o"})


class TestFigure4Values:
    def test_m1_dense_matches_figure(self, m1):
        expected = np.array(
            [[1, 0, 0], [0, 1, 0], [0, 0, 1], [0, 0, 0]], dtype=float
        )
        assert np.array_equal(m1.to_dense(), expected)

    def test_m2_dense_matches_figure(self, m2):
        expected = np.array(
            [[1, 0, 0], [0, 1, 0], [0, 0, 0], [0, 0, 1]], dtype=float
        )
        assert np.array_equal(m2.to_dense(), expected)

    def test_cm1_compressed_matches_figure(self, m1):
        # CM1 = [0, 1, 2, -1]: T.m←S1[0], T.a←S1[1], T.hr←S1[2], T.o unmapped
        assert m1.compressed.tolist() == [0, 1, 2, -1]

    def test_cm2_compressed_matches_figure(self, m2):
        # CM2 = [0, 1, -1, 2]
        assert m2.compressed.tolist() == [0, 1, -1, 2]


class TestStructure:
    def test_shape_and_counts(self, m1):
        assert m1.shape == (4, 3)
        assert m1.n_mapped == 3
        assert m1.density == pytest.approx(3 / 12)

    def test_sparse_equals_dense(self, m2):
        assert np.array_equal(m2.to_sparse().toarray(), m2.to_dense())

    def test_lookups(self, m2):
        assert m2.target_index_of("o") == 3
        assert m2.target_index_of("unknown") is None
        assert m2.source_index_of("hr") is None
        assert m2.source_index_of("a") == 1
        assert np.array_equal(m2.mapped_target_indices(), [0, 1, 3])
        assert np.array_equal(m2.mapped_source_indices(), [0, 1, 2])

    def test_at_most_one_per_row_and_column(self, m1):
        dense = m1.to_dense()
        assert (dense.sum(axis=0) <= 1).all()
        assert (dense.sum(axis=1) <= 1).all()


class TestValidation:
    def test_unknown_source_column_rejected(self):
        with pytest.raises(MappingError):
            MappingMatrix("S", TARGET, ["x"], {"y": "m"})

    def test_unknown_target_column_rejected(self):
        with pytest.raises(MappingError):
            MappingMatrix("S", TARGET, ["x"], {"x": "zz"})

    def test_double_mapped_target_rejected(self):
        with pytest.raises(MappingError):
            MappingMatrix("S", TARGET, ["x", "y"], {"x": "m", "y": "m"})


class TestRoundTrips:
    def test_compressed_round_trip(self, m2):
        rebuilt = MappingMatrix.from_compressed("S2", TARGET, ["m", "a", "o"], m2.compressed)
        assert rebuilt == m2

    def test_dense_round_trip(self, m1):
        rebuilt = MappingMatrix.from_dense("S1", TARGET, ["m", "a", "hr"], m1.to_dense())
        assert rebuilt == m1

    def test_from_compressed_length_mismatch(self):
        with pytest.raises(MappingError):
            MappingMatrix.from_compressed("S", TARGET, ["x"], [0, -1])

    def test_from_compressed_out_of_range(self):
        with pytest.raises(MappingError):
            MappingMatrix.from_compressed("S", TARGET, ["x"], [5, -1, -1, -1])

    def test_from_dense_rejects_non_binary(self):
        with pytest.raises(MappingError):
            MappingMatrix.from_dense("S", ["a"], ["x"], np.array([[2.0]]))

    def test_from_dense_rejects_double_mapping(self):
        dense = np.array([[1.0, 1.0]])
        with pytest.raises(MappingError):
            MappingMatrix.from_dense("S", ["a"], ["x", "y"], dense)

    def test_from_dense_rejects_bad_shape(self):
        with pytest.raises(MappingError):
            MappingMatrix.from_dense("S", ["a", "b"], ["x"], np.zeros((1, 1)))

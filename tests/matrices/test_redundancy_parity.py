"""Representation parity for the polymorphic redundancy matrices.

Every physical representation of the same logical ``R_k`` — lazy all-ones,
CSR complement, dense mask — must produce identical results for ``apply()``
(dense and CSR contributions), ``column_mask()``, ``row_mask()``,
``redundancy_ratio`` and ``__eq__``. Checked across the four Table I
integration scenarios plus the one-hot generator.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.datagen.synthetic import OneHotSpec, generate_one_hot_pair
from repro.matrices.redundancy_matrix import (
    DenseRedundancy,
    RedundancyMatrix,
    SparseComplementRedundancy,
    TrivialRedundancy,
)


def equivalent_representations(redundancy):
    """Every representation that can encode this factor's mask."""
    dense_mask = redundancy.to_dense()
    complement = sparse.csr_matrix(dense_mask == 0)
    representations = [
        DenseRedundancy(redundancy.source_name, dense_mask),
        SparseComplementRedundancy(redundancy.source_name, complement),
    ]
    if redundancy.is_trivial:
        representations.append(TrivialRedundancy(redundancy.source_name, redundancy.shape))
    return representations


def all_factor_redundancies(dataset):
    return [factor.redundancy for factor in dataset.factors]


@pytest.fixture
def one_hot_dataset():
    return generate_one_hot_pair(OneHotSpec(n_rows=60, n_categories=9, seed=5))


class TestScenarioParity:
    """Parity over the four Table I scenarios (scenario_dataset fixture)."""

    def test_apply_dense_contribution(self, scenario_dataset, rng):
        for redundancy in all_factor_redundancies(scenario_dataset):
            contribution = rng.standard_normal(redundancy.shape)
            expected = contribution * redundancy.to_dense()
            for representation in equivalent_representations(redundancy):
                assert np.allclose(representation.apply(contribution), expected)

    def test_apply_csr_contribution_stays_csr(self, scenario_dataset, rng):
        for redundancy in all_factor_redundancies(scenario_dataset):
            dense = rng.standard_normal(redundancy.shape)
            dense[rng.random(redundancy.shape) < 0.8] = 0.0
            contribution = sparse.csr_matrix(dense)
            expected = dense * redundancy.to_dense()
            for representation in equivalent_representations(redundancy):
                masked = representation.apply(contribution)
                assert sparse.issparse(masked)
                assert np.allclose(masked.toarray(), expected)

    def test_aggregate_masks_and_ratio(self, scenario_dataset):
        for redundancy in all_factor_redundancies(scenario_dataset):
            representations = equivalent_representations(redundancy)
            reference = representations[0]
            for representation in representations[1:]:
                assert np.allclose(representation.column_mask(), reference.column_mask())
                assert np.allclose(representation.row_mask(), reference.row_mask())
                assert representation.redundancy_ratio == pytest.approx(reference.redundancy_ratio)
                assert representation.n_redundant == reference.n_redundant

    def test_equality_across_representations(self, scenario_dataset):
        for redundancy in all_factor_redundancies(scenario_dataset):
            representations = equivalent_representations(redundancy)
            for left in representations:
                for right in representations:
                    assert left == right
                assert left == redundancy

    def test_inequality_when_masks_differ(self, scenario_dataset):
        for redundancy in all_factor_redundancies(scenario_dataset):
            flipped = redundancy.to_dense()
            flipped[0, 0] = 0.0 if flipped[0, 0] == 1.0 else 1.0
            other = RedundancyMatrix("other", flipped)
            for representation in equivalent_representations(redundancy):
                assert representation != other

    def test_select_columns_parity(self, scenario_dataset):
        for redundancy in all_factor_redundancies(scenario_dataset):
            keep = list(range(0, redundancy.shape[1], 2))
            expected = redundancy.to_dense()[:, keep]
            for representation in equivalent_representations(redundancy):
                selected = representation.select_columns(keep)
                assert selected.shape == (redundancy.shape[0], len(keep))
                assert np.array_equal(selected.to_dense(), expected)

    def test_submatrix_parity(self, scenario_dataset):
        for redundancy in all_factor_redundancies(scenario_dataset):
            rows = np.arange(0, redundancy.shape[0], 3)
            cols = list(range(redundancy.shape[1]))[::-1]
            expected = redundancy.to_dense()[np.ix_(rows, cols)]
            for representation in equivalent_representations(redundancy):
                restricted = representation.submatrix(rows, cols)
                assert np.array_equal(restricted.to_dense(), expected)


class TestOneHotParity:
    """The one-hot generator produces trivial masks; all parity bars hold."""

    def test_masks_are_trivial_and_o1(self, one_hot_dataset):
        for factor in one_hot_dataset.factors:
            assert isinstance(factor.redundancy, TrivialRedundancy)
            assert factor.redundancy.nbytes == 0

    def test_apply_parity(self, one_hot_dataset, rng):
        for redundancy in all_factor_redundancies(one_hot_dataset):
            contribution = rng.standard_normal(redundancy.shape)
            for representation in equivalent_representations(redundancy):
                assert np.allclose(representation.apply(contribution), contribution)

    def test_equality_and_masks(self, one_hot_dataset):
        for redundancy in all_factor_redundancies(one_hot_dataset):
            for representation in equivalent_representations(redundancy):
                assert representation == redundancy
                assert representation.redundancy_ratio == 0.0
                assert not representation.column_mask().any()
                assert not representation.row_mask().any()


class TestAutoConstructor:
    """RedundancyMatrix(name, mask) picks the representation by ratio."""

    def test_all_ones_is_trivial(self):
        mask = np.ones((12, 6))
        assert isinstance(RedundancyMatrix("S", mask), TrivialRedundancy)

    def test_light_redundancy_is_sparse_complement(self):
        mask = np.ones((20, 10))
        mask[3, 4] = 0.0
        matrix = RedundancyMatrix("S", mask)
        assert isinstance(matrix, SparseComplementRedundancy)
        assert matrix.n_redundant == 1

    def test_heavy_redundancy_falls_back_to_dense(self):
        mask = np.ones((20, 10))
        mask[:, :5] = 0.0  # ratio 0.5, above the dispatch threshold
        matrix = RedundancyMatrix("S", mask)
        assert isinstance(matrix, DenseRedundancy)

    def test_explicit_threshold_overrides_default(self):
        mask = np.ones((20, 10))
        mask[:, :5] = 0.0
        matrix = RedundancyMatrix.auto("S", mask, threshold=0.9)
        assert isinstance(matrix, SparseComplementRedundancy)

    def test_from_rectangle_matches_dense_construction(self):
        rows = [1, 3, 4]
        cols = [0, 2]
        mask = np.ones((6, 4))
        mask[np.ix_(rows, cols)] = 0.0
        from_rectangle = RedundancyMatrix.from_rectangle("S", (6, 4), rows, cols)
        assert from_rectangle == RedundancyMatrix("S", mask)
        assert from_rectangle.n_redundant == 6

    def test_from_complement_rejects_shape_mismatch(self):
        from repro.exceptions import MappingError

        complement = sparse.csr_matrix(np.zeros((3, 3)))
        with pytest.raises(MappingError):
            RedundancyMatrix.from_complement("S", (4, 4), complement)

    def test_subclass_constructors_accept_full_signatures(self):
        from repro.exceptions import MappingError

        complement = sparse.csr_matrix(np.eye(3))
        matrix = SparseComplementRedundancy("S", complement, shape=(3, 3))
        assert matrix.n_redundant == 3
        with pytest.raises(MappingError):
            SparseComplementRedundancy("S", complement, shape=(4, 4))

    def test_auto_constructor_copies_callers_mask(self):
        mask = np.ones((4, 4))
        mask[:, :2] = 0.0
        matrix = RedundancyMatrix("S", mask)
        mask[0, 2] = 0.0  # later caller mutation must not corrupt the matrix
        assert matrix.n_redundant == 8
        assert matrix.to_dense()[0, 2] == 1.0

    def test_keyword_invocation_dispatches(self):
        matrix = RedundancyMatrix(source_name="S", mask=np.ones((3, 3)))
        assert isinstance(matrix, TrivialRedundancy)

    def test_apply_accepts_array_like(self):
        mask = np.ones((2, 2))
        mask[0, 0] = 0.0
        for representation in equivalent_representations(RedundancyMatrix("S", mask)):
            masked = representation.apply([[1.0, 2.0], [3.0, 4.0]])
            assert masked[0, 0] == 0.0
            assert masked[1, 1] == 4.0

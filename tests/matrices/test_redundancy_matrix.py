"""Tests for repro.matrices.redundancy_matrix (paper §III-C, Figure 4c)."""

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import MappingError
from repro.matrices.redundancy_matrix import (
    DenseRedundancy,
    RedundancyMatrix,
    SparseComplementRedundancy,
    TrivialRedundancy,
)


@pytest.fixture
def r2():
    """R2 of the running example: the Jane row's m and a cells (already in S1)
    are redundant for S2 — zeros at target row 3, columns m (0) and a (1)."""
    mask = np.ones((6, 4))
    mask[3, 0] = 0.0
    mask[3, 1] = 0.0
    return RedundancyMatrix("S2", mask)


class TestStructure:
    def test_counts(self, r2):
        assert r2.shape == (6, 4)
        assert r2.n_redundant == 2
        assert r2.redundancy_ratio == pytest.approx(2 / 24)
        assert not r2.is_trivial

    def test_all_ones_base_matrix(self):
        base = RedundancyMatrix.all_ones("S1", 6, 4)
        assert base.is_trivial
        assert base.n_redundant == 0

    def test_validation(self):
        with pytest.raises(MappingError):
            RedundancyMatrix("S", np.array([1.0, 0.0]))  # 1-D
        with pytest.raises(MappingError):
            RedundancyMatrix("S", np.array([[0.5]]))  # non-binary

    def test_validation_rejects_nan_explicitly(self):
        with pytest.raises(MappingError, match="NaN"):
            RedundancyMatrix("S", np.array([[1.0, np.nan], [0.0, 1.0]]))

    def test_validation_accepts_int_and_bool_masks(self):
        assert RedundancyMatrix("S", np.ones((3, 2), dtype=int)).is_trivial
        mask = np.ones((3, 2), dtype=bool)
        mask[1, 1] = False
        assert RedundancyMatrix("S", mask).n_redundant == 1

    def test_auto_dispatch_picks_representation(self, r2):
        # r2's ratio (2/24) sits below the sparse threshold.
        assert isinstance(r2, SparseComplementRedundancy)
        assert isinstance(RedundancyMatrix.all_ones("S", 4, 4), TrivialRedundancy)
        heavy = np.ones((4, 4))
        heavy[:, :2] = 0.0
        assert isinstance(RedundancyMatrix("S", heavy), DenseRedundancy)

    def test_trivial_is_lazy(self):
        # A mask dwarfing RAM as a dense array costs nothing stored lazily.
        base = RedundancyMatrix.all_ones("S1", 10**7, 10**5)
        assert base.nbytes == 0
        assert base.dense_nbytes == 10**7 * 10**5 * 8
        assert base.redundancy_ratio == 0.0

    def test_memory_footprint_ordering(self, r2):
        dense = DenseRedundancy("S2", r2.to_dense())
        assert r2.nbytes < dense.nbytes
        assert dense.nbytes == dense.dense_nbytes


class TestApplication:
    def test_apply_hadamard(self, r2, rng):
        contribution = rng.standard_normal((6, 4))
        masked = r2.apply(contribution)
        assert masked[3, 0] == 0.0
        assert masked[3, 1] == 0.0
        assert np.allclose(masked[0], contribution[0])

    def test_apply_shape_mismatch(self, r2):
        with pytest.raises(MappingError):
            r2.apply(np.zeros((2, 2)))

    def test_sparse_complement_holds_redundant_cells(self, r2):
        complement = r2.to_sparse_complement()
        assert complement.nnz == 2
        assert complement[3, 0] == 1.0

    def test_row_and_column_masks(self, r2):
        assert r2.row_mask()[3] == pytest.approx(2 / 4)
        assert r2.column_mask()[0] == pytest.approx(1 / 6)
        assert r2.column_mask()[2] == 0.0

    def test_equality(self, r2):
        other = RedundancyMatrix("S2", r2.to_dense())
        assert other == r2
        assert RedundancyMatrix.all_ones("S2", 6, 4) != r2

    def test_apply_preserves_csr_storage(self, r2, rng):
        dense = rng.standard_normal((6, 4))
        dense[dense < 0] = 0.0
        contribution = sparse.csr_matrix(dense)
        for representation in (r2, DenseRedundancy("S2", r2.to_dense())):
            masked = representation.apply(contribution)
            assert sparse.issparse(masked)
            assert masked[3, 0] == 0.0
            assert np.allclose(masked.toarray(), dense * r2.to_dense())

    def test_apply_no_op_for_trivial(self, rng):
        trivial = RedundancyMatrix.all_ones("S1", 6, 4)
        contribution = rng.standard_normal((6, 4))
        assert np.shares_memory(trivial.apply(contribution), contribution)
        csr = sparse.csr_matrix(contribution)
        assert trivial.apply(csr) is csr

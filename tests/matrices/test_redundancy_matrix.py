"""Tests for repro.matrices.redundancy_matrix (paper §III-C, Figure 4c)."""

import numpy as np
import pytest

from repro.exceptions import MappingError
from repro.matrices.redundancy_matrix import RedundancyMatrix


@pytest.fixture
def r2():
    """R2 of the running example: the Jane row's m and a cells (already in S1)
    are redundant for S2 — zeros at target row 3, columns m (0) and a (1)."""
    mask = np.ones((6, 4))
    mask[3, 0] = 0.0
    mask[3, 1] = 0.0
    return RedundancyMatrix("S2", mask)


class TestStructure:
    def test_counts(self, r2):
        assert r2.shape == (6, 4)
        assert r2.n_redundant == 2
        assert r2.redundancy_ratio == pytest.approx(2 / 24)
        assert not r2.is_trivial

    def test_all_ones_base_matrix(self):
        base = RedundancyMatrix.all_ones("S1", 6, 4)
        assert base.is_trivial
        assert base.n_redundant == 0

    def test_validation(self):
        with pytest.raises(MappingError):
            RedundancyMatrix("S", np.array([1.0, 0.0]))  # 1-D
        with pytest.raises(MappingError):
            RedundancyMatrix("S", np.array([[0.5]]))  # non-binary


class TestApplication:
    def test_apply_hadamard(self, r2, rng):
        contribution = rng.standard_normal((6, 4))
        masked = r2.apply(contribution)
        assert masked[3, 0] == 0.0
        assert masked[3, 1] == 0.0
        assert np.allclose(masked[0], contribution[0])

    def test_apply_shape_mismatch(self, r2):
        with pytest.raises(MappingError):
            r2.apply(np.zeros((2, 2)))

    def test_sparse_complement_holds_redundant_cells(self, r2):
        complement = r2.to_sparse_complement()
        assert complement.nnz == 2
        assert complement[3, 0] == 1.0

    def test_row_and_column_masks(self, r2):
        assert r2.row_mask()[3] == pytest.approx(2 / 4)
        assert r2.column_mask()[0] == pytest.approx(1 / 6)
        assert r2.column_mask()[2] == 0.0

    def test_equality(self, r2):
        other = RedundancyMatrix("S2", r2.to_dense())
        assert other == r2
        assert RedundancyMatrix.all_ones("S2", 6, 4) != r2

"""Fuzzed corrupt-CSV ingest: typed TableErrors with row numbers, always.

Hypothesis generates malformed inputs — truncated final rows, wrong column
counts mid-file, invalid UTF-8, wildly mixed-type columns — and asserts
the reader's contract: every malformed input surfaces as a
:class:`~repro.exceptions.TableError` naming the offending row, never a
bare ``ValueError``/``UnicodeDecodeError`` escaping the stdlib, and never
a hang; well-formed-but-messy input parses identically on the streaming
and materialized paths.
"""

import re

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import TableError
from repro.streaming.ingest import ChunkedCsvReader

MAX_EXAMPLES = 25

# Cells that never contain delimiters/quotes/newlines, so generated files
# stay structurally valid everywhere we don't corrupt them on purpose.
plain_cell = st.one_of(
    st.integers(-1000, 1000).map(str),
    st.floats(allow_nan=False, allow_infinity=False, width=32).map(repr),
    st.sampled_from(["", "null", "true", "false", "abc", "x1", "NA"]),
)

csv_shape = st.tuples(
    st.integers(min_value=2, max_value=5),   # columns
    st.integers(min_value=1, max_value=12),  # data rows
    st.integers(min_value=1, max_value=4),   # chunk_rows
)


def _rows(draw, n_columns, n_rows, cell=plain_cell):
    return [
        [draw(cell) for _ in range(n_columns)] for _ in range(n_rows)
    ]


def _write(tmp_path, lines):
    path = tmp_path / "fuzz.csv"
    path.write_text("\n".join(lines) + "\n")
    return path


def _assert_typed_error(path, chunk_rows, pattern):
    """Both consumption modes must fail with the same typed error."""
    for consume in (
        lambda: list(ChunkedCsvReader(path, chunk_rows=chunk_rows).chunks()),
        lambda: ChunkedCsvReader(path, chunk_rows=chunk_rows).read(),
    ):
        try:
            consume()
        except TableError as error:
            assert re.search(pattern, str(error)), str(error)
        except Exception as error:  # pragma: no cover - the contract violation
            pytest.fail(f"expected TableError, got {type(error).__name__}: {error}")
        else:
            pytest.fail("malformed CSV parsed without an error")


class TestTruncatedFinalRow:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(data=st.data(), shape=csv_shape)
    def test_final_row_missing_cells(self, tmp_path_factory, data, shape):
        n_columns, n_rows, chunk_rows = shape
        tmp_path = tmp_path_factory.mktemp("truncated")
        header = [f"c{i}" for i in range(n_columns)]
        rows = _rows(data.draw, n_columns, n_rows)
        keep = data.draw(st.integers(min_value=1, max_value=n_columns - 1))
        # Simulate a torn tail write: the last row loses its trailing cells.
        lines = [",".join(header)] + [",".join(r) for r in rows[:-1]]
        lines.append(",".join(["1"] * keep))
        path = _write(tmp_path, lines)
        # Physical row number: header is row 1, the torn row is the last.
        _assert_typed_error(
            path, chunk_rows,
            rf"row width {keep} does not match header width {n_columns} "
            rf"\(row {n_rows + 1}",
        )


class TestWrongColumnCountMidFile:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(data=st.data(), shape=csv_shape, extra=st.integers(1, 3))
    def test_wide_row_mid_file(self, tmp_path_factory, data, shape, extra):
        n_columns, n_rows, chunk_rows = shape
        tmp_path = tmp_path_factory.mktemp("wide")
        header = [f"c{i}" for i in range(n_columns)]
        rows = _rows(data.draw, n_columns, n_rows)
        position = data.draw(st.integers(min_value=0, max_value=n_rows - 1))
        rows[position] = ["9"] * (n_columns + extra)
        path = _write(tmp_path, [",".join(header)] + [",".join(r) for r in rows])
        _assert_typed_error(
            path, chunk_rows,
            rf"row width {n_columns + extra} does not match header width "
            rf"{n_columns} \(row {position + 2}",
        )


class TestInvalidUtf8:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(
        data=st.data(),
        shape=csv_shape,
        junk=st.binary(min_size=1, max_size=4).filter(
            lambda b: any(byte >= 0x80 for byte in b)
        ),
    )
    def test_undecodable_bytes_surface_as_table_error(
        self, tmp_path_factory, data, shape, junk
    ):
        n_columns, n_rows, chunk_rows = shape
        tmp_path = tmp_path_factory.mktemp("utf8")
        header = ",".join(f"c{i}" for i in range(n_columns))
        rows = [",".join(r) for r in _rows(data.draw, n_columns, n_rows)]
        position = data.draw(st.integers(min_value=0, max_value=n_rows - 1))
        raw = ("\n".join([header] + rows) + "\n").encode()
        lines = raw.split(b"\n")
        lines[position + 1] = b"\xff\xfe" + junk + lines[position + 1]
        path = tmp_path / "fuzz.csv"
        path.write_bytes(b"\n".join(lines))
        # Buffered text decoding may attribute the failure to an earlier
        # row than the corrupted one (the decoder reads ahead), so the
        # contract is: a TableError naming UTF-8 and *a* row, never a bare
        # UnicodeDecodeError.
        _assert_typed_error(path, chunk_rows, r"is not valid UTF-8 .*row \d+")


class TestMixedTypeColumns:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(data=st.data(), shape=csv_shape)
    def test_mixed_type_columns_parse_without_errors(
        self, tmp_path_factory, data, shape
    ):
        n_columns, n_rows, chunk_rows = shape
        tmp_path = tmp_path_factory.mktemp("mixed")
        header = [f"c{i}" for i in range(n_columns)]
        rows = _rows(data.draw, n_columns, n_rows)
        path = _write(tmp_path, [",".join(header)] + [",".join(r) for r in rows])
        table = ChunkedCsvReader(path, chunk_rows=chunk_rows).read()
        assert table.n_rows == n_rows
        # The streaming path yields the same rows and inferred schema.
        reader = ChunkedCsvReader(path, chunk_rows=chunk_rows)
        streamed = sum(chunk.n_rows for chunk in reader.chunks())
        assert streamed == n_rows
        assert [c.dtype for c in reader.schema] == [c.dtype for c in table.schema]
        for column in table.schema:
            values = table.column_values(column.name)
            assert len(values) == n_rows
            if values.dtype.kind == "f":
                assert not np.isinf(values).any()

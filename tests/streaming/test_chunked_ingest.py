"""Chunked CSV ingest parity: ChunkedCsvReader vs the materialized read_csv."""

import csv

import numpy as np
import pytest

from repro.exceptions import TableError
from repro.relational.io import read_csv, write_csv
from repro.relational.table import Table
from repro.relational.types import NULL, DataType, is_null, parse_cell
from repro.streaming.ingest import ChunkedCsvReader, parse_cell_block

CHUNK_SIZES = (1, 7, 10_000)

MESSY_CELLS = [
    "", "null", "NA", "nan", "-nan", "inf", "-inf", "true", "FALSE", "0", "-0",
    "+5", "007", "--5", "9223372036854775807", "9223372036854775808",
    "9999999999999999999999999", "1e3", "1E-4", ".5", "5.", "abc", "a b",
    " spaced ", "0x10", "None", "TRUE", "12.0", "12.5", "\\null", "\\x",
    "café", "5 5",
]


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestParseCellBlock:
    def test_matches_scalar_parser_cell_for_cell(self):
        block = parse_cell_block(MESSY_CELLS)
        reference = [parse_cell(c) for c in MESSY_CELLS]
        flags = block.flags
        assert flags.seen_str and flags.seen_float and flags.seen_int and flags.seen_bool
        # Reconstruct every bucket back into python values and compare.
        values = [None] * len(MESSY_CELLS)
        for pos in np.nonzero(block.null_mask)[0]:
            values[pos] = NULL
        for pos, val in zip(block.bool_pos.tolist(), block.bool_vals.tolist()):
            values[pos] = bool(val)
        for pos, val in zip(block.int_pos.tolist(), block.int_vals.tolist()):
            values[pos] = int(val)
        for pos, val in zip(block.float_pos.tolist(), block.float_vals.tolist()):
            values[pos] = float(val)
        for pos, val in zip(block.str_pos.tolist(), block.str_vals):
            values[pos] = val
        for pos, val in block.extra:
            values[pos] = val
        for got, want in zip(values, reference):
            if is_null(want):
                assert got is NULL
            else:
                assert got == want and type(got) is type(want)

    def test_empty_block(self):
        block = parse_cell_block([])
        assert block.n == 0
        assert not block.flags.any_value


class TestChunkedReaderParity:
    @pytest.fixture
    def messy_csv(self, tmp_path):
        header = ["k", "num", "mix", "text", "flag"]
        rows = []
        for i, cell in enumerate(MESSY_CELLS):
            rows.append(
                [str(i), f"{i}.25", cell, f"name {i % 5}", "true" if i % 2 else "false"]
            )
        path = tmp_path / "messy.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(header)
            writer.writerows(rows)
        return path

    @pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
    def test_stream_equals_read_csv(self, messy_csv, chunk_rows):
        full = read_csv(messy_csv, key_columns=["k"], label_column="flag")
        reader = ChunkedCsvReader(
            messy_csv, key_columns=["k"], label_column="flag", chunk_rows=chunk_rows
        )
        assert reader.schema == full.schema
        assert reader.n_rows == full.n_rows
        streamed = reader.read_table()
        assert streamed.equals(full)
        # NULL positions agree column by column.
        for name in full.schema.names:
            assert np.array_equal(
                streamed.column_valid(name), full.column_valid(name)
            )

    @pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
    def test_chunk_offsets_and_sizes(self, messy_csv, chunk_rows):
        reader = ChunkedCsvReader(messy_csv, chunk_rows=chunk_rows)
        offset = 0
        for chunk in reader.chunks():
            assert chunk.offset == offset
            assert chunk.n_rows <= chunk_rows
            offset += chunk.n_rows
        assert offset == reader.n_rows

    def test_types_and_roles(self, tmp_path):
        path = _write(tmp_path, "t.csv", "id,x,name,b\n1,1.5,ann,true\n2,,na,false\n")
        table = read_csv(path, key_columns=["id"], label_column="b")
        assert table.schema["id"].dtype is DataType.INT
        assert table.schema["x"].dtype is DataType.FLOAT
        assert table.schema["name"].dtype is DataType.STRING
        assert table.schema["b"].dtype is DataType.BOOL
        assert table.schema["id"].is_key and table.schema["b"].is_label
        assert table.cell(1, "x") is NULL
        assert table.cell(1, "name") is NULL

    def test_header_only_file(self, tmp_path):
        path = _write(tmp_path, "empty_rows.csv", "a,b\n")
        table = read_csv(path)
        assert table.n_rows == 0
        assert table.schema["a"].dtype is DataType.FLOAT  # all-NULL default
        reader = ChunkedCsvReader(path)
        assert reader.n_rows == 0
        assert list(reader.chunks()) == []


class TestSeedErrorParity:
    def test_empty_file_raises(self, tmp_path):
        path = _write(tmp_path, "empty.csv", "")
        with pytest.raises(TableError, match="is empty"):
            read_csv(path)
        with pytest.raises(TableError, match="is empty"):
            ChunkedCsvReader(path).scan()

    @pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
    def test_width_mismatch_raises(self, tmp_path, chunk_rows):
        path = _write(tmp_path, "bad.csv", "a,b\n1,2\n1,2,3\n")
        with pytest.raises(
            TableError, match="row width 3 does not match header width 2"
        ):
            ChunkedCsvReader(path, chunk_rows=chunk_rows).read()

    def test_read_csv_width_mismatch(self, tmp_path):
        path = _write(tmp_path, "bad.csv", "a,b\n1,2,3\n")
        with pytest.raises(TableError):
            read_csv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = _write(tmp_path, "blank.csv", "a,b\n1,2\n\n3,4\n")
        assert read_csv(path).n_rows == 2


class TestWriteReadRoundTrip:
    def test_null_literal_strings_survive(self, tmp_path):
        table = Table.from_dict(
            "rt",
            {
                "s": ["null", "", "NA", "NaN", "none", "\\null", "\\x", "plain"],
                "x": [1.0, 2.0, NULL, 4.0, 5.0, 6.0, 7.0, 8.0],
            },
        )
        path = tmp_path / "rt.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.schema["s"].dtype is DataType.STRING
        assert loaded.column("s") == ["null", "", "NA", "NaN", "none", "\\null", "\\x", "plain"]
        assert loaded.cell(2, "x") is NULL  # real NULLs still round-trip as NULL
        assert table.equals(loaded)

    @pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
    def test_round_trip_through_chunked_reader(self, tmp_path, chunk_rows):
        table = Table.from_dict(
            "rt", {"s": ["na", "ok", "null"], "y": [0.5, NULL, 2.5]}
        )
        path = tmp_path / "rt2.csv"
        write_csv(table, path)
        loaded = ChunkedCsvReader(path, chunk_rows=chunk_rows).read_table()
        assert table.equals(loaded)

    def test_numeric_columns_unaffected(self, tmp_path):
        table = Table.from_dict("n", {"x": [1, 2, 3]})
        path = tmp_path / "n.csv"
        write_csv(table, path)
        assert path.read_text().splitlines()[1] == "1"

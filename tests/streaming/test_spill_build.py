"""Spillable streaming build parity: integrate_streams vs integrate_tables."""

import numpy as np
import pytest

from repro.datagen.scenarios import (
    ScenarioSpec,
    generate_scenario_streams,
    generate_scenario_tables,
)
from repro.matrices.builder import integrate_tables
from repro.metadata.mappings import ScenarioType
from repro.metadata.schema_matching import ColumnMatch
from repro.relational.table import Table
from repro.streaming import InMemoryTableStream, SpillStore, integrate_streams

CHUNK_SIZES = (1, 7, 10_000)


def _assert_datasets_identical(mem, streamed):
    assert streamed.n_target_rows == mem.n_target_rows
    assert streamed.target_columns == mem.target_columns
    for factor_mem, factor_stream in zip(mem.factors, streamed.factors):
        assert factor_stream.source_columns == factor_mem.source_columns
        # CI_k row maps identical.
        assert np.array_equal(
            factor_stream.indicator.compressed, factor_mem.indicator.compressed
        )
        # CM_k column maps identical.
        assert np.array_equal(
            factor_stream.mapping.compressed, factor_mem.mapping.compressed
        )
        # Factor cells identical (spilled memmap vs resident array).
        assert np.array_equal(np.asarray(factor_stream.data), factor_mem.data)
        # Redundancy masks semantically identical (cell-for-cell).
        assert factor_stream.redundancy == factor_mem.redundancy
    assert np.array_equal(streamed.materialize(), mem.materialize())


class TestScenarioParity:
    @pytest.mark.parametrize("scenario", list(ScenarioType))
    @pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
    def test_spilled_build_matches_in_memory(self, scenario, chunk_rows):
        spec = ScenarioSpec(
            scenario, base_rows=80, other_rows=60, base_features=4,
            other_features=5, overlap_rows=25, overlap_columns=2, seed=9,
        )
        base, other, matches, row_matches, targets = generate_scenario_tables(spec)
        mem = integrate_tables(
            base, other, matches, row_matches, targets, scenario, label_column="label"
        )
        with SpillStore() as store:
            streamed = integrate_streams(
                InMemoryTableStream(base, chunk_rows),
                InMemoryTableStream(other, chunk_rows),
                matches, row_matches, targets, scenario,
                label_column="label", store=store,
            )
            _assert_datasets_identical(mem, streamed)

    def test_resident_build_without_store(self):
        spec = ScenarioSpec(ScenarioType.INNER_JOIN, base_rows=50, other_rows=40,
                            overlap_rows=20, overlap_columns=1, seed=2)
        base, other, matches, row_matches, targets = generate_scenario_tables(spec)
        mem = integrate_tables(
            base, other, matches, row_matches, targets, spec.scenario,
            label_column="label",
        )
        streamed = integrate_streams(
            base, other, matches, row_matches, targets, spec.scenario,
            label_column="label", chunk_rows=13,
        )
        _assert_datasets_identical(mem, streamed)


class TestChunkBoundaries:
    """Chunk boundaries that split duplicate-key runs must not change the build."""

    @pytest.mark.parametrize("chunk_rows", (1, 2, 3, 7))
    def test_duplicate_key_runs_split_across_chunks(self, chunk_rows):
        # Keys repeat in runs longer than the chunk size, with NULL-bearing
        # overlap columns so the redundancy complement is irregular.
        base = Table.from_dict(
            "B",
            {
                "id": [0, 0, 0, 1, 1, 2, 2, 2, 2, 3],
                "v": [1.0, None, 3.0, 4.0, None, 6.0, 7.0, None, 9.0, 10.0],
                "w": [0.5] * 10,
            },
            id={"is_key": True},
        )
        other = Table.from_dict(
            "O",
            {
                "id": [0, 0, 1, 2, 2, 2, 4],
                "v": [None, 2.0, 30.0, 60.0, None, 80.0, 99.0],
                "z": [9.0, 8.0, 7.0, 6.0, 5.0, None, 3.0],
            },
            id={"is_key": True},
        )
        matches = [
            ColumnMatch("B", "id", "O", "id", 1.0),
            ColumnMatch("B", "v", "O", "v", 1.0),
        ]
        # Many-to-one row matches onto duplicate-key runs.
        row_matches = (
            np.array([0, 1, 2, 3, 5, 6, 7], dtype=np.int64),
            np.array([0, 1, 1, 2, 3, 4, 5], dtype=np.int64),
        )
        targets = ["v", "w", "z"]
        for scenario in (ScenarioType.INNER_JOIN, ScenarioType.LEFT_JOIN,
                         ScenarioType.FULL_OUTER_JOIN):
            mem = integrate_tables(
                base, other, matches, row_matches, targets, scenario
            )
            with SpillStore() as store:
                streamed = integrate_streams(
                    InMemoryTableStream(base, chunk_rows),
                    InMemoryTableStream(other, chunk_rows),
                    matches, row_matches, targets, scenario, store=store,
                )
                _assert_datasets_identical(mem, streamed)


class TestHashedStreamSources:
    @pytest.mark.parametrize("scenario", list(ScenarioType))
    def test_generated_streams_build_like_their_materialization(self, scenario):
        spec = ScenarioSpec(scenario, base_rows=120, other_rows=90, base_features=3,
                            other_features=4, overlap_rows=40, overlap_columns=1, seed=4)
        base, other, matches, row_matches, targets = generate_scenario_streams(
            spec, chunk_rows=29
        )
        mem = integrate_tables(
            base.read_table(), other.read_table(), matches, row_matches,
            targets, scenario, label_column="label",
        )
        with SpillStore() as store:
            streamed = integrate_streams(
                base, other, matches, row_matches, targets, scenario,
                label_column="label", store=store,
            )
            _assert_datasets_identical(mem, streamed)

    def test_chunk_size_invariance(self):
        spec = ScenarioSpec(ScenarioType.LEFT_JOIN, base_rows=70, other_rows=50,
                            overlap_rows=30, overlap_columns=2, seed=8)
        small, *_ = generate_scenario_streams(spec, chunk_rows=3)
        large, *_ = generate_scenario_streams(spec, chunk_rows=10_000)
        assert small.read_table().equals(large.read_table())


class TestSpillStore:
    def test_allocate_release_cleanup(self, tmp_path):
        store = SpillStore(tmp_path / "spill")
        matrix = store.allocate("d", 10, 3)
        matrix[:] = 1.5
        store.release()  # flush + drop pages; data must survive
        assert np.all(np.asarray(matrix) == 1.5)
        assert store.spilled_bytes == 10 * 3 * 8
        assert (tmp_path / "spill" / "d.f64").exists()
        store.cleanup()

    def test_duplicate_name_rejected(self):
        with SpillStore() as store:
            store.allocate("d", 2, 2)
            with pytest.raises(ValueError):
                store.allocate("d", 2, 2)

    def test_owned_directory_removed_on_cleanup(self):
        store = SpillStore()
        directory = store.directory
        store.allocate("d", 4, 4)
        store.cleanup()
        assert not directory.exists()

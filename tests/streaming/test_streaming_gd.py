"""StreamingGD parity: row-block training vs full-batch GD (≤ 1e-8)."""

import numpy as np
import pytest

from repro.datagen.scenarios import ScenarioSpec, generate_scenario_tables
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.learning import LinearRegression, LogisticRegression, StreamingGD
from repro.matrices.builder import integrate_tables
from repro.metadata.mappings import ScenarioType
from repro.streaming import InMemoryTableStream, SpillStore, integrate_streams

BLOCK_SIZES = (1, 7, 10_000)
TOLERANCE = 1e-8


def _build(scenario, spilled, store):
    spec = ScenarioSpec(
        scenario, base_rows=180, other_rows=140, base_features=5,
        other_features=6, overlap_rows=60, overlap_columns=2, seed=21,
    )
    base, other, matches, row_matches, targets = generate_scenario_tables(spec)
    if spilled:
        return integrate_streams(
            InMemoryTableStream(base, 31), InMemoryTableStream(other, 31),
            matches, row_matches, targets, scenario,
            label_column="label", store=store,
        )
    return integrate_tables(
        base, other, matches, row_matches, targets, scenario, label_column="label"
    )


class TestBlockedViewParity:
    @pytest.mark.parametrize("scenario", list(ScenarioType))
    def test_blocked_lmm_and_transpose_match_full_operators(self, scenario):
        with SpillStore() as store:
            matrix = AmalurMatrix(_build(scenario, spilled=True, store=store))
            rng = np.random.default_rng(3)
            x = rng.standard_normal((matrix.n_columns, 2))
            full_lmm = matrix.lmm(x)
            full_tlmm_operand = rng.standard_normal((matrix.n_rows, 2))
            full_tlmm = matrix.transpose_lmm(full_tlmm_operand)
            view = matrix.blocked()
            for block_rows in (1, 13, 10_000):
                pieces = [
                    view.lmm_block(x, start, stop)
                    for start, stop in view.row_blocks(block_rows)
                ]
                assert np.allclose(np.vstack(pieces), full_lmm, atol=1e-12)
                accumulated = np.zeros((matrix.n_columns, 2))
                for start, stop in view.row_blocks(block_rows):
                    view.transpose_lmm_add(
                        full_tlmm_operand[start:stop], start, stop, accumulated
                    )
                assert np.allclose(accumulated, full_tlmm, atol=1e-9)

    def test_column_subset_view_matches_select_columns(self):
        with SpillStore() as store:
            matrix = AmalurMatrix(_build(ScenarioType.INNER_JOIN, True, store))
            features = [
                c for c in matrix.dataset.target_columns
                if c != matrix.dataset.label_column
            ]
            sliced = matrix.select_columns(features)
            view = matrix.blocked(columns=features)
            assert view.shape == sliced.shape
            x = np.random.default_rng(0).standard_normal((view.n_columns, 1))
            pieces = [
                view.lmm_block(x, start, stop)
                for start, stop in view.row_blocks(37)
            ]
            assert np.allclose(np.vstack(pieces), sliced.lmm(x), atol=1e-12)

    def test_unknown_column_rejected(self):
        matrix = AmalurMatrix(_build(ScenarioType.UNION, spilled=False, store=None))
        from repro.exceptions import FactorizationError

        with pytest.raises(FactorizationError):
            matrix.blocked(columns=["nope"])


class TestStreamingGDLinear:
    @pytest.mark.parametrize("scenario", list(ScenarioType))
    @pytest.mark.parametrize("block_rows", BLOCK_SIZES)
    def test_weights_match_full_batch(self, scenario, block_rows):
        reference_matrix = AmalurMatrix(_build(scenario, spilled=False, store=None))
        features = reference_matrix.feature_matrix_view()
        labels = reference_matrix.labels()
        reference = LinearRegression(solver="gd", n_iterations=40).fit(features, labels)
        with SpillStore() as store:
            matrix = AmalurMatrix(_build(scenario, spilled=True, store=store))
            model = StreamingGD(
                task="linear", block_rows=block_rows, n_iterations=40,
                release_pages=store.release,
            ).fit(matrix)
            assert np.max(np.abs(model.coef_ - reference.coef_)) < TOLERANCE
            assert abs(model.intercept_ - reference.intercept_) < TOLERANCE
            assert len(model.loss_history_) == len(reference.loss_history_)
            assert np.allclose(model.loss_history_, reference.loss_history_, atol=1e-8)

    def test_l2_and_tolerance_match(self):
        matrix = AmalurMatrix(_build(ScenarioType.INNER_JOIN, False, None))
        features = matrix.feature_matrix_view()
        labels = matrix.labels()
        reference = LinearRegression(
            solver="gd", n_iterations=60, l2_penalty=0.05, tolerance=1e-5
        ).fit(features, labels)
        model = StreamingGD(
            task="linear", block_rows=17, n_iterations=60,
            l2_penalty=0.05, tolerance=1e-5,
        ).fit(matrix)
        assert len(model.loss_history_) == len(reference.loss_history_)
        assert np.max(np.abs(model.coef_ - reference.coef_)) < TOLERANCE

    def test_explicit_labels_use_all_columns(self):
        matrix = AmalurMatrix(_build(ScenarioType.LEFT_JOIN, False, None))
        labels = np.random.default_rng(1).standard_normal(matrix.n_rows)
        reference = LinearRegression(solver="gd", n_iterations=25).fit(matrix, labels)
        model = StreamingGD(task="linear", block_rows=23, n_iterations=25).fit(
            matrix, labels
        )
        assert np.max(np.abs(model.coef_ - reference.coef_)) < TOLERANCE

    def test_prediction_matches_full_batch(self):
        matrix = AmalurMatrix(_build(ScenarioType.INNER_JOIN, False, None))
        features = matrix.feature_matrix_view()
        labels = matrix.labels()
        reference = LinearRegression(solver="gd", n_iterations=30).fit(features, labels)
        model = StreamingGD(task="linear", block_rows=41, n_iterations=30).fit(matrix)
        assert np.allclose(
            model.predict(matrix), reference.predict(features), atol=1e-8
        )


class TestStreamingGDLogistic:
    @pytest.mark.parametrize("block_rows", BLOCK_SIZES)
    def test_weights_match_full_batch(self, block_rows):
        reference_matrix = AmalurMatrix(
            _build(ScenarioType.INNER_JOIN, spilled=False, store=None)
        )
        features = reference_matrix.feature_matrix_view()
        labels = reference_matrix.labels()
        reference = LogisticRegression(n_iterations=40).fit(features, labels)
        with SpillStore() as store:
            matrix = AmalurMatrix(
                _build(ScenarioType.INNER_JOIN, spilled=True, store=store)
            )
            model = StreamingGD(
                task="logistic", block_rows=block_rows, n_iterations=40,
                release_pages=store.release,
            ).fit(matrix)
            assert np.max(np.abs(model.coef_ - reference.coef_)) < TOLERANCE
            assert abs(model.intercept_ - reference.intercept_) < TOLERANCE
            assert np.allclose(model.loss_history_, reference.loss_history_, atol=1e-8)

    def test_rejects_non_binary_labels(self):
        matrix = AmalurMatrix(_build(ScenarioType.UNION, False, None))
        with pytest.raises(ValueError, match="binary"):
            StreamingGD(task="logistic").fit(matrix, np.full(matrix.n_rows, 2.0))


class TestStreamingGDValidation:
    def test_unknown_task(self):
        matrix = AmalurMatrix(_build(ScenarioType.UNION, False, None))
        with pytest.raises(ValueError, match="unknown task"):
            StreamingGD(task="svm").fit(matrix)

    def test_label_column_required_without_labels(self):
        spec = ScenarioSpec(ScenarioType.INNER_JOIN, base_rows=30, other_rows=20,
                            overlap_rows=10, seed=0)
        base, other, matches, row_matches, targets = generate_scenario_tables(spec)
        dataset = integrate_tables(base, other, matches, row_matches, targets,
                                   spec.scenario)
        from repro.exceptions import FactorizationError

        with pytest.raises(FactorizationError):
            StreamingGD().fit(AmalurMatrix(dataset))

    def test_label_mismatch_rejected(self):
        matrix = AmalurMatrix(_build(ScenarioType.UNION, False, None))
        with pytest.raises(ValueError, match="rows"):
            StreamingGD().fit(matrix, np.zeros(3))

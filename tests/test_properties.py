"""Property-based tests (hypothesis) for the core invariants of DESIGN.md §5."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datagen.scenarios import ScenarioSpec, generate_scenario_dataset
from repro.datagen.synthetic import SyntheticSiloSpec, generate_integrated_pair
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.matrices.indicator_matrix import IndicatorMatrix
from repro.matrices.mapping_matrix import MappingMatrix
from repro.metadata.mappings import ScenarioType
from repro.metadata.similarity import (
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    ngram_jaccard_similarity,
)

# Bounded sizes keep each hypothesis example fast while still exploring the
# structural space (scenario type, overlaps, redundancy axes, seeds).
synthetic_specs = st.builds(
    SyntheticSiloSpec,
    base_rows=st.integers(min_value=2, max_value=40),
    base_columns=st.integers(min_value=1, max_value=5),
    other_rows=st.integers(min_value=1, max_value=30),
    other_columns=st.integers(min_value=1, max_value=6),
    redundancy_in_target=st.booleans(),
    redundancy_in_sources=st.booleans(),
    overlap_column_fraction=st.floats(min_value=0.1, max_value=1.0),
    null_ratio=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=1000),
)

scenario_specs = st.builds(
    ScenarioSpec,
    scenario=st.sampled_from(list(ScenarioType)),
    base_rows=st.integers(min_value=2, max_value=20),
    other_rows=st.integers(min_value=2, max_value=15),
    base_features=st.integers(min_value=1, max_value=4),
    other_features=st.integers(min_value=1, max_value=4),
    overlap_rows=st.integers(min_value=0, max_value=20),
    overlap_columns=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=500),
)


class TestFactorizedOperatorEquivalence:
    """Invariant 2: every factorized operator equals its materialized version."""

    @settings(max_examples=40, deadline=None)
    @given(spec=synthetic_specs, operand_seed=st.integers(min_value=0, max_value=100))
    def test_lmm_and_transpose_lmm(self, spec, operand_seed):
        dataset = generate_integrated_pair(spec)
        matrix = AmalurMatrix(dataset)
        target = dataset.materialize()
        rng = np.random.default_rng(operand_seed)
        x = rng.standard_normal((target.shape[1], 2))
        y = rng.standard_normal((target.shape[0], 2))
        assert np.allclose(matrix.lmm(x), target @ x)
        assert np.allclose(matrix.transpose_lmm(y), target.T @ y)

    @settings(max_examples=25, deadline=None)
    @given(spec=synthetic_specs)
    def test_crossprod_rmm_and_aggregates(self, spec):
        dataset = generate_integrated_pair(spec)
        matrix = AmalurMatrix(dataset)
        target = dataset.materialize()
        rng = np.random.default_rng(spec.seed)
        z = rng.standard_normal((2, target.shape[0]))
        assert np.allclose(matrix.crossprod(), target.T @ target)
        assert np.allclose(matrix.rmm(z), z @ target)
        assert np.allclose(matrix.row_sums(), target.sum(axis=1))
        assert np.allclose(matrix.column_sums(), target.sum(axis=0))


class TestScenarioReconstruction:
    """Invariant 1: reconstruction equals integration for all Table I scenarios."""

    @settings(max_examples=30, deadline=None)
    @given(spec=scenario_specs)
    def test_materialization_is_consistent(self, spec):
        dataset = generate_scenario_dataset(spec)
        target = dataset.materialize()
        assert target.shape == dataset.shape
        # The label column comes only from the base table in non-union
        # scenarios, so every non-appended row's label equals the base value.
        base = dataset.factors[0]
        base_rows = base.indicator.compressed
        label_index = dataset.target_columns.index("label")
        for target_row, source_row in enumerate(base_rows):
            if source_row >= 0:
                label_source_col = base.mapping.compressed[label_index]
                if label_source_col >= 0:
                    assert target[target_row, label_index] == base.data[source_row, label_source_col]

    @settings(max_examples=30, deadline=None)
    @given(spec=scenario_specs)
    def test_each_target_cell_contributed_at_most_once(self, spec):
        """Invariant 5: redundancy masks prevent double counting."""
        dataset = generate_scenario_dataset(spec)
        if dataset.n_target_rows == 0:
            # An inner join with no overlapping entities has an empty target.
            return
        contributions = np.zeros(dataset.shape)
        for factor in dataset.factors:
            row_mask = (factor.indicator.compressed >= 0).astype(float)
            col_mask = (factor.mapping.compressed >= 0).astype(float)
            coverage = np.outer(row_mask, col_mask) * factor.redundancy.to_dense()
            contributions += coverage
        assert contributions.max() <= 1.0 + 1e-12


class TestCompressedRoundTrips:
    """Invariant 4: compressed vectors round-trip to full matrices."""

    @settings(max_examples=50, deadline=None)
    @given(
        n_target=st.integers(min_value=1, max_value=12),
        n_source=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_mapping_matrix_round_trip(self, n_target, n_source, seed):
        rng = np.random.default_rng(seed)
        target_columns = [f"t{i}" for i in range(n_target)]
        source_columns = [f"s{j}" for j in range(n_source)]
        # Random injective partial mapping source→target.
        n_mapped = int(rng.integers(0, min(n_target, n_source) + 1))
        targets = rng.choice(n_target, size=n_mapped, replace=False)
        sources = rng.choice(n_source, size=n_mapped, replace=False)
        correspondences = {
            source_columns[s]: target_columns[t] for s, t in zip(sources, targets)
        }
        mapping = MappingMatrix("S", target_columns, source_columns, correspondences)
        assert MappingMatrix.from_compressed(
            "S", target_columns, source_columns, mapping.compressed
        ) == mapping
        assert MappingMatrix.from_dense(
            "S", target_columns, source_columns, mapping.to_dense()
        ) == mapping
        assert mapping.n_mapped == n_mapped

    @settings(max_examples=50, deadline=None)
    @given(
        n_target=st.integers(min_value=1, max_value=15),
        n_source=st.integers(min_value=1, max_value=15),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_indicator_matrix_round_trip(self, n_target, n_source, seed):
        rng = np.random.default_rng(seed)
        compressed = rng.integers(-1, n_source, size=n_target)
        indicator = IndicatorMatrix("S", n_target, n_source, compressed)
        assert IndicatorMatrix.from_dense("S", indicator.to_dense()) == indicator
        data = rng.standard_normal((n_source, 3))
        assert np.allclose(indicator.apply(data), indicator.to_dense() @ data)


class TestSimilarityProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=12), st.text(max_size=12))
    def test_levenshtein_symmetry_and_bounds(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)
        similarity = levenshtein_similarity(a, b)
        assert 0.0 <= similarity <= 1.0
        assert levenshtein_similarity(a, a) == 1.0

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=12), st.text(max_size=12))
    def test_jaro_winkler_and_ngram_bounds(self, a, b):
        assert 0.0 <= jaro_winkler_similarity(a, b) <= 1.0 + 1e-9
        assert 0.0 <= ngram_jaccard_similarity(a, b) <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(st.text(min_size=1, max_size=10))
    def test_identity(self, a):
        assert jaro_winkler_similarity(a, a) == pytest.approx(1.0)
        assert ngram_jaccard_similarity(a, a) == 1.0

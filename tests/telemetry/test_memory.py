"""Tests for the memory probes (peak RSS, /proc sampler)."""

import time

from repro.telemetry.memory import RssSampler, current_rss_bytes, peak_rss_bytes


class TestProbes:
    def test_peak_rss_positive(self):
        assert peak_rss_bytes() > 1024 * 1024  # any python process exceeds 1 MiB

    def test_current_rss_positive_and_at_most_peak(self):
        current = current_rss_bytes()
        assert current > 0
        # ru_maxrss is a high-water mark; current residency can't exceed it
        # by more than one sampling jitter page.
        assert current <= peak_rss_bytes() * 1.05

    def test_peak_rss_is_monotonic(self):
        before = peak_rss_bytes()
        ballast = bytearray(8 * 1024 * 1024)
        ballast[::4096] = b"x" * len(ballast[::4096])  # touch the pages
        after = peak_rss_bytes()
        assert after >= before
        del ballast


class TestRssSampler:
    def test_sampler_collects_and_stops(self):
        sampler = RssSampler(interval=0.005)
        sampler.start()
        time.sleep(0.05)
        sampler.stop()
        snapshot = sampler.snapshot()
        assert snapshot["n_samples"] >= 2  # initial sample + at least one tick
        assert snapshot["sampled_peak_rss_bytes"] > 0
        assert snapshot["peak_rss_bytes"] >= snapshot["sampled_peak_rss_bytes"] * 0.5
        n_after_stop = snapshot["n_samples"]
        time.sleep(0.02)
        assert sampler.snapshot()["n_samples"] == n_after_stop

    def test_stop_is_idempotent(self):
        sampler = RssSampler(interval=0.01)
        sampler.start()
        sampler.stop()
        sampler.stop()

"""Tests for the memory probes (peak RSS, /proc sampler)."""

import time

import numpy as np

from repro.telemetry.memory import (
    RssSampler,
    current_rss_bytes,
    peak_rss_bytes,
    rss_breakdown,
)


class TestProbes:
    def test_peak_rss_positive(self):
        assert peak_rss_bytes() > 1024 * 1024  # any python process exceeds 1 MiB

    def test_current_rss_positive_and_at_most_peak(self):
        current = current_rss_bytes()
        assert current > 0
        # ru_maxrss is a high-water mark; current residency can't exceed it
        # by more than one sampling jitter page.
        assert current <= peak_rss_bytes() * 1.05

    def test_peak_rss_is_monotonic(self):
        before = peak_rss_bytes()
        ballast = bytearray(8 * 1024 * 1024)
        ballast[::4096] = b"x" * len(ballast[::4096])  # touch the pages
        after = peak_rss_bytes()
        assert after >= before
        del ballast


class TestRssSampler:
    def test_sampler_collects_and_stops(self):
        sampler = RssSampler(interval=0.005)
        sampler.start()
        time.sleep(0.05)
        sampler.stop()
        snapshot = sampler.snapshot()
        assert snapshot["n_samples"] >= 2  # initial sample + at least one tick
        assert snapshot["sampled_peak_rss_bytes"] > 0
        assert snapshot["peak_rss_bytes"] >= snapshot["sampled_peak_rss_bytes"] * 0.5
        n_after_stop = snapshot["n_samples"]
        time.sleep(0.02)
        assert sampler.snapshot()["n_samples"] == n_after_stop

    def test_stop_is_idempotent(self):
        sampler = RssSampler(interval=0.01)
        sampler.start()
        sampler.stop()
        sampler.stop()


class TestRssBreakdown:
    def test_breakdown_fields_consistent(self):
        breakdown = rss_breakdown()
        if not breakdown["available"]:  # pragma: no cover - non-Linux
            assert breakdown["rss_bytes"] == 0
            return
        assert breakdown["rss_bytes"] > 0
        assert breakdown["anonymous_bytes"] > 0  # the interpreter heap
        assert breakdown["file_backed_bytes"] >= 0
        assert (
            breakdown["anonymous_bytes"] + breakdown["file_backed_bytes"]
            >= breakdown["rss_bytes"] * 0.95
        )

    def test_memmap_growth_lands_in_file_backed(self, tmp_path):
        before = rss_breakdown()
        if not before["available"]:  # pragma: no cover - non-Linux
            return
        size = 16 * 1024 * 1024
        mapped = np.memmap(tmp_path / "spill.bin", dtype=np.uint8, mode="w+", shape=size)
        mapped[::4096] = 1  # touch every page
        after = rss_breakdown()
        grown = after["file_backed_bytes"] - before["file_backed_bytes"]
        assert grown >= size * 0.5, f"memmap pages not attributed: {before} -> {after}"
        del mapped

    def test_sampler_snapshot_has_breakdown_peaks(self):
        sampler = RssSampler(interval=0.005)
        sampler.start()
        time.sleep(0.05)
        sampler.stop()
        snapshot = sampler.snapshot()
        assert "sampled_peak_anonymous_bytes" in snapshot
        assert "sampled_peak_file_backed_bytes" in snapshot
        if rss_breakdown()["available"]:
            assert snapshot["sampled_peak_anonymous_bytes"] > 0
            assert (
                snapshot["sampled_peak_anonymous_bytes"]
                <= snapshot["sampled_peak_rss_bytes"]
            )

"""Tests for repro.telemetry.tracer: span nesting, threads, Chrome export."""

import json
import threading

from repro.telemetry.tracer import NOOP_SPAN, Tracer


class TestSpanNesting:
    def test_single_span_records_duration(self):
        tracer = Tracer()
        with tracer.span("outer"):
            pass
        records = tracer.records
        assert len(records) == 1
        record = records[0]
        assert record.name == "outer"
        assert record.duration_ns >= 0
        assert record.depth == 0
        assert record.parent is None

    def test_nested_spans_track_depth_and_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
        by_name = {r.name: r for r in tracer.records}
        assert by_name["outer"].depth == 0
        assert by_name["middle"].depth == 1
        assert by_name["middle"].parent == "outer"
        assert by_name["inner"].depth == 2
        assert by_name["inner"].parent == "middle"

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {r.name: r for r in tracer.records}
        assert by_name["a"].parent == "parent"
        assert by_name["b"].parent == "parent"
        assert by_name["a"].depth == by_name["b"].depth == 1

    def test_span_attrs_and_set(self):
        tracer = Tracer()
        with tracer.span("op", {"rows": 10}) as span:
            span.set(out_rows=7)
        record = tracer.records[0]
        assert record.attrs == {"rows": 10, "out_rows": 7}

    def test_nesting_restored_after_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("outer"):
                with tracer.span("failing"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        with tracer.span("after"):
            pass
        by_name = {r.name: r for r in tracer.records}
        assert by_name["after"].depth == 0
        assert by_name["after"].parent is None

    def test_aggregate(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("op"):
                pass
        stats = tracer.aggregate()["op"]
        assert stats["count"] == 3
        assert stats["total_s"] >= 0.0
        assert stats["min_s"] <= stats["max_s"]


class TestThreadSafety:
    def test_concurrent_spans_from_many_threads(self):
        tracer = Tracer()
        n_threads, n_spans = 4, 50
        barrier = threading.Barrier(n_threads)

        def work(thread_index):
            barrier.wait()
            for i in range(n_spans):
                with tracer.span(f"t{thread_index}"):
                    with tracer.span(f"t{thread_index}.inner"):
                        pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = tracer.records
        assert len(records) == n_threads * n_spans * 2
        # Per-thread nesting is independent: every inner span has depth 1
        # and its own thread's outer span as parent.
        for record in records:
            if record.name.endswith(".inner"):
                assert record.depth == 1
                assert record.parent == record.name[: -len(".inner")]
            else:
                assert record.depth == 0
        tids = {r.tid for r in records}
        assert len(tids) == n_threads


class TestChromeTrace:
    def test_schema_is_valid_trace_event_json(self):
        tracer = Tracer()
        with tracer.span("outer", {"rows": 5}):
            with tracer.span("inner"):
                pass
        trace = tracer.to_chrome_trace()
        # Must be JSON-serializable as-is (what Perfetto loads).
        payload = json.loads(json.dumps(trace))
        assert payload["displayTimeUnit"] == "ms"
        # Leading "M" metadata events label each thread lane by name.
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert len(metadata) == 1
        assert metadata[0]["name"] == "thread_name"
        assert metadata[0]["args"]["name"]  # the Python thread's name
        events = [e for e in payload["traceEvents"] if e["ph"] != "M"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["name"], str)
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        outer = next(e for e in events if e["name"] == "outer")
        assert outer["args"]["rows"] == 5

    def test_numpy_attrs_are_json_safe(self):
        import numpy as np

        tracer = Tracer()
        with tracer.span("op", {"n": np.int64(3), "x": np.float64(1.5)}):
            pass
        json.dumps(tracer.to_chrome_trace())


class TestNoopSpan:
    def test_noop_span_is_reusable_and_inert(self):
        with NOOP_SPAN as span:
            assert span.set(anything=1) is span
        with NOOP_SPAN:
            pass

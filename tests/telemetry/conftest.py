"""Shared fixtures: telemetry state never leaks between tests."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _telemetry_disabled_after_each():
    yield
    telemetry.disable()

"""Shared fixtures: telemetry state never leaks between tests."""

import pytest

from repro import telemetry
from repro.telemetry import flight, live


@pytest.fixture(autouse=True)
def _telemetry_disabled_after_each():
    yield
    telemetry.disable()
    flight.clear()
    live.enable()  # the live tier's documented default is on

"""End-to-end: the instrumented layers emit the expected spans/counters."""

import numpy as np

from repro import telemetry
from repro.datagen.scenarios import (
    ScenarioSpec,
    generate_scenario_tables,
)
from repro.learning.linear_regression import LinearRegression
from repro.metadata.mappings import ScenarioType
from repro.relational.joins import inner_join, union_all
from repro.relational.schema import Column, Schema
from repro.relational.types import DataType
from repro.relational.table import Table
from repro.streaming.builder import integrate_streams
from repro.streaming.spill import SpillStore


def _key_tables():
    schema_l = Schema([Column("id", DataType.INT, is_key=True), Column("x", DataType.FLOAT)])
    schema_r = Schema([Column("id", DataType.INT, is_key=True), Column("y", DataType.FLOAT)])
    left = Table.from_rows("L", schema_l, [[1, 1.0], [2, 2.0], [3, 3.0]])
    right = Table.from_rows("R", schema_r, [[2, 20.0], [3, 30.0], [4, 40.0]])
    return left, right


class TestJoinSpans:
    def test_inner_join_span_with_cardinalities(self):
        left, right = _key_tables()
        telemetry.enable(sample_memory=False)
        result = inner_join(left, right, on=["id"])
        session = telemetry.disable()
        record = next(r for r in session.tracer.records if r.name == "join.inner")
        assert record.attrs["left_rows"] == 3
        assert record.attrs["right_rows"] == 3
        assert record.attrs["out_rows"] == result.table.n_rows

    def test_union_span(self):
        schema = Schema([Column("id", DataType.INT, is_key=True), Column("x", DataType.FLOAT)])
        a = Table.from_rows("A", schema, [[1, 1.0]])
        b = Table.from_rows("B", schema, [[2, 2.0]])
        telemetry.enable(sample_memory=False)
        union_all(a, b)
        session = telemetry.disable()
        record = next(r for r in session.tracer.records if r.name == "join.union")
        assert record.attrs["out_rows"] == 2

    def test_no_spans_recorded_while_disabled(self):
        left, right = _key_tables()
        session = telemetry.enable(sample_memory=False)
        telemetry.disable()
        inner_join(left, right, on=["id"])
        assert session.tracer.records == []


class TestStreamingSpans:
    def test_spilled_integration_emits_build_and_spill_telemetry(self):
        spec = ScenarioSpec(
            scenario=ScenarioType.FULL_OUTER_JOIN, base_rows=64, other_rows=48,
            overlap_rows=16, overlap_columns=1, seed=11,
        )
        base, other, column_matches, row_matches, target_columns = (
            generate_scenario_tables(spec)
        )
        telemetry.enable(sample_memory=False)
        with SpillStore() as store:
            integrate_streams(
                base, other, column_matches, row_matches, target_columns,
                spec.scenario, label_column="label", store=store, chunk_rows=16,
            )
            report = telemetry.run_report()
        telemetry.disable()
        assert report.spans["build.integrate_streams"]["count"] == 1
        assert report.spans["build.ingest_stream"]["count"] == 2
        assert report.counters["spill.matrices"] == 2
        assert report.counters["spill.bytes_written"] > 0
        assert report.counters["spill.bytes_allocated"] > 0
        assert report.counters["spill.releases"] > 0


class TestTrainingSpans:
    def test_linear_gd_span_and_loss_histogram(self):
        rng = np.random.default_rng(5)
        features = rng.standard_normal((64, 3))
        targets = features @ np.array([1.0, -2.0, 0.5]) + 0.1
        telemetry.enable(sample_memory=False)
        model = LinearRegression(solver="gd", n_iterations=25).fit(features, targets)
        report = telemetry.run_report()
        telemetry.disable()
        assert report.spans["train.linear_gd"]["count"] == 1
        losses = report.histograms["gd.linear.loss"]
        assert losses["count"] == 25
        assert losses["values"] == model.loss_history_
        assert report.counters["gd.iterations"] == 25

"""Tests for run reports: serialization, rendering, diffing and the CLI."""

import json

from repro import telemetry
from repro.telemetry.report import RunReport, diff_reports, main


def _sample_report() -> RunReport:
    with telemetry.collect(sample_memory=False) as session:
        with telemetry.span("amalur.train", task="regression"):
            with telemetry.span("train.linear_gd"):
                pass
        telemetry.counter_add("flops.lmm.local", 1234.0)
        telemetry.gauge_set("spill.bytes_on_disk", 4096.0)
        telemetry.observe("gd.linear.loss", 0.5)
        telemetry.observe("gd.linear.loss", 0.25)
    return session.report()


class TestSerialization:
    def test_round_trip_via_dict(self):
        report = _sample_report()
        clone = RunReport.from_dict(report.to_dict())
        assert clone.to_dict() == report.to_dict()

    def test_save_and_load(self, tmp_path):
        report = _sample_report()
        path = tmp_path / "nested" / "report.json"
        report.save(path)
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        loaded = RunReport.load(path)
        assert loaded.to_dict() == report.to_dict()

    def test_json_is_fully_serializable(self):
        json.loads(_sample_report().to_json())


class TestRendering:
    def test_render_text_sections(self):
        text = _sample_report().render_text()
        assert "== run report ==" in text
        assert "amalur.train" in text
        assert "flops.lmm.local" in text
        assert "spill.bytes_on_disk" in text
        assert "gd.linear.loss" in text

    def test_diff_reports(self):
        a = _sample_report()
        b = RunReport.from_dict(a.to_dict())
        b.counters["flops.lmm.local"] = 5678.0
        text = diff_reports(a, b)
        assert "counters (changed):" in text
        assert "flops.lmm.local" in text
        identical = diff_reports(a, RunReport.from_dict(a.to_dict()))
        assert "counters: identical" in identical


class TestCli:
    def test_show(self, tmp_path, capsys):
        path = tmp_path / "r.json"
        _sample_report().save(path)
        assert main(["show", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== run report ==" in out

    def test_show_json(self, tmp_path, capsys):
        path = tmp_path / "r.json"
        _sample_report().save(path)
        assert main(["show", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1

    def test_diff(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        report = _sample_report()
        report.save(a)
        report.counters["extra"] = 1.0
        report.save(b)
        assert main(["diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "== report diff" in out
        assert "extra" in out

"""Tests for repro.telemetry.regress: the bench-trajectory detector."""

import json

import pytest

from repro.telemetry import regress
from repro.telemetry.regress import MetricSpec, audit, compare, resolve_path


def write(directory, name, payload):
    (directory / name).write_text(json.dumps(payload))


GOOD_SERVING = {
    "incremental": {"speedup": 7.0, "max_weight_err": 1e-16},
    "serving": {"post_delta_parity": 1e-16},
}


class TestResolvePath:
    def test_wildcard_expands_sorted(self):
        document = {"cases": {"b": {"x": 2}, "a": {"x": 1}}}
        matches = resolve_path(document, "cases.*.x")
        assert matches == [("cases.a.x", 1), ("cases.b.x", 2)]

    def test_missing_segment_yields_nothing(self):
        assert resolve_path({"a": {"b": 1}}, "a.c") == []


class TestMetricSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            MetricSpec("x", "sideways", 1.0)

    def test_bound_required_for_numeric_kinds(self):
        with pytest.raises(ValueError):
            MetricSpec("x", "higher")


class TestAudit:
    def test_missing_file_fails(self, tmp_path):
        findings = audit(tmp_path)
        assert all(finding["status"] == "fail" for finding in findings)
        assert {finding["file"] for finding in findings} == set(regress.TRAJECTORY)

    def test_committed_trajectory_passes(self):
        findings = audit(regress.DEFAULT_RESULTS)
        failures = [f for f in findings if f["status"] == "fail"]
        assert failures == [], regress.render_text(failures)


class TestCompare:
    def test_fresh_subset_compares_only_what_exists(self, tmp_path):
        fresh, baseline = tmp_path / "fresh", tmp_path / "baseline"
        fresh.mkdir(), baseline.mkdir()
        write(fresh, "BENCH_SERVING.json", GOOD_SERVING)
        write(baseline, "BENCH_SERVING.json", GOOD_SERVING)
        findings = compare(fresh, baseline)
        serving = [f for f in findings if f["file"] == "BENCH_SERVING.json"]
        assert all(finding["status"] == "ok" for finding in serving)
        others = [f for f in findings if f["file"] != "BENCH_SERVING.json"]
        assert all(finding["status"] == "skip" for finding in others)

    def test_absolute_floor_violation_fails(self, tmp_path):
        fresh = tmp_path / "fresh"
        fresh.mkdir()
        bad = {
            "incremental": {"speedup": 0.4, "max_weight_err": 1e-16},
            "serving": {"post_delta_parity": 1e-16},
        }
        write(fresh, "BENCH_SERVING.json", bad)
        findings = compare(fresh, tmp_path)
        failed = [f for f in findings if f["status"] == "fail"]
        assert any(f["metric"] == "incremental.speedup" for f in failed)

    def test_retention_violation_fails(self, tmp_path):
        fresh, baseline = tmp_path / "fresh", tmp_path / "baseline"
        fresh.mkdir(), baseline.mkdir()
        regressed = {
            # Above the 3.0 floor, but far below 0.5 * the 20.0 baseline.
            "incremental": {"speedup": 4.0, "max_weight_err": 1e-16},
            "serving": {"post_delta_parity": 1e-16},
        }
        strong = {
            "incremental": {"speedup": 20.0, "max_weight_err": 1e-16},
            "serving": {"post_delta_parity": 1e-16},
        }
        write(fresh, "BENCH_SERVING.json", regressed)
        write(baseline, "BENCH_SERVING.json", strong)
        findings = compare(fresh, baseline)
        failed = [f for f in findings if f["status"] == "fail"]
        assert any("retains less" in f.get("detail", "") for f in failed)

    def test_parity_bound_is_absolute(self, tmp_path):
        fresh = tmp_path / "fresh"
        fresh.mkdir()
        drifted = {
            "incremental": {"speedup": 7.0, "max_weight_err": 1e-3},
            "serving": {"post_delta_parity": 1e-16},
        }
        write(fresh, "BENCH_SERVING.json", drifted)
        findings = compare(fresh, tmp_path)
        failed = [f for f in findings if f["status"] == "fail"]
        assert any(f["metric"] == "incremental.max_weight_err" for f in failed)

    def test_scaling_speedup_gated_on_cores(self, tmp_path):
        fresh = tmp_path / "fresh"
        fresh.mkdir()
        one_core = {
            "cores": 1,
            "parity": {
                "factors_bit_identical": True,
                "flop_counters_equal": True,
                "max_weight_diff": 0.0,
            },
            "scaling": {"speedup": 1.0},  # would fail the 1.5 floor on >=4 cores
        }
        write(fresh, "BENCH_PARALLEL.json", one_core)
        findings = compare(fresh, tmp_path)
        parallel = [f for f in findings if f["file"] == "BENCH_PARALLEL.json"]
        scaling = [f for f in parallel if "scaling" in str(f.get("metric"))]
        assert scaling and all(f["status"] == "skip" for f in scaling)
        assert not any(f["status"] == "fail" for f in parallel)

    def test_missing_bool_guard_fails(self, tmp_path):
        fresh = tmp_path / "fresh"
        fresh.mkdir()
        write(
            fresh, "BENCH_OBSERVABILITY.json",
            {"overhead": {"ratio": 1.0}, "scrape": {"all_valid": True},
             "flight": {"breaker_opened": True}},  # dump_contains_request_span absent
        )
        findings = compare(fresh, tmp_path)
        failed = [f for f in findings if f["status"] == "fail"]
        assert any(
            f["metric"] == "flight.dump_contains_request_span" for f in failed
        )


class TestCli:
    def test_cli_exit_codes_and_json(self, tmp_path, capsys):
        fresh = tmp_path / "fresh"
        fresh.mkdir()
        write(fresh, "BENCH_SERVING.json", GOOD_SERVING)
        out_file = tmp_path / "findings.json"
        code = regress.main([
            "--fresh", str(fresh), "--results", str(tmp_path),
            "--json", str(out_file),
        ])
        assert code == 0
        assert json.loads(out_file.read_text())
        assert "failed" in capsys.readouterr().out

    def test_cli_fails_on_empty_fresh_dir(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert regress.main(["--fresh", str(empty), "--results", str(tmp_path)]) == 1

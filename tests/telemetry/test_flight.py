"""Tests for repro.telemetry.flight: rings, dumps, and the breaker trigger."""

import json

import pytest

from repro import telemetry
from repro.telemetry import flight
from repro.telemetry import tracer as tracer_module
from repro.telemetry.flight import FlightRecorder


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestRings:
    def test_event_ring_is_bounded(self):
        recorder = FlightRecorder(max_events=4, clock=FakeClock())
        for index in range(10):
            recorder.record_event("info", "tick", index=index)
        events = recorder.events
        assert len(events) == 4
        assert [event["index"] for event in events] == [6, 7, 8, 9]

    def test_unknown_level_raises(self):
        recorder = FlightRecorder()
        with pytest.raises(ValueError):
            recorder.record_event("shout", "oops")

    def test_events_jsonl_is_one_dict_per_line(self):
        recorder = FlightRecorder(clock=FakeClock())
        recorder.record_event("info", "a")
        recorder.record_event("warning", "b", detail="x")
        lines = recorder.events_jsonl().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["kind"] == "b"

    def test_span_ring_fed_by_the_tracer_sink(self):
        recorder = flight.install(max_spans=3)
        telemetry.enable(sample_memory=False)
        for index in range(5):
            with telemetry.span(f"op{index}"):
                pass
        names = [span["name"] for span in recorder.spans]
        assert names == ["op2", "op3", "op4"]


class TestDumps:
    def test_trigger_snapshots_events_breakers_and_deltas(self):
        telemetry.enable(sample_memory=False)
        recorder = flight.install(clock=FakeClock())
        telemetry.counter_add("work.items", 5.0)
        recorder.note_breaker("demo", "open")
        recorder.record_event("warning", "something.odd")
        dump = recorder.trigger("test_reason", extra="context")
        assert dump["reason"] == "test_reason"
        assert dump["context"] == {"extra": "context"}
        assert dump["breaker_states"] == {"demo": "open"}
        assert dump["counter_deltas"]["work.items"] == 5.0
        assert any(event["kind"] == "flight.trigger" for event in dump["events"])
        # Second trigger: only the counters that moved since the first.
        telemetry.counter_add("work.items", 2.0)
        second = recorder.trigger("again")
        assert second["counter_deltas"] == {"work.items": 2.0}

    def test_dump_files_written_and_pruned(self, tmp_path):
        recorder = FlightRecorder(dump_dir=tmp_path, max_dumps=2, clock=FakeClock())
        for index in range(4):
            recorder.trigger(f"reason_{index}")
        files = sorted(path.name for path in tmp_path.glob("flight_*.json"))
        assert files == ["flight_0003_reason_2.json", "flight_0004_reason_3.json"]
        payload = json.loads((tmp_path / files[-1]).read_text())
        assert payload["reason"] == "reason_3"
        assert len(recorder.dumps) == 2

    def test_reason_is_sanitized_for_the_filename(self, tmp_path):
        recorder = FlightRecorder(dump_dir=tmp_path, clock=FakeClock())
        recorder.trigger("weird reason/../../x")
        (file,) = tmp_path.glob("flight_*.json")
        assert "/" not in file.name.replace("flight_", "", 1)
        assert ".." not in file.name


class TestFacade:
    def test_inactive_facade_is_inert(self):
        assert flight.ACTIVE is False
        flight.record_event("info", "ignored")
        flight.note_breaker("x", "open")
        assert flight.trigger("ignored") is None
        assert flight.get() is None

    def test_install_and_clear_manage_the_span_sink(self):
        recorder = flight.install()
        assert flight.ACTIVE is True
        assert flight.get() is recorder
        assert tracer_module.SPAN_SINK == recorder.record_span
        flight.clear()
        assert flight.ACTIVE is False
        assert tracer_module.SPAN_SINK is None
        assert flight.get() is None

"""Tests for the repro.telemetry module facade: enable/disable semantics."""

from repro import telemetry
from repro.telemetry.report import RunReport
from repro.telemetry.tracer import NOOP_SPAN


class TestDisabledNoOp:
    def test_disabled_by_default(self):
        assert telemetry.ENABLED is False
        assert telemetry.is_enabled() is False
        assert telemetry.active_session() is None

    def test_span_is_the_shared_noop_singleton(self):
        assert telemetry.span("anything", rows=3) is NOOP_SPAN

    def test_metric_calls_are_inert(self):
        telemetry.counter_add("c", 5.0)
        telemetry.gauge_set("g", 1.0)
        telemetry.observe("h", 2.0)
        telemetry.record_op("op", 0.1, 100.0)
        assert telemetry.active_session() is None

    def test_run_report_and_trace_are_none(self):
        assert telemetry.run_report() is None
        assert telemetry.export_chrome_trace() is None


class TestEnableDisable:
    def test_enable_collects_and_disable_returns_session(self):
        session = telemetry.enable(sample_memory=False)
        assert telemetry.ENABLED is True
        with telemetry.span("work", rows=2) as span:
            span.set(out=1)
        telemetry.counter_add("events", 2.0)
        finished = telemetry.disable()
        assert finished is session
        assert telemetry.ENABLED is False
        report = finished.report()
        assert isinstance(report, RunReport)
        assert report.spans["work"]["count"] == 1
        assert report.counters["events"] == 2

    def test_record_op_expands_to_three_counters(self):
        telemetry.enable(sample_memory=False)
        telemetry.record_op("backend.matmul", 0.25, 1000.0)
        telemetry.record_op("backend.matmul", 0.75, 500.0)
        report = telemetry.run_report()
        assert report.counters["backend.matmul.calls"] == 2
        assert report.counters["backend.matmul.seconds"] == 1.0
        assert report.counters["backend.matmul.flops"] == 1500

    def test_enable_starts_a_fresh_session(self):
        telemetry.enable(sample_memory=False)
        telemetry.counter_add("c")
        second = telemetry.enable(sample_memory=False)
        assert second.metrics.counter_values() == {}

    def test_collect_context_manager(self):
        with telemetry.collect(sample_memory=False) as session:
            assert telemetry.ENABLED is True
            telemetry.counter_add("inside")
        assert telemetry.ENABLED is False
        assert session.report().counters["inside"] == 1

    def test_run_report_has_meta_and_memory(self):
        with telemetry.collect() as session:
            with telemetry.span("s"):
                pass
        report = session.report()
        assert report.meta["pid"] > 0
        assert report.meta["duration_s"] >= 0.0
        assert report.memory["peak_rss_bytes"] > 0

    def test_chrome_trace_from_session(self):
        with telemetry.collect(sample_memory=False) as session:
            with telemetry.span("s"):
                pass
        trace = session.chrome_trace()
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1
        assert spans[0]["name"] == "s"

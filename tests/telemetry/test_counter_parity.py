"""Telemetry FLOP counters mirror the legacy FlopCounter value-for-value.

Runs the four Table I scenarios through the factorized operators with
telemetry enabled and asserts that every ``flops.<operation>`` counter in
the run report equals the corresponding ``FlopCounter.by_operation`` entry
exactly — one schema, no drift.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.datagen.scenarios import ScenarioSpec, generate_scenario_dataset
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.metadata.mappings import ScenarioType

SCENARIOS = [
    ScenarioType.INNER_JOIN,
    ScenarioType.LEFT_JOIN,
    ScenarioType.FULL_OUTER_JOIN,
    ScenarioType.UNION,
]


@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.value)
def test_flop_counters_match_legacy_by_operation(scenario):
    dataset = generate_scenario_dataset(
        ScenarioSpec(scenario=scenario, overlap_columns=2, seed=7)
    )
    matrix = AmalurMatrix(dataset)
    rng = np.random.default_rng(0)
    x_cols = rng.standard_normal((matrix.n_columns, 3))
    x_rows = rng.standard_normal((matrix.n_rows, 2))

    telemetry.enable(sample_memory=False)
    matrix.lmm(x_cols)
    matrix.transpose_lmm(x_rows)
    matrix.rmm(x_rows.T)
    matrix.crossprod()
    report = telemetry.run_report()
    telemetry.disable()

    legacy = matrix.counter.by_operation
    assert legacy, "legacy FlopCounter recorded nothing"
    for operation, flops in legacy.items():
        assert report.counters["flops." + operation] == pytest.approx(flops), operation
    # No telemetry flop counter exists without a legacy twin.
    telemetry_flops = {
        name[len("flops."):] for name in report.counters if name.startswith("flops.")
    }
    assert telemetry_flops == set(legacy)

"""Tests for the Gram cache and its hit/miss/evict counters."""

import numpy as np

from repro import telemetry
from repro.datagen.scenarios import ScenarioSpec, generate_scenario_dataset
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.factorized.operator_plan import GramCache
from repro.metadata.mappings import ScenarioType


class TestGramCache:
    def test_miss_then_hit(self):
        cache = GramCache()
        calls = []

        def compute():
            calls.append(1)
            return np.eye(2)

        first = cache.get_or_compute(compute)
        second = cache.get_or_compute(compute)
        assert first is second
        assert len(calls) == 1
        assert cache.stats == {"hits": 1, "misses": 1, "evictions": 0}

    def test_invalidate_forces_recompute(self):
        cache = GramCache()
        values = iter([np.eye(2), np.ones((2, 2))])
        cache.get_or_compute(lambda: next(values))
        cache.invalidate()
        assert cache.value is None
        recomputed = cache.get_or_compute(lambda: next(values))
        assert np.array_equal(recomputed, np.ones((2, 2)))
        assert cache.stats == {"hits": 0, "misses": 2, "evictions": 1}

    def test_telemetry_counters(self):
        cache = GramCache()
        telemetry.enable(sample_memory=False)
        cache.get_or_compute(lambda: np.eye(2))
        cache.get_or_compute(lambda: np.eye(2))
        cache.invalidate()
        report = telemetry.run_report()
        telemetry.disable()
        assert report.counters["gram_cache.miss"] == 1
        assert report.counters["gram_cache.hit"] == 1
        assert report.counters["gram_cache.evict"] == 1


class TestAmalurMatrixGramCache:
    def test_crossprod_is_cached_and_invalidatable(self):
        dataset = generate_scenario_dataset(
            ScenarioSpec(scenario=ScenarioType.INNER_JOIN, seed=3)
        )
        matrix = AmalurMatrix(dataset)
        gram = matrix.crossprod()
        assert matrix.crossprod() is gram
        assert matrix.gram_cache.stats["hits"] == 1
        matrix.invalidate_gram()
        recomputed = matrix.crossprod()
        assert recomputed is not gram
        assert np.allclose(recomputed, gram)
        assert matrix.gram_cache.stats["evictions"] == 1


class TestGramCacheConcurrency:
    def test_racing_threads_compute_once(self):
        import threading

        cache = GramCache()
        computes = []
        barrier = threading.Barrier(8)
        results = []

        def compute():
            computes.append(1)
            return np.eye(3)

        def work():
            barrier.wait()
            results.append(cache.get_or_compute(compute))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(computes) == 1, "cold cache must compute the Gram exactly once"
        assert cache.stats == {"hits": 7, "misses": 1, "evictions": 0}
        assert all(r is results[0] for r in results)

"""Tests for repro.telemetry.live: windows, quantiles and SLO trackers.

Every timing-sensitive assertion runs under a fake injectable clock, so
nothing here sleeps and nothing is flaky.
"""

import threading

import pytest

from repro.telemetry import live
from repro.telemetry.live import OUTCOMES, QuantileWindow, SloTracker, WindowedCounter


class FakeClock:
    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestEnableDisable:
    def test_on_by_default(self):
        assert live.ENABLED is True
        assert live.is_enabled() is True

    def test_disable_then_enable(self):
        live.disable()
        assert live.ENABLED is False
        live.enable()
        assert live.ENABLED is True


class TestWindowedCounter:
    def test_counts_inside_the_window(self):
        clock = FakeClock()
        counter = WindowedCounter(window_s=10.0, n_buckets=10, clock=clock)
        counter.add(3.0)
        clock.advance(4.0)
        counter.add(2.0)
        assert counter.total() == 5.0
        assert counter.rate() == pytest.approx(0.5)

    def test_old_buckets_expire(self):
        clock = FakeClock()
        counter = WindowedCounter(window_s=10.0, n_buckets=10, clock=clock)
        counter.add(3.0)
        clock.advance(5.0)
        counter.add(2.0)
        clock.advance(6.5)  # first add is now 11.5s old, second 6.5s old
        assert counter.total() == 2.0
        clock.advance(10.0)
        assert counter.total() == 0.0

    def test_lifetime_is_monotonic_across_expiry(self):
        clock = FakeClock()
        counter = WindowedCounter(window_s=1.0, n_buckets=4, clock=clock)
        for _ in range(5):
            counter.add(1.0)
            clock.advance(2.0)  # every add expires before the next
        assert counter.total() <= 1.0
        assert counter.lifetime == 5.0

    def test_long_idle_gap_resets_every_bucket(self):
        clock = FakeClock()
        counter = WindowedCounter(window_s=10.0, n_buckets=10, clock=clock)
        counter.add(7.0)
        clock.advance(1000.0)
        assert counter.total() == 0.0
        counter.add(1.0)
        assert counter.total() == 1.0

    def test_thread_safety_under_concurrent_adds(self):
        counter = WindowedCounter(window_s=60.0)
        n_threads, n_adds = 4, 500
        barrier = threading.Barrier(n_threads)

        def work():
            barrier.wait()
            for _ in range(n_adds):
                counter.add(1.0)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.lifetime == n_threads * n_adds


class TestQuantileWindow:
    def test_nearest_rank_quantiles(self):
        window = QuantileWindow(capacity=100)
        for value in range(1, 101):  # 1..100
            window.observe(float(value))
        assert window.quantile(0.5) == 50.0
        assert window.quantile(0.99) == 99.0
        assert window.quantile(1.0) == 100.0
        assert window.quantile(0.0) == 1.0

    def test_ring_keeps_only_the_newest(self):
        window = QuantileWindow(capacity=10)
        for value in range(100):
            window.observe(float(value))
        snapshot = window.snapshot()
        assert snapshot["window"] == 10
        assert snapshot["count"] == 100
        assert window.quantile(0.0) == 90.0  # oldest retained value

    def test_empty_window_snapshot(self):
        snapshot = QuantileWindow().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50"] == 0.0
        assert snapshot["max"] == 0.0


class TestSloTracker:
    def test_unknown_outcome_raises(self):
        tracker = SloTracker("s")
        with pytest.raises(ValueError):
            tracker.record("nope")

    def test_rates_by_outcome(self):
        clock = FakeClock()
        tracker = SloTracker("s", window_s=60.0, clock=clock)
        for _ in range(8):
            tracker.record("ok", 0.010)
        tracker.record("error", 0.020)
        tracker.record("shed")
        snapshot = tracker.snapshot()
        assert snapshot["session"] == "s"
        assert snapshot["window_requests"] == 10.0
        assert snapshot["error_rate"] == pytest.approx(0.1)
        assert snapshot["shed_rate"] == pytest.approx(0.1)
        assert snapshot["timeout_rate"] == 0.0
        assert snapshot["latency"]["count"] == 9  # shed carried no latency
        assert snapshot["latency"]["p50"] == pytest.approx(0.010)
        assert snapshot["lifetime"] == {
            "ok": 8.0, "error": 1.0, "shed": 1.0, "timeout": 0.0,
            "breaker_open": 0.0, "rejected": 0.0,
        }

    def test_window_rates_decay_but_lifetime_does_not(self):
        clock = FakeClock()
        tracker = SloTracker("s", window_s=10.0, clock=clock)
        tracker.record("error", 0.5)
        clock.advance(30.0)
        tracker.record("ok", 0.001)
        snapshot = tracker.snapshot()
        assert snapshot["error_rate"] == 0.0  # the error left the window
        assert snapshot["lifetime"]["error"] == 1.0

    def test_every_declared_outcome_is_tracked(self):
        tracker = SloTracker("s")
        for outcome in OUTCOMES:
            tracker.record(outcome)
        assert tracker.snapshot()["window_requests"] == float(len(OUTCOMES))

"""Tests for repro.telemetry.exporter: rendering, validation, the endpoint."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.telemetry.exporter import (
    MetricFamily,
    MetricsServer,
    metric_name,
    registry_families,
    render,
    slo_families,
    validate_openmetrics,
)
from repro.telemetry.live import SloTracker
from repro.telemetry.metrics import MetricsRegistry


class TestMetricName:
    def test_dots_become_underscores_with_prefix(self):
        assert metric_name("serving.latency_ms") == "repro_serving_latency_ms"

    def test_arbitrary_junk_is_sanitized(self):
        name = metric_name("a b/c-d.e")
        assert name == "repro_a_b_c_d_e"


class TestRenderAndValidate:
    def test_counter_gauge_summary_round_trip(self):
        counter = MetricFamily("repro_hits", "counter", "Hits.").add(
            3, suffix="_total", session="s"
        )
        gauge = MetricFamily("repro_depth", "gauge").add(2.5)
        summary = MetricFamily("repro_lat", "summary")
        summary.add(0.1, session="s", quantile="0.5")
        summary.add(4, suffix="_count", session="s")
        summary.add(0.5, suffix="_sum", session="s")
        text = render([counter, gauge, summary])
        assert text.endswith("# EOF\n")
        assert 'repro_hits_total{session="s"} 3' in text
        assert validate_openmetrics(text) == []

    def test_label_escaping_survives_validation(self):
        family = MetricFamily("repro_x", "gauge").add(
            1.0, session='we"ird\\name\nwith newline'
        )
        text = render([family])
        assert validate_openmetrics(text) == []

    def test_missing_eof_is_an_error(self):
        text = render([MetricFamily("repro_x", "gauge").add(1.0)])
        errors = validate_openmetrics(text.replace("# EOF\n", ""))
        assert any("EOF" in error for error in errors)

    def test_sample_without_type_is_an_error(self):
        errors = validate_openmetrics("repro_x 1\n# EOF\n")
        assert any("no TYPE" in error for error in errors)

    def test_duplicate_family_is_an_error(self):
        text = "# TYPE repro_x gauge\n# TYPE repro_x gauge\nrepro_x 1\n# EOF\n"
        assert any("twice" in error for error in validate_openmetrics(text))

    def test_duplicate_sample_is_an_error(self):
        text = "# TYPE repro_x gauge\nrepro_x 1\nrepro_x 2\n# EOF\n"
        assert any("duplicate sample" in error for error in validate_openmetrics(text))

    def test_non_numeric_value_is_an_error(self):
        text = "# TYPE repro_x gauge\nrepro_x banana\n# EOF\n"
        assert any("not a number" in error for error in validate_openmetrics(text))


class TestAdapters:
    def test_registry_families_use_the_telemetry_prefix(self):
        registry = MetricsRegistry()
        registry.counter("serving.requests").add(2.0)
        registry.gauge("serving.queue_depth").set(1.0)
        registry.histogram("gd.loss").observe(0.5)
        text = render(registry_families(registry))
        assert "repro_telemetry_serving_requests_total 2" in text
        assert "repro_telemetry_serving_queue_depth" in text
        assert "repro_telemetry_gd_loss_count 1" in text
        assert validate_openmetrics(text) == []

    def test_slo_families_expose_quantiles_and_lifetimes(self):
        tracker = SloTracker("demo")
        tracker.record("ok", 0.010)
        tracker.record("error", 0.030)
        text = render(slo_families([tracker.snapshot()]))
        assert validate_openmetrics(text) == []
        assert 'repro_serving_requests_total{outcome="ok",session="demo"} 1' in text
        assert 'quantile="0.99"' in text
        assert 'repro_serving_failure_ratio{mode="error",session="demo"} 0.5' in text


class TestMetricsServer:
    def test_metrics_health_and_404(self):
        state = {"status": "ok"}
        server = MetricsServer(
            lambda: render([MetricFamily("repro_up", "gauge").add(1.0)]),
            lambda: dict(state),
        )
        try:
            body = urllib.request.urlopen(server.url("/metrics")).read().decode()
            assert validate_openmetrics(body) == []
            health = urllib.request.urlopen(server.url("/health"))
            assert health.status == 200
            assert json.loads(health.read())["status"] == "ok"

            state["status"] = "degraded"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url("/health"))
            assert excinfo.value.code == 503

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url("/nope"))
            assert excinfo.value.code == 404
        finally:
            server.stop()

    def test_stop_is_idempotent(self):
        server = MetricsServer(lambda: "# EOF\n", lambda: {"status": "ok"})
        server.stop()
        server.stop()

    def test_concurrent_scrapes_never_see_a_torn_exposition(self):
        """Writers hammer a tracker while scrapers validate every response."""
        tracker = SloTracker("demo")
        server = MetricsServer(
            lambda: render(slo_families([tracker.snapshot()])),
            lambda: {"status": "ok"},
        )
        stop = threading.Event()
        problems = []

        def writer():
            while not stop.is_set():
                tracker.record("ok", 0.001)
                tracker.record("error", 0.002)

        def scraper():
            for _ in range(20):
                body = urllib.request.urlopen(server.url("/metrics")).read().decode()
                errors = validate_openmetrics(body)
                if errors:
                    problems.append(errors)

        try:
            writers = [threading.Thread(target=writer) for _ in range(2)]
            scrapers = [threading.Thread(target=scraper) for _ in range(3)]
            for thread in writers + scrapers:
                thread.start()
            for thread in scrapers:
                thread.join()
            stop.set()
            for thread in writers:
                thread.join()
        finally:
            stop.set()
            server.stop()
        assert problems == []

"""Tests for repro.telemetry.metrics."""

import threading

from repro.telemetry.metrics import MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("c").add()
        registry.counter("c").add(2.5)
        assert registry.counter_values() == {"c": 3.5}

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0)
        registry.gauge("g").set(7.0)
        assert registry.gauge_values() == {"g": 7}

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (3.0, 1.0, 2.0):
            registry.histogram("h").observe(value)
        summary = registry.histogram_summaries()["h"]
        assert summary["count"] == 3
        assert summary["total"] == 6.0
        assert summary["mean"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["last"] == 2.0
        assert summary["values"] == [3.0, 1.0, 2.0]

    def test_empty_histogram_summary(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        summary = registry.histogram_summaries()["h"]
        assert summary["count"] == 0
        assert summary["values"] == []

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("x") is registry.gauge("x")
        assert registry.histogram("x") is registry.histogram("x")

    def test_snapshots_are_name_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").add()
        registry.counter("a").add()
        assert list(registry.counter_values()) == ["a", "b"]


class TestConcurrency:
    def test_concurrent_instrument_creation(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(4)

        def work():
            barrier.wait()
            for i in range(100):
                registry.counter(f"shared.{i % 5}")
                registry.histogram("h")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(registry.counter_values()) == 5

    def test_concurrent_counter_adds_are_exact(self):
        """8 threads x 500 increments lose no update under the instrument lock."""
        registry = MetricsRegistry()
        counter = registry.counter("parallel.hits")
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            for _ in range(500):
                counter.add(1.0)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter_values() == {"parallel.hits": 8 * 500}

    def test_concurrent_gauge_max_never_below_any_set(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        barrier = threading.Barrier(4)

        def work(offset):
            barrier.wait()
            for value in range(offset, offset + 200):
                gauge.set(float(value))

        threads = [threading.Thread(target=work, args=(i * 200,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert gauge.max == 4 * 200 - 1

    def test_concurrent_histogram_observations_all_kept(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        barrier = threading.Barrier(4)

        def work():
            barrier.wait()
            for _ in range(250):
                histogram.observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert histogram.count == 1000

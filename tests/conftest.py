"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.hospital import (
    hospital_column_matches,
    hospital_integrated_dataset,
    hospital_row_matches,
    hospital_tables,
)
from repro.datagen.scenarios import ScenarioSpec, generate_scenario_dataset
from repro.datagen.synthetic import SyntheticSiloSpec, generate_integrated_pair
from repro.metadata.mappings import ScenarioType


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def hospital():
    """The running example's source tables (S1, S2)."""
    return hospital_tables()


@pytest.fixture
def hospital_matches():
    return hospital_column_matches(), hospital_row_matches()


@pytest.fixture
def hospital_dataset():
    """The running example integrated with a full outer join (Figure 4)."""
    return hospital_integrated_dataset(ScenarioType.FULL_OUTER_JOIN)


@pytest.fixture(params=list(ScenarioType), ids=lambda s: s.value)
def scenario_dataset(request):
    """A small integrated dataset for each of the four Table I scenarios."""
    spec = ScenarioSpec(
        scenario=request.param,
        base_rows=25,
        other_rows=18,
        base_features=3,
        other_features=4,
        overlap_rows=9,
        overlap_columns=1,
        seed=7,
    )
    return generate_scenario_dataset(spec)


@pytest.fixture
def synthetic_redundant_dataset():
    """A synthetic two-silo dataset with both redundancy axes enabled."""
    spec = SyntheticSiloSpec(
        base_rows=120,
        base_columns=3,
        other_rows=24,
        other_columns=8,
        redundancy_in_target=True,
        redundancy_in_sources=True,
        seed=3,
    )
    return generate_integrated_pair(spec)

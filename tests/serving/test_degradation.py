"""Graceful serving degradation: breaker, load shedding, serve-stale."""

import threading
import time

import numpy as np
import pytest

from repro import telemetry
from repro.datagen.scenarios import ScenarioSpec, generate_scenario_tables
from repro.exceptions import (
    CapacityExceeded,
    CircuitOpenError,
    ServiceError,
    StaleDatasetError,
    TransientError,
)
from repro.metadata.mappings import ScenarioType
from repro.reliability import faults
from repro.serving import AmalurService, DatasetSession
from repro.system.plan import ModelSpec
from repro.system.requests import DeltaBatch, IntegrationConfig, TrainRequest


def make_session(seed=0, **session_options):
    spec = ScenarioSpec(
        scenario=ScenarioType.LEFT_JOIN, base_rows=60, other_rows=35,
        overlap_rows=20, overlap_columns=2, seed=seed,
    )
    base, other, matches, _, target_columns = generate_scenario_tables(spec)
    config = IntegrationConfig(
        base="S1", other="S2", target_columns=target_columns,
        scenario=ScenarioType.LEFT_JOIN, label_column="label",
    )
    return DatasetSession(base, other, config, column_matches=matches, **session_options)


class TestCircuitBreaker:
    def test_repeated_failures_open_then_probe_recovers(self):
        with AmalurService(
            n_workers=1, max_queue=8, breaker_threshold=2, breaker_reset=0.05
        ) as service:
            service.register_session("demo", make_session())
            service.train("demo", TrainRequest(model=ModelSpec(task="regression")))

            with faults.active_plan("serving.request:p=1,n=2"):
                for _ in range(2):
                    with pytest.raises(TransientError):
                        service.predict("demo")
                # Threshold reached: rejected up front, no worker involved.
                with pytest.raises(CircuitOpenError, match="circuit 'demo' is open"):
                    service.predict("demo")

            # Still open after the faults cleared — until the cool-down.
            with pytest.raises(CircuitOpenError):
                service.predict("demo")
            time.sleep(0.06)
            # Half-open: the probe goes through, succeeds, and closes.
            assert service.predict("demo").value.shape[0] > 0
            assert service.predict("demo").value.shape[0] > 0

    def test_breakers_are_per_session(self):
        with AmalurService(n_workers=1, breaker_threshold=1) as service:
            service.register_session("a", make_session(seed=1))
            service.register_session("b", make_session(seed=2))
            assert service.breaker("a") is service.breaker("a")
            assert service.breaker("a") is not service.breaker("b")
            service.breaker("a").record_failure()  # opens a
            service.train("b", TrainRequest(model=ModelSpec(task="regression")))
            with pytest.raises(CircuitOpenError):
                service.predict("a")


class TestLoadShedding:
    @pytest.mark.parametrize("threshold", [0.0, -0.5, 1.5])
    def test_threshold_must_be_a_queue_fraction(self, threshold):
        with pytest.raises(ServiceError, match="shed_threshold"):
            AmalurService(shed_threshold=threshold)

    def test_predicts_shed_while_mutations_keep_headroom(self):
        service = AmalurService(
            n_workers=1, max_queue=4, shed_threshold=0.5, default_timeout=5.0
        )
        try:
            session = make_session()
            service.register_session("demo", session)
            service.train("demo", TrainRequest(model=ModelSpec(task="regression")))

            started = threading.Event()
            release = threading.Event()
            real_predict = session.predict

            def blocking_predict(request=None):
                started.set()
                release.wait(timeout=5.0)
                return real_predict(request)

            session.predict = blocking_predict
            telemetry.enable(sample_memory=False)
            # Occupy the single worker, then stack the queue to the 50%
            # shed mark with pending predicts.
            _, busy = service._submit("predict", "demo", lambda: session.predict())
            assert started.wait(timeout=5.0)
            pending = [
                service._submit("predict", "demo", lambda: session.predict())[1]
                for _ in range(2)
            ]
            with pytest.raises(CapacityExceeded, match="load shed"):
                service.predict("demo")
            # Mutations are not shed below a full queue: they keep the
            # headroom the shed threshold reserves.
            _, trained = service._submit(
                "train", "demo",
                lambda: session.train(TrainRequest(model=ModelSpec(task="regression"))),
            )
            release.set()
            for future in [busy, *pending, trained]:
                future.result(timeout=5.0)
            report = telemetry.run_report()
            assert report.counters["serving.shed"] == 1
            assert report.counters["serving.rejected"] >= 1
        finally:
            telemetry.disable()
            release.set()
            service.close()

    def test_default_threshold_sheds_only_at_a_full_queue(self):
        # shed_threshold=1.0 is the legacy behavior: a non-full queue admits.
        with AmalurService(n_workers=2, max_queue=4) as service:
            service.register_session("demo", make_session())
            service.train("demo", TrainRequest(model=ModelSpec(task="regression")))
            assert service.predict("demo").value is not None


class TestServeStale:
    def _broken_rebuild(self, session):
        def boom():
            raise RuntimeError("integration backend went away")

        session._rebuild = boom

    def test_failed_rebuild_serves_stale_and_marks_degraded(self):
        session = make_session()
        session.train(TrainRequest(model=ModelSpec(task="regression")))
        baseline = session.predict()
        version = session.version
        rows_before = session.table("S2").n_rows

        self._broken_rebuild(session)
        telemetry.enable(sample_memory=False)
        with pytest.raises(StaleDatasetError, match="rebuild failed .row deletion.") as excinfo:
            session.apply_delta(
                DeltaBatch(table="S2", kind="delete", row_indices=[0, 1])
            )
        report = telemetry.run_report()
        telemetry.disable()
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        assert f"serving version {version} stale" in str(excinfo.value)
        assert report.counters["serving.rebuild_failures"] == 1
        assert report.counters["serving.degraded"] == 1

        # The delta was rejected wholesale: tables rolled back, the
        # published snapshot untouched, predict bit-identical.
        assert session.degraded
        assert session.stats()["degraded"] is True
        assert session.table("S2").n_rows == rows_before
        assert session.version == version
        assert np.array_equal(session.predict(), baseline)

    def test_successful_rebuild_clears_degraded(self):
        session = make_session()
        session.train(TrainRequest(model=ModelSpec(task="regression")))
        self._broken_rebuild(session)
        with pytest.raises(StaleDatasetError):
            session.apply_delta(
                DeltaBatch(table="S2", kind="delete", row_indices=[0])
            )
        assert session.degraded
        del session.__dict__["_rebuild"]  # restore the real method
        summary = session.apply_delta(
            DeltaBatch(table="S2", kind="delete", row_indices=[0])
        )
        assert summary["mode"] == "rebuild"
        assert not session.degraded
        assert session.stats()["degraded"] is False

    def test_opt_out_propagates_the_rebuild_error(self):
        session = make_session(serve_stale_on_failure=False)
        rows_before = session.table("S2").n_rows
        self._broken_rebuild(session)
        with pytest.raises(RuntimeError, match="integration backend went away"):
            session.apply_delta(
                DeltaBatch(table="S2", kind="delete", row_indices=[0])
            )
        # Tables still roll back either way; only the surfaced error differs.
        assert session.table("S2").n_rows == rows_before
        assert not session.degraded

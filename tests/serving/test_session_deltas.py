"""Incremental factor maintenance must be bit-compatible with rebuilds."""

import numpy as np
import pytest

from repro.datagen.scenarios import ScenarioSpec, generate_scenario_tables
from repro.exceptions import ServiceError, StaleDatasetError
from repro.metadata.mappings import ScenarioType
from repro.serving import DatasetSession
from repro.system.plan import ModelSpec
from repro.system.requests import DeltaBatch, IntegrationConfig, PredictRequest, TrainRequest

JOIN_SCENARIOS = [
    ScenarioType.LEFT_JOIN,
    ScenarioType.FULL_OUTER_JOIN,
    ScenarioType.INNER_JOIN,
]
ALL_SCENARIOS = JOIN_SCENARIOS + [ScenarioType.UNION]


def make_session(scenario, seed=0, **session_options):
    spec = ScenarioSpec(
        scenario=scenario, base_rows=40, other_rows=25,
        overlap_rows=15, overlap_columns=2, seed=seed,
    )
    base, other, matches, _, target_columns = generate_scenario_tables(spec)
    config = IntegrationConfig(
        base="S1", other="S2", target_columns=target_columns,
        scenario=scenario, label_column="label",
    )
    return DatasetSession(base, other, config, column_matches=matches, **session_options)


def rebuilt_reference(session):
    """A from-scratch session over the maintained session's current tables."""
    return DatasetSession(
        session.table("S1"), session.table("S2"), session.config,
        column_matches=session.column_matches,
    )


def feature_rows(table, exclude=("id", "label")):
    return [c.name for c in table.schema if c.name not in exclude]


def append_batch(session, table_name, ids, rng):
    table = session.table(table_name)
    rows = {"id": list(ids)}
    for column in table.schema:
        if column.name == "id":
            continue
        if column.name == "label":
            rows["label"] = rng.integers(0, 2, size=len(ids)).tolist()
        else:
            rows[column.name] = np.round(rng.standard_normal(len(ids)), 4).tolist()
    return DeltaBatch(table=table_name, kind="append", rows=rows)


def assert_parity(session, atol=1e-8):
    reference = rebuilt_reference(session)
    ours = session.dataset.materialize()
    theirs = reference.dataset.materialize()
    assert ours.shape == theirs.shape
    assert np.allclose(ours, theirs, atol=atol)
    assert np.allclose(
        session.matrix.crossprod(), reference.matrix.crossprod(), atol=atol
    )
    trained = session.train(TrainRequest(model=ModelSpec(task="regression")))
    expected = reference.train(TrainRequest(model=ModelSpec(task="regression")))
    assert np.allclose(trained.coef_, expected.coef_, atol=atol)
    assert trained.intercept_ == pytest.approx(expected.intercept_, abs=atol)
    return reference


class TestAppendParity:
    @pytest.mark.parametrize("scenario", ALL_SCENARIOS)
    def test_other_append_matches_rebuild(self, scenario):
        session = make_session(scenario)
        rng = np.random.default_rng(1)
        # a mix of rows matching existing base entities and brand-new ones
        session.apply_delta(append_batch(session, "S2", [16, 17, 9000, 9001], rng))
        assert_parity(session)

    @pytest.mark.parametrize("scenario", JOIN_SCENARIOS)
    def test_base_append_matches_rebuild(self, scenario):
        session = make_session(scenario)
        rng = np.random.default_rng(2)
        # ids 40.. are other-only entities, 9000s are brand new
        session.apply_delta(append_batch(session, "S1", [40, 41, 9000], rng))
        assert_parity(session)

    @pytest.mark.parametrize("scenario", ALL_SCENARIOS)
    def test_interleaved_deltas_match_rebuild(self, scenario):
        session = make_session(scenario)
        rng = np.random.default_rng(3)
        next_id = 5000
        for step in range(6):
            table = "S1" if step % 2 == 0 else "S2"
            session.apply_delta(
                append_batch(session, table, [next_id, next_id + 1, step], rng)
            )
            next_id += 2
            assert_parity(session)
        assert session.deltas_applied == 6

    def test_left_join_appends_stay_incremental(self):
        session = make_session(ScenarioType.LEFT_JOIN)
        rng = np.random.default_rng(4)
        session.apply_delta(append_batch(session, "S1", [7000], rng))
        out = session.apply_delta(append_batch(session, "S2", [7000], rng))
        assert out["mode"] == "incremental"
        assert out["filled_target_rows"] == 1  # the S2 row fills the S1 row's gap
        assert session.rebuilds == 0
        assert_parity(session)


class TestUpdateAndDelete:
    @pytest.mark.parametrize("scenario", ALL_SCENARIOS)
    @pytest.mark.parametrize("table_name", ["S1", "S2"])
    def test_feature_update_matches_rebuild(self, scenario, table_name):
        session = make_session(scenario)
        rng = np.random.default_rng(5)
        table = session.table(table_name)
        columns = feature_rows(table)[:2]
        indices = [0, 3, 7]
        batch = DeltaBatch(
            table=table_name, kind="update",
            rows={c: np.round(rng.standard_normal(3), 4).tolist() for c in columns},
            row_indices=indices,
        )
        out = session.apply_delta(batch)
        assert out["mode"] == "incremental"
        assert_parity(session)

    def test_key_update_forces_rebuild(self):
        session = make_session(ScenarioType.LEFT_JOIN)
        out = session.apply_delta(
            DeltaBatch(table="S2", kind="update", rows={"id": [999]}, row_indices=[0])
        )
        assert out["mode"] == "rebuild"
        assert session.rebuilds == 1
        assert_parity(session)

    def test_delete_forces_rebuild(self):
        session = make_session(ScenarioType.FULL_OUTER_JOIN)
        before = session.n_target_rows
        # rows 20, 21 of S2 are other-only entities: deleting them must
        # shrink the full-outer target after the rebuild
        out = session.apply_delta(
            DeltaBatch(table="S2", kind="delete", row_indices=[20, 21])
        )
        assert out["mode"] == "rebuild"
        assert session.n_target_rows < before
        assert_parity(session)

    def test_unmapped_column_update_skips_republish(self):
        from repro.relational.schema import Column, Schema
        from repro.relational.table import Table
        from repro.relational.types import DataType

        base = Table(
            "S1",
            Schema([
                Column("id", DataType.INT, is_key=True),
                Column("x", DataType.FLOAT),
                Column("note", DataType.FLOAT),  # not in the target schema
            ]),
            {"id": [0, 1, 2], "x": [1.0, 2.0, 3.0], "note": [0.0, 0.0, 0.0]},
        )
        other = Table(
            "S2",
            Schema([
                Column("id", DataType.INT, is_key=True),
                Column("y", DataType.FLOAT),
            ]),
            {"id": [1, 2], "y": [5.0, 6.0]},
        )
        config = IntegrationConfig(
            base="S1", other="S2", target_columns=["x", "y"],
            scenario=ScenarioType.LEFT_JOIN,
        )
        session = DatasetSession(base, other, config)
        version = session.version
        out = session.apply_delta(
            DeltaBatch(
                table="S1", kind="update", rows={"note": [1.5]}, row_indices=[2]
            )
        )
        assert out["mode"] == "incremental"
        assert session.version == version  # the factorized state never changed
        assert session.table("S1").column_values("note")[2] == 1.5


class TestStalenessAndFallback:
    def test_staleness_threshold_triggers_rebuild(self):
        session = make_session(ScenarioType.LEFT_JOIN, staleness_threshold=0.05)
        rng = np.random.default_rng(6)
        out = session.apply_delta(
            append_batch(session, "S1", list(range(8000, 8005)), rng)
        )
        assert out["mode"] == "rebuild"
        assert out["reason"] == "staleness threshold exceeded"
        assert session.staleness == 0.0  # rebuild resets the accumulator
        assert_parity(session)

    def test_auto_rebuild_off_raises_stale(self):
        session = make_session(ScenarioType.LEFT_JOIN, auto_rebuild=False)
        with pytest.raises(StaleDatasetError):
            session.apply_delta(DeltaBatch(table="S1", kind="delete", row_indices=[0]))

    def test_pinned_version_mismatch_raises_stale(self):
        session = make_session(ScenarioType.LEFT_JOIN)
        session.train(TrainRequest(model=ModelSpec(task="regression")))
        pinned = session.version
        rng = np.random.default_rng(7)
        session.apply_delta(append_batch(session, "S2", [6000], rng))
        with pytest.raises(StaleDatasetError):
            session.predict(PredictRequest(version=pinned))

    def test_unknown_table_rejected(self):
        session = make_session(ScenarioType.LEFT_JOIN)
        with pytest.raises(ServiceError):
            session.apply_delta(
                DeltaBatch(table="S9", kind="append", rows={"id": [1]})
            )


class TestSessionModels:
    def test_normal_solver_reads_maintained_gram(self):
        session = make_session(ScenarioType.LEFT_JOIN)
        rng = np.random.default_rng(8)
        session.apply_delta(append_batch(session, "S1", [9100, 9101], rng))
        model = session.train(TrainRequest(model=ModelSpec(task="regression")))
        assert model.solver == "normal"
        assert model.version == session.version
        # gram seeding means the solve never recomputed T^T T
        assert session.matrix.gram_cache.stats["misses"] == 0

    def test_warm_start_resumes_from_cached_weights(self):
        session = make_session(ScenarioType.LEFT_JOIN)
        spec = ModelSpec(
            task="regression", n_iterations=40, learning_rate=0.05,
            hyperparameters={"solver": "gd"},
        )
        cold = session.train(TrainRequest(model=spec, model_name="gd"))
        resumed = session.train(
            TrainRequest(model=spec, model_name="gd", warm_start=True)
        )
        assert resumed.metrics["mse_loss"] <= cold.metrics["mse_loss"] + 1e-12

    def test_classification_predicts_probabilities(self):
        session = make_session(ScenarioType.INNER_JOIN)
        session.train(
            TrainRequest(model=ModelSpec(task="classification", n_iterations=30))
        )
        scores = session.predict(PredictRequest())
        assert scores.shape == (session.n_target_rows,)
        assert np.all((scores >= 0.0) & (scores <= 1.0))

    def test_unsupported_task_rejected(self):
        session = make_session(ScenarioType.LEFT_JOIN)
        with pytest.raises(ServiceError):
            session.train(TrainRequest(model=ModelSpec(task="clustering")))

    def test_predict_row_range_is_a_slice_of_full(self):
        session = make_session(ScenarioType.FULL_OUTER_JOIN)
        session.train(TrainRequest(model=ModelSpec(task="regression")))
        full = session.predict(PredictRequest())
        window = session.predict(PredictRequest(row_range=(5, 12)))
        assert np.array_equal(window, full[5:12])
        with pytest.raises(ServiceError):
            session.predict(PredictRequest(row_range=(0, session.n_target_rows + 1)))

"""The live observability tier of AmalurService: /metrics, /health, SLOs,
and the flight recorder's post-mortems (PR 10 tentpole)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import telemetry
from repro.datagen.scenarios import ScenarioSpec, generate_scenario_tables
from repro.exceptions import CircuitOpenError, ServiceError, TransientError
from repro.metadata.mappings import ScenarioType
from repro.reliability import faults
from repro.serving import AmalurService, DatasetSession
from repro.system.plan import ModelSpec
from repro.system.requests import IntegrationConfig, TrainRequest
from repro.telemetry import flight
from repro.telemetry.exporter import validate_openmetrics


@pytest.fixture(autouse=True)
def _clean_observability_state():
    yield
    telemetry.disable()
    flight.clear()
    faults.clear()


def make_session(seed=0):
    spec = ScenarioSpec(
        scenario=ScenarioType.LEFT_JOIN, base_rows=60, other_rows=35,
        overlap_rows=20, overlap_columns=2, seed=seed,
    )
    base, other, matches, _, target_columns = generate_scenario_tables(spec)
    config = IntegrationConfig(
        base="S1", other="S2", target_columns=target_columns,
        scenario=ScenarioType.LEFT_JOIN, label_column="label",
    )
    return DatasetSession(base, other, config, column_matches=matches)


@pytest.fixture
def service():
    svc = AmalurService(n_workers=2, max_queue=16, metrics_port=0)
    svc.register_session("demo", make_session())
    svc.train("demo", TrainRequest(model=ModelSpec(task="regression")))
    yield svc
    svc.close()


def scrape(service, path="/metrics"):
    return urllib.request.urlopen(service.metrics_url(path), timeout=5).read().decode()


class TestEndpoint:
    def test_disabled_by_default(self):
        with AmalurService(n_workers=1) as svc:
            assert svc.metrics_port is None
            with pytest.raises(ServiceError):
                svc.metrics_url()

    def test_scrape_is_valid_openmetrics(self, service):
        assert service.metrics_port > 0
        service.predict("demo")
        body = scrape(service)
        assert validate_openmetrics(body) == []
        # the fixture's train plus this predict: two ok outcomes
        assert 'repro_serving_requests_total{outcome="ok",session="demo"} 2' in body
        assert "repro_serving_queue_depth" in body
        assert 'repro_breaker_state{session="demo"} 0' in body
        assert 'repro_session_dataset_version{session="demo"}' in body

    def test_health_reports_ok_then_degraded(self, service):
        health = urllib.request.urlopen(service.metrics_url("/health"), timeout=5)
        assert health.status == 200
        payload = json.loads(health.read())
        assert payload["status"] == "ok"
        assert payload["open_breakers"] == []
        assert "demo" in payload["sessions"]

        service.breaker("demo").record_failure()  # default threshold opens it
        for _ in range(10):
            service.breaker("demo").record_failure()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(service.metrics_url("/health"), timeout=5)
        assert excinfo.value.code == 503
        payload = json.loads(excinfo.value.read())
        assert payload["status"] == "degraded"
        assert payload["open_breakers"] == ["demo"]

    def test_concurrent_scrapes_during_traffic(self, service):
        stop = threading.Event()
        problems, errors = [], []

        def client():
            while not stop.is_set():
                try:
                    service.predict("demo")
                except Exception as error:  # pragma: no cover - failure evidence
                    errors.append(error)
                    return

        def scraper():
            for _ in range(15):
                body = scrape(service)
                found = validate_openmetrics(body)
                if found:
                    problems.append(found)

        clients = [threading.Thread(target=client) for _ in range(3)]
        scrapers = [threading.Thread(target=scraper) for _ in range(2)]
        for thread in clients + scrapers:
            thread.start()
        for thread in scrapers:
            thread.join()
        stop.set()
        for thread in clients:
            thread.join()
        assert problems == []
        assert errors == []


class TestSlos:
    def test_outcomes_and_latency_tracked(self, service):
        for _ in range(5):
            service.predict("demo")
        (snapshot,) = [
            s for s in service.slo_snapshots() if s["session"] == "demo"
        ]
        # register + train + 5 predicts all recorded as ok
        assert snapshot["lifetime"]["ok"] >= 6.0
        assert snapshot["lifetime"]["error"] == 0.0
        assert snapshot["latency"]["count"] >= 6
        assert snapshot["latency"]["p99"] > 0.0

    def test_faulted_requests_become_error_outcomes(self, service):
        with faults.active_plan("serving.request:p=1,n=2,kind=transient"):
            for _ in range(2):
                with pytest.raises(TransientError):
                    service.predict("demo")
        (snapshot,) = [
            s for s in service.slo_snapshots() if s["session"] == "demo"
        ]
        assert snapshot["lifetime"]["error"] == 2.0


class TestFlightRecorder:
    def test_forced_breaker_open_dumps_the_failing_span(self, tmp_path):
        recorder = flight.install(dump_dir=tmp_path)
        telemetry.enable(sample_memory=False)
        with AmalurService(
            n_workers=1, max_queue=8, breaker_threshold=2, metrics_port=0
        ) as service:
            service.register_session("demo", make_session())
            service.train("demo", TrainRequest(model=ModelSpec(task="regression")))
            with faults.active_plan("serving.request:p=1,n=2,kind=transient"):
                for _ in range(2):
                    with pytest.raises(TransientError):
                        service.predict("demo")
                with pytest.raises(CircuitOpenError):
                    service.predict("demo")

            dumps = [d for d in recorder.dumps if d["reason"] == "breaker_open"]
            assert len(dumps) == 1
            dump = dumps[0]
            assert dump["breaker_states"]["demo"] == "open"
            # The failing request's span closed before the breaker tripped,
            # so the post-mortem carries it.
            assert any(
                span["name"] == "serving.request" and span["attrs"].get("error")
                for span in dump["spans"]
            )
            assert any(
                event["kind"] == "serving.request_failed"
                and event["error"] == "TransientError"
                for event in dump["events"]
            )
            # The injected fault plan is part of the evidence.
            assert dump["fault_plan"] is not None
            assert dump["fault_plan"]["sites"]["serving.request"]["triggers"] == 2

            # The breaker rejection itself is visible on /metrics.
            body = scrape(service)
            assert validate_openmetrics(body) == []
            assert 'repro_breaker_state{session="demo"} 2' in body
            assert (
                'repro_serving_requests_total{outcome="breaker_open",session="demo"} 1'
                in body
            )

        (dump_file,) = tmp_path.glob("flight_*_breaker_open.json")
        assert json.loads(dump_file.read_text())["reason"] == "breaker_open"

"""The serving worker pool: concurrency, capacity, timeouts, telemetry."""

import threading

import numpy as np
import pytest

from repro import telemetry
from repro.datagen.scenarios import ScenarioSpec, generate_scenario_tables
from repro.exceptions import CapacityExceeded, RequestTimeout, ServiceError
from repro.metadata.mappings import ScenarioType
from repro.serving import AmalurService, DatasetSession
from repro.system.plan import ModelSpec
from repro.system.requests import DeltaBatch, IntegrationConfig, PredictRequest, TrainRequest


def make_session(seed=0):
    spec = ScenarioSpec(
        scenario=ScenarioType.LEFT_JOIN, base_rows=80, other_rows=40,
        overlap_rows=30, overlap_columns=2, seed=seed,
    )
    base, other, matches, _, target_columns = generate_scenario_tables(spec)
    config = IntegrationConfig(
        base="S1", other="S2", target_columns=target_columns,
        scenario=ScenarioType.LEFT_JOIN, label_column="label",
    )
    return DatasetSession(base, other, config, column_matches=matches)


@pytest.fixture
def service():
    svc = AmalurService(n_workers=4, max_queue=32)
    svc.register_session("demo", make_session())
    yield svc
    svc.close()


class TestConcurrentPredict:
    def test_concurrent_predicts_bit_identical_to_serial(self, service):
        service.train("demo", TrainRequest(model=ModelSpec(task="regression")))
        serial = service.predict("demo").predictions
        results = [None] * 16
        errors = []

        def worker(slot):
            try:
                results[slot] = service.predict("demo").predictions
            except Exception as error:  # pragma: no cover - failure evidence
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for predictions in results:
            assert np.array_equal(predictions, serial)  # bit-identical

    def test_delta_then_predict_matches_rebuild(self, service):
        session = service.session("demo")
        rng = np.random.default_rng(11)
        rows = {"id": [9000, 30]}
        for column in session.table("S1").schema:
            if column.name == "id":
                continue
            if column.name == "label":
                rows["label"] = [1, 0]
            else:
                rows[column.name] = np.round(rng.standard_normal(2), 4).tolist()
        out = service.apply_delta(
            "demo", DeltaBatch(table="S1", kind="append", rows=rows)
        )
        assert out.value["mode"] == "incremental"
        service.train("demo", TrainRequest(model=ModelSpec(task="regression")))
        served = service.predict("demo").predictions

        reference = DatasetSession(
            session.table("S1"), session.table("S2"), session.config,
            column_matches=session.column_matches,
        )
        reference.train(TrainRequest(model=ModelSpec(task="regression")))
        expected = reference.predict(PredictRequest())
        assert np.allclose(served, expected, atol=1e-8)

    def test_result_envelope(self, service):
        trained = service.train(
            "demo", TrainRequest(model=ModelSpec(task="regression"), model_name="m")
        )
        assert trained.kind == "train"
        assert trained.handle is not None and trained.handle.name == "m"
        assert trained.latency_s > 0.0
        predicted = service.predict("demo", PredictRequest(model="m"))
        assert predicted.kind == "predict"
        assert predicted.version == service.session("demo").version
        assert predicted.predictions.shape == (service.session("demo").n_target_rows,)


class TestCapacityAndTimeouts:
    def test_full_queue_rejects_gracefully(self):
        svc = AmalurService(n_workers=1, max_queue=2)
        release = threading.Event()
        try:
            svc.register_session("demo", make_session())
            # park the single worker, then fill the queue
            _, blocker = svc._submit("predict", "demo", release.wait)
            while True:
                try:
                    svc._submit("predict", "demo", lambda: None)
                except CapacityExceeded:
                    break
            with pytest.raises(CapacityExceeded):
                svc.predict("demo")
        finally:
            release.set()
            blocker.result(timeout=5)
            svc.close()

    def test_timeout_raises_request_timeout(self):
        svc = AmalurService(n_workers=1, max_queue=8)
        release = threading.Event()
        try:
            svc.register_session("demo", make_session())
            session = svc.session("demo")
            session.train(TrainRequest(model=ModelSpec(task="regression")))
            _, blocker = svc._submit("predict", "demo", release.wait)
            with pytest.raises(RequestTimeout):
                svc.predict("demo", PredictRequest(timeout=0.05))
        finally:
            release.set()
            blocker.result(timeout=5)
            svc.close()

    def test_row_cap_rejects_oversized_requests(self, service):
        capped = AmalurService(n_workers=1, max_queue=4, max_rows_per_request=10)
        try:
            capped.register_session("demo", service.session("demo"))
            service.train("demo", TrainRequest(model=ModelSpec(task="regression")))
            small = capped.predict("demo", PredictRequest(row_range=(0, 10)))
            assert small.predictions.shape == (10,)
            with pytest.raises(CapacityExceeded):
                capped.predict("demo", PredictRequest(row_range=(0, 11)))
            with pytest.raises(CapacityExceeded):
                capped.predict("demo")  # full-table predict exceeds the cap
        finally:
            capped.close()

    def test_errors_propagate_as_service_errors(self, service):
        with pytest.raises(ServiceError):
            service.predict("demo", PredictRequest(model="never-trained"))
        with pytest.raises(ServiceError):
            service.predict("no-such-session")

    def test_close_is_idempotent_and_final(self):
        svc = AmalurService(n_workers=2, max_queue=4)
        svc.register_session("demo", make_session())
        svc.close()
        svc.close()
        with pytest.raises(ServiceError):
            svc.predict("demo")


class TestServingTelemetry:
    def test_requests_merge_into_one_trace(self):
        with telemetry.collect(sample_memory=False) as session_t:
            svc = AmalurService(n_workers=2, max_queue=16)
            try:
                svc.register_session("demo", make_session())
                svc.train("demo", TrainRequest(model=ModelSpec(task="regression")))
                for _ in range(5):
                    svc.predict("demo")
            finally:
                svc.close()
        report = session_t.report()
        assert report.spans["serving.request"]["count"] == 6  # 1 train + 5 predicts
        assert report.counters["serving.requests"] == 6
        assert "serving.queue_depth" in report.gauges
        assert report.histograms["serving.latency_ms"]["count"] == 6
        # worker-thread spans land in the same chrome trace with their attrs
        events = [
            e for e in session_t.chrome_trace()["traceEvents"]
            if e.get("name") == "serving.request"
        ]
        assert len(events) == 6
        assert {e["args"]["kind"] for e in events} == {"train", "predict"}

"""Cross-module integration tests: the full pipelines the paper motivates."""

import numpy as np

from repro.costmodel.decision import Decision
from repro.costmodel.parameters import CostParameters
from repro.datagen.hamlet import generate_hamlet_dataset
from repro.datagen.scenarios import ScenarioSpec, generate_scenario_dataset, generate_scenario_tables
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.federated.party import Party
from repro.federated.vertical_lr import VerticalFederatedLinearRegression
from repro.learning.base import DenseMatrix
from repro.learning.linear_regression import LinearRegression
from repro.learning.logistic_regression import LogisticRegression
from repro.metadata.entity_resolution import resolve_entities
from repro.metadata.mappings import ScenarioType
from repro.metadata.schema_matching import match_schemas
from repro.matrices.builder import integrate_tables
from repro.system.amalur import Amalur
from repro.system.plan import ModelSpec


class TestFeatureAugmentationPipeline:
    """Use case 1 (§II-B): discover, match, integrate, train — no manual metadata."""

    def test_pipeline_on_generated_silo_tables(self):
        spec = ScenarioSpec(
            scenario=ScenarioType.LEFT_JOIN,
            base_rows=80,
            other_rows=60,
            base_features=3,
            other_features=4,
            overlap_rows=50,
            overlap_columns=1,
            seed=13,
        )
        base, other, expected_matches, expected_rows, target_columns = generate_scenario_tables(spec)

        # Run the DI steps from scratch rather than using the generator's metadata.
        column_matches = match_schemas(base, other)
        matched_pairs = {(m.left_column, m.right_column) for m in column_matches}
        assert ("id", "id") in matched_pairs

        row_matches = resolve_entities(
            base.set_roles(keys=["id"]), other.set_roles(keys=["id"])
        )
        assert len(row_matches) == len(expected_rows)

        dataset = integrate_tables(
            base, other, column_matches, row_matches, target_columns,
            ScenarioType.LEFT_JOIN, label_column="label",
        )
        matrix = AmalurMatrix(dataset)
        labels = matrix.labels()
        model = LogisticRegression(learning_rate=0.2, n_iterations=80).fit(
            matrix.feature_matrix_view(), labels
        )
        assert model.score(matrix.feature_matrix_view(), labels) >= 0.5


class TestFactorizedTrainingSpeedupPath:
    """§IV: on a key–foreign-key workload the factorized path runs and matches."""

    def test_hamlet_style_dataset_training_equivalence(self):
        dataset = generate_hamlet_dataset("walmart", row_scale=0.003, seed=4)
        matrix = AmalurMatrix(dataset)
        target = dataset.materialize()
        label_index = dataset.target_columns.index("label")
        feature_indices = [i for i in range(target.shape[1]) if i != label_index]
        labels = target[:, label_index]

        factorized = LinearRegression(solver="gd", n_iterations=25, learning_rate=0.05,
                                      fit_intercept=False).fit(
            matrix.feature_matrix_view(), labels
        )
        materialized = LinearRegression(solver="gd", n_iterations=25, learning_rate=0.05,
                                        fit_intercept=False).fit(
            DenseMatrix(target[:, feature_indices]), labels
        )
        assert np.allclose(factorized.coef_, materialized.coef_)

    def test_cost_model_prefers_factorization_here(self):
        dataset = generate_hamlet_dataset("walmart", row_scale=0.02, seed=4)
        parameters = CostParameters.from_dataset(dataset, operand_columns=1)
        from repro.costmodel.amalur_cost import AmalurCostModel

        assert AmalurCostModel(reuse=300).predict_factorize(parameters)


class TestVFLMatchesCentralized:
    """Invariant 6: VFL with exact alignment reproduces centralized training."""

    def test_vfl_from_integrated_dataset(self):
        dataset = generate_scenario_dataset(
            ScenarioSpec(
                scenario=ScenarioType.INNER_JOIN,
                base_rows=100,
                other_rows=80,
                base_features=2,
                other_features=3,
                overlap_rows=70,
                seed=21,
            )
        )
        target = dataset.materialize()
        label_index = dataset.target_columns.index("label")
        labels = target[:, label_index]
        features = np.delete(target, label_index, axis=1)

        base, other = dataset.factors
        base_feature_cols = [c for c in base.source_columns if base.mapping.correspondences[c] != "label"]
        base_indices = [base.source_columns.index(c) for c in base_feature_cols]
        label_local = base.source_columns[
            [base.mapping.correspondences[c] for c in base.source_columns].index("label")
        ]
        party_a = Party(
            "A",
            base.data[:, base_indices],
            base_feature_cols,
            labels=base.data[:, base.source_columns.index(label_local)],
        )
        other_feature_cols = [
            c for c in other.source_columns
            if other.mapping.correspondences[c] not in ("label",)
            and other.mapping.correspondences[c] not in [base.mapping.correspondences[b] for b in base_feature_cols]
        ]
        other_indices = [other.source_columns.index(c) for c in other_feature_cols]
        party_b = Party("B", other.data[:, other_indices], other_feature_cols)

        alignment = {
            "A": [int(base.indicator.compressed[i]) for i in range(dataset.n_target_rows)],
            "B": [int(other.indicator.compressed[i]) for i in range(dataset.n_target_rows)],
        }
        vfl = VerticalFederatedLinearRegression(
            learning_rate=0.05, n_iterations=60, use_encryption=True
        ).fit([party_a, party_b], alignment=alignment)

        ordered_features = np.hstack(
            [
                party_a.aligned_features(alignment["A"]),
                party_b.aligned_features(alignment["B"]),
            ]
        )
        central = LinearRegression(
            solver="gd", learning_rate=0.05, n_iterations=60, fit_intercept=False
        ).fit(ordered_features, party_a.aligned_labels(alignment["A"]))
        assert np.allclose(vfl.centralized_equivalent_weights(), central.coef_, atol=1e-8)


class TestOptimizerDecisionsAcrossScales:
    def test_decision_flips_with_scale(self):
        amalur = Amalur()
        small = generate_scenario_dataset(
            ScenarioSpec(scenario=ScenarioType.INNER_JOIN, base_rows=30, other_rows=25,
                         overlap_rows=20, seed=1)
        )
        small_plan = amalur.plan(small, ModelSpec(n_iterations=10))
        assert small_plan.strategy is Decision.MATERIALIZE

        from repro.datagen.synthetic import SyntheticSiloSpec, generate_integrated_pair

        big = generate_integrated_pair(
            SyntheticSiloSpec(base_rows=60_000, base_columns=1, other_rows=600,
                              other_columns=120, redundancy_in_target=True, seed=2)
        )
        big_plan = amalur.plan(big, ModelSpec(n_iterations=500))
        assert big_plan.strategy is Decision.FACTORIZE

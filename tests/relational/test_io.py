"""Tests for repro.relational.io (CSV round-trips)."""

import pytest

from repro.exceptions import TableError
from repro.relational.io import read_csv, write_csv
from repro.relational.table import Table
from repro.relational.types import DataType, NULL


class TestReadCsv:
    def test_round_trip(self, tmp_path):
        table = Table.from_dict(
            "t", {"id": [1, 2, 3], "x": [1.5, None, 3.5], "name": ["a", "b", "c"]}
        )
        path = tmp_path / "t.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.name == "t"
        assert loaded.schema["id"].dtype is DataType.INT
        assert loaded.schema["x"].dtype is DataType.FLOAT
        assert loaded.cell(1, "x") is NULL
        assert table.equals(loaded)

    def test_key_and_label_roles(self, tmp_path):
        path = tmp_path / "roles.csv"
        path.write_text("id,m,x\n1,0,2.0\n2,1,3.0\n")
        table = read_csv(path, key_columns=["id"], label_column="m")
        assert table.schema["id"].is_key
        assert table.schema["m"].is_label

    def test_custom_name_and_delimiter(self, tmp_path):
        path = tmp_path / "data.tsv"
        path.write_text("a;b\n1;2\n")
        table = read_csv(path, name="custom", delimiter=";")
        assert table.name == "custom"
        assert table.cell(0, "b") == 2

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TableError):
            read_csv(path)

    def test_ragged_row_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2,3\n")
        with pytest.raises(TableError):
            read_csv(path)

    def test_null_literals(self, tmp_path):
        path = tmp_path / "nulls.csv"
        path.write_text("a,b\nnull,1\nNA,2\n,3\n")
        table = read_csv(path)
        assert all(v is NULL for v in table.column("a"))

    def test_write_creates_parent_directories(self, tmp_path):
        table = Table.from_dict("t", {"a": [1]})
        path = tmp_path / "nested" / "dir" / "t.csv"
        write_csv(table, path)
        assert path.exists()

"""Tests for repro.relational.io (CSV round-trips)."""

import pytest

from repro.exceptions import TableError
from repro.relational.io import read_csv, write_csv
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType, NULL
from repro.streaming.chunks import InMemoryTableStream


class TestReadCsv:
    def test_round_trip(self, tmp_path):
        table = Table.from_dict(
            "t", {"id": [1, 2, 3], "x": [1.5, None, 3.5], "name": ["a", "b", "c"]}
        )
        path = tmp_path / "t.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.name == "t"
        assert loaded.schema["id"].dtype is DataType.INT
        assert loaded.schema["x"].dtype is DataType.FLOAT
        assert loaded.cell(1, "x") is NULL
        assert table.equals(loaded)

    def test_key_and_label_roles(self, tmp_path):
        path = tmp_path / "roles.csv"
        path.write_text("id,m,x\n1,0,2.0\n2,1,3.0\n")
        table = read_csv(path, key_columns=["id"], label_column="m")
        assert table.schema["id"].is_key
        assert table.schema["m"].is_label

    def test_custom_name_and_delimiter(self, tmp_path):
        path = tmp_path / "data.tsv"
        path.write_text("a;b\n1;2\n")
        table = read_csv(path, name="custom", delimiter=";")
        assert table.name == "custom"
        assert table.cell(0, "b") == 2

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TableError):
            read_csv(path)

    def test_ragged_row_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2,3\n")
        with pytest.raises(TableError):
            read_csv(path)

    def test_null_literals(self, tmp_path):
        path = tmp_path / "nulls.csv"
        path.write_text("a,b\nnull,1\nNA,2\n,3\n")
        table = read_csv(path)
        assert all(v is NULL for v in table.column("a"))

    def test_write_creates_parent_directories(self, tmp_path):
        table = Table.from_dict("t", {"a": [1]})
        path = tmp_path / "nested" / "dir" / "t.csv"
        write_csv(table, path)
        assert path.exists()


class TestStringTypedRoundTrip:
    """STRING values spelled like another type survive write → read intact."""

    @pytest.mark.parametrize(
        "value", ["5", "-3", "+7", "1.5", "1e3", "-2.5e-4", "true", "False", "null", "NA"]
    )
    def test_typed_looking_string_stays_string(self, tmp_path, value):
        schema = Schema([Column("s", DataType.STRING)])
        table = Table.from_rows("t", schema, [[value], ["plain"]])
        path = tmp_path / "t.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.schema["s"].dtype is DataType.STRING
        assert loaded.cell(0, "s") == value

    def test_mixed_string_column_round_trip(self, tmp_path):
        schema = Schema([Column("s", DataType.STRING), Column("x", DataType.INT)])
        table = Table.from_rows(
            "t", schema,
            [["5", 1], ["abc", 2], ["true", 3], [NULL, 4], ["\\slash", 5]],
        )
        path = tmp_path / "t.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert table.equals(loaded)
        assert loaded.schema["s"].dtype is DataType.STRING
        assert loaded.schema["x"].dtype is DataType.INT

    def test_numeric_columns_unaffected(self, tmp_path):
        table = Table.from_dict("t", {"a": [5, -3], "b": [1.5, None]})
        path = tmp_path / "t.csv"
        write_csv(table, path)
        text = path.read_text()
        assert "\\" not in text  # only STRING columns get the escape
        loaded = read_csv(path)
        assert loaded.schema["a"].dtype is DataType.INT
        assert loaded.schema["b"].dtype is DataType.FLOAT
        assert table.equals(loaded)


class TestStreamingWriteCsv:
    def test_chunk_stream_write_matches_table_write(self, tmp_path):
        schema = Schema([Column("s", DataType.STRING), Column("x", DataType.FLOAT)])
        table = Table.from_rows(
            "t", schema,
            [["5", 1.0], ["null", 2.5], ["abc", None], [NULL, 4.0], ["true", 5.0]],
        )
        resident_path = tmp_path / "resident.csv"
        streamed_path = tmp_path / "streamed.csv"
        write_csv(table, resident_path)
        write_csv(InMemoryTableStream(table, chunk_rows=2), streamed_path)
        assert streamed_path.read_text() == resident_path.read_text()

    def test_chunk_stream_round_trip(self, tmp_path):
        table = Table.from_dict(
            "t", {"id": list(range(10)), "x": [float(i) / 3 for i in range(10)]}
        )
        path = tmp_path / "t.csv"
        write_csv(InMemoryTableStream(table, chunk_rows=3), path)
        loaded = read_csv(path, name="t")
        assert table.equals(loaded)

"""Tests for repro.relational.joins — the four Table I operators."""

import pytest

from repro.exceptions import JoinError
from repro.relational.joins import full_outer_join, inner_join, left_join, union_all
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import NULL, DataType, is_null


@pytest.fixture
def sources():
    left_schema = Schema(
        [
            Column("k", DataType.INT, is_key=True),
            Column("m", DataType.INT, is_label=True),
            Column("a", DataType.FLOAT),
        ]
    )
    right_schema = Schema(
        [
            Column("k", DataType.INT, is_key=True),
            Column("a", DataType.FLOAT),
            Column("o", DataType.FLOAT),
        ]
    )
    left = Table.from_rows("L", left_schema, [(1, 0, 10.0), (2, 1, 20.0), (3, 0, 30.0)])
    right = Table.from_rows("R", right_schema, [(2, 21.0, 0.5), (3, 31.0, 0.7), (4, 41.0, 0.9)])
    return left, right


class TestInnerJoin:
    def test_only_matched_rows(self, sources):
        left, right = sources
        result = inner_join(left, right, on=["k"])
        assert result.table.n_rows == 2
        assert result.table.column("k") == [2, 3]
        assert result.n_overlapping_rows == 2

    def test_left_value_preferred_on_overlapping_column(self, sources):
        left, right = sources
        result = inner_join(left, right, on=["k"])
        # column 'a' exists in both; the left (base) value wins
        assert result.table.column("a") == [20.0, 30.0]

    def test_provenance(self, sources):
        left, right = sources
        result = inner_join(left, right, on=["k"])
        assert result.left_rows == [1, 2]
        assert result.right_rows == [0, 1]
        assert result.left_columns["o"] is None
        assert result.right_columns["o"] == "o"

    def test_missing_key_raises(self, sources):
        left, right = sources
        with pytest.raises(JoinError):
            inner_join(left, right, on=["missing"])
        with pytest.raises(JoinError):
            inner_join(left, right, on=[])


class TestLeftJoin:
    def test_all_left_rows_kept(self, sources):
        left, right = sources
        result = left_join(left, right, on=["k"])
        assert result.table.n_rows == 3
        assert result.left_rows == [0, 1, 2]
        assert result.right_rows == [-1, 0, 1]

    def test_unmatched_right_columns_are_null(self, sources):
        left, right = sources
        result = left_join(left, right, on=["k"])
        assert is_null(result.table.cell(0, "o"))
        assert result.table.cell(1, "o") == pytest.approx(0.5)


class TestFullOuterJoin:
    def test_all_rows_of_both_inputs(self, sources):
        left, right = sources
        result = full_outer_join(left, right, on=["k"])
        assert result.table.n_rows == 4
        assert result.left_rows == [0, 1, 2, -1]
        assert result.right_rows == [-1, 0, 1, 2]

    def test_right_only_row_has_null_left_columns(self, sources):
        left, right = sources
        result = full_outer_join(left, right, on=["k"])
        last = result.table.n_rows - 1
        assert is_null(result.table.cell(last, "m"))
        assert result.table.cell(last, "o") == pytest.approx(0.9)

    def test_null_join_keys_never_match(self):
        schema = Schema([Column("k", DataType.INT, is_key=True), Column("v", DataType.FLOAT)])
        left = Table.from_rows("L", schema, [(NULL, 1.0)])
        right = Table.from_rows("R", schema, [(NULL, 2.0)])
        result = full_outer_join(left, right, on=["k"])
        assert result.table.n_rows == 2
        assert result.n_overlapping_rows == 0

    def test_target_column_projection(self, sources):
        left, right = sources
        result = full_outer_join(left, right, on=["k"], target_columns=["m", "a", "o"])
        assert result.table.schema.names == ["m", "a", "o"]

    def test_unknown_target_column(self, sources):
        left, right = sources
        with pytest.raises(JoinError):
            full_outer_join(left, right, on=["k"], target_columns=["nope"])

    def test_fallback_fills_null_base_value_from_right(self):
        schema_l = Schema([Column("k", DataType.INT, is_key=True), Column("a", DataType.FLOAT)])
        schema_r = Schema([Column("k", DataType.INT, is_key=True), Column("a", DataType.FLOAT)])
        left = Table.from_rows("L", schema_l, [(1, NULL)])
        right = Table.from_rows("R", schema_r, [(1, 5.0)])
        result = full_outer_join(left, right, on=["k"])
        assert result.table.cell(0, "a") == pytest.approx(5.0)


class TestUnion:
    def test_union_stacks_rows(self, sources):
        left, right = sources
        result = union_all(left, right, target_columns=["k", "a"])
        assert result.table.n_rows == 6
        assert result.left_rows == [0, 1, 2, -1, -1, -1]
        assert result.right_rows == [-1, -1, -1, 0, 1, 2]

    def test_union_defaults_to_shared_columns(self, sources):
        left, right = sources
        result = union_all(left, right)
        assert result.table.schema.names == ["k", "a"]

    def test_union_requires_shared_columns(self):
        left = Table.from_dict("L", {"a": [1]})
        right = Table.from_dict("R", {"b": [2]})
        with pytest.raises(JoinError):
            union_all(left, right)

    def test_union_with_missing_target_column(self, sources):
        left, right = sources
        with pytest.raises(JoinError):
            union_all(left, right, target_columns=["m"])


class TestManyToMany:
    def test_duplicate_keys_expand(self):
        schema = Schema([Column("k", DataType.INT, is_key=True), Column("v", DataType.FLOAT)])
        left = Table.from_rows("L", schema, [(1, 1.0), (1, 2.0)])
        right = Table.from_rows("R", schema, [(1, 10.0), (1, 20.0)])
        result = inner_join(left, right, on=["k"], target_columns=["k", "v"])
        assert result.table.n_rows == 4

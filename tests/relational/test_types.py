"""Tests for repro.relational.types."""


import pytest

from repro.exceptions import SchemaError
from repro.relational.types import (
    NULL,
    DataType,
    coerce_value,
    infer_type,
    is_null,
    parse_cell,
)


class TestNullSentinel:
    def test_null_is_singleton(self):
        from repro.relational.types import _NullType

        assert _NullType() is NULL

    def test_null_is_falsy(self):
        assert not NULL

    def test_is_null_detects_none_and_nan(self):
        assert is_null(None)
        assert is_null(NULL)
        assert is_null(float("nan"))

    def test_is_null_rejects_zero_and_empty_string(self):
        assert not is_null(0)
        assert not is_null("")
        assert not is_null(False)

    def test_null_equality_and_hash(self):
        assert NULL == NULL
        assert hash(NULL) == hash(NULL)
        assert NULL != 0


class TestCoerceValue:
    def test_coerce_int(self):
        assert coerce_value("7", DataType.INT) == 7
        assert coerce_value(7.0, DataType.INT) == 7

    def test_coerce_non_integral_float_to_int_fails(self):
        with pytest.raises(SchemaError):
            coerce_value(7.5, DataType.INT)

    def test_coerce_float(self):
        assert coerce_value("2.5", DataType.FLOAT) == pytest.approx(2.5)
        assert coerce_value(3, DataType.FLOAT) == pytest.approx(3.0)

    def test_coerce_string(self):
        assert coerce_value(12, DataType.STRING) == "12"

    def test_coerce_bool_from_strings(self):
        assert coerce_value("true", DataType.BOOL) is True
        assert coerce_value("No", DataType.BOOL) is False

    def test_coerce_bool_invalid_string(self):
        with pytest.raises(SchemaError):
            coerce_value("maybe", DataType.BOOL)

    def test_coerce_preserves_null(self):
        assert coerce_value(None, DataType.INT) is NULL
        assert coerce_value(NULL, DataType.FLOAT) is NULL

    def test_coerce_invalid_int(self):
        with pytest.raises(SchemaError):
            coerce_value("abc", DataType.INT)


class TestInferType:
    def test_infer_int(self):
        assert infer_type([1, 2, 3]) is DataType.INT

    def test_infer_float_promotes_ints(self):
        assert infer_type([1, 2.5]) is DataType.FLOAT

    def test_infer_string_wins(self):
        assert infer_type([1, "a", 2.0]) is DataType.STRING

    def test_infer_bool(self):
        assert infer_type([True, False]) is DataType.BOOL

    def test_infer_ignores_nulls(self):
        assert infer_type([None, 3, NULL]) is DataType.INT

    def test_infer_all_null_defaults_to_float(self):
        assert infer_type([None, NULL]) is DataType.FLOAT

    def test_infer_numeric_strings(self):
        assert infer_type(["1", "2"]) is DataType.INT
        assert infer_type(["1.5", "2"]) is DataType.FLOAT


class TestParseCell:
    def test_parse_empty_is_null(self):
        assert parse_cell("") is NULL
        assert parse_cell("  ") is NULL
        assert parse_cell("NaN") is NULL
        assert parse_cell("null") is NULL

    def test_parse_numbers(self):
        assert parse_cell("42") == 42
        assert parse_cell("4.5") == pytest.approx(4.5)

    def test_parse_booleans(self):
        assert parse_cell("true") is True
        assert parse_cell("False") is False

    def test_parse_strings_pass_through(self):
        assert parse_cell("Jane") == "Jane"

    def test_datatype_properties(self):
        assert DataType.INT.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.STRING.is_numeric
        assert DataType.INT.python_type is int

"""Tests for repro.relational.schema."""

import pytest

from repro.exceptions import SchemaError
from repro.relational.schema import Column, Schema, SourceDescription
from repro.relational.types import DataType


def make_schema():
    return Schema(
        [
            Column("id", DataType.INT, is_key=True),
            Column("label", DataType.INT, is_label=True),
            Column("age", DataType.FLOAT),
            Column("name", DataType.STRING),
        ]
    )


class TestColumn:
    def test_renamed_preserves_roles(self):
        column = Column("a", DataType.INT, is_key=True, is_label=False, description="x")
        renamed = column.renamed("b")
        assert renamed.name == "b"
        assert renamed.is_key
        assert renamed.description == "x"

    def test_with_role_overrides_only_given_flags(self):
        column = Column("a", DataType.INT, is_key=True)
        updated = column.with_role(is_label=True)
        assert updated.is_key and updated.is_label


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("a"), Column("a")])

    def test_lookup_by_name_and_index(self):
        schema = make_schema()
        assert schema["age"].dtype is DataType.FLOAT
        assert schema[0].name == "id"
        assert schema.index_of("name") == 3

    def test_missing_column_raises(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema["missing"]
        with pytest.raises(SchemaError):
            schema.index_of("missing")

    def test_key_label_feature_columns(self):
        schema = make_schema()
        assert [c.name for c in schema.key_columns] == ["id"]
        assert [c.name for c in schema.label_columns] == ["label"]
        assert [c.name for c in schema.feature_columns] == ["age"]

    def test_project_and_drop(self):
        schema = make_schema()
        assert schema.project(["age", "id"]).names == ["age", "id"]
        assert schema.drop(["name"]).names == ["id", "label", "age"]
        with pytest.raises(SchemaError):
            schema.drop(["missing"])

    def test_rename(self):
        schema = make_schema().rename({"age": "years"})
        assert "years" in schema and "age" not in schema
        with pytest.raises(SchemaError):
            make_schema().rename({"missing": "x"})

    def test_merge_disjoint(self):
        left = Schema([Column("a"), Column("b")])
        right = Schema([Column("c")])
        assert left.merge_disjoint(right).names == ["a", "b", "c"]
        with pytest.raises(SchemaError):
            left.merge_disjoint(Schema([Column("a")]))

    def test_schema_of_helper_and_equality(self):
        one = Schema.of(a=DataType.INT, b=DataType.FLOAT)
        two = Schema([Column("a", DataType.INT), Column("b", DataType.FLOAT)])
        assert one == two

    def test_with_column(self):
        schema = make_schema().with_column(Column("extra", DataType.FLOAT))
        assert schema.names[-1] == "extra"

    def test_contains_and_len_and_iter(self):
        schema = make_schema()
        assert "id" in schema
        assert len(schema) == 4
        assert [c.name for c in schema] == ["id", "label", "age", "name"]


class TestSourceDescription:
    def test_overall_null_ratio(self):
        description = SourceDescription(
            name="t", schema=make_schema(), n_rows=10, null_ratio={"a": 0.2, "b": 0.4}
        )
        assert description.overall_null_ratio() == pytest.approx(0.3)
        assert description.n_columns == 4

    def test_empty_null_ratio(self):
        description = SourceDescription(name="t", schema=make_schema(), n_rows=0)
        assert description.overall_null_ratio() == 0.0

"""Tests for repro.relational.table."""

import numpy as np
import pytest

from repro.exceptions import TableError
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import NULL, DataType


@pytest.fixture
def table():
    schema = Schema(
        [
            Column("id", DataType.INT, is_key=True),
            Column("label", DataType.INT, is_label=True),
            Column("x", DataType.FLOAT),
            Column("name", DataType.STRING),
        ]
    )
    return Table.from_rows(
        "t",
        schema,
        [
            (1, 0, 1.5, "a"),
            (2, 1, NULL, "b"),
            (3, 0, 3.0, "c"),
        ],
    )


class TestConstruction:
    def test_from_rows_shape(self, table):
        assert table.shape == (3, 4)
        assert len(table) == 3

    def test_ragged_columns_rejected(self):
        schema = Schema([Column("a", DataType.INT), Column("b", DataType.INT)])
        with pytest.raises(TableError):
            Table("t", schema, {"a": [1, 2], "b": [1]})

    def test_row_width_mismatch_rejected(self):
        schema = Schema([Column("a", DataType.INT)])
        with pytest.raises(TableError):
            Table.from_rows("t", schema, [(1, 2)])

    def test_from_dict_infers_types(self):
        table = Table.from_dict("t", {"a": [1, 2], "b": ["x", "y"]})
        assert table.schema["a"].dtype is DataType.INT
        assert table.schema["b"].dtype is DataType.STRING

    def test_from_dict_with_overrides(self):
        table = Table.from_dict("t", {"m": [0, 1]}, m={"is_label": True})
        assert table.schema["m"].is_label

    def test_from_dict_rejects_unknown_override_keys(self):
        # A typo like `is_lable` must fail loudly instead of passing silently.
        with pytest.raises(TableError, match="is_lable"):
            Table.from_dict("t", {"m": [0, 1]}, m={"is_lable": True})

    def test_from_dict_rejects_overrides_for_unknown_columns(self):
        with pytest.raises(TableError, match="missing"):
            Table.from_dict("t", {"m": [0, 1]}, missing={"is_key": True})

    def test_from_dict_accepts_numpy_arrays(self):
        table = Table.from_dict(
            "t",
            {"a": np.arange(3), "b": np.array([1.5, np.nan, 3.0])},
            a={"is_key": True},
        )
        assert table.schema["a"].dtype is DataType.INT
        assert table.schema["b"].dtype is DataType.FLOAT
        assert table.cell(1, "b") is NULL

    def test_from_matrix_and_nan_to_null(self):
        matrix = np.array([[1.0, np.nan], [2.0, 3.0]])
        table = Table.from_matrix("t", matrix, ["a", "b"])
        assert table.cell(0, "b") is NULL
        assert table.cell(1, "b") == pytest.approx(3.0)

    def test_from_matrix_rejects_bad_shapes(self):
        with pytest.raises(TableError):
            Table.from_matrix("t", np.zeros(3))
        with pytest.raises(TableError):
            Table.from_matrix("t", np.zeros((2, 2)), ["only_one"])

    def test_empty_table(self):
        table = Table.empty("t", Schema([Column("a", DataType.INT)]))
        assert table.n_rows == 0
        assert table.null_ratio() == 0.0


class TestAccess:
    def test_column_returns_copy(self, table):
        values = table.column("x")
        values[0] = 999
        assert table.cell(0, "x") == pytest.approx(1.5)

    def test_row_and_rows(self, table):
        assert table.row(0) == (1, 0, 1.5, "a")
        assert len(list(table.rows())) == 3

    def test_row_out_of_range(self, table):
        with pytest.raises(TableError):
            table.row(10)

    def test_unknown_column(self, table):
        with pytest.raises(TableError):
            table.column("missing")


class TestOperators:
    def test_project_and_drop(self, table):
        assert table.project(["x", "id"]).schema.names == ["x", "id"]
        assert "name" not in table.drop(["name"]).schema

    def test_rename(self, table):
        renamed = table.rename({"x": "feature"})
        assert renamed.column("feature") == table.column("x")

    def test_filter_and_take(self, table):
        kept = table.filter(lambda row: row["label"] == 0)
        assert kept.n_rows == 2
        taken = table.take([2, 0])
        assert taken.column("id") == [3, 1]
        with pytest.raises(TableError):
            table.take([99])

    def test_head(self, table):
        assert table.head(2).n_rows == 2
        assert table.head(10).n_rows == 3

    def test_with_column(self, table):
        extended = table.with_column(Column("y", DataType.FLOAT), [0.0, 1.0, 2.0])
        assert extended.column("y") == [0.0, 1.0, 2.0]
        with pytest.raises(TableError):
            table.with_column(Column("y", DataType.FLOAT), [1.0])

    def test_set_roles(self, table):
        updated = table.set_roles(keys=["name"], label="x")
        assert updated.schema["name"].is_key
        assert updated.schema["x"].is_label
        assert not updated.schema["label"].is_label


class TestAnalytics:
    def test_null_ratio(self, table):
        assert table.null_ratio("x") == pytest.approx(1 / 3)
        assert table.null_ratio() == pytest.approx(1 / 12)

    def test_distinct_values(self, table):
        assert table.distinct_values("label") == {0, 1}

    def test_to_matrix_replaces_nulls(self, table):
        matrix = table.to_matrix(["x"])
        assert matrix[1, 0] == 0.0
        matrix_custom = table.to_matrix(["x"], null_value=-1.0)
        assert matrix_custom[1, 0] == -1.0

    def test_to_matrix_rejects_non_numeric(self, table):
        with pytest.raises(TableError):
            table.to_matrix(["name"])

    def test_to_matrix_defaults_to_numeric_columns(self, table):
        assert table.to_matrix().shape == (3, 3)

    def test_describe(self, table):
        description = table.describe(silo="er")
        assert description.silo == "er"
        assert description.n_rows == 3
        assert description.null_ratio["x"] == pytest.approx(1 / 3)

    def test_equals(self, table):
        duplicate = Table.from_rows("other", table.schema, table.to_rows())
        assert table.equals(duplicate)
        assert not table.equals(duplicate, check_name=True)
        assert not table.equals(duplicate.take([0, 1]))

    def test_to_dict_roundtrip(self, table):
        rebuilt = Table("t", table.schema, table.to_dict())
        assert table.equals(rebuilt)


class TestColumnarStorage:
    def test_construction_does_not_freeze_or_alias_caller_arrays(self):
        source = np.arange(3)
        table = Table.from_dict("t", {"a": source})
        source[0] = 99  # caller's array must stay writable...
        assert table.cell(0, "a") == 0  # ...and the table must not see the write

    def test_equals_compares_integers_exactly(self):
        a = Table.from_dict("t", {"x": [1_000_000]})
        b = Table.from_dict("t", {"x": [1_000_001]})
        assert not a.equals(b)

    def test_take_rejects_fractional_indices(self, table):
        with pytest.raises(TableError, match="integers"):
            table.take([1.7])

    def test_int_coercion_rejects_inf_and_overflow(self):
        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError):
            Table.from_dict("t", {"x": np.array([1.0, np.inf])},
                            x={"dtype": DataType.INT})
        with pytest.raises(SchemaError):
            Table.from_dict("t", {"x": np.array([1e30])}, x={"dtype": DataType.INT})

    def test_nan_string_fallback_is_null(self):
        # The element-wise fallback (forced by the NULL sentinel) must mark a
        # coerced NaN invalid, like the vectorized fast path does.
        table = Table.from_dict("t", {"x": [NULL, "nan", 1.0]},
                                x={"dtype": DataType.FLOAT})
        assert table.cell(1, "x") is NULL
        assert table.null_ratio("x") == pytest.approx(2 / 3)
        assert table.equals(table)


    def test_column_values_and_validity(self, table):
        values = table.column_values("x")
        valid = table.column_valid("x")
        assert values.dtype == np.float64
        assert valid.tolist() == [True, False, True]
        assert values[0] == pytest.approx(1.5)

    def test_storage_arrays_are_read_only(self, table):
        with pytest.raises(ValueError):
            table.column_values("x")[0] = 7.0
        with pytest.raises(ValueError):
            table.column_valid("x")[0] = False

    def test_int_column_storage(self, table):
        assert table.column_values("id").dtype == np.int64

    def test_unknown_column_raises(self, table):
        with pytest.raises(TableError):
            table.column_values("missing")

    def test_derived_tables_share_storage(self, table):
        projected = table.project(["x"])
        assert projected.column_values("x") is table.column_values("x")


class TestToMatrixCache:
    def test_same_projection_returns_cached_array(self, table):
        first = table.to_matrix(["x"])
        second = table.to_matrix(["x"])
        assert first is second

    def test_cached_matrix_is_read_only(self, table):
        matrix = table.to_matrix(["x"])
        with pytest.raises(ValueError):
            matrix[0, 0] = 123.0

    def test_distinct_projections_are_distinct_entries(self, table):
        assert table.to_matrix(["x"]) is not table.to_matrix(["x", "id"])
        assert table.to_matrix(["x"]) is not table.to_matrix(["x"], null_value=-1.0)

    def test_default_projection_shares_explicit_cache_entry(self, table):
        default = table.to_matrix()
        explicit = table.to_matrix(["id", "label", "x"])
        assert default is explicit

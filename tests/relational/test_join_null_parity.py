"""NULL and duplicate-key parity: vectorized joins vs the seed implementation.

The vectorized hash joins and the key-based resolver must reproduce the
row-at-a-time seed semantics *row for row*: NULL keys never match (not even
another NULL), duplicate keys expand combinatorially in deterministic order,
and overlapping columns prefer the left value with NULL fallback. A compact
reference implementation of the seed algorithms lives below; every case is
checked both order-sensitively (provenance lists) and via an
order-insensitive canonical form (sorted row multisets), so a future
reordering optimization would still be caught only when it changes the
*content* of the result.
"""

import numpy as np
import pytest

from repro.metadata.entity_resolution import KeyBasedResolver
from repro.relational.joins import full_outer_join, inner_join, left_join
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import NULL, DataType, is_null


# -- reference (seed) implementations --------------------------------------------


def _key(table, row, keys):
    values = tuple(table.cell(row, k) for k in keys)
    if any(is_null(v) for v in values):
        return None  # NULL keys never match anything
    return values


def reference_join(left, right, on, *, keep_left, keep_right):
    index = {}
    for j in range(right.n_rows):
        key = _key(right, j, on)
        if key is not None:
            index.setdefault(key, []).append(j)
    pairs = []
    matched = set()
    for i in range(left.n_rows):
        key = _key(left, i, on)
        hits = index.get(key, []) if key is not None else []
        if hits:
            for j in hits:
                pairs.append((i, j))
                matched.add(j)
        elif keep_left:
            pairs.append((i, -1))
    if keep_right:
        for j in range(right.n_rows):
            if j not in matched:
                pairs.append((-1, j))
    return pairs


def reference_emit(left, right, pairs, target_columns):
    rows = []
    for i, j in pairs:
        row = []
        for name in target_columns:
            value = NULL
            if name in left.schema and i >= 0:
                value = left.cell(i, name)
            if is_null(value) and name in right.schema and j >= 0:
                value = right.cell(j, name)
            row.append("∅" if is_null(value) else value)
        rows.append(tuple(row))
    return rows


def reference_resolve(left, right, pairs):
    index = {}
    for j in range(right.n_rows):
        key = tuple(right.cell(j, rc) for _, rc in pairs)
        if any(is_null(v) for v in key):
            continue
        index.setdefault(key, []).append(j)
    matches, used = [], set()
    for i in range(left.n_rows):
        key = tuple(left.cell(i, lc) for lc, _ in pairs)
        if any(is_null(v) for v in key):
            continue
        for j in index.get(key, []):
            if j in used:
                continue
            matches.append((i, j))
            used.add(j)
            break
    return matches


def canonical(rows):
    """Order-insensitive canonical form: sorted tuple-of-stringified-rows."""
    return sorted(tuple(str(v) for v in row) for row in rows)


def result_rows(result):
    out = []
    for row in result.table.rows():
        out.append(tuple("∅" if is_null(v) else v for v in row))
    return out


JOINS = {
    "inner": (inner_join, dict(keep_left=False, keep_right=False)),
    "left": (left_join, dict(keep_left=True, keep_right=False)),
    "full_outer": (full_outer_join, dict(keep_left=True, keep_right=True)),
}


def make_tables(left_keys, right_keys, *, key_dtype=DataType.INT):
    left = Table(
        "L",
        Schema([Column("k", key_dtype, is_key=True), Column("lv", DataType.FLOAT)]),
        {"k": list(left_keys), "lv": [float(10 + i) for i in range(len(left_keys))]},
    )
    right = Table(
        "R",
        Schema([Column("k", key_dtype, is_key=True), Column("rv", DataType.FLOAT)]),
        {"k": list(right_keys), "rv": [float(100 + i) for i in range(len(right_keys))]},
    )
    return left, right


KEY_CASES = {
    "null_keys_both_sides": ([1, NULL, 2, NULL], [NULL, 2, NULL, 3]),
    "duplicate_left_keys": ([1, 1, 2, 1], [1, 2, 3]),
    "duplicate_right_keys": ([1, 2], [1, 1, 2, 1]),
    "duplicates_and_nulls": ([1, 1, NULL, 2, NULL, 1], [1, NULL, 1, 2, NULL, 2]),
    "disjoint": ([1, 2], [3, 4]),
    "all_null": ([NULL, NULL], [NULL]),
}


class TestJoinNullParity:
    @pytest.mark.parametrize("flavour", list(JOINS))
    @pytest.mark.parametrize("case", list(KEY_CASES))
    def test_matches_seed_row_for_row(self, flavour, case):
        operator, flags = JOINS[flavour]
        left, right = make_tables(*KEY_CASES[case])
        result = operator(left, right, on=["k"])
        pairs = reference_join(left, right, ["k"], **flags)
        # Order-sensitive: provenance must match the seed iteration order.
        assert list(zip(result.left_rows, result.right_rows)) == pairs
        # Content: emitted rows must match cell for cell.
        expected = reference_emit(left, right, pairs, result.table.schema.names)
        got = result_rows(result)
        assert [tuple(str(v) for v in r) for r in got] == [
            tuple(str(v) for v in r) for r in expected
        ]
        # Order-insensitive canonical comparison (robust to future reordering).
        assert canonical(got) == canonical(expected)

    @pytest.mark.parametrize("flavour", list(JOINS))
    def test_string_keys_with_nulls(self, flavour):
        operator, flags = JOINS[flavour]
        left, right = make_tables(
            ["a", NULL, "b", "a"], ["a", "c", NULL, "a"], key_dtype=DataType.STRING
        )
        result = operator(left, right, on=["k"])
        pairs = reference_join(left, right, ["k"], **flags)
        assert list(zip(result.left_rows, result.right_rows)) == pairs
        expected = reference_emit(left, right, pairs, result.table.schema.names)
        assert canonical(result_rows(result)) == canonical(expected)

    def test_composite_keys_with_partial_nulls(self):
        left = Table.from_dict("L", {"a": [1, 1, NULL, 2], "b": ["x", NULL, "x", "y"],
                                     "v": [1.0, 2.0, 3.0, 4.0]})
        right = Table.from_dict("R", {"a": [1, 1, 2, NULL], "b": ["x", "x", "y", "y"],
                                      "w": [5.0, 6.0, 7.0, 8.0]})
        result = full_outer_join(left, right, on=["a", "b"])
        pairs = reference_join(left, right, ["a", "b"], keep_left=True, keep_right=True)
        assert list(zip(result.left_rows, result.right_rows)) == pairs
        expected = reference_emit(left, right, pairs, result.table.schema.names)
        assert canonical(result_rows(result)) == canonical(expected)

    def test_overlapping_column_null_fallback(self):
        """A NULL left value falls back to the right value, as in the seed."""
        left = Table.from_dict("L", {"k": [1, 2], "shared": [NULL, 20.0]})
        right = Table.from_dict("R", {"k": [1, 2], "shared": [5.0, 99.0]})
        result = inner_join(left, right, on=["k"])
        assert result.table.cell(0, "shared") == pytest.approx(5.0)
        assert result.table.cell(1, "shared") == pytest.approx(20.0)

    def test_numeric_cross_dtype_keys_match(self):
        """INT 2 must join FLOAT 2.0 (Python == semantics of the seed)."""
        left = Table.from_dict("L", {"k": [1, 2], "v": [1.0, 2.0]})
        right = Table.from_dict("R", {"k": [2.0, 3.5], "w": [7.0, 8.0]})
        result = inner_join(left, right, on=["k"])
        assert list(zip(result.left_rows, result.right_rows)) == [(1, 0)]

    def test_large_int64_keys_join_exactly(self):
        """Integer keys above 2**53 must not collapse through float64."""
        big = 2**53
        left = Table.from_dict("L", {"k": [big, big + 1], "v": [1.0, 2.0]})
        right = Table.from_dict("R", {"k": [big + 1, big + 2], "w": [7.0, 8.0]})
        result = inner_join(left, right, on=["k"])
        assert list(zip(result.left_rows, result.right_rows)) == [(1, 0)]
        resolver = KeyBasedResolver([("k", "k")])
        assert [(m.left_row, m.right_row) for m in resolver.resolve(left, right)] == [(1, 0)]

    def test_int_vs_float_keys_compare_exactly(self):
        """INT 2**53+1 must not match FLOAT 2.0**53 (Python == is exact),
        while small integral floats still match their int twins."""
        big = 2**53
        left = Table.from_dict("L", {"k": [big + 1, 2], "v": [1.0, 2.0]})
        right = Table.from_dict(
            "R", {"k": [float(big), 2.0, 2.5], "w": [7.0, 8.0, 9.0]},
            k={"dtype": DataType.FLOAT},
        )
        result = inner_join(left, right, on=["k"])
        assert list(zip(result.left_rows, result.right_rows)) == [(1, 1)]

    def test_int_target_column_merge_is_exact(self):
        """Overlapping INT/FLOAT columns must not round ints through float64."""
        big = 2**53
        left = Table.from_dict("L", {"k": [1, 2], "v": [big + 1, big + 3]})
        right = Table.from_dict(
            "R", {"k": [1, 2], "v": [5.0, 6.0]}, v={"dtype": DataType.FLOAT}
        )
        result = inner_join(left, right, on=["k"])
        assert result.table.column("v") == [big + 1, big + 3]

    def test_string_never_matches_number(self):
        left = Table.from_dict("L", {"k": ["2", "x"], "v": [1.0, 2.0]})
        right = Table.from_dict("R", {"k": [2, 3], "w": [7.0, 8.0]})
        result = inner_join(left, right, on=["k"])
        assert result.table.n_rows == 0


class TestResolverNullParity:
    @pytest.mark.parametrize("case", list(KEY_CASES))
    def test_greedy_one_to_one_matches_seed(self, case):
        left, right = make_tables(*KEY_CASES[case])
        resolver = KeyBasedResolver([("k", "k")])
        got = [(m.left_row, m.right_row) for m in resolver.resolve(left, right)]
        assert got == reference_resolve(left, right, [("k", "k")])

    def test_resolve_index_equals_resolve(self):
        left, right = make_tables(*KEY_CASES["duplicates_and_nulls"])
        resolver = KeyBasedResolver([("k", "k")])
        left_rows, right_rows = resolver.resolve_index(left, right)
        assert [(m.left_row, m.right_row) for m in resolver.resolve(left, right)] == list(
            zip(left_rows.tolist(), right_rows.tolist())
        )

    def test_large_randomized_parity(self):
        rng = np.random.default_rng(42)
        n_left, n_right = 500, 400
        left_keys = [
            NULL if rng.random() < 0.15 else int(rng.integers(0, 80))
            for _ in range(n_left)
        ]
        right_keys = [
            NULL if rng.random() < 0.15 else int(rng.integers(0, 80))
            for _ in range(n_right)
        ]
        left, right = make_tables(left_keys, right_keys)
        resolver = KeyBasedResolver([("k", "k")])
        got = [(m.left_row, m.right_row) for m in resolver.resolve(left, right)]
        assert got == reference_resolve(left, right, [("k", "k")])
        for flavour, (operator, flags) in JOINS.items():
            result = operator(left, right, on=["k"])
            pairs = reference_join(left, right, ["k"], **flags)
            assert list(zip(result.left_rows, result.right_rows)) == pairs, flavour
            expected = reference_emit(left, right, pairs, result.table.schema.names)
            assert canonical(result_rows(result)) == canonical(expected), flavour

"""Tests for repro.system.executor under all three strategies."""

import numpy as np
import pytest

from repro.costmodel.decision import Decision
from repro.datagen.hospital import hospital_integrated_dataset
from repro.datagen.scenarios import ScenarioSpec, generate_scenario_dataset
from repro.exceptions import PlanError
from repro.metadata.mappings import ScenarioType
from repro.silos.orchestrator import Orchestrator
from repro.silos.silo import DataSilo
from repro.system.executor import Executor
from repro.system.plan import ExecutionPlan, ModelSpec


def make_plan(dataset, strategy, model=None):
    return ExecutionPlan(strategy=strategy, dataset=dataset, model=model or ModelSpec())


@pytest.fixture
def scenario_inner():
    return generate_scenario_dataset(
        ScenarioSpec(
            scenario=ScenarioType.INNER_JOIN,
            base_rows=60,
            other_rows=50,
            base_features=3,
            other_features=3,
            overlap_rows=40,
            seed=5,
        )
    )


@pytest.fixture
def hospital_executor(hospital):
    s1, s2 = hospital
    orchestrator = Orchestrator()
    er, pulmonary = DataSilo("er"), DataSilo("pulmonary")
    er.add_table(s1)
    pulmonary.add_table(s2)
    orchestrator.register_silo(er)
    orchestrator.register_silo(pulmonary)
    return Executor(orchestrator)


class TestCentralStrategies:
    def test_materialized_classification(self, hospital_executor, hospital_dataset):
        plan = make_plan(
            hospital_dataset, Decision.MATERIALIZE, ModelSpec(task="classification", n_iterations=30)
        )
        result = hospital_executor.execute(plan)
        assert "accuracy" in result.metrics
        assert result.bytes_transferred > 0

    def test_factorized_equals_materialized_model(self, scenario_inner):
        executor = Executor()
        spec = ModelSpec(task="regression", learning_rate=0.05, n_iterations=40)
        factorized = executor.execute(make_plan(scenario_inner, Decision.FACTORIZE, spec))
        materialized = Executor().execute(make_plan(scenario_inner, Decision.MATERIALIZE, spec))
        assert np.allclose(factorized.model.coef_, materialized.model.coef_)
        assert factorized.metrics["mse"] == pytest.approx(materialized.metrics["mse"])

    def test_factorized_traffic_accounted_per_iteration(self, scenario_inner):
        executor = Executor()
        spec = ModelSpec(task="regression", n_iterations=10)
        result = executor.execute(make_plan(scenario_inner, Decision.FACTORIZE, spec))
        # weights out + partials back per source per iteration
        assert result.n_messages == 10 * scenario_inner.n_sources * 2

    def test_clustering_and_nmf_tasks(self, scenario_inner):
        executor = Executor()
        clustering = executor.execute(
            make_plan(scenario_inner, Decision.FACTORIZE, ModelSpec(task="clustering", n_iterations=10))
        )
        assert "inertia" in clustering.metrics
        nmf_plan = make_plan(
            scenario_inner, Decision.MATERIALIZE, ModelSpec(task="nmf", n_iterations=10)
        )
        nmf = Executor().execute(nmf_plan)
        assert "reconstruction_error" in nmf.metrics

    def test_unknown_task_rejected(self, scenario_inner):
        with pytest.raises(PlanError):
            Executor().execute(
                make_plan(scenario_inner, Decision.MATERIALIZE, ModelSpec(task="gan"))
            )

    def test_classification_without_labels_rejected(self, scenario_inner):
        unlabeled = generate_scenario_dataset(
            ScenarioSpec(scenario=ScenarioType.INNER_JOIN, base_rows=20, other_rows=20, overlap_rows=10)
        )
        unlabeled.label_column = None
        with pytest.raises(PlanError):
            Executor().execute(make_plan(unlabeled, Decision.MATERIALIZE, ModelSpec()))


class TestFederatedStrategy:
    def test_vertical_federated_training(self, scenario_inner):
        result = Executor().execute(
            make_plan(
                scenario_inner,
                Decision.FEDERATE,
                ModelSpec(task="regression", learning_rate=0.05, n_iterations=30),
            )
        )
        assert result.metrics["aligned_rows"] == scenario_inner.n_target_rows
        assert result.metrics["encryption_operations"] > 0
        assert result.bytes_transferred > 0

    def test_horizontal_federated_training(self):
        dataset = generate_scenario_dataset(
            ScenarioSpec(scenario=ScenarioType.UNION, base_rows=60, other_rows=50, seed=2)
        )
        result = Executor().execute(
            make_plan(dataset, Decision.FEDERATE, ModelSpec(task="classification", n_iterations=20))
        )
        assert "final_loss" in result.metrics

    def test_vertical_without_labels_rejected(self, scenario_inner):
        scenario_inner.label_column = None
        with pytest.raises(PlanError):
            Executor().execute(make_plan(scenario_inner, Decision.FEDERATE, ModelSpec()))

    def test_vfl_on_hospital_inner_join(self):
        dataset = hospital_integrated_dataset(ScenarioType.INNER_JOIN)
        # Only one shared row (Jane): training runs but stays tiny.
        result = Executor().execute(
            make_plan(dataset, Decision.FEDERATE, ModelSpec(task="regression", n_iterations=5,
                                                            learning_rate=0.0001))
        )
        assert result.metrics["aligned_rows"] == 1

"""The request-based facade API: config objects, handles, shims."""

import warnings

import numpy as np
import pytest

from repro.exceptions import CatalogError, PlanError, ServiceError
from repro.metadata.mappings import ScenarioType
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType
from repro.system import (
    Amalur,
    IntegrationConfig,
    ModelHandle,
    ModelSpec,
    PredictRequest,
    TrainRequest,
)

HOSPITAL_CONFIG = IntegrationConfig(
    base="S1", other="S2", target_columns=["m", "a", "hr", "o"],
    scenario=ScenarioType.FULL_OUTER_JOIN, label_column="m",
)


@pytest.fixture
def amalur(hospital):
    s1, s2 = hospital
    system = Amalur()
    system.add_silo("er")
    system.add_table("er", s1)
    system.add_silo("pulmonary")
    system.add_table("pulmonary", s2)
    return system


class TestIntegrationConfig:
    def test_config_path_equals_legacy_path(self, amalur):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            dataset = amalur.integrate(HOSPITAL_CONFIG)  # canonical: no warning
        with pytest.warns(DeprecationWarning):
            legacy = amalur.integrate(
                "S1", "S2", ["m", "a", "hr", "o"],
                ScenarioType.FULL_OUTER_JOIN, label_column="m",
            )
        assert np.allclose(dataset.materialize(), legacy.materialize())

    def test_config_records_di_metadata(self, amalur):
        amalur.integrate(HOSPITAL_CONFIG)
        record = amalur.catalog.di_metadata("S1", "S2")
        assert record.column_matches
        assert record.row_matches
        assert record.schema_mapping.classify() is ScenarioType.FULL_OUTER_JOIN

    def test_mixing_config_and_positionals_rejected(self, amalur):
        with pytest.raises(ServiceError):
            amalur.integrate(HOSPITAL_CONFIG, "S2")

    def test_empty_target_columns_rejected(self):
        with pytest.raises(ServiceError):
            IntegrationConfig(
                base="S1", other="S2", target_columns=[],
                scenario=ScenarioType.INNER_JOIN,
            )

    def test_unknown_table_still_catalog_error(self, amalur):
        config = IntegrationConfig(
            base="S1", other="missing", target_columns=["m"],
            scenario=ScenarioType.INNER_JOIN,
        )
        with pytest.raises(CatalogError):
            amalur.integrate(config)


class TestTrainRequestAndHandles:
    def test_train_request_returns_handle(self, amalur):
        dataset = amalur.integrate(HOSPITAL_CONFIG)
        result = amalur.train(
            TrainRequest(
                model=ModelSpec(task="classification", n_iterations=10),
                dataset=dataset,
                model_name="mortality",
            )
        )
        assert result.handle == ModelHandle(
            name="mortality", task="classification", dataset="T", auto_named=False
        )
        assert amalur.catalog.model("mortality").model_type == "classification"
        assert amalur.model_result(result.handle) is result

    def test_counter_naming_remains_the_default(self, amalur):
        dataset = amalur.integrate(HOSPITAL_CONFIG)
        result = amalur.train(
            TrainRequest(model=ModelSpec(task="classification", n_iterations=5),
                         dataset=dataset)
        )
        assert result.handle.name == "model_1"
        assert result.handle.auto_named is True
        # handle lookups never warn; auto-named *string* lookups do
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            amalur.catalog.model(result.handle)
        with pytest.warns(DeprecationWarning):
            amalur.catalog.model("model_1")

    def test_legacy_train_signature_still_works(self, amalur):
        dataset = amalur.integrate(HOSPITAL_CONFIG)
        with pytest.warns(DeprecationWarning):
            result = amalur.train(
                dataset, ModelSpec(task="classification", n_iterations=5)
            )
        assert result.handle.name == "model_1"
        assert amalur.catalog.model_names == ["model_1"]

    def test_train_without_dataset_rejected(self, amalur):
        with pytest.raises(ServiceError):
            amalur.train(TrainRequest(model=ModelSpec(task="classification")))

    def test_predict_with_handle_and_row_range(self, amalur):
        dataset = amalur.integrate(HOSPITAL_CONFIG)
        result = amalur.train(
            TrainRequest(model=ModelSpec(task="classification", n_iterations=10),
                         dataset=dataset, model_name="m1")
        )
        full = amalur.predict(dataset, PredictRequest(model=result.handle))
        assert full.shape == (dataset.n_target_rows,)
        window = amalur.predict(
            dataset, PredictRequest(model="m1", row_range=(1, 4))
        )
        assert np.array_equal(window, full[1:4])
        # default: the most recently trained model
        assert np.array_equal(amalur.predict(dataset), full)

    def test_predict_unknown_model_rejected(self, amalur):
        dataset = amalur.integrate(HOSPITAL_CONFIG)
        with pytest.raises(ServiceError):
            amalur.predict(dataset, PredictRequest(model="ghost"))

    def test_non_binary_labels_raise_plan_error(self, amalur):
        """Learner ValueErrors surface as PlanError, not bare ValueError."""
        table = Table(
            "S3",
            Schema([
                Column("id", DataType.INT, is_key=True),
                Column("y", DataType.INT, is_label=True),
                Column("x", DataType.FLOAT),
            ]),
            {"id": [0, 1, 2], "y": [0, 1, 2], "x": [0.1, 0.2, 0.3]},
        )
        amalur.add_silo("extra")
        amalur.add_table("extra", table)
        amalur.add_table("er", Table(
            "S4",
            Schema([
                Column("id", DataType.INT, is_key=True),
                Column("z", DataType.FLOAT),
            ]),
            {"id": [0, 1, 2], "z": [1.0, 2.0, 3.0]},
        ))
        dataset = amalur.integrate(IntegrationConfig(
            base="S3", other="S4", target_columns=["y", "x", "z"],
            scenario=ScenarioType.INNER_JOIN, label_column="y",
        ))
        with pytest.raises(PlanError):
            amalur.train(TrainRequest(
                model=ModelSpec(task="classification", n_iterations=3),
                dataset=dataset,
            ))


class TestOrchestratorRegistration:
    def test_add_table_registers_idempotently(self, amalur, hospital):
        s1, _ = hospital
        orchestrator = amalur.orchestrator
        assert orchestrator.silo_of_table("S1").name == "er"
        # re-adding the same table only refreshes that one mapping
        amalur.add_table("er", s1)
        assert orchestrator.silo_of_table("S1").name == "er"

    def test_register_table_unknown_table_rejected(self, amalur):
        with pytest.raises(CatalogError):
            amalur.orchestrator.register_table("er", "nope")


class TestOpenSessionFacade:
    def test_open_session_serves_catalog_tables(self, amalur):
        session = amalur.open_session(HOSPITAL_CONFIG)
        assert session.n_target_rows == 6
        batch_dataset = amalur.integrate(HOSPITAL_CONFIG)
        assert np.allclose(
            session.dataset.materialize(), batch_dataset.materialize()
        )
        # the session run also recorded the DI metadata
        assert amalur.catalog.di_metadata("S1", "S2").column_matches

    def test_serve_builds_a_service(self, amalur):
        session = amalur.open_session(HOSPITAL_CONFIG)
        with amalur.serve(n_workers=2, max_queue=4) as service:
            service.register_session("hospital", session)
            result = service.train(
                "hospital",
                TrainRequest(model=ModelSpec(task="classification",
                                             n_iterations=10)),
            )
            assert result.handle.name == "default"
            scores = service.predict("hospital").predictions
            assert scores.shape == (6,)

"""Tests for repro.system.optimizer and repro.system.plan."""


from repro.costmodel.decision import Decision
from repro.datagen.hospital import hospital_integrated_dataset, hospital_tables
from repro.datagen.synthetic import SyntheticSiloSpec, generate_integrated_pair
from repro.metadata.mappings import ScenarioType
from repro.silos.orchestrator import Orchestrator
from repro.silos.silo import DataSilo, PrivacyLevel
from repro.system.optimizer import Optimizer
from repro.system.plan import ModelSpec, PlanStep


def orchestrator_with(privacy_s1=PrivacyLevel.OPEN, privacy_s2=PrivacyLevel.OPEN):
    s1, s2 = hospital_tables()
    orchestrator = Orchestrator()
    silo1 = DataSilo("er", privacy=privacy_s1)
    silo1.add_table(s1)
    silo2 = DataSilo("pulmonary", privacy=privacy_s2)
    silo2.add_table(s2)
    orchestrator.register_silo(silo1)
    orchestrator.register_silo(silo2)
    return orchestrator


class TestStrategySelection:
    def test_small_open_dataset_materializes(self, hospital_dataset):
        plan = Optimizer(orchestrator_with()).plan(hospital_dataset, ModelSpec())
        assert plan.strategy is Decision.MATERIALIZE
        assert plan.cost_breakdown is not None
        assert any("materialize" in step.description for step in plan.steps)

    def test_private_silo_forces_federated(self, hospital_dataset):
        orchestrator = orchestrator_with(privacy_s1=PrivacyLevel.PRIVATE)
        plan = Optimizer(orchestrator).plan(hospital_dataset, ModelSpec())
        assert plan.strategy is Decision.FEDERATE
        assert "private" in plan.explanation

    def test_high_redundancy_dataset_factorizes(self):
        dataset = generate_integrated_pair(
            SyntheticSiloSpec(
                base_rows=50_000,
                base_columns=1,
                other_rows=500,
                other_columns=100,
                redundancy_in_target=True,
                seed=0,
            )
        )
        plan = Optimizer().plan(dataset, ModelSpec(n_iterations=300))
        assert plan.strategy is Decision.FACTORIZE
        assert any("push model operators" in step.description for step in plan.steps)

    def test_optimizer_without_orchestrator_never_federates(self, hospital_dataset):
        plan = Optimizer().plan(hospital_dataset, ModelSpec())
        assert plan.strategy in (Decision.FACTORIZE, Decision.MATERIALIZE)

    def test_union_with_no_export_silo_federates(self):
        dataset = hospital_integrated_dataset(ScenarioType.UNION)
        orchestrator = orchestrator_with(privacy_s1=PrivacyLevel.AGGREGATES_ONLY)
        plan = Optimizer(orchestrator).plan(dataset, ModelSpec())
        assert plan.strategy is Decision.FEDERATE
        assert any("federated averaging" in step.description for step in plan.steps)


class TestPlanArtifacts:
    def test_describe_renders_steps_and_reason(self, hospital_dataset):
        plan = Optimizer(orchestrator_with()).plan(hospital_dataset, ModelSpec())
        text = plan.describe()
        assert "strategy:" in text and "reason:" in text and "1." in text

    def test_model_spec_describe(self):
        spec = ModelSpec(task="regression", learning_rate=0.1, n_iterations=10)
        assert "regression" in spec.describe()

    def test_plan_step_target_rendering(self, hospital_dataset):
        plan = Optimizer(orchestrator_with()).plan(hospital_dataset, ModelSpec())
        assert any(isinstance(step, PlanStep) and step.target for step in plan.steps)

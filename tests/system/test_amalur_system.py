"""End-to-end tests of the Amalur facade (paper Figure 3 workflow)."""

import numpy as np
import pytest

from repro.costmodel.decision import Decision
from repro.exceptions import CatalogError
from repro.metadata.mappings import ScenarioType
from repro.silos.silo import PrivacyLevel
from repro.system.amalur import Amalur
from repro.system.plan import ModelSpec


@pytest.fixture
def amalur_hospital(hospital):
    s1, s2 = hospital
    amalur = Amalur()
    amalur.add_silo("er")
    amalur.add_table("er", s1)
    amalur.add_silo("pulmonary")
    amalur.add_table("pulmonary", s2)
    return amalur


class TestWorkflow:
    def test_discovery_finds_the_pulmonary_table(self, amalur_hospital):
        candidates = amalur_hospital.discover("S1", label_column="m")
        assert candidates[0].table_name == "S2"
        assert "o" in candidates[0].new_features

    def test_integrate_records_di_metadata(self, amalur_hospital):
        dataset = amalur_hospital.integrate(
            "S1", "S2", ["m", "a", "hr", "o"], ScenarioType.FULL_OUTER_JOIN, label_column="m"
        )
        assert dataset.shape == (6, 4)
        record = amalur_hospital.catalog.di_metadata("S1", "S2")
        assert record.column_matches
        assert record.row_matches
        assert record.schema_mapping.classify() is ScenarioType.FULL_OUTER_JOIN

    def test_automatic_matching_reproduces_manual_metadata(self, amalur_hospital):
        """Automatic schema matching + ER must rebuild the Figure 2 target."""
        dataset = amalur_hospital.integrate(
            "S1", "S2", ["m", "a", "hr", "o"], ScenarioType.FULL_OUTER_JOIN, label_column="m"
        )
        from repro.datagen.hospital import hospital_integrated_dataset

        manual = hospital_integrated_dataset(ScenarioType.FULL_OUTER_JOIN)
        assert np.allclose(dataset.materialize(), manual.materialize())

    def test_train_registers_model_metadata(self, amalur_hospital):
        dataset = amalur_hospital.integrate(
            "S1", "S2", ["m", "a", "hr", "o"], ScenarioType.FULL_OUTER_JOIN, label_column="m"
        )
        result = amalur_hospital.train(dataset, ModelSpec(task="classification", n_iterations=20))
        assert result.strategy in (Decision.MATERIALIZE, Decision.FACTORIZE)
        assert amalur_hospital.catalog.model_names == ["model_1"]
        metadata = amalur_hospital.catalog.model("model_1")
        assert metadata.training_datasets == ["S1", "S2"]
        assert "accuracy" in metadata.metrics

    def test_private_silos_train_federated(self, hospital):
        s1, s2 = hospital
        amalur = Amalur()
        amalur.add_silo("er", privacy=PrivacyLevel.PRIVATE)
        amalur.add_table("er", s1)
        amalur.add_silo("pulmonary", privacy=PrivacyLevel.PRIVATE)
        amalur.add_table("pulmonary", s2)
        dataset = amalur.integrate(
            "S1", "S2", ["m", "a", "hr", "o"], ScenarioType.INNER_JOIN, label_column="m"
        )
        plan = amalur.plan(dataset, ModelSpec(task="regression", n_iterations=5, learning_rate=1e-4))
        assert plan.strategy is Decision.FEDERATE
        result = amalur.train(dataset, plan.model, plan=plan)
        assert result.metrics["aligned_rows"] == 1.0

    def test_network_traffic_visible_on_facade(self, amalur_hospital):
        dataset = amalur_hospital.integrate(
            "S1", "S2", ["m", "a", "hr", "o"], ScenarioType.FULL_OUTER_JOIN, label_column="m"
        )
        amalur_hospital.train(dataset, ModelSpec(task="classification", n_iterations=10))
        assert amalur_hospital.network.total_bytes > 0

    def test_unknown_table_raises(self, amalur_hospital):
        with pytest.raises(CatalogError):
            amalur_hospital.integrate(
                "S1", "missing", ["m"], ScenarioType.INNER_JOIN, label_column="m"
            )

    def test_tables_listing(self, amalur_hospital):
        assert amalur_hospital.tables == ["S1", "S2"]

"""Tests for repro.silos.orchestrator."""

import numpy as np
import pytest

from repro.exceptions import CatalogError, PrivacyError
from repro.silos.orchestrator import Orchestrator
from repro.silos.silo import DataSilo, PrivacyLevel


@pytest.fixture
def hospital_orchestrator(hospital):
    s1, s2 = hospital
    orchestrator = Orchestrator()
    er = DataSilo("er")
    er.add_table(s1)
    pulmonary = DataSilo("pulmonary")
    pulmonary.add_table(s2)
    orchestrator.register_silo(er)
    orchestrator.register_silo(pulmonary)
    return orchestrator


class TestRegistry:
    def test_silo_and_table_lookup(self, hospital_orchestrator):
        assert hospital_orchestrator.silo_names == ["er", "pulmonary"]
        assert hospital_orchestrator.silo("er").name == "er"
        assert hospital_orchestrator.silo_of_table("S2").name == "pulmonary"
        assert hospital_orchestrator.table_names == ["S1", "S2"]
        assert len(list(hospital_orchestrator.all_tables())) == 2

    def test_missing_lookups(self, hospital_orchestrator):
        with pytest.raises(CatalogError):
            hospital_orchestrator.silo("nope")
        with pytest.raises(CatalogError):
            hospital_orchestrator.silo_of_table("nope")


class TestMaterializedExecution:
    def test_export_accounts_bytes(self, hospital_orchestrator):
        tables = hospital_orchestrator.export_sources(["S1", "S2"])
        assert [t.name for t in tables] == ["S1", "S2"]
        assert hospital_orchestrator.network.total_bytes > 0
        assert hospital_orchestrator.network.n_messages == 2

    def test_export_blocked_by_privacy(self, hospital):
        s1, _ = hospital
        orchestrator = Orchestrator()
        silo = DataSilo("locked", privacy=PrivacyLevel.AGGREGATES_ONLY)
        silo.add_table(s1)
        orchestrator.register_silo(silo)
        with pytest.raises(PrivacyError):
            orchestrator.export_sources(["S1"])

    def test_materialize_target(self, hospital_orchestrator, hospital_dataset):
        target = hospital_orchestrator.materialize_target(hospital_dataset)
        assert target.shape == (6, 4)
        # Both source data matrices crossed the network.
        assert hospital_orchestrator.network.n_messages == 2

    def test_materialize_blocked_for_private_silo(self, hospital, hospital_dataset):
        s1, s2 = hospital
        orchestrator = Orchestrator()
        private = DataSilo("er", privacy=PrivacyLevel.AGGREGATES_ONLY)
        private.add_table(s1)
        open_silo = DataSilo("pulmonary")
        open_silo.add_table(s2)
        orchestrator.register_silo(private)
        orchestrator.register_silo(open_silo)
        with pytest.raises(PrivacyError):
            orchestrator.materialize_target(hospital_dataset)


class TestFactorizedExecution:
    def test_factorized_lmm_matches_central(self, hospital_orchestrator, hospital_dataset, rng):
        operand = rng.standard_normal((4, 2))
        result = hospital_orchestrator.factorized_lmm(hospital_dataset, operand)
        assert np.allclose(result, hospital_dataset.materialize() @ operand)
        # operand out + partial result back, per source
        assert hospital_orchestrator.network.n_messages == 4

    def test_factorized_transpose_lmm(self, hospital_orchestrator, hospital_dataset, rng):
        operand = rng.standard_normal((6, 3))
        result = hospital_orchestrator.factorized_transpose_lmm(hospital_dataset, operand)
        assert np.allclose(result, hospital_dataset.materialize().T @ operand)

    def test_pushdown_allowed_for_aggregates_only_silo(self, hospital, hospital_dataset, rng):
        s1, s2 = hospital
        orchestrator = Orchestrator()
        restricted = DataSilo("er", privacy=PrivacyLevel.AGGREGATES_ONLY)
        restricted.add_table(s1)
        open_silo = DataSilo("pulmonary")
        open_silo.add_table(s2)
        orchestrator.register_silo(restricted)
        orchestrator.register_silo(open_silo)
        operand = rng.standard_normal((4, 1))
        result = orchestrator.factorized_lmm(hospital_dataset, operand)
        assert np.allclose(result, hospital_dataset.materialize() @ operand)

    def test_pushdown_blocked_for_private_silo(self, hospital, hospital_dataset, rng):
        s1, s2 = hospital
        orchestrator = Orchestrator()
        private = DataSilo("er", privacy=PrivacyLevel.PRIVATE)
        private.add_table(s1)
        open_silo = DataSilo("pulmonary")
        open_silo.add_table(s2)
        orchestrator.register_silo(private)
        orchestrator.register_silo(open_silo)
        with pytest.raises(PrivacyError):
            orchestrator.factorized_lmm(hospital_dataset, rng.standard_normal((4, 1)))

"""Tests for repro.silos.silo and repro.silos.network."""

import numpy as np
import pytest

from repro.exceptions import CatalogError, PrivacyError
from repro.silos.network import SimulatedNetwork, TransferRecord
from repro.silos.silo import DataSilo, PrivacyLevel


class TestDataSilo:
    def test_add_and_lookup(self, hospital):
        s1, _ = hospital
        silo = DataSilo("er")
        silo.add_table(s1)
        assert silo.table("S1") is s1
        assert "S1" in silo
        assert silo.table_names == ["S1"]

    def test_missing_table(self):
        with pytest.raises(CatalogError):
            DataSilo("er").table("nope")

    def test_privacy_levels(self):
        assert DataSilo("a").allows_export
        aggregates = DataSilo("b", privacy=PrivacyLevel.AGGREGATES_ONLY)
        assert not aggregates.allows_export
        assert aggregates.allows_factorized_pushdown
        private = DataSilo("c", privacy=PrivacyLevel.PRIVATE)
        assert not private.allows_factorized_pushdown

    def test_export_respects_privacy(self, hospital):
        s1, _ = hospital
        silo = DataSilo("er", privacy=PrivacyLevel.AGGREGATES_ONLY)
        silo.add_table(s1)
        with pytest.raises(PrivacyError):
            silo.export_table("S1")
        open_silo = DataSilo("er2")
        open_silo.add_table(s1)
        assert open_silo.export_table("S1") is s1


class TestSimulatedNetwork:
    def test_byte_accounting_for_arrays(self):
        network = SimulatedNetwork()
        payload = np.zeros((10, 10))
        record = network.send("a", "b", "matrix", payload)
        assert record.n_bytes == payload.nbytes
        assert network.total_bytes == payload.nbytes
        assert network.n_messages == 1

    def test_byte_accounting_for_other_payloads(self):
        network = SimulatedNetwork()
        assert network.send("a", "b", "none", None).n_bytes == 0
        assert network.send("a", "b", "scalar", 3.0).n_bytes == 8
        assert network.send("a", "b", "text", "abcd").n_bytes == 4
        assert network.send("a", "b", "bytes", b"12345").n_bytes == 5
        assert network.send("a", "b", "list", [1.0, 2.0]).n_bytes == 16
        assert network.send("a", "b", "dict", {"k": 1.0}).n_bytes == 9

    def test_per_endpoint_accounting(self):
        network = SimulatedNetwork()
        network.send("a", "b", "x", np.zeros(2))
        network.send("b", "a", "y", np.zeros(4))
        assert network.bytes_sent_by("a") == 16
        assert network.bytes_received_by("a") == 32
        assert network.bytes_sent_by("c") == 0

    def test_estimated_time_includes_latency(self):
        network = SimulatedNetwork(bandwidth_bytes_per_s=1000.0, latency_s=0.5)
        network.send("a", "b", "x", np.zeros(125))  # 1000 bytes
        assert network.total_estimated_seconds() == pytest.approx(0.5 + 1.0)

    def test_reset(self):
        network = SimulatedNetwork()
        network.send("a", "b", "x", np.zeros(2))
        network.reset()
        assert network.total_bytes == 0 and network.n_messages == 0

    def test_transfer_record_time(self):
        record = TransferRecord("a", "b", "x", 2000)
        assert record.estimated_seconds(1000.0, 0.1) == pytest.approx(2.1)

"""Tests for the Morpheus heuristic, the Amalur cost model and the advisor."""

import pytest

from repro.costmodel.amalur_cost import AmalurCostModel
from repro.costmodel.decision import Decision, DecisionAdvisor, measure_ground_truth
from repro.costmodel.morpheus_rule import MorpheusRule
from repro.costmodel.parameters import CostParameters
from repro.datagen.synthetic import SyntheticSiloSpec, generate_integrated_pair
from repro.factorized.normalized_matrix import AmalurMatrix


def star_parameters(base_rows, dim_rows, dim_cols, reuse_columns=1):
    """Key–foreign-key join parameters (redundancy in the target)."""
    return CostParameters(
        source_shapes=[(base_rows, 1), (dim_rows, dim_cols)],
        n_target_rows=base_rows,
        n_target_columns=1 + dim_cols,
        operand_columns=reuse_columns,
    )


class TestMorpheusRule:
    def test_factorizes_high_tuple_ratio(self):
        parameters = star_parameters(base_rows=100_000, dim_rows=1_000, dim_cols=100)
        assert MorpheusRule().predict_factorize(parameters)

    def test_materializes_low_tuple_ratio(self):
        parameters = star_parameters(base_rows=1_000, dim_rows=900, dim_cols=100)
        assert not MorpheusRule().predict_factorize(parameters)

    def test_feature_ratio_threshold(self):
        # The entity table has 1 column and the dimension table 100, so the
        # source feature ratio is 101; an (artificially) stricter threshold
        # must veto factorization even when the tuple ratio is high.
        parameters = star_parameters(base_rows=100_000, dim_rows=1_000, dim_cols=100)
        strict = MorpheusRule(feature_ratio_threshold=500.0)
        assert not strict.predict_factorize(parameters)

    def test_explain_mentions_both_ratios(self):
        parameters = star_parameters(1000, 100, 10)
        text = MorpheusRule().explain(parameters)
        assert "tuple_ratio" in text and "feature_ratio" in text

    def test_ignores_redundancy_information(self):
        """The baseline's blind spot: source redundancy does not change it."""
        plain = star_parameters(10_000, 2_000, 100)
        redundant = CostParameters(
            source_shapes=plain.source_shapes,
            n_target_rows=plain.n_target_rows,
            n_target_columns=plain.n_target_columns,
            redundant_cells=50_000,
        )
        rule = MorpheusRule()
        assert rule.predict_factorize(plain) == rule.predict_factorize(redundant)


class TestAmalurCostModel:
    def test_factorize_wins_with_target_redundancy_and_reuse(self):
        parameters = star_parameters(base_rows=50_000, dim_rows=1_000, dim_cols=100)
        model = AmalurCostModel(reuse=100)
        assert model.predict_factorize(parameters)

    def test_materialize_wins_when_target_not_larger(self):
        parameters = CostParameters(
            source_shapes=[(1_000, 50), (1_000, 50)],
            n_target_rows=1_000,
            n_target_columns=100,
        )
        model = AmalurCostModel(reuse=100)
        assert not model.predict_factorize(parameters)

    def test_example_iv1_pruning_rule(self):
        """Full tgds + target no larger than sources ⇒ materialize outright."""
        parameters = CostParameters(
            source_shapes=[(100_000, 1), (20_000, 100)],
            n_target_rows=20_000,
            n_target_columns=101,
            has_full_tgds_only=True,
        )
        breakdown = AmalurCostModel(reuse=1000).breakdown(parameters)
        assert breakdown.pruned_by_tgd_rule
        assert not AmalurCostModel(reuse=1000).predict_factorize(parameters)

    def test_reuse_amortizes_integration_cost(self):
        parameters = star_parameters(base_rows=20_000, dim_rows=500, dim_cols=100)
        single_pass = AmalurCostModel(reuse=1).breakdown(parameters)
        many_passes = AmalurCostModel(reuse=200).breakdown(parameters)
        assert many_passes.materialize_integration < single_pass.materialize_integration

    def test_redundant_cells_penalize_factorization(self):
        base = star_parameters(10_000, 500, 50)
        redundant = CostParameters(
            source_shapes=base.source_shapes,
            n_target_rows=base.n_target_rows,
            n_target_columns=base.n_target_columns,
            redundant_cells=200_000,
        )
        model = AmalurCostModel()
        assert (
            model.breakdown(redundant).factorized_total
            > model.breakdown(base).factorized_total
        )

    def test_breakdown_speedup_and_explain(self):
        parameters = star_parameters(50_000, 1_000, 100)
        model = AmalurCostModel(reuse=50)
        breakdown = model.breakdown(parameters)
        assert breakdown.predicted_speedup > 0
        assert "factorize" in model.explain(parameters) or "materialize" in model.explain(parameters)

    def test_null_ratio_reduces_factorized_cost(self):
        dense = star_parameters(10_000, 500, 100)
        sparse = CostParameters(
            source_shapes=dense.source_shapes,
            n_target_rows=dense.n_target_rows,
            n_target_columns=dense.n_target_columns,
            null_ratios=[0.0, 0.9],
        )
        model = AmalurCostModel()
        assert (
            model.breakdown(sparse).factorized_total < model.breakdown(dense).factorized_total
        )


class TestDecisionAdvisor:
    def test_amalur_method_returns_breakdown(self):
        advisor = DecisionAdvisor(method="amalur")
        outcome = advisor.decide(star_parameters(50_000, 1_000, 100))
        assert outcome.decision in (Decision.FACTORIZE, Decision.MATERIALIZE)
        assert outcome.breakdown is not None

    def test_morpheus_method(self):
        advisor = DecisionAdvisor(method="morpheus")
        outcome = advisor.decide(star_parameters(100_000, 1_000, 100))
        assert outcome.decision is Decision.FACTORIZE
        assert outcome.breakdown is None

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            DecisionAdvisor(method="???").decide(star_parameters(10, 5, 2))


class TestGroundTruthMeasurement:
    def test_measure_ground_truth_returns_a_decision(self):
        dataset = generate_integrated_pair(
            SyntheticSiloSpec(
                base_rows=2_000, base_columns=1, other_rows=50, other_columns=60, seed=0
            )
        )
        decision = measure_ground_truth(AmalurMatrix(dataset), repeats=1)
        assert decision in (Decision.FACTORIZE, Decision.MATERIALIZE)

    def test_extreme_redundancy_favours_factorization(self):
        """With a huge tuple ratio the factorized LMM must win the stopwatch."""
        dataset = generate_integrated_pair(
            SyntheticSiloSpec(
                base_rows=20_000,
                base_columns=1,
                other_rows=20,
                other_columns=200,
                redundancy_in_target=True,
                seed=1,
            )
        )
        decision = measure_ground_truth(AmalurMatrix(dataset), repeats=3)
        assert decision is Decision.FACTORIZE

"""Tests for repro.costmodel.parameters."""

import pytest

from repro.costmodel.parameters import CostParameters
from repro.exceptions import CostModelError
from repro.metadata.mappings import ScenarioType


class TestRatios:
    def test_tuple_and_feature_ratio(self):
        parameters = CostParameters(
            source_shapes=[(1000, 1), (200, 100)],
            n_target_rows=1000,
            n_target_columns=101,
        )
        assert parameters.tuple_ratio == pytest.approx(1.0)
        assert parameters.smallest_source_tuple_ratio == pytest.approx(5.0)
        assert parameters.feature_ratio == pytest.approx(1.01)
        assert parameters.n_sources == 2
        assert parameters.total_source_cells == 1000 + 20000
        assert parameters.target_cells == 101000

    def test_target_redundancy(self):
        redundant = CostParameters(
            source_shapes=[(100, 1), (20, 100)], n_target_rows=100, n_target_columns=101
        )
        assert redundant.target_redundancy > 0.0
        lean = CostParameters(
            source_shapes=[(100, 50), (100, 50)], n_target_rows=100, n_target_columns=100
        )
        assert lean.target_redundancy == 0.0

    def test_source_redundancy(self):
        parameters = CostParameters(
            source_shapes=[(10, 2), (10, 2)],
            n_target_rows=10,
            n_target_columns=3,
            redundant_cells=10,
        )
        assert parameters.source_redundancy == pytest.approx(10 / 40)

    def test_default_null_ratios(self):
        parameters = CostParameters(
            source_shapes=[(10, 2), (5, 3)], n_target_rows=10, n_target_columns=5
        )
        assert parameters.null_ratios == [0.0, 0.0]


class TestValidation:
    def test_needs_sources(self):
        with pytest.raises(CostModelError):
            CostParameters(source_shapes=[], n_target_rows=1, n_target_columns=1)

    def test_rejects_negative_shapes(self):
        with pytest.raises(CostModelError):
            CostParameters(source_shapes=[(-1, 2)], n_target_rows=1, n_target_columns=1)
        with pytest.raises(CostModelError):
            CostParameters(source_shapes=[(1, 2)], n_target_rows=-1, n_target_columns=1)


class TestFromDataset:
    def test_hospital_dataset_parameters(self, hospital_dataset):
        parameters = CostParameters.from_dataset(hospital_dataset)
        assert parameters.source_shapes == [(4, 3), (3, 3)]
        assert parameters.n_target_rows == 6
        assert parameters.n_target_columns == 4
        assert parameters.overlap_rows == 1  # Jane
        assert parameters.overlap_columns == 2  # m and a
        assert parameters.redundant_cells == 2
        assert not parameters.has_full_tgds_only

    def test_mapped_rows_from_indicators(self, hospital_dataset):
        parameters = CostParameters.from_dataset(hospital_dataset)
        assert parameters.source_mapped_rows == [
            f.indicator.n_mapped for f in hospital_dataset.factors
        ]
        # Full outer join: each source covers only part of the target rows.
        assert all(m < parameters.n_target_rows for m in parameters.source_mapped_rows)

    def test_mapped_rows_default_to_full_coverage(self):
        parameters = CostParameters(
            source_shapes=[(10, 2), (4, 3)], n_target_rows=10, n_target_columns=5
        )
        assert parameters.mapped_rows_of(0) == 10
        assert parameters.mapped_rows_of(1) == 10
        with pytest.raises(CostModelError):
            parameters.mapped_rows_of(2)

    def test_invalid_mapped_rows_rejected(self):
        with pytest.raises(CostModelError):
            CostParameters(
                source_shapes=[(10, 2)],
                n_target_rows=10,
                n_target_columns=5,
                source_mapped_rows=[11],
            )

    def test_mapped_rows_longer_than_sources_rejected(self):
        with pytest.raises(CostModelError):
            CostParameters(
                source_shapes=[(10, 2)],
                n_target_rows=10,
                n_target_columns=5,
                source_mapped_rows=[10, 4],
            )

    def test_inner_join_marks_full_tgds(self):
        from repro.datagen.hospital import hospital_integrated_dataset

        dataset = hospital_integrated_dataset(ScenarioType.INNER_JOIN)
        parameters = CostParameters.from_dataset(dataset)
        assert parameters.has_full_tgds_only

    def test_explicit_override(self, hospital_dataset):
        parameters = CostParameters.from_dataset(hospital_dataset, has_full_tgds_only=True)
        assert parameters.has_full_tgds_only

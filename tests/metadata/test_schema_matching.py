"""Tests for repro.metadata.schema_matching."""

import pytest

from repro.exceptions import MatchingError
from repro.metadata.schema_matching import (
    ColumnMatch,
    HybridMatcher,
    InstanceBasedMatcher,
    NameBasedMatcher,
    match_schemas,
)
from repro.relational.table import Table


@pytest.fixture
def hospital_pair(hospital):
    return hospital


class TestNameBasedMatcher:
    def test_exact_names_match(self, hospital_pair):
        s1, s2 = hospital_pair
        matches = NameBasedMatcher(threshold=0.9).match(s1, s2)
        matched_pairs = {(m.left_column, m.right_column) for m in matches}
        assert {("m", "m"), ("n", "n"), ("a", "a")} <= matched_pairs

    def test_similar_names_score_high(self):
        left = Table.from_dict("L", {"heart_rate": [60, 70]})
        right = Table.from_dict("R", {"heartrate": [61, 71]})
        score = NameBasedMatcher().score(left, "heart_rate", right, "heartrate")
        assert score > 0.8

    def test_one_to_one_extraction(self):
        left = Table.from_dict("L", {"aa": [1], "ab": [2]})
        right = Table.from_dict("R", {"aa": [1]})
        matches = NameBasedMatcher(threshold=0.5).match(left, right)
        assert len(matches) == 1
        assert matches[0].left_column == "aa"

    def test_invalid_threshold(self):
        with pytest.raises(MatchingError):
            NameBasedMatcher(threshold=1.5)


class TestInstanceBasedMatcher:
    def test_value_overlap_matches_despite_names(self):
        left = Table.from_dict("L", {"patient": ["Jane", "Sam", "Ruby"]})
        right = Table.from_dict("R", {"person_name": ["Jane", "Sam", "Alice"]})
        matches = InstanceBasedMatcher(threshold=0.5).match(left, right)
        assert matches and matches[0].right_column == "person_name"

    def test_type_mismatch_scores_zero(self):
        left = Table.from_dict("L", {"age": [20, 30]})
        right = Table.from_dict("R", {"name": ["20", "x"]})
        assert InstanceBasedMatcher().score(left, "age", right, "name") == 0.0

    def test_numeric_range_overlap(self):
        left = Table.from_dict("L", {"age": [20, 30, 40]})
        right = Table.from_dict("R", {"years": [25, 35, 45]})
        assert InstanceBasedMatcher().score(left, "age", right, "years") > 0.3

    def test_empty_column_scores_zero(self):
        left = Table.from_dict("L", {"a": [None, None]})
        right = Table.from_dict("R", {"a": [1, 2]})
        assert InstanceBasedMatcher().score(left, "a", right, "a") == 0.0


class TestHybridMatcher:
    def test_combines_signals(self, hospital_pair):
        s1, s2 = hospital_pair
        matches = match_schemas(s1, s2)
        matched = {(m.left_column, m.right_column) for m in matches}
        assert ("n", "n") in matched
        assert ("a", "a") in matched

    def test_weights_must_be_positive(self):
        with pytest.raises(MatchingError):
            HybridMatcher(name_weight=0.0, instance_weight=0.0)

    def test_score_matrix_covers_all_pairs(self, hospital_pair):
        s1, s2 = hospital_pair
        scores = HybridMatcher().score_matrix(s1, s2)
        assert len(scores) == len(s1.schema) * len(s2.schema)

    def test_reversed_match(self):
        match = ColumnMatch("L", "a", "R", "b", 0.9)
        reverse = match.reversed()
        assert reverse.left_table == "R" and reverse.right_column == "a"
        assert reverse.score == match.score

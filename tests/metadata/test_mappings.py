"""Tests for repro.metadata.mappings (s-t tgds and Table I scenarios)."""

import pytest

from repro.exceptions import MappingError
from repro.metadata.mappings import (
    Atom,
    ScenarioType,
    SchemaMapping,
    TGD,
    build_scenario_mapping,
)
from repro.datagen.hospital import hospital_column_matches, hospital_tables


def hospital_mapping(scenario):
    s1, s2 = hospital_tables()
    return build_scenario_mapping(
        s1, s2, hospital_column_matches(), ["m", "a", "hr", "o"], scenario
    )


class TestTGD:
    def test_full_tgd_has_no_existentials(self):
        body = (Atom("S1", ("m", "n", "a", "hr")), Atom("S2", ("m", "n", "a", "o", "dd")))
        head = Atom("T", ("m", "a", "hr", "o"))
        tgd = TGD("m1", body, head)
        assert tgd.is_full
        assert tgd.existential_variables == set()

    def test_existential_variables_detected(self):
        tgd = TGD("m2", (Atom("S1", ("m", "n", "a", "hr")),), Atom("T", ("m", "a", "hr", "o")))
        assert tgd.existential_variables == {"o"}
        assert not tgd.is_full

    def test_empty_body_rejected(self):
        with pytest.raises(MappingError):
            TGD("bad", tuple(), Atom("T", ("a",)))

    def test_string_rendering(self):
        tgd = TGD("m2", (Atom("S1", ("m", "a")),), Atom("T", ("m", "a", "o")))
        rendered = str(tgd)
        assert "S1(m, a)" in rendered and "∃o" in rendered and "→" in rendered

    def test_source_relations(self):
        tgd = TGD("m1", (Atom("S1", ("a",)), Atom("S2", ("a",))), Atom("T", ("a",)))
        assert tgd.source_relations == ("S1", "S2")


class TestSchemaMappingClassification:
    def test_full_outer_join_has_three_tgds(self):
        mapping = hospital_mapping(ScenarioType.FULL_OUTER_JOIN)
        assert len(mapping.tgds) == 3
        assert mapping.classify() is ScenarioType.FULL_OUTER_JOIN

    def test_inner_join_single_join_tgd(self):
        mapping = hospital_mapping(ScenarioType.INNER_JOIN)
        assert len(mapping.tgds) == 1
        assert mapping.classify() is ScenarioType.INNER_JOIN
        assert mapping.has_full_tgd_only()

    def test_left_join(self):
        mapping = hospital_mapping(ScenarioType.LEFT_JOIN)
        assert mapping.classify() is ScenarioType.LEFT_JOIN
        assert not mapping.has_full_tgd_only()

    def test_union(self):
        mapping = hospital_mapping(ScenarioType.UNION)
        assert mapping.classify() is ScenarioType.UNION

    def test_classify_without_tgds_raises(self):
        mapping = SchemaMapping(source_names=["S1"], target_name="T")
        with pytest.raises(MappingError):
            mapping.classify()

    def test_add_tgd_with_unknown_source_rejected(self):
        mapping = SchemaMapping(source_names=["S1"], target_name="T")
        with pytest.raises(MappingError):
            mapping.add_tgd(TGD("m", (Atom("S9", ("a",)),), Atom("T", ("a",))))

    def test_unknown_correspondence_source_rejected(self):
        with pytest.raises(MappingError):
            SchemaMapping(
                source_names=["S1"],
                target_name="T",
                source_to_target={"S9": {"a": "a"}},
            )


class TestMappedColumns:
    def test_mapped_target_and_source_columns(self):
        mapping = hospital_mapping(ScenarioType.FULL_OUTER_JOIN)
        assert mapping.mapped_target_columns("S1") == ["m", "a", "hr"]
        assert set(mapping.mapped_source_columns("S2")) == {"m", "a", "o"}

    def test_other_source_new_feature_mapped_under_own_name(self):
        mapping = hospital_mapping(ScenarioType.FULL_OUTER_JOIN)
        assert mapping.source_to_target["S2"]["o"] == "o"
        assert mapping.source_to_target["S2"]["a"] == "a"

    def test_string_rendering_lists_all_tgds(self):
        mapping = hospital_mapping(ScenarioType.FULL_OUTER_JOIN)
        assert str(mapping).count("→") == 3

"""Tests for repro.metadata.catalog."""

import pytest

from repro.exceptions import CatalogError
from repro.metadata.catalog import MetadataCatalog, ModelMetadata
from repro.metadata.entity_resolution import RowMatch
from repro.metadata.mappings import ScenarioType, build_scenario_mapping
from repro.metadata.schema_matching import ColumnMatch
from repro.datagen.hospital import hospital_column_matches


@pytest.fixture
def catalog(hospital):
    s1, s2 = hospital
    catalog = MetadataCatalog()
    catalog.register_source(s1, silo="er")
    catalog.register_source(s2, silo="pulmonary")
    return catalog


class TestBasicMetadata:
    def test_register_and_lookup(self, catalog):
        description = catalog.source("S1")
        assert description.n_rows == 4
        assert description.silo == "er"
        assert catalog.source_names == ["S1", "S2"]

    def test_table_retrieval(self, catalog):
        assert catalog.table("S2").n_rows == 3

    def test_missing_source_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.source("missing")
        with pytest.raises(CatalogError):
            catalog.table("missing")

    def test_sources_in_silo(self, catalog):
        assert [d.name for d in catalog.sources_in_silo("er")] == ["S1"]
        assert catalog.sources_in_silo("unknown") == []


class TestDIMetadata:
    def test_record_and_retrieve_matches(self, catalog):
        matches = [ColumnMatch("S1", "a", "S2", "a", 1.0)]
        catalog.record_column_matches("S1", "S2", matches)
        catalog.record_row_matches("S1", "S2", [RowMatch(3, 2, 1.0)])
        record = catalog.di_metadata("S1", "S2")
        assert record.column_matches == matches
        assert record.row_matches == [RowMatch(3, 2, 1.0)]

    def test_record_schema_mapping(self, catalog, hospital):
        s1, s2 = hospital
        mapping = build_scenario_mapping(
            s1, s2, hospital_column_matches(), ["m", "a", "hr", "o"], ScenarioType.INNER_JOIN
        )
        catalog.record_schema_mapping("S1", "S2", mapping)
        assert catalog.di_metadata("S1", "S2").schema_mapping is mapping
        assert catalog.has_di_metadata("S1", "S2")
        assert not catalog.has_di_metadata("S2", "S1")

    def test_missing_di_metadata_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.di_metadata("S1", "S2")

    def test_di_records_listing(self, catalog):
        catalog.record_column_matches("S1", "S2", [])
        assert len(catalog.di_records) == 1


class TestModelMetadata:
    def test_register_and_query_models(self, catalog):
        catalog.register_model(
            ModelMetadata(
                name="mortality_v1",
                model_type="classification",
                metrics={"accuracy": 0.8},
                training_datasets=["S1", "S2"],
            )
        )
        assert catalog.model_names == ["mortality_v1"]
        assert catalog.model("mortality_v1").metrics["accuracy"] == 0.8
        assert [m.name for m in catalog.models_trained_on("S1")] == ["mortality_v1"]
        assert catalog.models_trained_on("S9") == []

    def test_missing_model_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.model("nope")

"""Tests for repro.metadata.discovery (feature-augmentation candidates)."""

import pytest

from repro.metadata.catalog import MetadataCatalog
from repro.metadata.discovery import DataDiscovery
from repro.relational.table import Table


@pytest.fixture
def catalog_with_candidates(rng):
    """A base table plus one relevant, one irrelevant, and one unjoinable table."""
    n = 60
    ids = list(range(n))
    signal = rng.standard_normal(n)
    labels = (signal + 0.1 * rng.standard_normal(n) > 0).astype(int)

    base = Table.from_dict(
        "base",
        {"id": ids, "label": list(labels), "x": list(rng.standard_normal(n))},
        id={"is_key": True},
        label={"is_label": True},
    )
    relevant = Table.from_dict(
        "relevant",
        {"id": ids, "signal": list(signal)},
        id={"is_key": True},
    )
    irrelevant = Table.from_dict(
        "irrelevant",
        {"id": ids, "noise": list(rng.standard_normal(n))},
        id={"is_key": True},
    )
    unjoinable = Table.from_dict(
        "unjoinable",
        {"other_key": list(range(1000, 1000 + n)), "z": list(rng.standard_normal(n))},
    )
    catalog = MetadataCatalog()
    for table in (base, relevant, irrelevant, unjoinable):
        catalog.register_source(table)
    return catalog, base


class TestDataDiscovery:
    def test_relevant_table_ranks_first(self, catalog_with_candidates):
        catalog, base = catalog_with_candidates
        discovery = DataDiscovery(catalog)
        candidates = discovery.discover(base, label_column="label")
        assert candidates
        assert candidates[0].table_name == "relevant"

    def test_relevance_correlation_is_high_for_signal(self, catalog_with_candidates):
        catalog, base = catalog_with_candidates
        candidates = DataDiscovery(catalog).discover(base, label_column="label")
        best = candidates[0]
        assert best.feature_correlations["signal"] > 0.5
        assert best.joinability == pytest.approx(1.0)

    def test_base_table_excluded(self, catalog_with_candidates):
        catalog, base = catalog_with_candidates
        names = [c.table_name for c in DataDiscovery(catalog).discover(base, "label")]
        assert "base" not in names

    def test_top_k_limits_results(self, catalog_with_candidates):
        catalog, base = catalog_with_candidates
        candidates = DataDiscovery(catalog).discover(base, "label", top_k=1)
        assert len(candidates) == 1

    def test_exclude_parameter(self, catalog_with_candidates):
        catalog, base = catalog_with_candidates
        names = [
            c.table_name
            for c in DataDiscovery(catalog).discover(base, "label", exclude=["relevant"])
        ]
        assert "relevant" not in names

    def test_new_features_reported(self, catalog_with_candidates):
        catalog, base = catalog_with_candidates
        best = DataDiscovery(catalog).discover(base, "label")[0]
        assert best.new_features == ["signal"]

    def test_hospital_running_example(self, hospital):
        s1, s2 = hospital
        catalog = MetadataCatalog()
        catalog.register_source(s1)
        catalog.register_source(s2)
        candidates = DataDiscovery(catalog).discover(s1, label_column="m")
        assert [c.table_name for c in candidates] == ["S2"]
        assert "o" in candidates[0].new_features

"""Tests for repro.metadata.similarity."""

import pytest

from repro.metadata.similarity import (
    jaccard_set_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    ngram_jaccard_similarity,
    token_sort_similarity,
    value_overlap,
)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein_distance("age", "age") == 0
        assert levenshtein_similarity("age", "age") == 1.0

    def test_empty_strings(self):
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3
        assert levenshtein_similarity("", "") == 1.0

    def test_known_distance(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_similarity_normalized(self):
        assert 0.0 <= levenshtein_similarity("abcdef", "xyz") <= 1.0

    def test_symmetry(self):
        assert levenshtein_distance("heart", "haert") == levenshtein_distance("haert", "heart")


class TestJaro:
    def test_identical_and_disjoint(self):
        assert jaro_similarity("abc", "abc") == 1.0
        assert jaro_similarity("abc", "xyz") == 0.0
        assert jaro_similarity("", "abc") == 0.0

    def test_jaro_winkler_boosts_prefix(self):
        plain = jaro_similarity("heart_rate", "heart_beat")
        winkler = jaro_winkler_similarity("heart_rate", "heart_beat")
        assert winkler >= plain

    def test_jaro_known_value(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)


class TestNgramAndSets:
    def test_ngram_jaccard_bounds(self):
        assert ngram_jaccard_similarity("oxygen", "oxygen") == 1.0
        assert ngram_jaccard_similarity("", "") == 1.0
        assert ngram_jaccard_similarity("", "abc") == 0.0
        assert 0.0 < ngram_jaccard_similarity("oxygen", "oxygen_level") < 1.0

    def test_jaccard_set_similarity(self):
        assert jaccard_set_similarity({1, 2}, {2, 3}) == pytest.approx(1 / 3)
        assert jaccard_set_similarity(set(), set()) == 1.0

    def test_value_overlap_uses_smaller_set(self):
        assert value_overlap({1, 2}, {1, 2, 3, 4}) == 1.0
        assert value_overlap({1, 2}, {3, 4}) == 0.0
        assert value_overlap(set(), {1}) == 0.0

    def test_token_sort_handles_reordered_words(self):
        assert token_sort_similarity("resting heart rate", "heart_rate_resting") == 1.0
        assert token_sort_similarity("Heart-Rate", "rate heart") == 1.0


class TestNgramJaccardMatrix:
    def test_matches_scalar_function(self):
        import numpy as np

        from repro.metadata.similarity import ngram_jaccard_matrix

        left = ["jane doe", "sam", "", "a", "heart rate", "héllo"]
        right = ["jane do", "", "sam", "heart  rate", "xyz"]
        matrix = ngram_jaccard_matrix(left, right)
        for i, a in enumerate(left):
            for j, b in enumerate(right):
                assert matrix[i, j] == pytest.approx(
                    ngram_jaccard_similarity(a, b), abs=1e-12
                )
        assert matrix.shape == (6, 5)
        # empty vs empty short-circuits to 1.0, empty vs non-empty to 0.0
        assert matrix[2, 1] == 1.0
        assert matrix[2, 0] == 0.0
        assert np.all((matrix >= 0.0) & (matrix <= 1.0))

    def test_code_sets_are_sorted_and_shared(self):
        import numpy as np

        from repro.metadata.similarity import ngram_code_sets

        codes, indptr = ngram_code_sets(["abab", "abab", "cd"])
        first = codes[indptr[0]:indptr[1]]
        second = codes[indptr[1]:indptr[2]]
        assert np.array_equal(first, second)  # equal strings share codes
        assert np.all(np.diff(first) > 0)  # sorted, duplicate-free

"""Tests for repro.metadata.entity_resolution."""

import pytest

from repro.exceptions import MatchingError
from repro.metadata.entity_resolution import (
    KeyBasedResolver,
    RowMatch,
    SimilarityResolver,
    resolve_entities,
)
from repro.metadata.schema_matching import ColumnMatch
from repro.relational.table import Table
from repro.relational.types import NULL


class TestKeyBasedResolver:
    def test_hospital_jane_matches(self, hospital):
        s1, s2 = hospital
        matches = KeyBasedResolver([("n", "n")]).resolve(s1, s2)
        assert matches == [RowMatch(3, 2, 1.0)]

    def test_uses_declared_keys_by_default(self, hospital):
        s1, s2 = hospital
        matches = KeyBasedResolver().resolve(s1, s2)
        assert matches == [RowMatch(3, 2, 1.0)]

    def test_missing_keys_raise(self):
        left = Table.from_dict("L", {"a": [1]})
        right = Table.from_dict("R", {"a": [1]})
        with pytest.raises(MatchingError):
            KeyBasedResolver().resolve(left, right)

    def test_null_keys_never_match(self):
        left = Table.from_dict("L", {"k": [NULL, 2]})
        right = Table.from_dict("R", {"k": [NULL, 2]})
        matches = KeyBasedResolver([("k", "k")]).resolve(left, right)
        assert matches == [RowMatch(1, 1, 1.0)]

    def test_one_to_one_even_with_duplicate_right_keys(self):
        left = Table.from_dict("L", {"k": [1]})
        right = Table.from_dict("R", {"k": [1, 1]})
        matches = KeyBasedResolver([("k", "k")]).resolve(left, right)
        assert len(matches) == 1

    def test_composite_keys(self):
        left = Table.from_dict("L", {"a": [1, 1], "b": ["x", "y"]})
        right = Table.from_dict("R", {"a": [1], "b": ["y"]})
        matches = KeyBasedResolver([("a", "a"), ("b", "b")]).resolve(left, right)
        assert matches == [RowMatch(1, 0, 1.0)]


class TestSimilarityResolver:
    def make_matches(self):
        return [
            ColumnMatch("L", "name", "R", "name", 1.0),
            ColumnMatch("L", "age", "R", "age", 1.0),
        ]

    def test_typo_tolerant_matching(self):
        left = Table.from_dict("L", {"name": ["Jane Doe", "Sam Smith"], "age": [37, 35]})
        right = Table.from_dict("R", {"name": ["jane doe", "Alice"], "age": [37, 50]})
        matches = SimilarityResolver(self.make_matches(), threshold=0.8).resolve(left, right)
        assert len(matches) == 1
        assert (matches[0].left_row, matches[0].right_row) == (0, 0)

    def test_threshold_filters_weak_matches(self):
        left = Table.from_dict("L", {"name": ["Jane"], "age": [37]})
        right = Table.from_dict("R", {"name": ["John"], "age": [80]})
        matches = SimilarityResolver(self.make_matches(), threshold=0.9).resolve(left, right)
        assert matches == []

    def test_numeric_similarity(self):
        resolver = SimilarityResolver(self.make_matches())
        assert resolver._value_similarity(100, 100) == 1.0
        assert resolver._value_similarity(100, 90) == pytest.approx(0.9)
        assert resolver._value_similarity(0, 0) == 1.0
        assert resolver._value_similarity(NULL, 5) is None

    def test_requires_column_matches(self):
        with pytest.raises(MatchingError):
            SimilarityResolver([])

    def test_one_to_one_greedy_extraction(self):
        left = Table.from_dict("L", {"name": ["Ann", "Ann"], "age": [30, 30]})
        right = Table.from_dict("R", {"name": ["Ann"], "age": [30]})
        matches = SimilarityResolver(self.make_matches()).resolve(left, right)
        assert len(matches) == 1


class TestResolveEntities:
    def test_prefers_declared_keys(self, hospital):
        s1, s2 = hospital
        matches = resolve_entities(s1, s2)
        assert matches == [RowMatch(3, 2, 1.0)]

    def test_falls_back_to_similarity(self):
        left = Table.from_dict("L", {"name": ["Jane"], "age": [37]})
        right = Table.from_dict("R", {"name": ["Jane"], "age": [37]})
        column_matches = [ColumnMatch("L", "name", "R", "name", 1.0)]
        matches = resolve_entities(left, right, column_matches=column_matches)
        assert len(matches) == 1

    def test_requires_keys_or_matches(self):
        left = Table.from_dict("L", {"a": [1]})
        right = Table.from_dict("R", {"a": [1]})
        with pytest.raises(MatchingError):
            resolve_entities(left, right)

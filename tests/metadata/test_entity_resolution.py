"""Tests for repro.metadata.entity_resolution."""

import pytest

from repro.exceptions import MatchingError
from repro.metadata.entity_resolution import (
    KeyBasedResolver,
    RowMatch,
    SimilarityResolver,
    resolve_entities,
)
from repro.metadata.schema_matching import ColumnMatch
from repro.relational.table import Table
from repro.relational.types import NULL


class TestKeyBasedResolver:
    def test_hospital_jane_matches(self, hospital):
        s1, s2 = hospital
        matches = KeyBasedResolver([("n", "n")]).resolve(s1, s2)
        assert matches == [RowMatch(3, 2, 1.0)]

    def test_uses_declared_keys_by_default(self, hospital):
        s1, s2 = hospital
        matches = KeyBasedResolver().resolve(s1, s2)
        assert matches == [RowMatch(3, 2, 1.0)]

    def test_missing_keys_raise(self):
        left = Table.from_dict("L", {"a": [1]})
        right = Table.from_dict("R", {"a": [1]})
        with pytest.raises(MatchingError):
            KeyBasedResolver().resolve(left, right)

    def test_null_keys_never_match(self):
        left = Table.from_dict("L", {"k": [NULL, 2]})
        right = Table.from_dict("R", {"k": [NULL, 2]})
        matches = KeyBasedResolver([("k", "k")]).resolve(left, right)
        assert matches == [RowMatch(1, 1, 1.0)]

    def test_one_to_one_even_with_duplicate_right_keys(self):
        left = Table.from_dict("L", {"k": [1]})
        right = Table.from_dict("R", {"k": [1, 1]})
        matches = KeyBasedResolver([("k", "k")]).resolve(left, right)
        assert len(matches) == 1

    def test_composite_keys(self):
        left = Table.from_dict("L", {"a": [1, 1], "b": ["x", "y"]})
        right = Table.from_dict("R", {"a": [1], "b": ["y"]})
        matches = KeyBasedResolver([("a", "a"), ("b", "b")]).resolve(left, right)
        assert matches == [RowMatch(1, 0, 1.0)]


class TestSimilarityResolver:
    def make_matches(self):
        return [
            ColumnMatch("L", "name", "R", "name", 1.0),
            ColumnMatch("L", "age", "R", "age", 1.0),
        ]

    def test_typo_tolerant_matching(self):
        left = Table.from_dict("L", {"name": ["Jane Doe", "Sam Smith"], "age": [37, 35]})
        right = Table.from_dict("R", {"name": ["jane doe", "Alice"], "age": [37, 50]})
        matches = SimilarityResolver(self.make_matches(), threshold=0.8).resolve(left, right)
        assert len(matches) == 1
        assert (matches[0].left_row, matches[0].right_row) == (0, 0)

    def test_threshold_filters_weak_matches(self):
        left = Table.from_dict("L", {"name": ["Jane"], "age": [37]})
        right = Table.from_dict("R", {"name": ["John"], "age": [80]})
        matches = SimilarityResolver(self.make_matches(), threshold=0.9).resolve(left, right)
        assert matches == []

    def test_numeric_similarity(self):
        resolver = SimilarityResolver(self.make_matches())
        assert resolver._value_similarity(100, 100) == 1.0
        assert resolver._value_similarity(100, 90) == pytest.approx(0.9)
        assert resolver._value_similarity(0, 0) == 1.0
        assert resolver._value_similarity(NULL, 5) is None

    def test_requires_column_matches(self):
        with pytest.raises(MatchingError):
            SimilarityResolver([])

    def test_one_to_one_greedy_extraction(self):
        left = Table.from_dict("L", {"name": ["Ann", "Ann"], "age": [30, 30]})
        right = Table.from_dict("R", {"name": ["Ann"], "age": [30]})
        matches = SimilarityResolver(self.make_matches()).resolve(left, right)
        assert len(matches) == 1


class TestResolveEntities:
    def test_prefers_declared_keys(self, hospital):
        s1, s2 = hospital
        matches = resolve_entities(s1, s2)
        assert matches == [RowMatch(3, 2, 1.0)]

    def test_falls_back_to_similarity(self):
        left = Table.from_dict("L", {"name": ["Jane"], "age": [37]})
        right = Table.from_dict("R", {"name": ["Jane"], "age": [37]})
        column_matches = [ColumnMatch("L", "name", "R", "name", 1.0)]
        matches = resolve_entities(left, right, column_matches=column_matches)
        assert len(matches) == 1

    def test_requires_keys_or_matches(self):
        left = Table.from_dict("L", {"a": [1]})
        right = Table.from_dict("R", {"a": [1]})
        with pytest.raises(MatchingError):
            resolve_entities(left, right)


class TestSimilarityResolverBatched:
    """The bucket-batched scoring path must reproduce per-pair semantics."""

    def make_tables(self):
        left = Table.from_dict(
            "L",
            {
                "name": ["jane doe", "sam smith", NULL, "bob stone", "jane doe"],
                "age": [37, 35, 28, 44, 37],
                "score": [1.0, NULL, 3.0, 4.0, 5.0],
            },
        )
        right = Table.from_dict(
            "R",
            {
                "name": ["jane do", "sam smyth", "bob stone", NULL, "jane d"],
                "age": [37, 36, 44, 50, 39],
                "score": [1.0, 2.0, NULL, 4.0, 5.0],
            },
        )
        matches = [
            ColumnMatch("L", "name", "R", "name", 1.0),
            ColumnMatch("L", "age", "R", "age", 1.0),
            ColumnMatch("L", "score", "R", "score", 1.0),
        ]
        return left, right, matches

    def test_batched_scores_equal_row_score(self):
        left, right, matches = self.make_tables()
        resolver = SimilarityResolver(matches, threshold=0.0)
        resolved = resolver.resolve(left, right)
        for match in resolved:
            assert match.score == pytest.approx(
                resolver._row_score(left, match.left_row, right, match.right_row),
                abs=1e-12,
            )

    def test_ngram_scorer_matches_scalar_ngram(self):
        from repro.metadata.similarity import ngram_jaccard_similarity

        left, right, matches = self.make_tables()
        resolver = SimilarityResolver(
            matches, threshold=0.0, string_scorer="ngram"
        )
        resolved = resolver.resolve(left, right)
        assert resolved  # candidates exist inside the blocking buckets
        for match in resolved:
            scores = []
            for column_match in matches:
                a = left.cell(match.left_row, column_match.left_column)
                b = right.cell(match.right_row, column_match.right_column)
                if a is NULL or b is NULL:
                    continue
                if isinstance(a, str) or isinstance(b, str):
                    scores.append(
                        ngram_jaccard_similarity(
                            str(a).strip().lower(), str(b).strip().lower()
                        )
                    )
                else:
                    scores.append(resolver._value_similarity(a, b))
            assert match.score == pytest.approx(sum(scores) / len(scores), abs=1e-12)

    def test_unknown_scorer_rejected(self):
        left, right, matches = self.make_tables()
        with pytest.raises(MatchingError):
            SimilarityResolver(matches, string_scorer="soundex")

    def test_numeric_vectorized_path_handles_nulls_and_zero_scale(self):
        left = Table.from_dict("L", {"k": ["a", "a", "a"], "v": [0.0, NULL, -2.0]})
        right = Table.from_dict("R", {"k": ["a", "a"], "v": [0.0, 2.0]})
        matches = [
            ColumnMatch("L", "k", "R", "k", 1.0),
            ColumnMatch("L", "v", "R", "v", 1.0),
        ]
        resolver = SimilarityResolver(matches, threshold=0.0)
        resolved = {
            (m.left_row, m.right_row): m.score for m in resolver.resolve(left, right)
        }
        for (i, j), score in resolved.items():
            assert score == pytest.approx(resolver._row_score(left, i, right, j))

    def test_skewed_bucket_scored_in_bounded_batches(self, monkeypatch):
        # Every key lands in one blocking bucket; with a tiny pair-batch
        # bound the resolver must still produce the same matches.
        left = Table.from_dict(
            "L", {"name": [f"aa{i}" for i in range(30)], "age": list(range(30))}
        )
        right = Table.from_dict(
            "R", {"name": [f"aa{i}" for i in range(20)], "age": list(range(20))}
        )
        matches = [
            ColumnMatch("L", "name", "R", "name", 1.0),
            ColumnMatch("L", "age", "R", "age", 1.0),
        ]
        unbatched = SimilarityResolver(matches, threshold=0.9).resolve(left, right)
        monkeypatch.setattr(SimilarityResolver, "_PAIR_BATCH", 7)
        batched = SimilarityResolver(matches, threshold=0.9).resolve(left, right)
        assert batched == unbatched
        assert [(m.left_row, m.right_row) for m in batched] == [
            (i, i) for i in range(20)
        ]

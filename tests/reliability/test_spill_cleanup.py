"""Spill hygiene: discard semantics and orphan cleanup on failed builds."""

import numpy as np
import pytest

from repro.datagen.scenarios import ScenarioSpec, generate_scenario_tables
from repro.metadata.mappings import ScenarioType
from repro.streaming import InMemoryTableStream, SpillStore, integrate_streams


class FailingStream(InMemoryTableStream):
    """Yields its first chunk, then dies mid-iteration (on either path)."""

    def chunks(self):
        iterator = super().chunks()
        yield next(iterator)
        raise RuntimeError("source stream went away")

    def chunk_at(self, index):
        if index >= 1:
            raise RuntimeError("source stream went away")
        return super().chunk_at(index)


class TestDiscard:
    def test_discard_removes_file_and_frees_the_name(self, tmp_path):
        with SpillStore(tmp_path) as store:
            store.allocate("m", 4, 3)
            assert (tmp_path / "m.f64").exists()
            store.discard("m")
            assert not (tmp_path / "m.f64").exists()
            # The name is free again (allocate refuses live duplicates).
            store.allocate("m", 2, 2)

    def test_discard_of_unknown_name_is_a_noop(self, tmp_path):
        with SpillStore(tmp_path) as store:
            store.discard("never-allocated")

    def test_discard_drops_recorded_checksums(self, tmp_path):
        with SpillStore(tmp_path, checksums=True) as store:
            store.allocate("m", 2, 2)
            store.record_crc("m", 0, 2, 123)
            store.discard("m")
            store.allocate("m", 2, 2)
            store.verify("m")  # no stale CRC entries from the old matrix


def _scenario_tables():
    spec = ScenarioSpec(
        ScenarioType.LEFT_JOIN, base_rows=60, other_rows=40,
        overlap_rows=20, overlap_columns=1, seed=4,
    )
    return generate_scenario_tables(spec)


class TestOrphanCleanup:
    def test_failed_build_leaves_no_spill_files(self, tmp_path):
        base, other, matches, row_matches, targets = _scenario_tables()
        store = SpillStore(tmp_path)
        with pytest.raises(RuntimeError, match="source stream went away"):
            integrate_streams(
                InMemoryTableStream(base, 13), FailingStream(other, 13),
                matches, row_matches, targets, ScenarioType.LEFT_JOIN,
                label_column="label", store=store,
            )
        # The base ingest completed and the other died mid-fill; both
        # memmaps must be gone — no orphaned .f64 files, no held names.
        assert list(tmp_path.glob("*.f64")) == []
        assert store.spilled_bytes == 0
        store.cleanup()

    def test_store_is_reusable_after_a_failed_build(self, tmp_path):
        base, other, matches, row_matches, targets = _scenario_tables()
        store = SpillStore(tmp_path)
        with pytest.raises(RuntimeError):
            integrate_streams(
                InMemoryTableStream(base, 13), FailingStream(other, 13),
                matches, row_matches, targets, ScenarioType.LEFT_JOIN,
                label_column="label", store=store,
            )
        dataset = integrate_streams(
            InMemoryTableStream(base, 13), InMemoryTableStream(other, 13),
            matches, row_matches, targets, ScenarioType.LEFT_JOIN,
            label_column="label", store=store,
        )
        assert dataset.n_target_rows == base.n_rows
        assert np.isfinite(np.asarray(dataset.materialize())).all()
        store.cleanup()

"""Small chaos matrix: injected faults must not change a single bit.

A fault plan covering every wired site runs the full spilled build +
streaming training pipeline; retries and checksum repair must reproduce
the fault-free run exactly. Trigger budgets stay below the wired retry
policies' ``max_attempts`` (8), so completion is guaranteed by
construction.
"""

import zlib

import numpy as np
import pytest

from repro import parallel, telemetry
from repro.datagen.scenarios import ScenarioSpec, generate_scenario_tables
from repro.exceptions import IntegrityError
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.learning import StreamingGD
from repro.metadata.mappings import ScenarioType
from repro.reliability import faults
from repro.streaming import InMemoryTableStream, SpillStore, integrate_streams

CHAOS_PLAN = (
    "spill.read:p=0.4,n=5,seed=3;"
    "ingest.chunk:p=0.5,n=4,seed=5;"
    "parallel.task:p=0.2,n=6,seed=7;"
    "spill.write:kind=corrupt,p=0.5,n=3,seed=11"
)


def _scenario_inputs():
    spec = ScenarioSpec(
        ScenarioType.LEFT_JOIN, base_rows=160, other_rows=110, base_features=4,
        other_features=5, overlap_rows=50, overlap_columns=2, seed=29,
    )
    return generate_scenario_tables(spec)


def _build_and_train(store, checksums_note=None):
    base, other, matches, row_matches, targets = _scenario_inputs()
    dataset = integrate_streams(
        InMemoryTableStream(base, 23), InMemoryTableStream(other, 23),
        matches, row_matches, targets, ScenarioType.LEFT_JOIN,
        label_column="label", store=store,
    )
    materialized = np.array(dataset.materialize())
    model = StreamingGD(task="linear", block_rows=31, n_iterations=8)
    model.fit(AmalurMatrix(dataset))
    return materialized, np.array(model.coef_), float(model.intercept_)


@pytest.mark.parametrize("workers", [1, 2])
def test_chaos_run_matches_fault_free_bit_for_bit(workers):
    parallel.set_num_workers(workers)
    parallel.set_min_parallel_rows(0)
    with SpillStore() as store:
        reference_matrix, reference_coef, reference_intercept = _build_and_train(store)

    telemetry.enable(sample_memory=False)
    with faults.active_plan(CHAOS_PLAN) as injector:
        with SpillStore(checksums=True) as store:
            chaos_matrix, chaos_coef, chaos_intercept = _build_and_train(store)
        snapshot = injector.snapshot()
    report = telemetry.run_report()
    telemetry.disable()

    # The chaos plan actually fired: at least one site triggered, and the
    # recovery machinery left its telemetry trail.
    total_triggers = sum(triggers for _, triggers in snapshot.values())
    assert total_triggers > 0, snapshot
    assert report.counters.get("faults.injected", 0) == total_triggers
    if snapshot["spill.write"][1]:
        assert report.counters.get("spill.crc_mismatch", 0) >= 1
        assert report.counters.get("spill.blocks_repaired", 0) >= 1

    # Recovery is invisible in the results: bit-identical build and weights.
    assert np.array_equal(chaos_matrix, reference_matrix)
    assert np.array_equal(chaos_coef, reference_coef)
    assert chaos_intercept == reference_intercept
    assert np.allclose(chaos_coef, reference_coef, atol=1e-8)  # the CI bound


def test_corrupt_write_without_checksums_goes_undetected_by_design():
    """Checksums are the detection mechanism: with them off, a torn write
    silently lands in the factor — which is why the chaos matrix always
    pairs corrupt faults with ``SpillStore(checksums=True)``."""
    parallel.set_num_workers(1)
    base, other, matches, row_matches, targets = _scenario_inputs()
    with SpillStore() as store:
        reference = integrate_streams(
            InMemoryTableStream(base, 23), InMemoryTableStream(other, 23),
            matches, row_matches, targets, ScenarioType.LEFT_JOIN,
            label_column="label", store=store,
        ).materialize()
    with faults.active_plan("spill.write:kind=corrupt,n=1"):
        with SpillStore() as store:
            damaged = integrate_streams(
                InMemoryTableStream(base, 23), InMemoryTableStream(other, 23),
                matches, row_matches, targets, ScenarioType.LEFT_JOIN,
                label_column="label", store=store,
            ).materialize()
    assert not np.array_equal(damaged, reference)


def test_unrepairable_corruption_raises_integrity_error(tmp_path):
    """A repair whose source refill is itself corrupted must raise, not
    silently keep the bad block."""
    with SpillStore(tmp_path, checksums=True) as store:
        matrix = store.allocate("m", 4, 2)
        block = np.arange(8, dtype=np.float64).reshape(4, 2)
        store.record_crc("m", 0, 4, zlib.crc32(block.tobytes()))
        matrix[:] = block
        matrix[2:] = -1.0  # torn write

        def bad_repair(row_start, row_stop, destination):
            destination[...] = -2.0  # still wrong

        with pytest.raises(IntegrityError, match="still"):
            store.verify("m", repair=bad_repair)

        def good_repair(row_start, row_stop, destination):
            destination[...] = block[row_start:row_stop]

        assert store.verify("m", repair=good_repair) == 1
        assert np.array_equal(np.asarray(matrix), block)

"""StreamingGD checkpoint/resume: bit-identical to an uninterrupted run."""

import numpy as np
import pytest

from repro.datagen.scenarios import ScenarioSpec, generate_scenario_tables
from repro.exceptions import CheckpointError
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.learning import StreamingGD
from repro.matrices.builder import integrate_tables
from repro.metadata.mappings import ScenarioType
from repro.reliability.checkpoint import CheckpointManager

N_ITERATIONS = 12


@pytest.fixture(scope="module")
def matrix():
    spec = ScenarioSpec(
        ScenarioType.LEFT_JOIN, base_rows=120, other_rows=90, base_features=4,
        other_features=5, overlap_rows=40, overlap_columns=2, seed=33,
    )
    base, other, matches, row_matches, targets = generate_scenario_tables(spec)
    dataset = integrate_tables(
        base, other, matches, row_matches, targets, spec.scenario,
        label_column="label",
    )
    return AmalurMatrix(dataset)


def _fit(matrix, task, n_iterations, manager=None, **kwargs):
    model = StreamingGD(
        task=task, block_rows=37, n_iterations=n_iterations,
        checkpoint=manager, **kwargs,
    )
    model.fit(matrix)
    return model


class TestResumeParity:
    @pytest.mark.parametrize("task", ["linear", "logistic"])
    def test_interrupted_resume_is_bit_identical(self, matrix, task, tmp_path):
        reference = _fit(matrix, task, N_ITERATIONS)

        # Interrupted: run 5 epochs with checkpointing, then a fresh model
        # picks up the same manager and finishes the remaining epochs.
        manager = CheckpointManager(tmp_path, keep=2)
        _fit(matrix, task, 5, manager)
        resumed = _fit(matrix, task, N_ITERATIONS, manager)

        assert resumed.resumed_from_ == 5
        assert np.array_equal(resumed.coef_, reference.coef_)
        assert resumed.intercept_ == reference.intercept_
        assert resumed.loss_history_ == reference.loss_history_

    def test_resume_at_final_epoch_publishes_checkpointed_weights(
        self, matrix, tmp_path
    ):
        manager = CheckpointManager(tmp_path)
        full = _fit(matrix, "linear", N_ITERATIONS, manager)
        again = _fit(matrix, "linear", N_ITERATIONS, manager)
        assert again.resumed_from_ == N_ITERATIONS
        assert np.array_equal(again.coef_, full.coef_)

    def test_resume_past_a_corrupt_newest_checkpoint(self, matrix, tmp_path):
        reference = _fit(matrix, "linear", N_ITERATIONS)
        manager = CheckpointManager(tmp_path, keep=3)
        _fit(matrix, "linear", 6, manager)
        # Tear the newest checkpoint: resume must fall back to epoch 5 and
        # recompute epoch 6 on its way to the same final weights.
        newest = manager._path_for(6)
        raw = bytearray(newest.read_bytes())
        raw[-1] ^= 0xFF
        newest.write_bytes(bytes(raw))
        resumed = _fit(matrix, "linear", N_ITERATIONS, manager)
        assert resumed.resumed_from_ == 5
        assert np.array_equal(resumed.coef_, reference.coef_)

    def test_fresh_run_without_checkpoints_sets_no_resume_marker(
        self, matrix, tmp_path
    ):
        model = _fit(matrix, "linear", 3, CheckpointManager(tmp_path))
        assert model.resumed_from_ is None


class TestCheckpointCadence:
    def test_every_epoch_by_default(self, matrix, tmp_path):
        manager = CheckpointManager(tmp_path, keep=100)
        _fit(matrix, "linear", 4, manager)
        assert manager.steps() == [1, 2, 3, 4]

    def test_checkpoint_every_skips_intermediate_epochs(self, matrix, tmp_path):
        manager = CheckpointManager(tmp_path, keep=100)
        _fit(matrix, "linear", 9, manager, checkpoint_every=3)
        assert manager.steps() == [3, 6, 9]

    def test_metadata_records_epoch_boundary_state(self, matrix, tmp_path):
        manager = CheckpointManager(tmp_path)
        _fit(matrix, "logistic", 3, manager)
        restored = manager.latest()
        assert restored.metadata["task"] == "logistic"
        assert restored.metadata["iteration"] == 3
        assert restored.metadata["block_cursor"] == 0
        assert restored.arrays["loss_history"].shape == (3,)

    def test_no_manager_means_no_files_and_no_overhead_paths(self, matrix):
        model = _fit(matrix, "linear", 3)
        assert model.checkpoint is None
        assert model.resumed_from_ is None


class TestMismatches:
    def test_task_mismatch_is_rejected(self, matrix, tmp_path):
        manager = CheckpointManager(tmp_path)
        _fit(matrix, "linear", 2, manager)
        with pytest.raises(CheckpointError, match="'linear' model, not 'logistic'"):
            _fit(matrix, "logistic", 4, manager)

    def test_weight_shape_mismatch_is_rejected(self, matrix, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(
            1,
            {"weights": np.zeros((3, 1)), "loss_history": np.zeros(1)},
            {"task": "linear", "intercept": 0.0, "iteration": 1, "block_cursor": 0},
        )
        with pytest.raises(CheckpointError, match="weights of shape"):
            _fit(matrix, "linear", 4, manager)

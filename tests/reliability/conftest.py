"""Shared fixtures: fault, telemetry and parallel state never leaks."""

from __future__ import annotations

import pytest

from repro import parallel, telemetry
from repro.reliability import faults


@pytest.fixture(autouse=True)
def _reliability_state_isolated():
    workers = parallel.get_num_workers()
    min_rows = parallel.get_min_parallel_rows()
    yield
    faults.clear()
    telemetry.disable()
    parallel.set_num_workers(workers)
    parallel.set_min_parallel_rows(min_rows)

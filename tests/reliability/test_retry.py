"""RetryPolicy: backoff schedule, classification, exhaustion."""

import pytest

from repro import telemetry
from repro.exceptions import IntegrityError, TransientError
from repro.reliability.retry import INGEST_RETRY, SPILL_RETRY, TASK_RETRY, RetryPolicy


def _flaky(failures, exception=TransientError):
    """A callable failing ``failures`` times before returning 42."""
    calls = {"n": 0}

    def fn():
        calls["n"] += 1
        if calls["n"] <= failures:
            raise exception(f"boom {calls['n']}")
        return 42

    return fn, calls


class TestBackoff:
    def test_delay_schedule_is_deterministic_exponential(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=2.0, max_delay=0.05)
        assert [policy.delay(i) for i in range(5)] == [
            0.01, 0.02, 0.04, 0.05, 0.05
        ]

    def test_sleeps_follow_the_schedule(self):
        sleeps = []
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.01, multiplier=2.0, max_delay=1.0,
            sleep=sleeps.append,
        )
        fn, calls = _flaky(3)
        assert policy.call(fn) == 42
        assert calls["n"] == 4
        assert sleeps == [0.01, 0.02, 0.04]

    def test_zero_base_delay_never_sleeps(self):
        sleeps = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, sleep=sleeps.append)
        fn, _ = _flaky(2)
        assert policy.call(fn) == 42
        assert sleeps == []


class TestClassification:
    def test_success_needs_no_retry(self):
        policy = RetryPolicy(sleep=lambda _: None)
        fn, calls = _flaky(0)
        assert policy.call(fn) == 42
        assert calls["n"] == 1

    def test_exhaustion_reraises_the_last_exception(self):
        policy = RetryPolicy(max_attempts=3, sleep=lambda _: None)
        fn, calls = _flaky(99)
        with pytest.raises(TransientError, match="boom 3"):
            policy.call(fn)
        assert calls["n"] == 3

    def test_non_retryable_propagates_immediately(self):
        policy = RetryPolicy(max_attempts=5, sleep=lambda _: None)
        fn, calls = _flaky(99, exception=IntegrityError)
        with pytest.raises(IntegrityError, match="boom 1"):
            policy.call(fn)
        assert calls["n"] == 1

    def test_single_attempt_disables_retrying(self):
        policy = RetryPolicy(max_attempts=1, sleep=lambda _: None)
        fn, calls = _flaky(1)
        with pytest.raises(TransientError):
            policy.call(fn)
        assert calls["n"] == 1

    def test_custom_retryable_classes(self):
        policy = RetryPolicy(
            max_attempts=3, retryable=(KeyError,), sleep=lambda _: None
        )
        fn, calls = _flaky(1, exception=KeyError)
        assert policy.call(fn) == 42
        assert calls["n"] == 2

    def test_wraps_applies_the_policy_per_invocation(self):
        policy = RetryPolicy(max_attempts=3, sleep=lambda _: None)
        fn, calls = _flaky(2)
        wrapped = policy.wraps(fn, site="s")
        assert wrapped() == 42
        assert calls["n"] == 3

    def test_arguments_pass_through(self):
        policy = RetryPolicy(sleep=lambda _: None)
        assert policy.call(lambda a, b=0: a + b, 1, b=2) == 3


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"max_delay": -0.1},
            {"multiplier": 0.5},
        ],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestTelemetryAndDefaults:
    def test_counters_record_attempts_and_exhaustion(self):
        policy = RetryPolicy(max_attempts=3, sleep=lambda _: None)
        telemetry.enable(sample_memory=False)
        fn, _ = _flaky(1)
        policy.call(fn, site="demo")
        fn, _ = _flaky(99)
        with pytest.raises(TransientError):
            policy.call(fn, site="demo")
        report = telemetry.run_report()
        telemetry.disable()
        assert report.counters["retry.attempts"] == 3  # 1 + 2 retries
        assert report.counters["retry.attempts.demo"] == 3
        assert report.counters["retry.exhausted"] == 1
        assert report.counters["retry.exhausted.demo"] == 1

    def test_wired_in_defaults_outlast_ci_chaos_budgets(self):
        # The CI chaos plans use trigger budgets n < 8; max_attempts == 8
        # guarantees a bounded plan can never exhaust a wired-in policy.
        for policy in (SPILL_RETRY, INGEST_RETRY, TASK_RETRY):
            assert policy.max_attempts == 8
            assert policy.retryable == (TransientError,)

"""Circuit breaker state machine under an injected clock."""

import pytest

from repro import telemetry
from repro.exceptions import CircuitOpenError
from repro.reliability.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def _breaker(clock, threshold=3, reset=10.0, name="test"):
    return CircuitBreaker(
        failure_threshold=threshold, reset_timeout=reset, name=name, clock=clock
    )


class TestOpening:
    def test_closed_until_threshold_consecutive_failures(self, clock):
        breaker = _breaker(clock)
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == CLOSED
            breaker.before_request()  # still admitting
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_open_rejects_without_waiting(self, clock):
        breaker = _breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        with pytest.raises(CircuitOpenError, match="circuit 'test' is open"):
            breaker.before_request()

    def test_success_resets_the_failure_count(self, clock):
        breaker = _breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        assert breaker.consecutive_failures == 0
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED


class TestHalfOpen:
    def _open(self, clock):
        breaker = _breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        return breaker

    def test_cooldown_admits_a_single_probe(self, clock):
        breaker = self._open(clock)
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        breaker.before_request()  # the probe
        with pytest.raises(CircuitOpenError):
            breaker.before_request()  # concurrent request while probe is out

    def test_probe_success_closes(self, clock):
        breaker = self._open(clock)
        clock.advance(10.0)
        breaker.before_request()
        breaker.record_success()
        assert breaker.state == CLOSED
        breaker.before_request()  # flows freely again

    def test_probe_failure_reopens_with_fresh_cooldown(self, clock):
        breaker = self._open(clock)
        clock.advance(10.0)
        breaker.before_request()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.0)  # not enough: the cool-down restarted
        with pytest.raises(CircuitOpenError):
            breaker.before_request()
        clock.advance(1.0)
        breaker.before_request()  # fresh probe admitted

    def test_still_open_before_cooldown_elapses(self, clock):
        breaker = self._open(clock)
        clock.advance(9.999)
        assert breaker.state == OPEN


class TestValidationAndTelemetry:
    def test_invalid_parameters_raise(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=clock)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1.0, clock=clock)

    def test_lifecycle_counters_and_gauge(self, clock):
        telemetry.enable(sample_memory=False)
        breaker = _breaker(clock, threshold=2, name="s1")
        breaker.record_failure()
        breaker.record_failure()  # opens
        with pytest.raises(CircuitOpenError):
            breaker.before_request()
        clock.advance(10.0)
        breaker.before_request()  # probe
        breaker.record_success()  # recovers
        report = telemetry.run_report()
        telemetry.disable()
        assert report.counters["breaker.opened"] == 1
        assert report.counters["breaker.opened.s1"] == 1
        assert report.counters["breaker.rejected"] == 1
        assert report.counters["breaker.recovered"] == 1
        assert report.gauges["breaker.state.s1"] == 0.0  # closed again

"""Deterministic fault injection: plan parsing, trigger state, activation."""

import pytest

from repro import telemetry
from repro.exceptions import AmalurError, IntegrityError, TransientError
from repro.reliability import faults
from repro.reliability.faults import FaultInjector, FaultPlan, FaultSpec


class TestPlanParsing:
    def test_full_syntax(self):
        plan = FaultPlan.parse(
            "spill.read:p=0.3,n=4,seed=7;ingest.chunk:p=1,n=2;"
            "serving.request:kind=integrity,after=3"
        )
        assert sorted(plan.specs) == ["ingest.chunk", "serving.request", "spill.read"]
        spec = plan.specs["spill.read"]
        assert spec.probability == 0.3
        assert spec.max_triggers == 4
        assert spec.seed == 7
        assert spec.kind == "transient"
        assert plan.specs["serving.request"].kind == "integrity"
        assert plan.specs["serving.request"].after == 3

    def test_defaults_and_aliases(self):
        plan = FaultPlan.parse("parallel.task: probability=0.5 , count=3 ")
        spec = plan.specs["parallel.task"]
        assert spec.probability == 0.5
        assert spec.max_triggers == 3
        assert spec.seed == 0
        assert spec.after == 0

    def test_bare_site_triggers_every_hit(self):
        plan = FaultPlan.parse("spill.read")
        spec = plan.specs["spill.read"]
        assert spec.probability == 1.0
        assert spec.max_triggers is None

    def test_empty_entries_skipped(self):
        assert len(FaultPlan.parse(";;spill.read:p=1;;")) == 1
        assert len(FaultPlan.parse("")) == 0

    @pytest.mark.parametrize(
        "text",
        [
            "spill.read:bogus=1",        # unknown field
            "spill.read:p",              # not key=value
            ":p=1",                      # no site name
            "spill.read:kind=explode",   # unknown kind
            "spill.read:p=1.5",          # probability out of range
            "spill.read:n=-1",           # negative budget
            "spill.read:p=1;spill.read:p=0",  # duplicate site
        ],
    )
    def test_malformed_plans_raise(self, text):
        with pytest.raises(AmalurError):
            FaultPlan.parse(text)


class TestInjector:
    def test_trigger_pattern_is_deterministic(self):
        plan = FaultPlan.parse("s:p=0.4,seed=13")

        def pattern():
            injector = FaultInjector(plan)
            return [injector.hit("s") is not None for _ in range(50)]

        first, second = pattern(), pattern()
        assert first == second
        assert any(first) and not all(first)

    def test_different_seeds_differ(self):
        patterns = set()
        for seed in range(6):
            injector = FaultInjector(FaultPlan.parse(f"s:p=0.5,seed={seed}"))
            patterns.add(tuple(injector.hit("s") is not None for _ in range(64)))
        assert len(patterns) > 1

    def test_budget_caps_triggers(self):
        injector = FaultInjector(FaultPlan.parse("s:p=1,n=3"))
        fired = [injector.hit("s") is not None for _ in range(10)]
        assert fired == [True] * 3 + [False] * 7
        assert injector.snapshot()["s"] == (10, 3)

    def test_after_skips_warmup_hits(self):
        injector = FaultInjector(FaultPlan.parse("s:p=1,after=4"))
        fired = [injector.hit("s") is not None for _ in range(7)]
        assert fired == [False] * 4 + [True] * 3

    def test_unplanned_site_never_triggers(self):
        injector = FaultInjector(FaultPlan.parse("s:p=1"))
        assert injector.hit("other.site") is None
        assert "other.site" not in injector.snapshot()

    def test_telemetry_counts_injections(self):
        telemetry.enable(sample_memory=False)
        injector = FaultInjector(FaultPlan.parse("s:p=1,n=2"))
        for _ in range(5):
            injector.hit("s")
        report = telemetry.run_report()
        telemetry.disable()
        assert report.counters["faults.injected"] == 2
        assert report.counters["faults.injected.s"] == 2


class TestModuleState:
    def test_install_and_clear_toggle_active(self):
        assert not faults.ACTIVE
        faults.install("s:p=1")
        assert faults.ACTIVE
        assert faults.injector() is not None
        faults.clear()
        assert not faults.ACTIVE
        assert faults.injector() is None

    def test_empty_plan_stays_inactive(self):
        faults.install(FaultPlan())
        assert not faults.ACTIVE

    def test_active_plan_restores_previous(self):
        outer = faults.install("outer.site:p=1")
        with faults.active_plan("inner.site:p=1") as inner:
            assert faults.injector() is inner
            assert inner.hit("inner.site") is not None
        assert faults.injector() is outer
        assert faults.ACTIVE
        faults.clear()
        with faults.active_plan("s:p=1"):
            assert faults.ACTIVE
        assert not faults.ACTIVE

    def test_fault_point_raises_by_kind(self):
        with faults.active_plan("t:kind=transient;i:kind=integrity;c:kind=corrupt"):
            with pytest.raises(TransientError, match="injected transient fault at t"):
                faults.fault_point("t", block=3)
            with pytest.raises(IntegrityError, match="injected integrity fault at i"):
                faults.fault_point("i")
            # Corrupt sites never raise through fault_point; the site itself
            # asks through hit() and damages data.
            faults.fault_point("c")
            spec = faults.hit("c")
            assert spec is not None and spec.kind == "corrupt"

    def test_fault_point_context_lands_in_message(self):
        with faults.active_plan("s:p=1"):
            with pytest.raises(TransientError, match=r"\(hi=2, lo=1\)"):
                faults.fault_point("s", lo=1, hi=2)

    def test_inactive_fault_point_is_a_noop(self):
        faults.fault_point("s")  # no plan installed: must not raise
        assert faults.hit("s") is None

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "env.site:p=1,n=1")
        faults._activate_from_env()
        try:
            assert faults.ACTIVE
            assert "env.site" in faults.injector().plan.specs
        finally:
            faults.clear()

    def test_blank_env_stays_inactive(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "   ")
        faults._activate_from_env()
        assert not faults.ACTIVE

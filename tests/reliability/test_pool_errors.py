"""Pool error reporting: site/block annotation and poison-task escalation."""

import pytest

from repro import parallel
from repro.exceptions import PoisonTaskError, TransientError
from repro.reliability import faults


def _explode_at(bad_index):
    def fn(item):
        if item == bad_index:
            raise ValueError(f"bad item {item}")
        return item * 10

    return fn


class TestAnnotation:
    def test_parallel_map_annotates_site_and_block(self):
        with pytest.raises(ValueError) as excinfo:
            parallel.parallel_map(
                _explode_at(2), range(6), workers=2, label="op.lmm"
            )
        assert "bad item 2 [parallel site=op.lmm, block=2]" in str(excinfo.value)

    def test_imap_ordered_annotates_site_and_block(self):
        def consume():
            list(parallel.imap_ordered(
                _explode_at(3), range(8), workers=2, label="ingest.chunk"
            ))

        with pytest.raises(ValueError) as excinfo:
            consume()
        assert "[parallel site=ingest.chunk, block=3]" in str(excinfo.value)

    def test_unlabeled_failures_carry_the_default_site(self):
        with pytest.raises(ValueError, match=r"site=parallel\.task, block=1"):
            parallel.parallel_map(_explode_at(1), range(4), workers=2)

    def test_prefetch_annotates_producer_failures(self):
        parallel.set_num_workers(2)

        def produce():
            yield 1
            yield 2
            raise ValueError("upstream died")

        with pytest.raises(ValueError) as excinfo:
            list(parallel.prefetch(produce(), depth=2, label="build.fill"))
        assert "upstream died [parallel site=build.fill, block=2]" in str(
            excinfo.value
        )

    def test_exception_type_is_preserved(self):
        class Custom(RuntimeError):
            pass

        def fn(item):
            raise Custom("x")

        with pytest.raises(Custom, match=r"\[parallel site=s, block=0\]"):
            parallel.parallel_map(fn, [1, 2], workers=2, label="s")

    def test_annotation_survives_non_string_args(self):
        def fn(item):
            if item == 7:
                raise KeyError(item)
            return item

        with pytest.raises(KeyError) as excinfo:
            parallel.parallel_map(fn, [7, 8], workers=2, label="s")
        assert "[parallel site=s, block=0]" in repr(excinfo.value.args)

    def test_single_task_serial_fallback_stays_legacy(self):
        # One effective worker routes through the exact legacy loop, whose
        # exceptions stay untouched (PR 8 parity invariant).
        with pytest.raises(ValueError) as excinfo:
            parallel.parallel_map(_explode_at(0), [0], workers=2, label="s")
        assert "[parallel" not in str(excinfo.value)


class TestFaultInjection:
    def test_transient_faults_are_retried_transparently(self):
        calls = []
        with faults.active_plan("parallel.task:p=1,n=3,seed=1") as injector:
            result = parallel.parallel_map(
                lambda x: calls.append(x) or x + 1, [5], workers=1, label="s"
            )
        assert result == [6]
        # n=3 < max_attempts=8: the single task absorbed all three triggers.
        assert injector.snapshot()["parallel.task"] == (4, 3)
        assert calls == [5]

    def test_serial_fallback_still_injects_faults(self):
        # One configured worker takes the serial path, but chaos plans must
        # still exercise it — a 1-core machine is a valid chaos target.
        with faults.active_plan("parallel.task:p=1,n=1"):
            assert parallel.parallel_map(lambda x: x, [1, 2], workers=1) == [1, 2]
            assert list(parallel.imap_ordered(lambda x: x, [3], workers=1)) == [3]

    def test_unbounded_faults_escalate_to_poison_task(self):
        with faults.active_plan("parallel.task:p=1"):
            with pytest.raises(PoisonTaskError) as excinfo:
                parallel.parallel_map(lambda x: x, [1], workers=1, label="gd.block")
        poison = excinfo.value
        assert poison.site == "gd.block"
        assert poison.index == 0
        assert "kept failing after 8 attempts" in str(poison)
        assert "[parallel site=gd.block, block=0]" in str(poison)
        assert isinstance(poison.__cause__, TransientError)

    def test_non_transient_task_failures_are_not_retried(self):
        calls = []

        def fn(item):
            calls.append(item)
            raise ValueError("not transient")

        with faults.active_plan("spill.read:p=1"):  # active plan, other site
            with pytest.raises(ValueError, match=r"\[parallel site=s, block=0\]"):
                parallel.parallel_map(fn, [1], workers=1, label="s")
        assert calls == [1]

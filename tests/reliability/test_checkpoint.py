"""Checkpoint files: atomic roundtrip, CRC validation, retention."""

import numpy as np
import pytest

from repro import telemetry
from repro.exceptions import CheckpointError, IntegrityError
from repro.reliability.checkpoint import CheckpointManager


def _arrays(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "weights": rng.standard_normal((7, 1)),
        "loss_history": rng.standard_normal(5),
        "counts": rng.integers(0, 100, size=(3, 2)),
    }


class TestRoundtrip:
    def test_save_load_is_bit_exact(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        arrays = _arrays()
        metadata = {"task": "linear", "intercept": 1.5, "iteration": 3}
        path = manager.save(3, arrays, metadata)
        assert path.exists()
        restored = manager.load(3)
        assert restored.step == 3
        assert restored.metadata == metadata
        assert sorted(restored.arrays) == sorted(arrays)
        for name, array in arrays.items():
            assert restored.arrays[name].dtype == array.dtype
            assert np.array_equal(restored.arrays[name], array)

    def test_loaded_arrays_are_writable_copies(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(1, _arrays())
        restored = manager.load(1)
        restored.arrays["weights"][0] = 123.0  # must not raise

    def test_no_tmp_files_survive_a_save(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(1, _arrays())
        assert not list(tmp_path.glob("*.tmp"))

    def test_missing_step_raises_checkpoint_error(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        with pytest.raises(CheckpointError, match="no checkpoint for step 9"):
            manager.load(9)

    def test_empty_directory_has_no_latest(self, tmp_path):
        assert CheckpointManager(tmp_path).latest() is None


class TestRetention:
    def test_keep_prunes_older_checkpoints(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for step in (1, 2, 3, 4):
            manager.save(step, _arrays(step))
        assert manager.steps() == [3, 4]
        assert len(list(tmp_path.glob("*.ckpt"))) == 2

    def test_latest_returns_newest_step(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=3)
        for step in (2, 5, 9):
            manager.save(step, _arrays(step))
        assert manager.latest().step == 9

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path, keep=0)


def _corrupt_payload(path):
    """Flip one byte inside the last segment of a checkpoint file."""
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF
    path.write_bytes(bytes(raw))


class TestCorruption:
    def test_flipped_payload_byte_fails_crc(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = manager.save(1, _arrays())
        _corrupt_payload(path)
        with pytest.raises(IntegrityError, match="failed its CRC32 check"):
            manager.load(1)

    def test_bad_magic_is_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = manager.save(1, _arrays())
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(IntegrityError, match="bad magic"):
            manager.load(1)

    def test_truncated_segment_is_detected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = manager.save(1, _arrays())
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 16])
        with pytest.raises(IntegrityError, match="truncated"):
            manager.load(1)

    def test_latest_falls_back_past_a_corrupt_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=3)
        manager.save(1, _arrays(1))
        newest = manager.save(2, _arrays(2))
        _corrupt_payload(newest)
        telemetry.enable(sample_memory=False)
        restored = manager.latest()
        report = telemetry.run_report()
        telemetry.disable()
        assert restored.step == 1
        assert np.array_equal(restored.arrays["weights"], _arrays(1)["weights"])
        assert report.counters["checkpoint.corrupt_skipped"] == 1

    def test_latest_is_none_when_everything_is_corrupt(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        _corrupt_payload(manager.save(1, _arrays()))
        assert manager.latest() is None

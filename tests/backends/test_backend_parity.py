"""Backend parity: every operator is numerically identical on every backend.

The invariant behind the subsystem: the physical storage engine (dense
BLAS, CSR, per-factor auto dispatch) must never change operator results —
only wall-clock and FLOP accounting. Verified over all four Table I
scenarios, the synthetic silo-pair generator and the high-sparsity one-hot
generator.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datagen.scenarios import ScenarioSpec, generate_scenario_dataset
from repro.datagen.synthetic import (
    OneHotSpec,
    SyntheticSiloSpec,
    generate_integrated_pair,
    generate_one_hot_pair,
)
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.metadata.mappings import ScenarioType

BACKENDS = ["dense", "sparse", "auto"]


def assert_backend_parity(dataset, operand_seed=0):
    """All backends agree with each other and with the materialized target."""
    target = dataset.materialize()
    rng = np.random.default_rng(operand_seed)
    x = rng.standard_normal((target.shape[1], 2))
    y = rng.standard_normal((target.shape[0], 2))
    z = rng.standard_normal((2, target.shape[0]))
    for backend in BACKENDS:
        matrix = AmalurMatrix(dataset, backend=backend)
        assert np.allclose(matrix.lmm(x), target @ x), backend
        assert np.allclose(matrix.transpose_lmm(y), target.T @ y), backend
        assert np.allclose(matrix.rmm(z), z @ target), backend
        assert np.allclose(matrix.crossprod(), target.T @ target), backend
        assert np.allclose(matrix.row_sums(), target.sum(axis=1)), backend
        assert np.allclose(matrix.column_sums(), target.sum(axis=0)), backend


class TestScenarioParity:
    """Dense/Sparse/Auto agree on each of the four Table I scenarios."""

    def test_all_scenarios(self, scenario_dataset):
        assert_backend_parity(scenario_dataset)

    @pytest.mark.parametrize("scenario", list(ScenarioType), ids=lambda s: s.value)
    def test_scenarios_with_overlap(self, scenario):
        spec = ScenarioSpec(
            scenario=scenario,
            base_rows=30,
            other_rows=22,
            base_features=3,
            other_features=4,
            overlap_rows=11,
            overlap_columns=2,
            seed=13,
        )
        assert_backend_parity(generate_scenario_dataset(spec), operand_seed=5)


class TestOneHotParity:
    def test_one_hot_pair(self):
        dataset = generate_one_hot_pair(OneHotSpec(n_rows=200, n_categories=25, seed=2))
        assert_backend_parity(dataset, operand_seed=3)

    def test_auto_backend_splits_storage(self):
        dataset = generate_one_hot_pair(
            OneHotSpec(n_rows=100, n_categories=40, base_columns=3), backend="auto"
        )
        matrix = AmalurMatrix(dataset)
        assert matrix.storage_formats() == ["dense", "csr"]

    def test_sparse_backend_is_csr_everywhere(self):
        dataset = generate_one_hot_pair(OneHotSpec(n_rows=60, n_categories=12))
        matrix = AmalurMatrix(dataset, backend="sparse")
        assert matrix.storage_formats() == ["csr", "csr"]


class TestPropertyParity:
    """Hypothesis sweep over the synthetic structural space."""

    @settings(max_examples=25, deadline=None)
    @given(
        spec=st.builds(
            SyntheticSiloSpec,
            base_rows=st.integers(min_value=2, max_value=30),
            base_columns=st.integers(min_value=1, max_value=4),
            other_rows=st.integers(min_value=1, max_value=20),
            other_columns=st.integers(min_value=1, max_value=5),
            redundancy_in_target=st.booleans(),
            redundancy_in_sources=st.booleans(),
            overlap_column_fraction=st.floats(min_value=0.1, max_value=1.0),
            null_ratio=st.floats(min_value=0.0, max_value=0.9),
            seed=st.integers(min_value=0, max_value=500),
        ),
        operand_seed=st.integers(min_value=0, max_value=50),
    )
    def test_synthetic_pairs(self, spec, operand_seed):
        assert_backend_parity(generate_integrated_pair(spec), operand_seed=operand_seed)

    @settings(max_examples=15, deadline=None)
    @given(
        spec=st.builds(
            OneHotSpec,
            n_rows=st.integers(min_value=2, max_value=60),
            n_categories=st.integers(min_value=2, max_value=30),
            base_columns=st.integers(min_value=1, max_value=4),
            seed=st.integers(min_value=0, max_value=100),
        )
    )
    def test_one_hot_pairs(self, spec):
        assert_backend_parity(generate_one_hot_pair(spec), operand_seed=spec.seed)


class TestLearningParity:
    """Training through a sparse backend gives the same model as dense."""

    def test_crossprod_solve_identical(self):
        dataset = generate_one_hot_pair(OneHotSpec(n_rows=150, n_categories=20, seed=4))
        dense_gram = AmalurMatrix(dataset, backend="dense").crossprod()
        sparse_gram = AmalurMatrix(dataset, backend="sparse").crossprod()
        auto_gram = AmalurMatrix(dataset, backend="auto").crossprod()
        assert np.allclose(dense_gram, sparse_gram)
        assert np.allclose(dense_gram, auto_gram)

    def test_flop_accounting_is_nnz_aware(self):
        dataset = generate_one_hot_pair(OneHotSpec(n_rows=300, n_categories=50, seed=0))
        x = np.ones((dataset.shape[1], 1))
        dense_matrix = AmalurMatrix(dataset, backend="dense")
        sparse_matrix = AmalurMatrix(dataset, backend="sparse")
        dense_matrix.lmm(x)
        sparse_matrix.lmm(x)
        dense_flops = dense_matrix.counter.by_operation["lmm.local"]
        sparse_flops = sparse_matrix.counter.by_operation["lmm.local"]
        # One-hot factor: 300*50 dense cells but only 300 stored ones.
        assert sparse_flops < dense_flops

"""Backend integration: factors, datasets, cost model, optimizer, executor."""

import numpy as np
import pytest
from scipy import sparse

from repro.backends import AutoBackend, DenseBackend, SparseBackend
from repro.costmodel.decision import Decision
from repro.costmodel.parameters import CostParameters, SPARSE_DENSITY_THRESHOLD
from repro.datagen.synthetic import OneHotSpec, generate_one_hot_pair
from repro.matrices.builder import IntegratedDataset, SourceFactor, integrate_tables
from repro.system.executor import Executor
from repro.system.optimizer import Optimizer
from repro.system.plan import ModelSpec


@pytest.fixture
def one_hot_dataset():
    return generate_one_hot_pair(OneHotSpec(n_rows=400, n_categories=40, seed=1))


class TestSourceFactorStorage:
    def test_storage_defaults_to_dense(self, one_hot_dataset):
        factor = one_hot_dataset.factors[1]
        assert isinstance(factor.storage(), np.ndarray)

    def test_storage_per_backend_and_cached(self, one_hot_dataset):
        factor = one_hot_dataset.factors[1]
        csr = factor.storage("sparse")
        assert sparse.issparse(csr)
        assert factor.storage(SparseBackend()) is csr  # cache hit
        assert isinstance(factor.storage("dense"), np.ndarray)

    def test_nnz_and_density(self, one_hot_dataset):
        one_hot = one_hot_dataset.factors[1]
        assert one_hot.nnz == one_hot.n_rows  # one 1 per entity row
        assert one_hot.density == pytest.approx(1 / 40)

    def test_with_backend_binds(self, one_hot_dataset):
        factor = one_hot_dataset.factors[1].with_backend("sparse")
        assert factor.backend.name == "sparse"
        assert sparse.issparse(factor.storage())

    def test_accepts_sparse_data_input(self, one_hot_dataset):
        template = one_hot_dataset.factors[1]
        factor = SourceFactor(
            template.name,
            sparse.csr_matrix(template.data),
            list(template.source_columns),
            template.mapping,
            template.indicator,
            template.redundancy,
            backend=SparseBackend(),
        )
        assert isinstance(factor.data, np.ndarray)
        assert np.allclose(factor.data, template.data)
        assert sparse.issparse(factor.storage())

    def test_sparse_input_not_densified_until_needed(self, one_hot_dataset):
        template = one_hot_dataset.factors[1]
        factor = SourceFactor(
            template.name,
            sparse.csr_matrix(template.data),
            list(template.source_columns),
            template.mapping,
            template.indicator,
            template.redundancy,
            backend=SparseBackend(),
        )
        # Construction, shapes, nnz/density and sparse compute never densify.
        assert factor.n_rows == template.n_rows
        assert factor.nnz == template.nnz
        assert factor.density == pytest.approx(template.density)
        factor.storage()
        assert factor._dense_data is None
        # Reading .data densifies lazily.
        _ = factor.data
        assert factor._dense_data is not None

    def test_storage_cache_distinguishes_configured_backends(self, one_hot_dataset):
        class ScaledBackend(SparseBackend):
            name = "scaled"

            def __init__(self, alpha):
                self.alpha = alpha

            def prepare(self, data):
                return super().prepare(data) * self.alpha

        factor = one_hot_dataset.factors[1]
        doubled = factor.storage(ScaledBackend(2.0))
        hundred = factor.storage(ScaledBackend(100.0))
        assert not np.allclose(doubled.toarray(), hundred.toarray())


class TestIntegratedDatasetBackend:
    def test_with_backend_rebinds_factors(self, one_hot_dataset):
        rebound = one_hot_dataset.with_backend("sparse")
        assert rebound.backend.name == "sparse"
        assert all(f.backend.name == "sparse" for f in rebound.factors)
        assert np.allclose(rebound.materialize(), one_hot_dataset.materialize())

    def test_density_statistics(self, one_hot_dataset):
        assert one_hot_dataset.total_source_nnz() == sum(
            f.nnz for f in one_hot_dataset.factors
        )
        densities = one_hot_dataset.source_densities()
        assert densities[0] > 0.9 and densities[1] == pytest.approx(1 / 40)
        assert 0.0 < one_hot_dataset.overall_density() < 1.0

    def test_integrate_tables_backend_param(self, hospital, hospital_matches):
        from repro.metadata.mappings import ScenarioType

        s1, s2 = hospital
        column_matches, row_matches = hospital_matches
        dataset = integrate_tables(
            s1, s2, column_matches, row_matches,
            target_columns=["m", "a", "hr", "o"],
            scenario=ScenarioType.FULL_OUTER_JOIN,
            backend="auto",
        )
        assert dataset.backend.name == "auto"
        assert all(f.backend is dataset.backend for f in dataset.factors)


class TestCostParametersDispatch:
    def test_from_dataset_captures_densities(self, one_hot_dataset):
        parameters = CostParameters.from_dataset(one_hot_dataset)
        assert parameters.source_densities[1] == pytest.approx(1 / 40)

    def test_backend_choice_threshold(self):
        parameters = CostParameters(
            source_shapes=[(100, 10), (100, 40)],
            n_target_rows=100,
            n_target_columns=50,
            source_densities=[1.0, 0.02],
        )
        assert parameters.backend_choices == ["dense", "sparse"]
        assert parameters.any_sparse_source
        assert parameters.nnz_of(1) == 100 * 40 * 0.02

    def test_default_threshold_constant(self):
        parameters = CostParameters(
            source_shapes=[(10, 10)], n_target_rows=10, n_target_columns=10
        )
        assert parameters.sparse_density_threshold == SPARSE_DENSITY_THRESHOLD

    def test_sparse_source_lowers_factorized_cost(self):
        from repro.costmodel.amalur_cost import AmalurCostModel

        dense = CostParameters(
            source_shapes=[(5000, 10), (5000, 100)],
            n_target_rows=5000,
            n_target_columns=110,
            source_densities=[1.0, 1.0],
        )
        sparse_params = CostParameters(
            source_shapes=[(5000, 10), (5000, 100)],
            n_target_rows=5000,
            n_target_columns=110,
            source_densities=[1.0, 0.01],
        )
        model = AmalurCostModel()
        assert (
            model.breakdown(sparse_params).factorized_total
            < model.breakdown(dense).factorized_total
        )
        assert model.breakdown(sparse_params).backend_choices == ["dense", "sparse"]

    def test_above_threshold_density_charges_full_dense_cost(self):
        from repro.costmodel.amalur_cost import AmalurCostModel

        half = CostParameters(
            source_shapes=[(1000, 100)],
            n_target_rows=1000,
            n_target_columns=100,
            source_densities=[0.5],
        )
        full = CostParameters(
            source_shapes=[(1000, 100)],
            n_target_rows=1000,
            n_target_columns=100,
            source_densities=[1.0],
        )
        model = AmalurCostModel()
        # A dense BLAS kernel cannot skip zeros, so 50% density costs the
        # same as 100% — only below the threshold does the sparse formula kick in.
        assert (
            model.breakdown(half).factorized_total
            == model.breakdown(full).factorized_total
        )


class TestPlanBackendSelection:
    def test_factorized_plan_carries_backend(self, one_hot_dataset):
        plan = Optimizer().plan(
            one_hot_dataset, ModelSpec(task="regression", n_iterations=100)
        )
        assert plan.strategy is Decision.FACTORIZE
        assert isinstance(plan.backend, AutoBackend)
        assert plan.cost_breakdown.backend_choices == ["dense", "sparse"]
        assert "sparse kernel" in plan.describe()

    def test_all_dense_sources_pick_dense_backend(self, synthetic_redundant_dataset):
        optimizer = Optimizer()
        parameters = CostParameters.from_dataset(synthetic_redundant_dataset)
        backend = optimizer._select_backend(parameters)
        assert isinstance(backend, DenseBackend)

    def test_all_sparse_sources_pick_sparse_backend(self):
        parameters = CostParameters(
            source_shapes=[(100, 50), (80, 40)],
            n_target_rows=100,
            n_target_columns=90,
            source_densities=[0.01, 0.02],
        )
        assert isinstance(Optimizer()._select_backend(parameters), SparseBackend)

    def test_executor_trains_on_plan_backend(self):
        dataset = generate_one_hot_pair(OneHotSpec(n_rows=300, n_categories=30, seed=6))
        # Attach a label column by rebuilding with the first base column as label.
        dataset.label_column = "x0"
        plan = Optimizer().plan(dataset, ModelSpec(task="regression", n_iterations=30))
        assert plan.strategy is Decision.FACTORIZE
        result = Executor().execute(plan)
        assert np.isfinite(result.metrics["mse"])

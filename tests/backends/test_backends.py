"""Unit tests for the repro.backends compute-backend subsystem."""

import numpy as np
import pytest
from scipy import sparse

from repro.backends import (
    AutoBackend,
    Backend,
    DenseBackend,
    SparseBackend,
    available_backends,
    register_backend,
    resolve_backend,
    storage_density,
    storage_nnz,
)
from repro.exceptions import BackendError


@pytest.fixture
def matrix(rng):
    data = rng.standard_normal((12, 7))
    data[rng.random(data.shape) < 0.6] = 0.0
    return data


ALL_BACKENDS = [DenseBackend(), SparseBackend(), AutoBackend(0.5)]


class TestPrepare:
    def test_dense_keeps_ndarray(self, matrix):
        storage = DenseBackend().prepare(matrix)
        assert isinstance(storage, np.ndarray)
        assert not DenseBackend().is_sparse_storage(storage)

    def test_dense_densifies_sparse_input(self, matrix):
        storage = DenseBackend().prepare(sparse.csr_matrix(matrix))
        assert isinstance(storage, np.ndarray)
        assert np.allclose(storage, matrix)

    def test_sparse_converts_to_csr(self, matrix):
        storage = SparseBackend().prepare(matrix)
        assert sparse.issparse(storage) and storage.format == "csr"
        assert np.allclose(storage.toarray(), matrix)

    def test_auto_dispatches_on_density(self, matrix):
        backend = AutoBackend(density_threshold=0.5)
        dense_matrix = np.ones((4, 4))
        assert backend.choose(dense_matrix) == "dense"
        assert isinstance(backend.prepare(dense_matrix), np.ndarray)
        sparse_matrix = np.zeros((4, 4))
        sparse_matrix[0, 0] = 1.0
        assert backend.choose(sparse_matrix) == "sparse"
        assert sparse.issparse(backend.prepare(sparse_matrix))

    def test_auto_threshold_validation(self):
        with pytest.raises(BackendError):
            AutoBackend(density_threshold=1.5)

    def test_auto_default_threshold_is_shared_constant(self):
        from repro.costmodel.parameters import SPARSE_DENSITY_THRESHOLD

        assert AutoBackend().density_threshold == SPARSE_DENSITY_THRESHOLD


class TestOperations:
    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_matmul_matches_numpy(self, backend, matrix, rng):
        storage = backend.prepare(matrix)
        x = rng.standard_normal((7, 3))
        result = backend.matmul(storage, x)
        assert isinstance(result, np.ndarray)
        assert np.allclose(result, matrix @ x)

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_transpose_matmul_matches_numpy(self, backend, matrix, rng):
        storage = backend.prepare(matrix)
        x = rng.standard_normal((12, 2))
        assert np.allclose(backend.transpose_matmul(storage, x), matrix.T @ x)

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_crossprod_matches_numpy(self, backend, matrix):
        storage = backend.prepare(matrix)
        assert np.allclose(backend.crossprod(storage), matrix.T @ matrix)

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_gram_pair(self, backend, matrix, rng):
        other = rng.standard_normal((12, 4))
        left, right = backend.prepare(matrix), backend.prepare(other)
        assert np.allclose(backend.gram_pair(left, right), matrix.T @ other)

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_sums(self, backend, matrix):
        storage = backend.prepare(matrix)
        assert np.allclose(backend.row_sums(storage), matrix.sum(axis=1))
        assert np.allclose(backend.column_sums(storage), matrix.sum(axis=0))
        assert backend.total_sum(storage) == pytest.approx(matrix.sum())

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_scale_and_elementwise(self, backend, matrix):
        storage = backend.prepare(matrix)
        scaled = backend.scale(storage, 2.5)
        assert np.allclose(backend.to_dense(scaled), matrix * 2.5)
        mask = np.zeros_like(matrix)
        mask[::2] = 1.0
        masked = backend.elementwise_multiply(storage, mask)
        assert np.allclose(backend.to_dense(masked), matrix * mask)

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_take_rows_and_columns(self, backend, matrix):
        storage = backend.prepare(matrix)
        rows = np.array([3, 0, 3, 11])
        taken = backend.take_rows(storage, rows)
        assert np.allclose(backend.to_dense(taken), matrix[rows])
        cols = [5, 1]
        assert np.allclose(
            backend.to_dense(backend.take_columns(storage, cols)), matrix[:, cols]
        )

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_introspection(self, backend, matrix):
        storage = backend.prepare(matrix)
        assert backend.nnz(storage) == np.count_nonzero(matrix)
        assert backend.density(storage) == pytest.approx(
            np.count_nonzero(matrix) / matrix.size
        )

    def test_matmul_shape_mismatch(self, matrix):
        backend = DenseBackend()
        with pytest.raises(BackendError):
            backend.matmul(backend.prepare(matrix), np.ones((3, 2)))


class TestFlopAccounting:
    def test_dense_counts_every_cell(self, matrix):
        backend = DenseBackend()
        storage = backend.prepare(matrix)
        assert backend.matmul_flops(storage, 3) == 12 * 7 * 3

    def test_sparse_counts_stored_cells_only(self, matrix):
        backend = SparseBackend()
        storage = backend.prepare(matrix)
        nnz = np.count_nonzero(matrix)
        assert backend.matmul_flops(storage, 3) == nnz * 3
        assert backend.matmul_flops(storage, 3) < DenseBackend().matmul_flops(matrix, 3)

    def test_crossprod_flops(self, matrix):
        sparse_backend = SparseBackend()
        storage = sparse_backend.prepare(matrix)
        assert sparse_backend.crossprod_flops(storage) == np.count_nonzero(matrix) * 7
        assert DenseBackend().crossprod_flops(matrix) == 7 * 12 * 7


class TestRegistry:
    def test_resolve_by_name(self):
        assert resolve_backend("dense").name == "dense"
        assert resolve_backend("sparse").name == "sparse"
        assert resolve_backend("auto").name == "auto"

    def test_resolve_none_is_dense(self):
        assert resolve_backend(None).name == "dense"

    def test_resolve_instance_passthrough(self):
        backend = AutoBackend(0.25)
        assert resolve_backend(backend) is backend

    def test_unknown_name(self):
        with pytest.raises(BackendError):
            resolve_backend("gpu")

    def test_bad_spec_type(self):
        with pytest.raises(BackendError):
            resolve_backend(42)

    def test_available_backends(self):
        assert {"dense", "sparse", "auto"} <= set(available_backends())

    def test_register_custom_backend(self):
        class UpperDense(DenseBackend):
            name = "upper-dense"

        register_backend("upper-dense", UpperDense)
        try:
            assert isinstance(resolve_backend("upper-dense"), UpperDense)
        finally:
            from repro.backends import registry

            registry._REGISTRY.pop("upper-dense", None)

    def test_register_rejects_non_backend(self):
        with pytest.raises(BackendError):
            register_backend("bogus", dict)


class TestHelpers:
    def test_storage_nnz_and_density(self, matrix):
        csr = sparse.csr_matrix(matrix)
        assert storage_nnz(csr) == storage_nnz(matrix) == np.count_nonzero(matrix)
        assert storage_density(csr) == pytest.approx(storage_density(matrix))

    def test_describe(self, matrix):
        backend = SparseBackend()
        text = backend.describe(backend.prepare(matrix))
        assert "csr" in text and "nnz=" in text

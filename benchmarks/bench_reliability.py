"""Reliability guard: checkpoint overhead, recovery latency, disabled-path cost.

Run standalone to emit ``benchmarks/results/BENCH_RELIABILITY.json`` (exits
non-zero when a guard fails — the CI ``fault-guard`` job)::

    PYTHONPATH=src python benchmarks/bench_reliability.py

Three phases over one spilled left-join scenario:

* **Checkpoint overhead**: ``StreamingGD`` with a checkpoint written every
  epoch must cost at most **5%** more wall-clock than the identical run
  without one. Checkpoints are a weight vector plus a short loss history
  (kilobytes) against an epoch of row-block matmuls — the atomic
  write-then-rename plus CRC32 has to disappear into that.

* **Recovery latency**: a cold N-epoch fit versus a crash simulated at
  epoch ``3N/4`` and resumed from the newest checkpoint. The resumed run
  must be cheaper than the cold run *and* finish with bit-identical
  weights — resume correctness is the parity guard, resume speed is the
  point of checkpointing at all.

* **Disabled-path overhead**: with no fault plan installed every fault
  site is one module attribute load and a falsy branch. The guard prices
  that exactly: measure ns/call on the inactive ``fault_point``, count the
  sites an epoch actually crosses (a zero-probability plan counts hits
  without ever triggering), and require sites x cost ≤ **2%** of the
  measured epoch time.

The committed JSON is the trajectory baseline; CI re-runs the benchmark
and fails on any guard regression.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

if __name__ == "__main__":  # allow `python benchmarks/bench_reliability.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import parallel
from repro.datagen.scenarios import ScenarioSpec, generate_scenario_streams
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.learning import StreamingGD
from repro.metadata.mappings import ScenarioType
from repro.reliability import faults
from repro.reliability.checkpoint import CheckpointManager
from repro.streaming import SpillStore, integrate_streams

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_RELIABILITY.json"

CHECKPOINT_OVERHEAD_LIMIT = 0.05  # ≤5% per-epoch cost for every-epoch checkpoints
DISABLED_OVERHEAD_LIMIT = 0.02  # ≤2% epoch cost for dormant fault sites
RESUME_PARITY_TOLERANCE = 0.0  # resume is bit-identical, not merely close

SPEC = ScenarioSpec(
    ScenarioType.LEFT_JOIN,
    base_rows=90_000,
    other_rows=45_000,
    base_features=40,
    other_features=30,
    overlap_rows=18_000,
    overlap_columns=3,
    seed=21,
)
CHUNK_ROWS = 4_096
N_EPOCHS = 8
CRASH_EPOCH = 6  # simulated crash point: resume replays the final quarter
REPEATS = 3  # best-of-N timing for the overhead comparison
FAULT_POINT_CALLS = 200_000  # microbenchmark loop for the disabled path

ZERO_PLAN = ";".join(
    f"{site}:p=0" for site in sorted(faults.KNOWN_SITES)
)


def _build(tmp_dir: Path):
    base, other, matches, row_matches, targets = generate_scenario_streams(
        SPEC, chunk_rows=CHUNK_ROWS
    )
    store = SpillStore(tmp_dir / "spill")
    dataset = integrate_streams(
        base, other, matches, row_matches, targets, SPEC.scenario,
        label_column="label", store=store,
    )
    return store, AmalurMatrix(dataset)


def _fit(matrix, store, n_iterations, manager=None, checkpoint_every=1):
    return StreamingGD(
        task="linear",
        block_rows=CHUNK_ROWS,
        n_iterations=n_iterations,
        release_pages=store.release,
        checkpoint=manager,
        checkpoint_every=checkpoint_every,
    ).fit(matrix)


def _best_of(repeats, fn):
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


# -- checkpoint overhead --------------------------------------------------------------


def run_checkpoint_overhead(matrix, store, tmp_dir: Path) -> dict:
    plain_seconds = _best_of(REPEATS, lambda: _fit(matrix, store, N_EPOCHS))

    def checkpointed():
        ckpt_dir = tmp_dir / f"ckpt-overhead-{time.monotonic_ns()}"
        _fit(matrix, store, N_EPOCHS, CheckpointManager(ckpt_dir, keep=2))

    checkpointed_seconds = _best_of(REPEATS, checkpointed)
    overhead = (checkpointed_seconds - plain_seconds) / plain_seconds
    return {
        "epochs": N_EPOCHS,
        "plain_seconds": plain_seconds,
        "checkpointed_seconds": checkpointed_seconds,
        "overhead_fraction": overhead,
        "checkpoints_written": N_EPOCHS,
    }


# -- recovery latency -----------------------------------------------------------------


def run_recovery(matrix, store, tmp_dir: Path) -> dict:
    cold_start = time.perf_counter()
    cold = _fit(matrix, store, N_EPOCHS)
    cold_seconds = time.perf_counter() - cold_start

    # Crash at CRASH_EPOCH: the first run simply stops there, leaving its
    # newest checkpoint behind, exactly what a killed process leaves.
    manager = CheckpointManager(tmp_dir / "ckpt-recovery", keep=2)
    _fit(matrix, store, CRASH_EPOCH, manager)

    resume_start = time.perf_counter()
    resumed = _fit(matrix, store, N_EPOCHS, manager)
    resume_seconds = time.perf_counter() - resume_start

    weight_diff = float(np.max(np.abs(resumed.coef_ - cold.coef_)))
    return {
        "epochs": N_EPOCHS,
        "crash_epoch": CRASH_EPOCH,
        "resumed_from": resumed.resumed_from_,
        "cold_seconds": cold_seconds,
        "resume_seconds": resume_seconds,
        "resume_speedup": cold_seconds / resume_seconds,
        "bit_identical": bool(np.array_equal(resumed.coef_, cold.coef_)),
        "max_weight_diff": weight_diff,
    }


# -- disabled-path overhead -----------------------------------------------------------


def run_disabled_overhead(matrix, store) -> dict:
    # Price one dormant fault_point: module attribute load + falsy branch.
    assert not faults.ACTIVE
    fault_point = faults.fault_point
    loop_start = time.perf_counter()
    for _ in range(FAULT_POINT_CALLS):
        fault_point("spill.read")
    per_call_seconds = (time.perf_counter() - loop_start) / FAULT_POINT_CALLS

    # Count the sites one epoch actually crosses: a zero-probability plan
    # records every hit without ever triggering, so the run is still the
    # production code path and the snapshot is an exact site census.
    with faults.active_plan(ZERO_PLAN) as injector:
        _fit(matrix, store, 1)
        hits_per_epoch = sum(
            hits for hits, _ in injector.snapshot().values()
        )

    epoch_start = time.perf_counter()
    _fit(matrix, store, 1)
    epoch_seconds = time.perf_counter() - epoch_start

    overhead = hits_per_epoch * per_call_seconds / epoch_seconds
    return {
        "fault_point_ns": per_call_seconds * 1e9,
        "sites_crossed_per_epoch": int(hits_per_epoch),
        "epoch_seconds": epoch_seconds,
        "overhead_fraction": overhead,
    }


def run_benchmark() -> dict:
    import tempfile

    parallel.set_num_workers(1)  # serial timing floor: no pool jitter in guards
    faults.clear()
    with tempfile.TemporaryDirectory(prefix="bench-reliability-") as tmp:
        tmp_dir = Path(tmp)
        store, matrix = _build(tmp_dir)
        with store:
            checkpoint = run_checkpoint_overhead(matrix, store, tmp_dir)
            recovery = run_recovery(matrix, store, tmp_dir)
            disabled = run_disabled_overhead(matrix, store)
    return {
        "cores": parallel.available_cores(),
        "scenario": {
            "rows": SPEC.base_rows,
            "columns": SPEC.base_features + SPEC.other_features
            + 2 * SPEC.overlap_columns,
            "chunk_rows": CHUNK_ROWS,
        },
        "checkpoint": checkpoint,
        "recovery": recovery,
        "disabled": disabled,
    }


def check_guards(results: dict) -> list:
    failures = []
    checkpoint = results["checkpoint"]
    if checkpoint["overhead_fraction"] > CHECKPOINT_OVERHEAD_LIMIT:
        failures.append(
            f"every-epoch checkpointing costs {checkpoint['overhead_fraction']:.1%}"
            f" per run, over the {CHECKPOINT_OVERHEAD_LIMIT:.0%} limit"
        )
    recovery = results["recovery"]
    if not recovery["bit_identical"]:
        failures.append(
            f"resumed weights differ from the cold run by "
            f"{recovery['max_weight_diff']:.2e} — resume must be bit-identical"
        )
    if recovery["resumed_from"] != CRASH_EPOCH:
        failures.append(
            f"resume started from epoch {recovery['resumed_from']}, "
            f"expected the crash checkpoint at {CRASH_EPOCH}"
        )
    if recovery["resume_seconds"] >= recovery["cold_seconds"]:
        failures.append(
            f"resume ({recovery['resume_seconds']:.2f}s) is not cheaper than a "
            f"cold run ({recovery['cold_seconds']:.2f}s)"
        )
    disabled = results["disabled"]
    if disabled["overhead_fraction"] > DISABLED_OVERHEAD_LIMIT:
        failures.append(
            f"dormant fault sites cost {disabled['overhead_fraction']:.2%} of an "
            f"epoch, over the {DISABLED_OVERHEAD_LIMIT:.0%} limit"
        )
    return failures


def save_results(results: dict) -> Path:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return RESULTS_PATH


def report_lines(results: dict) -> list:
    checkpoint = results["checkpoint"]
    recovery = results["recovery"]
    disabled = results["disabled"]
    return [
        "checkpoint overhead: %.2fs plain vs %.2fs checkpointed over %d epochs "
        "(%+.1f%%)"
        % (
            checkpoint["plain_seconds"], checkpoint["checkpointed_seconds"],
            checkpoint["epochs"], 100 * checkpoint["overhead_fraction"],
        ),
        "recovery: cold %.2fs vs resume-from-epoch-%d %.2fs (%.1fx), "
        "bit identical=%s"
        % (
            recovery["cold_seconds"], recovery["resumed_from"],
            recovery["resume_seconds"], recovery["resume_speedup"],
            recovery["bit_identical"],
        ),
        "disabled path: %.0f ns per dormant site, %d sites per epoch = %.3f%% "
        "of a %.2fs epoch"
        % (
            disabled["fault_point_ns"], disabled["sites_crossed_per_epoch"],
            100 * disabled["overhead_fraction"], disabled["epoch_seconds"],
        ),
    ]


if __name__ == "__main__":
    benchmark_results = run_benchmark()
    path = save_results(benchmark_results)
    print("\n".join(report_lines(benchmark_results)))
    print(f"\nresults written to {path}")
    guard_failures = check_guards(benchmark_results)
    if guard_failures:
        print("RELIABILITY GUARD FAILED:", "; ".join(guard_failures), file=sys.stderr)
        raise SystemExit(1)
    print("reliability guards passed")

"""Out-of-core streaming guard: build + train under a hard RSS budget.

Run standalone to emit ``benchmarks/results/BENCH_STREAMING.json`` (exits
non-zero when a guard fails — the CI ``streaming-guard`` job)::

    PYTHONPATH=src python benchmarks/bench_streaming.py

Two phases:

* **Parity** (small scale): chunked CSV ingest must equal ``read_csv``
  exactly; the spillable streaming build must produce the identical
  ``CI_k`` / factor cells / redundancy masks as ``integrate_tables``; and
  ``StreamingGD`` weights must match full-batch GD within 1e-8 — for both
  linear and logistic regression.

* **Budget** (wide scale): a left-join scenario whose materialized dense
  target would be ~1 GB and whose on-disk factors alone exceed the RSS
  budget is generated, built and trained entirely through the streaming
  path — hashed chunk generation, memmap-spilled factors, row-block GD —
  under a hard peak-RSS budget of **1/4 of the dense materialized
  footprint**. ``SpillStore.release`` (flush + ``MADV_DONTNEED``) after
  every block is what keeps file-backed pages out of the resident set;
  the guard fails if the process high-water RSS ever crosses the budget.

The committed JSON is the trajectory baseline: CI re-runs the benchmark
and additionally checks the fresh RSS-to-dense ratio has not regressed to
more than 1.5x the committed one.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

if __name__ == "__main__":  # allow `python benchmarks/bench_streaming.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import parallel, telemetry
from repro.datagen.scenarios import (
    ScenarioSpec,
    generate_scenario_streams,
    generate_scenario_tables,
)
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.learning import LinearRegression, LogisticRegression, StreamingGD
from repro.matrices.builder import integrate_tables
from repro.metadata.mappings import ScenarioType
from repro.relational.io import read_csv, write_csv
from repro.streaming import InMemoryTableStream, SpillStore, integrate_streams
from repro.telemetry.memory import peak_rss_bytes as _peak_rss_bytes

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_STREAMING.json"

PARITY_TOLERANCE = 1e-8
RSS_BUDGET_FRACTION = 0.25  # peak RSS must stay ≤ 1/4 of the dense footprint

# Wide budget scenario: dense target ~1.03 GB, on-disk factors ~0.8 GB.
BUDGET_SPEC = ScenarioSpec(
    ScenarioType.LEFT_JOIN,
    base_rows=450_000,
    other_rows=220_000,
    base_features=150,
    other_features=140,
    overlap_rows=60_000,
    overlap_columns=4,
    seed=17,
)
BUDGET_CHUNK_ROWS = 8_192
BUDGET_TRAIN_ITERATIONS = 6


# -- parity phase ---------------------------------------------------------------------


def run_parity(tmp_dir: Path) -> dict:
    spec = ScenarioSpec(
        ScenarioType.INNER_JOIN,
        base_rows=3_000, other_rows=2_200, base_features=8, other_features=9,
        overlap_rows=900, overlap_columns=3, seed=13,
    )
    base, other, matches, row_matches, targets = generate_scenario_tables(spec)

    # Chunked CSV ingest == read_csv, exactly.
    csv_path = tmp_dir / "base.csv"
    write_csv(base, csv_path)
    from repro.streaming.ingest import ChunkedCsvReader

    resident = read_csv(csv_path, key_columns=["id"], label_column="label")
    streamed_table = ChunkedCsvReader(
        csv_path, key_columns=["id"], label_column="label", chunk_rows=256
    ).read_table()
    ingest_exact = streamed_table.equals(resident) and (
        streamed_table.schema == resident.schema
    )

    # Spilled build == in-memory build.
    mem = integrate_tables(
        base, other, matches, row_matches, targets, spec.scenario,
        label_column="label",
    )
    with SpillStore() as store:
        streamed = integrate_streams(
            InMemoryTableStream(base, 517), InMemoryTableStream(other, 517),
            matches, row_matches, targets, spec.scenario,
            label_column="label", store=store,
        )
        build_exact = all(
            np.array_equal(fs.indicator.compressed, fm.indicator.compressed)
            and np.array_equal(np.asarray(fs.data), fm.data)
            and fs.redundancy == fm.redundancy
            for fm, fs in zip(mem.factors, streamed.factors)
        )

        # StreamingGD == full-batch GD (linear and logistic).
        matrix = AmalurMatrix(mem)
        features = matrix.feature_matrix_view()
        labels = matrix.labels()
        spilled_matrix = AmalurMatrix(streamed)
        linear_ref = LinearRegression(solver="gd", n_iterations=30).fit(features, labels)
        linear_stream = StreamingGD(
            task="linear", block_rows=701, n_iterations=30,
            release_pages=store.release,
        ).fit(spilled_matrix)
        logistic_ref = LogisticRegression(n_iterations=30).fit(features, labels)
        logistic_stream = StreamingGD(
            task="logistic", block_rows=701, n_iterations=30,
            release_pages=store.release,
        ).fit(spilled_matrix)
        linear_diff = float(np.max(np.abs(linear_stream.coef_ - linear_ref.coef_)))
        logistic_diff = float(np.max(np.abs(logistic_stream.coef_ - logistic_ref.coef_)))
    return {
        "ingest_exact": bool(ingest_exact),
        "build_exact": bool(build_exact),
        "linear_max_weight_diff": linear_diff,
        "logistic_max_weight_diff": logistic_diff,
    }


# -- budget phase ---------------------------------------------------------------------


def run_budget(tmp_dir: Path) -> dict:
    spec = BUDGET_SPEC
    base, other, matches, row_matches, targets = generate_scenario_streams(
        spec, chunk_rows=BUDGET_CHUNK_ROWS
    )
    n_target_rows = base.n_rows  # left join keeps every base row
    n_target_cols = len(targets)
    dense_bytes = n_target_rows * n_target_cols * 8
    factor_bytes = (
        base.n_rows * (len(base.schema) - 1) * 8
        + other.n_rows * (len(other.schema)) * 8
    )
    budget_bytes = int(dense_bytes * RSS_BUDGET_FRACTION)
    rss_before = _peak_rss_bytes()

    session = telemetry.enable()
    with SpillStore(tmp_dir / "budget-spill") as store:
        build_start = time.perf_counter()
        dataset = integrate_streams(
            base, other, matches, row_matches, targets, spec.scenario,
            label_column="label", store=store,
        )
        matrix = AmalurMatrix(dataset)
        build_seconds = time.perf_counter() - build_start

        train_start = time.perf_counter()
        model = StreamingGD(
            task="linear",
            block_rows=BUDGET_CHUNK_ROWS,
            n_iterations=BUDGET_TRAIN_ITERATIONS,
            release_pages=store.release,
        ).fit(matrix)
        train_seconds = time.perf_counter() - train_start
        spilled_bytes = store.spilled_bytes
        final_loss = model.loss_history_[-1]
    telemetry.disable()
    report = session.report()

    # The probe the telemetry subsystem reports must be byte-for-byte this
    # guard's own measurement: both read ru_maxrss through the same helper.
    peak_rss = _peak_rss_bytes()
    return {
        "target_shape": [int(n_target_rows), int(n_target_cols)],
        "dense_bytes": int(dense_bytes),
        "declared_factor_bytes": int(factor_bytes),
        "spilled_bytes": int(spilled_bytes),
        "budget_bytes": budget_bytes,
        "rss_before_bytes": int(rss_before),
        "peak_rss_bytes": int(peak_rss),
        "rss_to_dense_ratio": peak_rss / dense_bytes,
        "build_seconds": build_seconds,
        "train_seconds": train_seconds,
        "train_iterations": BUDGET_TRAIN_ITERATIONS,
        "final_loss": float(final_loss),
        "telemetry": report.to_dict(),
    }


def run_benchmark() -> dict:
    import tempfile

    # The RSS budget measures the minimum-residency *serial* configuration:
    # block-parallel ingest/build/train keeps a window of chunks in flight,
    # which is bench_parallel.py's trade to measure, not this guard's.
    parallel.set_num_workers(1)
    with tempfile.TemporaryDirectory(prefix="bench-streaming-") as tmp:
        tmp_dir = Path(tmp)
        parity = run_parity(tmp_dir)
        budget = run_budget(tmp_dir)
    return {"cores": parallel.available_cores(), "parity": parity, "budget": budget}


def check_guards(results: dict) -> list:
    failures = []
    parity = results["parity"]
    if not parity["ingest_exact"]:
        failures.append("chunked CSV ingest does not match read_csv")
    if not parity["build_exact"]:
        failures.append("spilled streaming build does not match in-memory build")
    for key in ("linear_max_weight_diff", "logistic_max_weight_diff"):
        if parity[key] > PARITY_TOLERANCE:
            failures.append(
                f"{key} {parity[key]:.2e} exceeds tolerance {PARITY_TOLERANCE:.0e}"
            )
    budget = results["budget"]
    if budget["spilled_bytes"] <= budget["budget_bytes"]:
        failures.append(
            "budget scenario too small: spilled factors fit inside the RSS budget"
        )
    if budget["peak_rss_bytes"] > budget["budget_bytes"]:
        failures.append(
            f"peak RSS {budget['peak_rss_bytes']:,} bytes exceeds the budget "
            f"{budget['budget_bytes']:,} (dense footprint {budget['dense_bytes']:,})"
        )
    telemetry_peak = budget.get("telemetry", {}).get("memory", {}).get("peak_rss_bytes", 0)
    if abs(telemetry_peak - budget["peak_rss_bytes"]) > 0.05 * budget["peak_rss_bytes"]:
        failures.append(
            f"telemetry memory probe {telemetry_peak:,} bytes disagrees with the "
            f"guard's own measurement {budget['peak_rss_bytes']:,} by more than 5%"
        )
    return failures


def save_results(results: dict) -> Path:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return RESULTS_PATH


def report_lines(results: dict) -> list:
    parity = results["parity"]
    budget = results["budget"]
    return [
        "streaming parity: ingest exact=%s build exact=%s "
        "linear diff=%.2e logistic diff=%.2e"
        % (
            parity["ingest_exact"], parity["build_exact"],
            parity["linear_max_weight_diff"], parity["logistic_max_weight_diff"],
        ),
        "budget scenario %dx%d: dense %.2f GB, spilled factors %.2f GB on disk"
        % (
            budget["target_shape"][0], budget["target_shape"][1],
            budget["dense_bytes"] / 1e9, budget["spilled_bytes"] / 1e9,
        ),
        "peak RSS %.1f MB vs budget %.1f MB (%.1f%% of dense; build %.1fs, "
        "%d GD iterations %.1fs)"
        % (
            budget["peak_rss_bytes"] / 1e6, budget["budget_bytes"] / 1e6,
            100 * budget["rss_to_dense_ratio"], budget["build_seconds"],
            budget["train_iterations"], budget["train_seconds"],
        ),
    ]


if __name__ == "__main__":
    benchmark_results = run_benchmark()
    path = save_results(benchmark_results)
    print("\n".join(report_lines(benchmark_results)))
    print(f"\nresults written to {path}")
    guard_failures = check_guards(benchmark_results)
    if guard_failures:
        print("STREAMING GUARD FAILED:", "; ".join(guard_failures), file=sys.stderr)
        raise SystemExit(1)
    print("streaming guards passed")

"""Extension X2: federated learning with DI metadata (paper §V).

The harness exercises the two federated workflows of Table I:

* vertical federated linear regression (inner-join scenario) with the
  feature spaces expressed through the DI matrices — reporting accuracy
  vs. centralized training, the communication volume, and the overhead the
  encryption layer adds (the open question of §V-B);
* horizontal federated averaging (union scenario) across three silos.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.scenarios import ScenarioSpec, generate_scenario_dataset
from repro.federated.horizontal import FederatedAveraging
from repro.federated.party import Party
from repro.federated.vertical_lr import VerticalFederatedLinearRegression
from repro.learning.linear_regression import LinearRegression
from repro.metadata.mappings import ScenarioType
from repro.silos.network import SimulatedNetwork

N_ROWS = 600
N_ITERATIONS = 40
LEARNING_RATE = 0.05


def _vfl_setup(seed=0):
    rng = np.random.default_rng(seed)
    ids = [f"e{i}" for i in range(N_ROWS)]
    features_a = rng.standard_normal((N_ROWS, 4))
    features_b = rng.standard_normal((N_ROWS, 6))
    weights = rng.standard_normal(10)
    labels = (
        np.hstack([features_a, features_b]) @ weights + 0.05 * rng.standard_normal(N_ROWS)
    )
    party_a = Party("hospital_a", features_a, [f"a{i}" for i in range(4)], labels=labels,
                    entity_ids=ids)
    party_b = Party("hospital_b", features_b, [f"b{i}" for i in range(6)], entity_ids=ids)
    return party_a, party_b, np.hstack([features_a, features_b]), labels


def _hfl_parties(seed=0):
    dataset = generate_scenario_dataset(
        ScenarioSpec(scenario=ScenarioType.UNION, base_rows=400, other_rows=300, seed=seed)
    )
    parties = []
    for factor in dataset.factors:
        mapped = [factor.mapping.correspondences[c] for c in factor.source_columns]
        label_index = mapped.index("label")
        feature_indices = [i for i in range(len(mapped)) if i != label_index]
        parties.append(
            Party(
                factor.name,
                factor.data[:, feature_indices],
                [mapped[i] for i in feature_indices],
                labels=factor.data[:, label_index],
            )
        )
    return parties


def test_benchmark_vfl_plaintext(benchmark):
    party_a, party_b, _, _ = _vfl_setup()
    benchmark.pedantic(
        lambda: VerticalFederatedLinearRegression(
            learning_rate=LEARNING_RATE, n_iterations=N_ITERATIONS, use_encryption=False
        ).fit([party_a, party_b]),
        rounds=2, iterations=1,
    )


def test_benchmark_vfl_encrypted(benchmark):
    party_a, party_b, _, _ = _vfl_setup()
    benchmark.pedantic(
        lambda: VerticalFederatedLinearRegression(
            learning_rate=LEARNING_RATE, n_iterations=N_ITERATIONS, use_encryption=True
        ).fit([party_a, party_b]),
        rounds=2, iterations=1,
    )


def test_benchmark_hfl_fedavg(benchmark):
    parties = _hfl_parties()
    benchmark.pedantic(
        lambda: FederatedAveraging(
            model="logistic", n_rounds=N_ITERATIONS, learning_rate=0.3
        ).fit(parties),
        rounds=2, iterations=1,
    )


def test_report_federated(report, benchmark):
    lines = ["Federated learning with DI metadata (§V)", "=" * 64]

    # Vertical FL: accuracy vs centralized, communication, encryption overhead.
    party_a, party_b, features, labels = _vfl_setup()
    central = LinearRegression(
        solver="gd", learning_rate=LEARNING_RATE, n_iterations=N_ITERATIONS, fit_intercept=False
    ).fit(features, labels)

    import time

    results = {}
    for encrypted in (False, True):
        network = SimulatedNetwork()
        start = time.perf_counter()
        model = VerticalFederatedLinearRegression(
            learning_rate=LEARNING_RATE,
            n_iterations=N_ITERATIONS,
            use_encryption=encrypted,
            network=network,
        ).fit([party_a, party_b])
        elapsed = time.perf_counter() - start
        results[encrypted] = (model, elapsed)
        weight_gap = float(
            np.max(np.abs(model.centralized_equivalent_weights() - central.coef_))
        )
        lines.append(
            f"VFL ({'encrypted' if encrypted else 'plaintext'}): "
            f"final MSE {model.report_.final_loss:.4f}, "
            f"max |w_fed − w_central| = {weight_gap:.2e}, "
            f"{model.report_.n_messages} messages, "
            f"{model.report_.bytes_transferred:,} bytes, "
            f"{model.report_.encryption_operations} HE ops, {elapsed*1000:.0f} ms"
        )
        assert weight_gap < 1e-6
    overhead = results[True][1] / results[False][1] if results[False][1] else float("inf")
    lines.append(f"encryption overhead (wall-clock ratio encrypted/plaintext): {overhead:.2f}x")

    # Horizontal FL: FedAvg over the union scenario.
    parties = _hfl_parties()
    model = FederatedAveraging(model="logistic", n_rounds=N_ITERATIONS, learning_rate=0.3).fit(
        parties
    )
    all_features = np.vstack([p.data for p in parties])
    all_labels = np.concatenate([p.labels for p in parties])
    accuracy = float(np.mean(model.predict(all_features) == all_labels))
    lines.append(
        f"HFL (FedAvg, union scenario, {len(parties)} silos): "
        f"global accuracy {accuracy:.2f}, final loss {model.report_.final_loss:.4f}, "
        f"{model.report_.n_messages} messages, {model.report_.bytes_transferred:,} bytes"
    )
    report("federated", lines)

    assert overhead >= 1.0
    benchmark.pedantic(
        lambda: VerticalFederatedLinearRegression(
            learning_rate=LEARNING_RATE, n_iterations=10, use_encryption=False
        ).fit([party_a, party_b]),
        rounds=2, iterations=1,
    )

"""End-to-end pipeline wall time: seed row-at-a-time vs vectorized columnar.

Run standalone to emit ``benchmarks/results/BENCH_PIPELINE.json`` (exits
non-zero when a parity or perf guard fails — the CI ``pipeline-guard`` job)::

    PYTHONPATH=src python benchmarks/bench_pipeline.py

``--telemetry-only`` runs just the telemetry phase (the CI
``telemetry-guard`` job): the 100k pipeline with telemetry enabled vs
disabled, enforcing the instrumentation-overhead budget, exact FLOP-counter
parity with the legacy ``FlopCounter`` and peak-RSS probe agreement, and
writing the Chrome trace + run report artifacts without touching the
committed benchmark cases.

PR 3 made the factorized operators pure NumPy/CSR; this benchmark guards the
layers *in front* of them: entity resolution, the four Table I join
operators, and the ``(D_k, M_k, I_k, R_k)`` builder. The timed pipeline is
the paper's integration flow from source tables to a trained model:

    entity-resolve -> build factorized dataset -> train (GD linear regression)

measured twice per workload — once with the **seed row-at-a-time
implementations** (per-cell ``table.cell`` loops, dict-probe key matching,
``for i in range(n_rows)`` builder loops, per-value ``to_matrix``), preserved
verbatim below as the baseline, and once with the **vectorized columnar
engine** (factorized hash joins, array row maps, cached column-stack
projections). Both paths construct the same ``IntegratedDataset`` and train
with the same compiled operators, so the only difference measured is the
integration substrate.

Workloads: the four Table I scenarios at medium size, plus a 100k-row
two-source inner join. Guards: exact parity (<= 1e-10) of the materialized
target matrix, trained weights and join outputs between the two paths; the
100k case must build-and-train >= 5x faster end to end (machine-invariant:
both paths are re-measured in the same run); no case may be slower than the
seed path beyond a 1.25x tolerance.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

if __name__ == "__main__":  # allow `python benchmarks/bench_pipeline.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import parallel, telemetry
from repro.datagen.scenarios import ScenarioSpec, generate_scenario_tables
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.learning.linear_regression import LinearRegression
from repro.matrices.builder import IntegratedDataset, SourceFactor, integrate_tables
from repro.matrices.indicator_matrix import IndicatorMatrix
from repro.matrices.mapping_matrix import MappingMatrix
from repro.matrices.redundancy_matrix import RedundancyMatrix
from repro.metadata.entity_resolution import KeyBasedResolver
from repro.metadata.mappings import ScenarioType
from repro.relational.joins import full_outer_join, inner_join, left_join, union_all
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import NULL, is_null

PARITY_ATOL = 1e-10
MIN_SPEEDUP_100K = 5.0  # required end-to-end speedup on the 100k case
SMALL_TOLERANCE = 1.25  # vectorized may never be slower than seed × this
SMALL_REPEATS = 3
LARGE_REPEATS = 1
TRAIN_ITERATIONS = 20

TELEMETRY_OVERHEAD_TOLERANCE = 1.05  # enabled may cost <= 5% over disabled
TELEMETRY_REPEATS = 5  # interleaved disabled/enabled pairs, best-of each side
RSS_PARITY_TOLERANCE = 0.05  # report peak RSS within 5% of the direct probe

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_PIPELINE.json"
TRACE_PATH = Path(__file__).parent / "results" / "TRACE_PIPELINE.json"
REPORT_PATH = Path(__file__).parent / "results" / "PIPELINE_RUN_REPORT.json"

SCENARIO_SPECS = {
    "inner_join": ScenarioSpec(
        ScenarioType.INNER_JOIN,
        base_rows=2_000, other_rows=1_500, base_features=10, other_features=12,
        overlap_rows=800, overlap_columns=3, seed=7,
    ),
    "left_join": ScenarioSpec(
        ScenarioType.LEFT_JOIN,
        base_rows=2_000, other_rows=1_500, base_features=10, other_features=12,
        overlap_rows=800, overlap_columns=3, seed=7,
    ),
    "outer_join": ScenarioSpec(
        ScenarioType.FULL_OUTER_JOIN,
        base_rows=2_000, other_rows=1_500, base_features=10, other_features=12,
        overlap_rows=800, overlap_columns=3, seed=7,
    ),
    "union": ScenarioSpec(
        ScenarioType.UNION,
        base_rows=2_000, other_rows=1_500, base_features=10, other_features=12,
        overlap_rows=800, overlap_columns=3, seed=7,
    ),
}
SCALE_SPEC = ScenarioSpec(
    ScenarioType.INNER_JOIN,
    base_rows=100_000, other_rows=60_000, base_features=8, other_features=8,
    overlap_rows=40_000, overlap_columns=2, seed=11,
)

JOIN_OPERATORS = {
    ScenarioType.INNER_JOIN: inner_join,
    ScenarioType.LEFT_JOIN: left_join,
    ScenarioType.FULL_OUTER_JOIN: full_outer_join,
}


# ---------------------------------------------------------------------------------
# Seed (pre-columnar) implementations, preserved verbatim as the baseline:
# row-at-a-time joins, dict-probe entity resolution and per-cell builder loops.
# They run against the same Table API, so the only difference measured is the
# row-at-a-time algorithm vs the vectorized one.
# ---------------------------------------------------------------------------------


def seed_to_matrix(table: Table, columns: Sequence[str], null_value: float = 0.0) -> np.ndarray:
    out = np.empty((table.n_rows, len(columns)), dtype=float)
    for j, name in enumerate(columns):
        values = table.column(name)
        out[:, j] = [null_value if is_null(v) else float(v) for v in values]
    return out


def seed_resolve(left: Table, right: Table, pairs: Sequence[Tuple[str, str]]):
    """The seed KeyBasedResolver.resolve: dict probe per row, greedy 1:1."""
    right_index: Dict[Tuple, List[int]] = {}
    for j in range(right.n_rows):
        key = tuple(right.cell(j, rc) for _, rc in pairs)
        if any(is_null(v) for v in key):
            continue
        right_index.setdefault(key, []).append(j)
    matches: List[Tuple[int, int]] = []
    used_right: set = set()
    for i in range(left.n_rows):
        key = tuple(left.cell(i, lc) for lc, _ in pairs)
        if any(is_null(v) for v in key):
            continue
        for j in right_index.get(key, []):
            if j in used_right:
                continue
            matches.append((i, j))
            used_right.add(j)
            break
    return matches


def _seed_key_tuple(table: Table, row: int, keys: Sequence[str]):
    values = tuple(table.cell(row, k) for k in keys)
    if any(is_null(v) for v in values):
        return ("__null__", row)  # NULL keys never match anything
    return values


def _seed_emit_row(left, right, left_row, right_row, target_columns):
    out = []
    for name in target_columns:
        value = NULL
        in_left = name in left.schema and left_row >= 0
        in_right = name in right.schema and right_row >= 0
        if in_left:
            value = left.cell(left_row, name)
        if is_null(value) and in_right:
            value = right.cell(right_row, name)
        out.append(value)
    return out


def seed_join(left, right, on, scenario: ScenarioType, target_columns=None, result_name="T"):
    """The seed row-at-a-time _join / union_all, returning (table, left_rows, right_rows)."""
    if scenario is ScenarioType.UNION:
        if target_columns is None:
            target_columns = [n for n in left.schema.names if n in right.schema]
        schema = Schema([left.schema[n] for n in target_columns])
        rows, left_rows, right_rows = [], [], []
        for i in range(left.n_rows):
            rows.append([left.cell(i, name) for name in target_columns])
            left_rows.append(i)
            right_rows.append(-1)
        for j in range(right.n_rows):
            rows.append([right.cell(j, name) for name in target_columns])
            left_rows.append(-1)
            right_rows.append(j)
        return Table.from_rows(result_name, schema, rows), left_rows, right_rows

    keep_left = scenario is not ScenarioType.INNER_JOIN
    keep_right = scenario is ScenarioType.FULL_OUTER_JOIN
    if target_columns is None:
        target_columns = list(left.schema.names)
        target_columns.extend(n for n in right.schema.names if n not in target_columns)
    schema = Schema(
        [left.schema[n] if n in left.schema else right.schema[n] for n in target_columns]
    )
    right_index: Dict[Tuple, List[int]] = {}
    for i in range(right.n_rows):
        right_index.setdefault(_seed_key_tuple(right, i, on), []).append(i)

    rows, left_rows, right_rows = [], [], []
    matched_right: set = set()
    for i in range(left.n_rows):
        key = _seed_key_tuple(left, i, on)
        matches = right_index.get(key, [])
        real_matches = [j for j in matches if key[0] != "__null__"]
        if real_matches:
            for j in real_matches:
                rows.append(_seed_emit_row(left, right, i, j, target_columns))
                left_rows.append(i)
                right_rows.append(j)
                matched_right.add(j)
        elif keep_left:
            rows.append(_seed_emit_row(left, right, i, -1, target_columns))
            left_rows.append(i)
            right_rows.append(-1)
    if keep_right:
        for j in range(right.n_rows):
            if j in matched_right:
                continue
            rows.append(_seed_emit_row(left, right, -1, j, target_columns))
            left_rows.append(-1)
            right_rows.append(j)
    return Table.from_rows(result_name, schema, rows), left_rows, right_rows


def seed_target_rows(base, other, matches, scenario: ScenarioType):
    matched_other_by_base = {i: j for i, j in matches}
    matched_other_rows = set(matched_other_by_base.values())
    base_rows: List[int] = []
    other_rows: List[int] = []
    if scenario is ScenarioType.INNER_JOIN:
        for i in range(base.n_rows):
            if i in matched_other_by_base:
                base_rows.append(i)
                other_rows.append(matched_other_by_base[i])
    elif scenario is ScenarioType.LEFT_JOIN:
        for i in range(base.n_rows):
            base_rows.append(i)
            other_rows.append(matched_other_by_base.get(i, -1))
    elif scenario is ScenarioType.FULL_OUTER_JOIN:
        for i in range(base.n_rows):
            base_rows.append(i)
            other_rows.append(matched_other_by_base.get(i, -1))
        for j in range(other.n_rows):
            if j not in matched_other_rows:
                base_rows.append(-1)
                other_rows.append(j)
    else:  # UNION
        for i in range(base.n_rows):
            base_rows.append(i)
            other_rows.append(-1)
        for j in range(other.n_rows):
            base_rows.append(-1)
            other_rows.append(j)
    return base_rows, other_rows


def seed_contribution_mask(table, row_map, correspondences, target_columns):
    target_index = {c: i for i, c in enumerate(target_columns)}
    mask = np.zeros((len(row_map), len(target_columns)), dtype=bool)
    for source_column, target_column in correspondences.items():
        if target_column not in target_index:
            continue
        j = target_index[target_column]
        for i, source_row in enumerate(row_map):
            if source_row < 0:
                continue
            mask[i, j] = not is_null(table.cell(source_row, source_column))
    return mask


def seed_build_factor(table, row_map, correspondences, target_columns, redundancy):
    wanted = {
        s for s, t in correspondences.items() if t in target_columns
    }
    source_columns = [
        c.name for c in table.schema if c.name in wanted and c.dtype.is_numeric
    ]
    data = seed_to_matrix(table, source_columns)
    mapping = MappingMatrix(
        table.name, list(target_columns), source_columns,
        {c: correspondences[c] for c in source_columns},
    )
    pairs = [(i, j) for i, j in enumerate(row_map) if j >= 0]
    indicator = IndicatorMatrix.from_row_pairs(
        table.name, len(row_map), table.n_rows, pairs
    )
    return SourceFactor(table.name, data, source_columns, mapping, indicator, redundancy)


def seed_integrate(base, other, column_matches, matches, target_columns, scenario,
                   label_column):
    """The seed integrate_tables, driven by the row-at-a-time helpers above."""
    target_columns = list(target_columns)
    matched_base_by_other = {m.right_column: m.left_column for m in column_matches}
    base_correspondences = {
        c: c for c in base.schema.names if c in target_columns
    }
    other_correspondences = {}
    for column in other.schema.names:
        target = matched_base_by_other.get(column, column)
        if target in target_columns:
            other_correspondences[column] = target

    base_rows, other_rows = seed_target_rows(base, other, matches, scenario)
    n_target_rows = len(base_rows)
    base_mask = seed_contribution_mask(base, base_rows, base_correspondences, target_columns)
    other_mask = seed_contribution_mask(other, other_rows, other_correspondences, target_columns)
    target_shape = (n_target_rows, len(target_columns))
    base_redundancy = RedundancyMatrix.all_ones(base.name, *target_shape)
    other_redundancy = RedundancyMatrix.from_complement(
        other.name, target_shape, base_mask & other_mask
    )
    return IntegratedDataset(
        target_columns=target_columns,
        n_target_rows=n_target_rows,
        factors=[
            seed_build_factor(base, base_rows, base_correspondences, target_columns,
                              base_redundancy),
            seed_build_factor(other, other_rows, other_correspondences, target_columns,
                              other_redundancy),
        ],
        scenario=scenario,
        label_column=label_column,
    )


# ---------------------------------------------------------------------------------
# Benchmark harness
# ---------------------------------------------------------------------------------


def _best_of(fn, repeats: int):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _train(dataset: IntegratedDataset) -> LinearRegression:
    matrix = AmalurMatrix(dataset)
    model = LinearRegression(
        solver="gd", learning_rate=0.01, n_iterations=TRAIN_ITERATIONS
    )
    return model.fit(matrix.feature_matrix_view(), matrix.labels())


def _max_abs_err(a: np.ndarray, b: np.ndarray) -> float:
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        return float("inf")
    return float(np.max(np.abs(a - b))) if a.size else 0.0


def _bench_case(name: str, spec: ScenarioSpec, repeats: int, failures: List[str]) -> Dict[str, Any]:
    base, other, column_matches, _, target_columns = generate_scenario_tables(spec)
    is_union = spec.scenario is ScenarioType.UNION
    key_pairs = [("id", "id")]
    resolver = KeyBasedResolver(key_pairs)

    # -- seed path ----------------------------------------------------------
    def run_seed():
        matches = [] if is_union else seed_resolve(base, other, key_pairs)
        dataset = seed_integrate(
            base, other, column_matches, matches, target_columns, spec.scenario, "label"
        )
        model = _train(dataset)
        return dataset, model

    # -- vectorized path ----------------------------------------------------
    def run_vectorized():
        if is_union:
            matches = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        else:
            matches = resolver.resolve_index(base, other)
        dataset = integrate_tables(
            base=base, other=other, column_matches=column_matches, row_matches=matches,
            target_columns=target_columns, scenario=spec.scenario, label_column="label",
        )
        model = _train(dataset)
        return dataset, model

    seed_s, (seed_dataset, seed_model) = _best_of(run_seed, repeats)
    vec_s, (vec_dataset, vec_model) = _best_of(run_vectorized, repeats)

    # -- parity: target matrix and trained model ----------------------------
    seed_target = seed_dataset.materialize()
    vec_target = vec_dataset.materialize()
    target_err = _max_abs_err(seed_target, vec_target)
    model_err = max(
        _max_abs_err(seed_model.coef_, vec_model.coef_),
        abs(seed_model.intercept_ - vec_model.intercept_),
    )

    # -- join operator: seed vs vectorized on the same tables ---------------
    if is_union:
        seed_join_s, (seed_tbl, seed_l, seed_r) = _best_of(
            lambda: seed_join(base, other, ["id"], spec.scenario), repeats
        )
        vec_join_s, vec_result = _best_of(lambda: union_all(base, other), repeats)
    else:
        operator = JOIN_OPERATORS[spec.scenario]
        seed_join_s, (seed_tbl, seed_l, seed_r) = _best_of(
            lambda: seed_join(base, other, ["id"], spec.scenario), repeats
        )
        vec_join_s, vec_result = _best_of(lambda: operator(base, other, on=["id"]), repeats)
    join_err = _max_abs_err(seed_tbl.to_matrix(), vec_result.table.to_matrix())
    if seed_l != vec_result.left_rows or seed_r != vec_result.right_rows:
        failures.append(f"{name}: join provenance diverged from the seed implementation")
    if not seed_tbl.equals(vec_result.table):
        failures.append(f"{name}: join output table diverged from the seed implementation")

    parity_err = max(target_err, model_err, join_err)
    if parity_err > PARITY_ATOL:
        failures.append(
            f"{name}: parity broke (target={target_err:.2e}, model={model_err:.2e}, "
            f"join={join_err:.2e})"
        )

    speedup = seed_s / vec_s if vec_s else float("inf")
    record = {
        "target_shape": list(seed_dataset.shape),
        "scenario": spec.scenario.value,
        "base_rows": spec.base_rows,
        "other_rows": spec.other_rows,
        "seed_end_to_end_s": seed_s,
        "vectorized_end_to_end_s": vec_s,
        "end_to_end_speedup": speedup,
        "seed_join_s": seed_join_s,
        "vectorized_join_s": vec_join_s,
        "join_speedup": seed_join_s / vec_join_s if vec_join_s else float("inf"),
        "train_iterations": TRAIN_ITERATIONS,
        "parity_max_abs_err": parity_err,
    }
    print(
        f"  {name:<14} {record['target_shape'][0]:>7}x{record['target_shape'][1]:<4} "
        f"seed {seed_s * 1e3:9.1f} ms  vectorized {vec_s * 1e3:8.1f} ms  "
        f"speedup {speedup:6.1f}x  join {record['join_speedup']:6.1f}x  "
        f"parity {parity_err:.1e}"
    )
    return record


# ---------------------------------------------------------------------------------
# Telemetry phase: overhead budget, FLOP-counter parity, memory-probe parity
# ---------------------------------------------------------------------------------


def _telemetry_phase(failures: List[str]) -> Dict[str, Any]:
    """Run the 100k pipeline with telemetry off vs on; guard the budget.

    Emits the Chrome trace and run report artifacts from the fastest
    enabled run, whose session covers exactly one pipeline execution — the
    basis of the exact FLOP parity check against the legacy FlopCounter.
    """
    from repro.telemetry.memory import peak_rss_bytes

    spec = SCALE_SPEC
    base, other, column_matches, _, target_columns = generate_scenario_tables(spec)
    resolver = KeyBasedResolver([("id", "id")])

    def run_once() -> AmalurMatrix:
        matches = resolver.resolve_index(base, other)
        dataset = integrate_tables(
            base=base, other=other, column_matches=column_matches, row_matches=matches,
            target_columns=target_columns, scenario=spec.scenario, label_column="label",
        )
        matrix = AmalurMatrix(dataset)
        model = LinearRegression(
            solver="gd", learning_rate=0.01, n_iterations=TRAIN_ITERATIONS
        )
        model.fit(matrix.feature_matrix_view(), matrix.labels())
        return matrix

    telemetry.disable()
    run_once()  # warm lazy structure and caches outside timing

    # Interleave disabled/enabled pairs so slow monotonic drift (thermal,
    # allocator growth) hits both sides equally instead of biasing the ratio.
    disabled_s = float("inf")
    enabled_s = float("inf")
    session = None
    matrix = None
    for _ in range(TELEMETRY_REPEATS):
        start = time.perf_counter()
        run_once()
        disabled_s = min(disabled_s, time.perf_counter() - start)

        telemetry.enable()
        start = time.perf_counter()
        result = run_once()
        elapsed = time.perf_counter() - start
        finished = telemetry.disable()
        if elapsed < enabled_s:
            enabled_s, session, matrix = elapsed, finished, result
    peak_rss_direct = peak_rss_bytes()

    report = session.report()
    overhead = enabled_s / disabled_s if disabled_s else float("inf")
    if overhead > TELEMETRY_OVERHEAD_TOLERANCE:
        failures.append(
            f"telemetry: enabled pipeline is {overhead:.3f}x the disabled one "
            f"(budget {TELEMETRY_OVERHEAD_TOLERANCE}x)"
        )

    # Exact parity: every legacy FlopCounter operation has an identical
    # telemetry twin (and no telemetry FLOP counter lacks a legacy twin).
    legacy = matrix.counter.by_operation
    telemetry_flops = {
        name[len("flops."):]: value
        for name, value in report.counters.items()
        if name.startswith("flops.")
    }
    if telemetry_flops != {op: v for op, v in legacy.items()}:
        failures.append(
            f"telemetry: FLOP counters diverged from the legacy FlopCounter "
            f"(telemetry={sorted(telemetry_flops)}, legacy={sorted(legacy)})"
        )

    report_peak = report.memory.get("peak_rss_bytes", 0)
    rss_err = abs(report_peak - peak_rss_direct) / peak_rss_direct
    if rss_err > RSS_PARITY_TOLERANCE:
        failures.append(
            f"telemetry: report peak RSS {report_peak} differs from the direct "
            f"probe {peak_rss_direct} by {rss_err:.1%} (tolerance {RSS_PARITY_TOLERANCE:.0%})"
        )

    TRACE_PATH.parent.mkdir(exist_ok=True)
    TRACE_PATH.write_text(json.dumps(session.chrome_trace()) + "\n")
    report.save(REPORT_PATH)
    print(
        f"  telemetry      disabled {disabled_s * 1e3:9.1f} ms  "
        f"enabled {enabled_s * 1e3:9.1f} ms  overhead {overhead:5.3f}x  "
        f"flop-parity {'exact' if telemetry_flops == legacy else 'BROKEN'}  "
        f"rss-err {rss_err:.2%}"
    )
    print(f"  wrote {TRACE_PATH}")
    print(f"  wrote {REPORT_PATH}")
    return {
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "overhead_ratio": overhead,
        "overhead_tolerance": TELEMETRY_OVERHEAD_TOLERANCE,
        "flop_parity_exact": telemetry_flops == legacy,
        "peak_rss_bytes": report_peak,
        "peak_rss_direct_bytes": peak_rss_direct,
        "rss_parity_tolerance": RSS_PARITY_TOLERANCE,
        "report": report.to_dict(),
    }


def run_telemetry_only() -> int:
    failures: List[str] = []
    print("Telemetry guard (100k pipeline, enabled vs disabled, best of N):")
    _telemetry_phase(failures)
    if failures:
        print("\ntelemetry-guard FAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("telemetry-guard ok")
    return 0


def run() -> int:
    failures: List[str] = []
    cases: Dict[str, Any] = {}

    print("Pipeline wall time (resolve -> build -> train), best of N:")
    for name, spec in SCENARIO_SPECS.items():
        cases[name] = _bench_case(name, spec, SMALL_REPEATS, failures)
    cases["pipeline_100k"] = _bench_case(
        "pipeline_100k", SCALE_SPEC, LARGE_REPEATS, failures
    )

    # -- guards -------------------------------------------------------------
    for name, record in cases.items():
        ratio = record["vectorized_end_to_end_s"] / record["seed_end_to_end_s"]
        if ratio > SMALL_TOLERANCE:
            failures.append(
                f"{name}: vectorized pipeline is {ratio:.2f}x the seed path "
                f"(tolerance {SMALL_TOLERANCE}x)"
            )
    scale_speedup = cases["pipeline_100k"]["end_to_end_speedup"]
    if scale_speedup < MIN_SPEEDUP_100K:
        failures.append(
            f"pipeline_100k: end-to-end speedup {scale_speedup:.1f}x is below "
            f"the required {MIN_SPEEDUP_100K}x"
        )

    print("Telemetry phase (100k pipeline, enabled vs disabled):")
    telemetry_record = _telemetry_phase(failures)

    record = {
        "benchmark": "pipeline",
        "parity_atol": PARITY_ATOL,
        "min_speedup_100k": MIN_SPEEDUP_100K,
        "small_tolerance": SMALL_TOLERANCE,
        "cases": cases,
        "telemetry": telemetry_record,
        "guards_failed": failures,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {RESULTS_PATH}")

    if failures:
        print("\npipeline-guard FAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"pipeline-guard ok: 100k end-to-end speedup {scale_speedup:.1f}x "
        f"(bar {MIN_SPEEDUP_100K}x), parity <= {PARITY_ATOL}"
    )
    return 0


if __name__ == "__main__":
    # The 1e-10 parity guards compare against the serial engine; blocked
    # parallel reductions reassociate float sums and only promise 1e-8.
    parallel.set_num_workers(1)
    if "--telemetry-only" in sys.argv[1:]:
        sys.exit(run_telemetry_only())
    sys.exit(run())

"""Table I reproduction: the four DI scenarios for feature augmentation / FL.

For each dataset relationship (full outer join, inner join, left join,
union) the harness prints the generated s-t tgds, the resulting target
shape, and verifies/benchmarks both execution strategies (materialization
and the factorized Eq. 2 rewrite) on a mid-sized instance of the scenario.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.hospital import hospital_column_matches, hospital_tables
from repro.datagen.scenarios import ScenarioSpec, generate_scenario_dataset
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.metadata.mappings import ScenarioType, build_scenario_mapping

SCENARIO_SPECS = {
    scenario: ScenarioSpec(
        scenario=scenario,
        base_rows=2_000,
        other_rows=1_200,
        base_features=6,
        other_features=8,
        overlap_rows=800,
        overlap_columns=2,
        seed=0,
    )
    for scenario in ScenarioType
}


@pytest.mark.parametrize("scenario", list(ScenarioType), ids=lambda s: s.value)
def test_benchmark_factorized_lmm_per_scenario(benchmark, scenario):
    """Time the factorized LMM (the §IV pushdown) for each Table I scenario."""
    dataset = generate_scenario_dataset(SCENARIO_SPECS[scenario])
    matrix = AmalurMatrix(dataset)
    operand = np.random.default_rng(0).standard_normal((len(dataset.target_columns), 4))
    result = benchmark(matrix.lmm, operand)
    assert np.allclose(result, dataset.materialize() @ operand)


@pytest.mark.parametrize("scenario", list(ScenarioType), ids=lambda s: s.value)
def test_benchmark_materialization_per_scenario(benchmark, scenario):
    """Time target-table materialization for each Table I scenario."""
    dataset = generate_scenario_dataset(SCENARIO_SPECS[scenario])
    target = benchmark(dataset.materialize)
    assert target.shape == dataset.shape


def test_report_table1(benchmark, report):
    """Regenerate the Table I rows: scenario, schema mappings, use case."""
    s1, s2 = hospital_tables()
    matches = hospital_column_matches()
    use_cases = {
        ScenarioType.FULL_OUTER_JOIN: "Feature augmentation, Federated learning",
        ScenarioType.INNER_JOIN: "Feature augmentation, (Vertical) federated learning",
        ScenarioType.LEFT_JOIN: "Feature augmentation, (Vertical) federated learning",
        ScenarioType.UNION: "Data sample augmentation, (Horizontal) federated learning",
    }
    lines = ["Table I: four example data integration scenarios", "=" * 72]
    for index, scenario in enumerate(ScenarioType, start=1):
        mapping = build_scenario_mapping(s1, s2, matches, ["m", "a", "hr", "o"], scenario)
        dataset = generate_scenario_dataset(SCENARIO_SPECS[scenario])
        lines.append(f"No. {index}  relationship={scenario.value}")
        for tgd in mapping.tgds:
            lines.append(f"    {tgd}")
        lines.append(f"    example use cases: {use_cases[scenario]}")
        lines.append(
            f"    synthetic instance: target shape {dataset.shape}, "
            f"classified as {mapping.classify().value}"
        )
        assert mapping.classify() is scenario
    report("table1_scenarios", lines)

    # Keep a representative timing under --benchmark-only as well.
    dataset = generate_scenario_dataset(SCENARIO_SPECS[ScenarioType.FULL_OUTER_JOIN])
    benchmark(dataset.materialize)

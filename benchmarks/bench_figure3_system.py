"""Figure 3 reproduction: the Amalur end-to-end workflow.

Figure 3 sketches the system: user inputs (model + constraints), the hybrid
metadata catalog fed by schema matching / entity resolution / discovery,
the optimizer choosing factorization / materialization / federated
learning, and execution over the silos. The harness runs the full facade
under the three constraint settings and reports which strategy the
optimizer picked, the training metrics, and the bytes that crossed silo
boundaries.
"""

from __future__ import annotations


from repro.costmodel.decision import Decision
from repro.datagen.hospital import hospital_tables
from repro.datagen.scenarios import ScenarioSpec, generate_scenario_tables
from repro.metadata.mappings import ScenarioType
from repro.silos.silo import PrivacyLevel
from repro.system.amalur import Amalur
from repro.system.plan import ModelSpec


def build_system(privacy=PrivacyLevel.OPEN, scale="small"):
    if scale == "small":
        base, other = hospital_tables()
        target_columns = ["m", "a", "hr", "o"]
        label = "m"
    else:
        spec = ScenarioSpec(
            scenario=ScenarioType.LEFT_JOIN,
            base_rows=2_000,
            other_rows=1_500,
            base_features=4,
            other_features=6,
            overlap_rows=1_200,
            seed=3,
        )
        base, other, _, _, target_columns = generate_scenario_tables(spec)
        base = base.set_roles(keys=["id"], label="label")
        other = other.set_roles(keys=["id"])
        label = "label"
    amalur = Amalur()
    amalur.add_silo("silo_a", privacy=privacy)
    amalur.add_table("silo_a", base)
    amalur.add_silo("silo_b", privacy=privacy)
    amalur.add_table("silo_b", other)
    return amalur, base.name, other.name, target_columns, label


def run_workflow(privacy=PrivacyLevel.OPEN, scale="small", scenario=ScenarioType.FULL_OUTER_JOIN,
                 task="classification", n_iterations=30, learning_rate=0.01):
    amalur, base_name, other_name, target_columns, label = build_system(privacy, scale)
    dataset = amalur.integrate(base_name, other_name, target_columns, scenario, label_column=label)
    spec = ModelSpec(task=task, n_iterations=n_iterations, learning_rate=learning_rate)
    plan = amalur.plan(dataset, spec)
    result = amalur.train(dataset, spec, plan=plan)
    return amalur, plan, result


def test_benchmark_open_silo_workflow(benchmark):
    """End-to-end workflow with open silos (materialize or factorize)."""
    result = benchmark.pedantic(
        lambda: run_workflow(scale="large", scenario=ScenarioType.LEFT_JOIN,
                             task="classification", n_iterations=20, learning_rate=0.1),
        rounds=3, iterations=1,
    )
    _, plan, outcome = result
    assert plan.strategy in (Decision.MATERIALIZE, Decision.FACTORIZE)
    assert "accuracy" in outcome.metrics


def test_benchmark_private_silo_workflow(benchmark):
    """End-to-end workflow when privacy constraints force federated learning."""
    result = benchmark.pedantic(
        lambda: run_workflow(privacy=PrivacyLevel.PRIVATE, scale="large",
                             scenario=ScenarioType.INNER_JOIN, task="regression",
                             n_iterations=20, learning_rate=0.05),
        rounds=2, iterations=1,
    )
    _, plan, outcome = result
    assert plan.strategy is Decision.FEDERATE
    assert outcome.metrics["aligned_rows"] > 0


def test_report_figure3(report, benchmark):
    """Regenerate the Figure 3 narrative: inputs → optimizer decision → execution."""
    lines = ["Figure 3: Amalur workflow under different constraints", "=" * 64]
    configurations = [
        ("open silos, hospital example", PrivacyLevel.OPEN, "small",
         ScenarioType.FULL_OUTER_JOIN, "classification", 0.01),
        ("open silos, 2k-row feature augmentation", PrivacyLevel.OPEN, "large",
         ScenarioType.LEFT_JOIN, "classification", 0.1),
        ("private silos, 2k-row vertical FL", PrivacyLevel.PRIVATE, "large",
         ScenarioType.INNER_JOIN, "regression", 0.05),
    ]
    for label, privacy, scale, scenario, task, lr in configurations:
        amalur, plan, result = run_workflow(
            privacy=privacy, scale=scale, scenario=scenario, task=task,
            n_iterations=25, learning_rate=lr,
        )
        lines.append(f"configuration: {label}")
        lines.append(f"  optimizer decision : {plan.strategy.value}")
        lines.append(f"  reason             : {plan.explanation or 'cost-based'}")
        metrics = ", ".join(f"{k}={v:.4g}" for k, v in result.metrics.items())
        lines.append(f"  training metrics   : {metrics}")
        lines.append(f"  silo-boundary bytes: {result.bytes_transferred:,}")
        lines.append(f"  messages exchanged : {result.n_messages}")
    report("figure3_system", lines)

    benchmark.pedantic(
        lambda: run_workflow(scale="small", n_iterations=10), rounds=3, iterations=1
    )

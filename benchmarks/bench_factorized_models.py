"""Extension X1: factorized vs. materialized model training (paper §IV).

The paper's performance argument rests on the factorized-learning
literature it generalizes: training over the factorized representation
matches the materialized result while often being faster when the target
table contains redundancy. This harness trains the four classic workloads
(linear regression, logistic regression, k-means, Gaussian NMF) over
Hamlet-style key–foreign-key datasets both ways, reports the speedups, and
asserts the numerical equivalence.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.datagen.hamlet import generate_hamlet_dataset
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.learning.base import DenseMatrix
from repro.learning.gaussian_nmf import GaussianNMF
from repro.learning.kmeans import KMeans
from repro.learning.linear_regression import LinearRegression
from repro.learning.logistic_regression import LogisticRegression

DATASETS = ["walmart", "expedia", "flights", "yelp"]
ROW_SCALE = 0.05
COLUMN_SCALE = 1.0
ITERATIONS = 15


def _prepare(name):
    dataset = generate_hamlet_dataset(name, row_scale=ROW_SCALE, column_scale=COLUMN_SCALE, seed=0)
    matrix = AmalurMatrix(dataset)
    target = dataset.materialize()
    label_index = dataset.target_columns.index(dataset.label_column)
    feature_indices = [i for i in range(target.shape[1]) if i != label_index]
    labels = target[:, label_index]
    return matrix.feature_matrix_view(), DenseMatrix(target[:, feature_indices]), labels


def _models():
    return {
        "linear_regression": lambda: LinearRegression(
            solver="gd", learning_rate=0.01, n_iterations=ITERATIONS, fit_intercept=False
        ),
        "logistic_regression": lambda: LogisticRegression(
            learning_rate=0.05, n_iterations=ITERATIONS
        ),
        "kmeans": lambda: KMeans(n_clusters=4, n_iterations=ITERATIONS, random_state=0),
        "gaussian_nmf": lambda: GaussianNMF(n_components=3, n_iterations=ITERATIONS,
                                            random_state=0),
    }


def _fit(model_factory, operand, labels):
    model = model_factory()
    if isinstance(model, (LinearRegression, LogisticRegression)):
        model.fit(operand, labels)
    else:
        model.fit(operand)
    return model


@pytest.mark.parametrize("dataset_name", ["walmart", "expedia"])
@pytest.mark.parametrize("model_name", ["linear_regression", "logistic_regression", "kmeans"])
def test_benchmark_factorized_training(benchmark, dataset_name, model_name):
    factorized, _, labels = _prepare(dataset_name)
    factory = _models()[model_name]
    benchmark.pedantic(lambda: _fit(factory, factorized, labels), rounds=2, iterations=1)


@pytest.mark.parametrize("dataset_name", ["walmart", "expedia"])
@pytest.mark.parametrize("model_name", ["linear_regression", "logistic_regression", "kmeans"])
def test_benchmark_materialized_training(benchmark, dataset_name, model_name):
    _, materialized, labels = _prepare(dataset_name)
    factory = _models()[model_name]
    benchmark.pedantic(lambda: _fit(factory, materialized, labels), rounds=2, iterations=1)


def test_report_factorized_models(report, benchmark):
    lines = [
        "Factorized vs materialized model training (Hamlet-style datasets)",
        f"(scaled to row_scale={ROW_SCALE}, column_scale={COLUMN_SCALE}; "
        f"{ITERATIONS} iterations per model)",
        "=" * 78,
        f"{'dataset':>10} {'model':>22} {'factorized':>12} {'materialized':>13} "
        f"{'speedup':>8} {'equal?':>7}",
    ]
    abnormal = []
    for dataset_name in DATASETS:
        factorized, materialized, labels = _prepare(dataset_name)
        for model_name, factory in _models().items():
            start = time.perf_counter()
            factorized_model = _fit(factory, factorized, labels)
            factorized_time = time.perf_counter() - start
            start = time.perf_counter()
            materialized_model = _fit(factory, materialized, labels)
            materialized_time = time.perf_counter() - start
            equal = _models_equal(factorized_model, materialized_model)
            speedup = materialized_time / factorized_time if factorized_time else float("inf")
            lines.append(
                f"{dataset_name:>10} {model_name:>22} {factorized_time*1000:>10.1f}ms "
                f"{materialized_time*1000:>11.1f}ms {speedup:>7.2f}x {'yes' if equal else 'NO':>7}"
            )
            if not equal and model_name != "gaussian_nmf":
                abnormal.append((dataset_name, model_name))
    lines.append("")
    lines.append(
        "note: GNMF's multiplicative updates amplify floating-point summation-order "
        "differences, so its factorized/materialized runs are compared on reconstruction "
        "error only and may legitimately drift apart on some datasets."
    )
    report("factorized_models", lines)
    assert not abnormal, f"factorized result diverged from materialized: {abnormal}"

    factorized, _, labels = _prepare("walmart")
    benchmark.pedantic(
        lambda: _fit(_models()["linear_regression"], factorized, labels), rounds=2, iterations=1
    )


def _models_equal(left, right) -> bool:
    if isinstance(left, (LinearRegression, LogisticRegression)):
        return bool(np.allclose(left.coef_, right.coef_, atol=1e-8))
    if isinstance(left, KMeans):
        return bool(np.allclose(left.cluster_centers_, right.cluster_centers_, atol=1e-8))
    if isinstance(left, GaussianNMF):
        # The multiplicative updates amplify floating-point summation-order
        # differences, so compare the models on their reconstruction quality
        # rather than element-wise on the (rotation-ambiguous) factors.
        left_error, right_error = left.reconstruction_error_, right.reconstruction_error_
        scale = max(abs(left_error), abs(right_error), 1e-12)
        return bool(abs(left_error - right_error) / scale < 0.05)
    return False

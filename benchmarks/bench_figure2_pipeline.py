"""Figure 2 reproduction: traditional integration of data silos for ML.

The figure walks through the manual pipeline the paper argues is too
expensive: schema mapping (matching), entity resolution, materialization
of the target table, and export to the downstream ML task. The harness
runs exactly that pipeline on the running example and on a scaled-up
version, timing every stage, and checks the materialized target equals
Figure 2d.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.hospital import hospital_tables
from repro.datagen.scenarios import ScenarioSpec, generate_scenario_tables
from repro.learning.logistic_regression import LogisticRegression
from repro.metadata.entity_resolution import resolve_entities
from repro.metadata.mappings import ScenarioType
from repro.metadata.schema_matching import match_schemas
from repro.relational.joins import full_outer_join

FIGURE_2D_TARGET = np.array(
    [
        [0, 20, 60, 0],
        [1, 35, 58, 0],
        [0, 22, 65, 0],
        [1, 37, 70, 92],
        [1, 45, 0, 95],
        [0, 20, 0, 97],
    ],
    dtype=float,
)


def traditional_pipeline(base, other, target_columns):
    """Schema matching → entity resolution → full outer join → export matrix."""
    column_matches = match_schemas(base, other)
    resolve_entities(base, other, column_matches=column_matches)
    join = full_outer_join(base, other, on=["n" if "n" in base.schema else "id"],
                           target_columns=target_columns)
    return join.table.to_matrix(target_columns)


def test_benchmark_traditional_pipeline_running_example(benchmark):
    s1, s2 = hospital_tables()
    exported = benchmark(traditional_pipeline, s1, s2, ["m", "a", "hr", "o"])
    assert np.array_equal(exported, FIGURE_2D_TARGET)


def test_benchmark_traditional_pipeline_scaled(benchmark):
    spec = ScenarioSpec(
        scenario=ScenarioType.FULL_OUTER_JOIN,
        base_rows=1_000,
        other_rows=600,
        base_features=5,
        other_features=6,
        overlap_rows=400,
        overlap_columns=1,
        seed=0,
    )
    base, other, _, _, target_columns = generate_scenario_tables(spec)
    exported = benchmark(traditional_pipeline, base, other, target_columns)
    assert exported.shape[0] == 1_200


def test_report_figure2(report, benchmark):
    """Regenerate the Figure 2 walk-through: stages, metadata, target table."""
    s1, s2 = hospital_tables()
    column_matches = match_schemas(s1, s2)
    row_matches = resolve_entities(s1, s2, column_matches=column_matches)
    join = full_outer_join(s1, s2, on=["n"], target_columns=["m", "a", "hr", "o"])
    exported = join.table.to_matrix(["m", "a", "hr", "o"])

    lines = ["Figure 2: traditional integration of data silos for ML", "=" * 64]
    lines.append("(a) base table S1(m, n, a, hr): 4 rows from the ER department")
    lines.append("(b) discovered table S2(m, n, a, o, dd): 3 rows from pulmonary")
    lines.append("(c) schema matching output:")
    for match in column_matches:
        lines.append(
            f"    S1.{match.left_column} ≈ S2.{match.right_column} (score {match.score:.2f})"
        )
    lines.append("    entity resolution output:")
    for match in row_matches:
        lines.append(
            f"    S1 row {match.left_row} ({s1.cell(match.left_row, 'n')}) == "
            f"S2 row {match.right_row} ({s2.cell(match.right_row, 'n')})"
        )
    lines.append("(d) materialized target table T(m, a, hr, o):")
    for row in exported:
        lines.append("    " + "  ".join(f"{v:5.0f}" for v in row))
    label = exported[:, 0]
    model = LogisticRegression(learning_rate=0.01, n_iterations=100).fit(exported[:, 1:], label)
    lines.append(f"downstream task: mortality prediction accuracy on T = "
                 f"{model.score(exported[:, 1:], label):.2f}")
    report("figure2_pipeline", lines)

    assert np.array_equal(np.sort(exported, axis=0), np.sort(FIGURE_2D_TARGET, axis=0))
    benchmark(traditional_pipeline, s1, s2, ["m", "a", "hr", "o"])

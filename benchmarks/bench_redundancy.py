"""Memory and wall-time of the redundancy-mask representations.

Run standalone to emit JSON (exits non-zero if a memory guard fails,
which is how the CI ``memory-guard`` job gates regressions)::

    PYTHONPATH=src python benchmarks/bench_redundancy.py

or through pytest for the report + acceptance checks::

    PYTHONPATH=src python -m pytest benchmarks/bench_redundancy.py -s -q

Two workloads:

* **mask cases** — build a trivial / sparse-complement / dense mask at
  100k × 1k and apply it to a CSR contribution, recording tracemalloc
  peak, process peak RSS, wall-time and the representation's payload
  bytes. The guard: a trivial mask may never allocate more than 1 MB.
* **scale case** — the 1M × 10k one-hot scenario the backend subsystem
  was built for: build the integrated dataset and run two gradient-descent
  iterations end to end. The guard: total mask memory stays at or below
  1% of the dense ``r_T × c_T`` footprint (which would be 160 GB).
"""

from __future__ import annotations

import json
import resource
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np
from scipy import sparse

if __name__ == "__main__":  # allow `python benchmarks/bench_redundancy.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import parallel
from repro.datagen.synthetic import OneHotSpec, generate_one_hot_pair
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.matrices.redundancy_matrix import RedundancyMatrix, TrivialRedundancy

MASK_SHAPE = (100_000, 1_000)
CONTRIBUTION_DENSITY = 0.01
TRIVIAL_BUDGET_BYTES = 1_000_000  # the memory-guard bar: 1 MB
SCALE_ROWS = 1_000_000
SCALE_CATEGORIES = 10_000
SCALE_ITERATIONS = 2
MASK_FOOTPRINT_CEILING = 0.01  # masks may use at most 1% of the dense bytes

RESULTS_PATH = Path(__file__).parent / "results" / "redundancy.json"


def _build_trivial() -> RedundancyMatrix:
    return RedundancyMatrix.all_ones("S", *MASK_SHAPE)


def _build_sparse() -> RedundancyMatrix:
    # A 5000-row × 100-column overlap rectangle: 500k redundant cells,
    # redundancy ratio 0.5% — well under the sparse-dispatch threshold.
    return RedundancyMatrix.from_rectangle("S", MASK_SHAPE, np.arange(5_000), np.arange(100))


def _build_dense() -> RedundancyMatrix:
    # 30% of the columns redundant on every row: ratio 0.3 exceeds the
    # threshold, so the auto constructor falls back to the dense mask.
    mask = np.ones(MASK_SHAPE)
    mask[:, : MASK_SHAPE[1] * 3 // 10] = 0.0
    return RedundancyMatrix("S", mask)


def _peak_rss_bytes() -> int:
    """Process high-water RSS in bytes (ru_maxrss is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _random_csr_contribution(rng: np.random.Generator) -> sparse.csr_matrix:
    matrix = sparse.random(
        *MASK_SHAPE, density=CONTRIBUTION_DENSITY, format="csr", random_state=rng
    )
    return matrix.tocsr().astype(np.float64)


def run_mask_cases() -> dict:
    rng = np.random.default_rng(11)
    contribution = _random_csr_contribution(rng)
    builders = {
        "trivial": _build_trivial,
        "sparse": _build_sparse,
        "dense": _build_dense,
    }
    cases = {}
    for name, builder in builders.items():
        tracemalloc.start()
        start = time.perf_counter()
        mask = builder()
        build_seconds = time.perf_counter() - start
        _, traced_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        start = time.perf_counter()
        masked = mask.apply(contribution)
        apply_seconds = time.perf_counter() - start
        assert sparse.issparse(masked), f"{name}: CSR contribution must stay CSR"

        cases[name] = {
            "class": type(mask).__name__,
            "n_redundant": mask.n_redundant,
            "build_seconds": round(build_seconds, 6),
            "apply_seconds": round(apply_seconds, 6),
            "traced_peak_bytes": int(traced_peak),
            "mask_nbytes": int(mask.nbytes),
            "dense_equivalent_bytes": int(mask.dense_nbytes),
            "rss_peak_bytes": _peak_rss_bytes(),
        }
        del mask, masked
    return cases


def run_scale_case() -> dict:
    spec = OneHotSpec(
        n_rows=SCALE_ROWS,
        n_categories=SCALE_CATEGORIES,
        base_columns=5,
        n_entities=SCALE_CATEGORIES,
        seed=0,
    )
    tracemalloc.start()
    start = time.perf_counter()
    dataset = generate_one_hot_pair(spec, backend="auto")
    build_seconds = time.perf_counter() - start
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    mask_bytes = sum(f.redundancy.nbytes for f in dataset.factors)
    dense_bytes = sum(f.redundancy.dense_nbytes for f in dataset.factors)

    matrix = AmalurMatrix(dataset, backend="auto")
    rng = np.random.default_rng(0)
    weights = rng.standard_normal((matrix.n_columns, 1))
    labels = rng.standard_normal((matrix.n_rows, 1))
    start = time.perf_counter()
    for _ in range(SCALE_ITERATIONS):
        gradient = matrix.transpose_lmm(matrix.lmm(weights) - labels) / matrix.n_rows
        weights = weights - 0.1 * gradient
    train_seconds = time.perf_counter() - start

    return {
        "shape": [dataset.n_target_rows, len(dataset.target_columns)],
        "mask_classes": [type(f.redundancy).__name__ for f in dataset.factors],
        "storage_formats": matrix.storage_formats(),
        "build_seconds": round(build_seconds, 4),
        "train_seconds": round(train_seconds, 4),
        "gd_iterations": SCALE_ITERATIONS,
        "build_traced_peak_bytes": int(traced_peak),
        "mask_nbytes": int(mask_bytes),
        "dense_equivalent_bytes": int(dense_bytes),
        "mask_footprint_ratio": mask_bytes / dense_bytes,
        "rss_peak_bytes": _peak_rss_bytes(),
    }


def run_benchmark() -> dict:
    return {
        "mask_shape": list(MASK_SHAPE),
        "contribution_density": CONTRIBUTION_DENSITY,
        "cases": run_mask_cases(),
        "scale": run_scale_case(),
    }


def check_guards(results: dict) -> list:
    """Return the list of guard violations (empty = all bars met)."""
    failures = []
    trivial = results["cases"]["trivial"]
    if trivial["traced_peak_bytes"] > TRIVIAL_BUDGET_BYTES:
        failures.append(
            f"trivial mask allocated {trivial['traced_peak_bytes']} bytes "
            f"(budget {TRIVIAL_BUDGET_BYTES})"
        )
    if trivial["mask_nbytes"] > TRIVIAL_BUDGET_BYTES:
        failures.append(f"trivial mask payload is {trivial['mask_nbytes']} bytes")
    sparse_case = results["cases"]["sparse"]
    sparse_ratio = sparse_case["mask_nbytes"] / sparse_case["dense_equivalent_bytes"]
    if sparse_ratio > MASK_FOOTPRINT_CEILING:
        failures.append(f"sparse mask uses {sparse_ratio:.2%} of the dense footprint")
    scale = results["scale"]
    if scale["mask_footprint_ratio"] > MASK_FOOTPRINT_CEILING:
        failures.append(
            f"scale masks use {scale['mask_footprint_ratio']:.2%} of the dense footprint"
        )
    if scale["mask_classes"] != ["TrivialRedundancy", "TrivialRedundancy"]:
        failures.append(f"scale masks are {scale['mask_classes']}, expected trivial")
    return failures


def save_results(results: dict) -> Path:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return RESULTS_PATH


def report_lines(results: dict):
    lines = ["redundancy-mask representations at %dx%d" % MASK_SHAPE]
    header = (
        f"{'case':<8} {'class':<26} {'build s':>9} {'apply s':>9} "
        f"{'peak alloc':>12} {'payload':>10}"
    )
    lines.append(header)
    for name, case in results["cases"].items():
        lines.append(
            f"{name:<8} {case['class']:<26} {case['build_seconds']:>9.4f} "
            f"{case['apply_seconds']:>9.4f} {case['traced_peak_bytes']:>12,} "
            f"{case['mask_nbytes']:>10,}"
        )
    scale = results["scale"]
    lines.append(
        "scale %dx%d one-hot: masks %s, %s bytes vs %.0f GB dense (%.4f%%), "
        "build %.2fs, %d GD iterations %.2fs"
        % (
            scale["shape"][0],
            scale["shape"][1],
            "/".join(scale["mask_classes"]),
            f"{scale['mask_nbytes']:,}",
            scale["dense_equivalent_bytes"] / 1e9,
            100 * scale["mask_footprint_ratio"],
            scale["build_seconds"],
            scale["gd_iterations"],
            scale["train_seconds"],
        )
    )
    return lines


# -- pytest entry points --------------------------------------------------------------


def test_report_redundancy(report):
    """Regenerate the mask memory/perf record and check the memory guards."""
    results = run_benchmark()
    save_results(results)
    report("redundancy", report_lines(results))
    failures = check_guards(results)
    assert not failures, "; ".join(failures)


def test_trivial_mask_is_o1_memory():
    tracemalloc.start()
    mask = RedundancyMatrix.all_ones("S", 10_000_000, 100_000)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert isinstance(mask, TrivialRedundancy)
    assert peak <= TRIVIAL_BUDGET_BYTES
    assert mask.nbytes == 0


if __name__ == "__main__":
    # tracemalloc budgets assume the serial engine: parallel operators add
    # per-block partial buffers that are not what this guard measures.
    parallel.set_num_workers(1)
    benchmark_results = run_benchmark()
    path = save_results(benchmark_results)
    print("\n".join(report_lines(benchmark_results)))
    print(f"\nresults written to {path}")
    guard_failures = check_guards(benchmark_results)
    if guard_failures:
        print("MEMORY GUARD FAILED:", "; ".join(guard_failures), file=sys.stderr)
        raise SystemExit(1)
    print("memory guards passed")

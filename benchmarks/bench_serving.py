"""Serving guard: incremental maintenance vs rebuild, mixed-workload throughput.

Run standalone to emit ``benchmarks/results/BENCH_SERVING.json`` (exits
non-zero when a guard fails — the CI ``serving-guard`` job)::

    PYTHONPATH=src python benchmarks/bench_serving.py

Two phases:

* **Incremental maintenance** (left join, ~20k base rows): a resident
  :class:`DatasetSession` absorbs append batches through delta
  maintenance (rank-k Gram updates, CI/complement growth, seeded Gram
  cache) while the same batches are also refit from scratch (entity
  resolution + ``integrate_tables`` + fresh Gram + normal solve). Guards:
  weights and materialized values within 1e-8 of the rebuild at every
  batch, and total incremental time at least **5x** faster than the
  rebuilds.

* **Mixed serving workload**: an :class:`AmalurService` worker pool
  serves ~200 windowed predict requests from concurrent client threads
  interleaved with append deltas and a warm-start retrain. Guards: every
  request succeeds, post-delta predictions match a from-scratch session
  within 1e-8, and sustained throughput stays above a conservative
  requests/sec floor.

The committed JSON is the trajectory baseline: CI re-runs the benchmark
and additionally checks the fresh incremental-vs-rebuild speedup retains
at least half the committed value. Absolute wall-times and requests/sec
are never compared across machines.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

if __name__ == "__main__":  # allow `python benchmarks/bench_serving.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datagen.scenarios import ScenarioSpec, generate_scenario_tables
from repro.metadata.mappings import ScenarioType
from repro.serving import AmalurService, DatasetSession
from repro.system.plan import ModelSpec
from repro.system.requests import DeltaBatch, IntegrationConfig, PredictRequest, TrainRequest

RESULTS = Path(__file__).resolve().parent / "results" / "BENCH_SERVING.json"

SPEEDUP_FLOOR = 5.0  # incremental maintenance vs from-scratch refit
PARITY_TOL = 1e-8
RPS_FLOOR = 25.0  # deliberately conservative; CI tracks the trajectory JSON

BASE_ROWS = 20_000
OTHER_ROWS = 8_000
OVERLAP_ROWS = 6_000
N_BATCHES = 8
ROWS_PER_BATCH = 200


def build_inputs(seed: int = 0):
    spec = ScenarioSpec(
        scenario=ScenarioType.LEFT_JOIN,
        base_rows=BASE_ROWS,
        other_rows=OTHER_ROWS,
        overlap_rows=OVERLAP_ROWS,
        base_features=4,
        other_features=5,
        overlap_columns=2,
        seed=seed,
    )
    base, other, matches, _, target_columns = generate_scenario_tables(spec)
    config = IntegrationConfig(
        base="S1", other="S2", target_columns=target_columns,
        scenario=ScenarioType.LEFT_JOIN, label_column="label",
    )
    return base, other, matches, config


def append_batch(session, rng, next_id):
    """~half brand-new entities, ~half matching existing S2-only rows."""
    table = session.table("S1")
    other_ids = session.table("S2").column_values("id")
    ids = []
    for i in range(ROWS_PER_BATCH):
        if i % 2 == 0:
            ids.append(int(next_id))
            next_id += 1
        else:
            ids.append(int(other_ids[rng.integers(0, other_ids.size)]))
    rows = {"id": ids}
    for column in table.schema:
        if column.name == "id":
            continue
        if column.name == "label":
            rows["label"] = rng.integers(0, 2, size=ROWS_PER_BATCH).tolist()
        else:
            rows[column.name] = np.round(
                rng.standard_normal(ROWS_PER_BATCH), 4
            ).tolist()
    return DeltaBatch(table="S1", kind="append", rows=rows), next_id


def refit_from_scratch(base, other, matches, config):
    """The full refit a delta forces without incremental maintenance.

    This is exactly the session's rebuild fallback: entity resolution,
    ``integrate_tables``, the key occurrence index, a fresh Gram, and the
    normal-equation solve — everything incremental maintenance amortizes.
    """
    session = DatasetSession(base, other, config, column_matches=matches)
    model = session.train(TrainRequest(model=ModelSpec(task="regression")))
    return session.dataset, model


def phase_incremental():
    base, other, matches, config = build_inputs()
    session = DatasetSession(base, other, config, column_matches=matches)
    session.train(TrainRequest(model=ModelSpec(task="regression")))
    rng = np.random.default_rng(42)
    next_id = BASE_ROWS + OTHER_ROWS + 1_000

    incremental_s = 0.0
    rebuild_s = 0.0
    max_weight_err = 0.0
    max_value_err = 0.0
    for _ in range(N_BATCHES):
        batch, next_id = append_batch(session, rng, next_id)

        started = time.perf_counter()
        outcome = session.apply_delta(batch)
        model = session.train(TrainRequest(model=ModelSpec(task="regression")))
        incremental_s += time.perf_counter() - started
        assert outcome["mode"] == "incremental", outcome

        started = time.perf_counter()
        refit_dataset, refit_model = refit_from_scratch(
            session.table("S1"), session.table("S2"), matches, config
        )
        rebuild_s += time.perf_counter() - started

        weight_err = float(
            max(
                np.abs(model.coef_ - refit_model.coef_).max(),
                abs(model.intercept_ - refit_model.intercept_),
            )
        )
        value_err = float(
            np.abs(session.dataset.materialize() - refit_dataset.materialize()).max()
        )
        max_weight_err = max(max_weight_err, weight_err)
        max_value_err = max(max_value_err, value_err)

    speedup = rebuild_s / incremental_s
    print(
        f"incremental: {N_BATCHES} x {ROWS_PER_BATCH}-row appends "
        f"maintained in {incremental_s:.3f}s vs {rebuild_s:.3f}s refit "
        f"({speedup:.1f}x); weight err {max_weight_err:.2e}, "
        f"value err {max_value_err:.2e}"
    )
    assert max_weight_err <= PARITY_TOL, (
        f"incremental weights drifted {max_weight_err:.2e} from the rebuild"
    )
    assert max_value_err <= PARITY_TOL, (
        f"incremental factors drifted {max_value_err:.2e} from the rebuild"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental maintenance only {speedup:.2f}x faster than refit "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    return {
        "n_batches": N_BATCHES,
        "rows_per_batch": ROWS_PER_BATCH,
        "base_rows": BASE_ROWS,
        "incremental_s": round(incremental_s, 4),
        "rebuild_s": round(rebuild_s, 4),
        "speedup": round(speedup, 2),
        "max_weight_err": max_weight_err,
        "max_value_err": max_value_err,
    }


def phase_serving():
    base, other, matches, config = build_inputs(seed=7)
    session = DatasetSession(base, other, config, column_matches=matches)
    rng = np.random.default_rng(11)
    next_id = BASE_ROWS + OTHER_ROWS + 500_000

    n_clients = 4
    predicts_per_client = 50
    window = 512
    latencies = []
    latencies_lock = threading.Lock()
    errors = []

    with AmalurService(n_workers=4, max_queue=256,
                       max_rows_per_request=window) as service:
        service.register_session("bench", session)
        service.train("bench", TrainRequest(model=ModelSpec(task="regression")))

        def client(seed):
            client_rng = np.random.default_rng(seed)
            mine = []
            try:
                for _ in range(predicts_per_client):
                    n_rows = service.session("bench").n_target_rows
                    start = int(client_rng.integers(0, max(n_rows - window, 1)))
                    result = service.predict(
                        "bench", PredictRequest(row_range=(start, start + window))
                    )
                    mine.append(result.latency_s)
            except Exception as error:  # pragma: no cover - failure evidence
                errors.append(error)
            with latencies_lock:
                latencies.extend(mine)

        threads = [threading.Thread(target=client, args=(100 + i,))
                   for i in range(n_clients)]
        wall_started = time.perf_counter()
        for thread in threads:
            thread.start()
        n_deltas = 0
        for _ in range(N_BATCHES):
            batch, next_id = append_batch(session, rng, next_id)
            service.apply_delta("bench", batch)
            service.train(
                "bench",
                TrainRequest(
                    model=ModelSpec(task="regression"), warm_start=True
                ),
            )
            n_deltas += 1
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_started

        assert not errors, errors[0]

        # post-delta parity: the served state equals a from-scratch session
        reference = DatasetSession(
            session.table("S1"), session.table("S2"), config,
            column_matches=matches,
        )
        reference.train(TrainRequest(model=ModelSpec(task="regression")))
        served = session.predict(PredictRequest())  # full table: off-pool read
        expected = reference.predict(PredictRequest())
        parity = float(np.abs(served - expected).max())
        assert parity <= PARITY_TOL, (
            f"served predictions drifted {parity:.2e} from a fresh rebuild"
        )

    n_requests = n_clients * predicts_per_client + 2 * n_deltas + 1
    requests_per_sec = n_requests / wall
    latencies_ms = np.asarray(latencies) * 1e3
    p50 = float(np.percentile(latencies_ms, 50))
    p99 = float(np.percentile(latencies_ms, 99))
    print(
        f"serving: {n_requests} requests ({n_clients} clients, {n_deltas} delta "
        f"batches) in {wall:.3f}s -> {requests_per_sec:.0f} req/s; "
        f"predict p50 {p50:.2f}ms p99 {p99:.2f}ms; parity {parity:.2e}"
    )
    assert requests_per_sec >= RPS_FLOOR, (
        f"throughput {requests_per_sec:.1f} req/s below floor {RPS_FLOOR}"
    )
    return {
        "n_requests": n_requests,
        "n_clients": n_clients,
        "n_delta_batches": n_deltas,
        "window_rows": window,
        "wall_s": round(wall, 4),
        "requests_per_sec": round(requests_per_sec, 1),
        "p50_ms": round(p50, 3),
        "p99_ms": round(p99, 3),
        "post_delta_parity": parity,
    }


def main() -> None:
    record = {
        "version": 1,
        "incremental": phase_incremental(),
        "serving": phase_serving(),
    }
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {RESULTS}")


if __name__ == "__main__":
    main()

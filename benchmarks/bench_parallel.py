"""Block-parallel engine guard: worker-count parity always, scaling on multi-core.

Run standalone to emit ``benchmarks/results/BENCH_PARALLEL.json`` (exits
non-zero when a guard fails — the CI ``scaling-guard`` job)::

    PYTHONPATH=src python benchmarks/bench_parallel.py

Two phases:

* **Parity** (every machine): the spilled stream build + ``StreamingGD``
  and the factorized operators run at 1, 2 and 8 workers on a small
  scenario.  Built factors must be bit-identical to the serial build,
  operator outputs and GD weights within 1e-8 of serial and bit-identical
  between any two parallel worker counts, and the ``FlopCounter`` totals
  exactly equal (parallel paths charge the legacy per-factor formulas).

* **Scaling** (core-count aware): the 450k×287 streaming scenario from
  ``bench_streaming`` — hashed chunk ingest → spilled factor build → six
  ``StreamingGD`` iterations — timed end-to-end at 1 worker and at 4
  workers.  The speedup floor scales with the machine: on ≥4 cores the
  4-worker run must be ≥2.0× faster, on 2-3 cores ≥1.2×; on a single
  core no speedup is physically possible — four workers time-slice one
  CPU and the blocked reduction buffers are pure cost — so the guard
  only bounds the engine's overhead (the 4-worker run may be at most 2×
  slower than serial) and the floor is recorded as skipped.  Both runs must produce
  bit-identical spilled factors (SHA-256 over the memmap blocks) and
  weights within 1e-8.

The committed JSON records the core count it was generated on.  The CI
job always enforces the fresh in-run guard on its own runner and only
consults the committed speedup when the baseline came from comparable
(≥4-core) hardware.
"""

from __future__ import annotations

import hashlib
import json
import sys
import time
from pathlib import Path

import numpy as np

if __name__ == "__main__":  # allow `python benchmarks/bench_parallel.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from bench_streaming import BUDGET_CHUNK_ROWS, BUDGET_SPEC, BUDGET_TRAIN_ITERATIONS

from repro import parallel
from repro.datagen.scenarios import (
    ScenarioSpec,
    generate_scenario_dataset,
    generate_scenario_streams,
)
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.learning import StreamingGD
from repro.metadata.mappings import ScenarioType
from repro.streaming import SpillStore, integrate_streams

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_PARALLEL.json"

PARITY_TOLERANCE = 1e-8
PARITY_WORKERS = (1, 2, 8)
SCALING_WORKERS = 4
# Core-count-aware speedup floors for the 4-worker scaling run.
SPEEDUP_FLOOR_4_CORES = 2.0
SPEEDUP_FLOOR_2_CORES = 1.2
SERIAL_OVERHEAD_CEILING = 2.0  # on 1 core the engine may cost at most 2x

PARITY_SPEC = ScenarioSpec(
    ScenarioType.LEFT_JOIN,
    base_rows=4_000, other_rows=3_000, base_features=12, other_features=10,
    overlap_rows=1_200, overlap_columns=3, seed=29,
)
PARITY_CHUNK_ROWS = 512


# -- parity phase ---------------------------------------------------------------------


def _build_and_train(workers: int) -> tuple:
    parallel.set_num_workers(workers)
    base, other, matches, row_matches, targets = generate_scenario_streams(
        PARITY_SPEC, chunk_rows=PARITY_CHUNK_ROWS
    )
    with SpillStore() as store:
        dataset = integrate_streams(
            base, other, matches, row_matches, targets, PARITY_SPEC.scenario,
            label_column="label", store=store,
        )
        factors = [np.array(factor.data) for factor in dataset.factors]
        model = StreamingGD(
            task="linear", block_rows=701, n_iterations=10,
            num_workers=workers, release_pages=store.release,
        ).fit(AmalurMatrix(dataset))
    return factors, model.coef_.copy(), float(model.intercept_)


def run_parity() -> dict:
    # Spilled build + streaming fit across worker counts.
    runs = {workers: _build_and_train(workers) for workers in PARITY_WORKERS}
    serial_factors, serial_coef, _ = runs[1]
    factors_identical = all(
        np.array_equal(built, reference)
        for workers in PARITY_WORKERS[1:]
        for built, reference in zip(runs[workers][0], serial_factors)
    )
    max_weight_diff = max(
        float(np.max(np.abs(runs[workers][1] - serial_coef)))
        for workers in PARITY_WORKERS[1:]
    )
    weights_bitwise_2v8 = bool(np.array_equal(runs[2][1], runs[8][1]))

    # Factorized operators across worker counts, forced onto the blocked
    # path regardless of scale.
    parallel.set_min_parallel_rows(0)
    parallel.set_block_rows(997)
    dataset = generate_scenario_dataset(PARITY_SPEC)
    outputs = {}
    for workers in PARITY_WORKERS:
        parallel.set_num_workers(workers)
        matrix = AmalurMatrix(dataset)
        x = np.random.default_rng(5).standard_normal((matrix.n_columns, 4))
        xt = np.random.default_rng(6).standard_normal((matrix.n_rows, 3))
        outputs[workers] = (
            matrix.lmm(x), matrix.transpose_lmm(xt), matrix.crossprod(),
            matrix.counter.total,
        )
    lmm1, tlmm1, gram1, flops1 = outputs[1]
    max_operator_diff = max(
        float(np.max(np.abs(outputs[workers][i] - serial)))
        for workers in PARITY_WORKERS[1:]
        for i, serial in enumerate((lmm1, tlmm1, gram1))
    )
    flops_equal = all(outputs[workers][3] == flops1 for workers in PARITY_WORKERS[1:])
    return {
        "worker_counts": list(PARITY_WORKERS),
        "factors_bit_identical": bool(factors_identical),
        "max_weight_diff": max_weight_diff,
        "weights_bitwise_2v8": weights_bitwise_2v8,
        "max_operator_diff": max_operator_diff,
        "flop_counters_equal": bool(flops_equal),
    }


# -- scaling phase --------------------------------------------------------------------


def _factor_digests(dataset, release, block_rows: int = 16_384) -> list:
    """SHA-256 per spilled factor, streamed block-wise to keep RSS flat."""
    digests = []
    for factor in dataset.factors:
        digest = hashlib.sha256()
        data = factor.data
        for start in range(0, data.shape[0], block_rows):
            digest.update(np.ascontiguousarray(data[start:start + block_rows]))
            release()
        digests.append(digest.hexdigest())
    return digests


def _timed_run(workers: int, tmp_dir: Path) -> dict:
    parallel.set_num_workers(workers)
    base, other, matches, row_matches, targets = generate_scenario_streams(
        BUDGET_SPEC, chunk_rows=BUDGET_CHUNK_ROWS
    )
    with SpillStore(tmp_dir / f"spill-{workers}") as store:
        build_start = time.perf_counter()
        dataset = integrate_streams(
            base, other, matches, row_matches, targets, BUDGET_SPEC.scenario,
            label_column="label", store=store,
        )
        build_seconds = time.perf_counter() - build_start
        train_start = time.perf_counter()
        model = StreamingGD(
            task="linear", block_rows=BUDGET_CHUNK_ROWS,
            n_iterations=BUDGET_TRAIN_ITERATIONS,
            num_workers=workers, release_pages=store.release,
        ).fit(AmalurMatrix(dataset))
        train_seconds = time.perf_counter() - train_start
        digests = _factor_digests(dataset, store.release)
        coef = model.coef_.copy()
        final_loss = float(model.loss_history_[-1])
    return {
        "workers": workers,
        "build_seconds": build_seconds,
        "train_seconds": train_seconds,
        "total_seconds": build_seconds + train_seconds,
        "final_loss": final_loss,
        "_digests": digests,
        "_coef": coef,
    }


def run_scaling(tmp_dir: Path, cores: int) -> dict:
    serial = _timed_run(1, tmp_dir)
    threaded = _timed_run(SCALING_WORKERS, tmp_dir)
    speedup = serial["total_seconds"] / threaded["total_seconds"]
    max_weight_diff = float(np.max(np.abs(threaded.pop("_coef") - serial.pop("_coef"))))
    factors_identical = threaded.pop("_digests") == serial.pop("_digests")
    if cores >= 4:
        floor, guard = SPEEDUP_FLOOR_4_CORES, f">= {SPEEDUP_FLOOR_4_CORES}x enforced"
    elif cores >= 2:
        floor, guard = SPEEDUP_FLOOR_2_CORES, f">= {SPEEDUP_FLOOR_2_CORES}x enforced"
    else:
        # No speedup is possible on one core; only bound the overhead.
        floor = 1.0 / SERIAL_OVERHEAD_CEILING
        guard = f"speedup floor skipped (1 core); overhead <= {SERIAL_OVERHEAD_CEILING}x"
    return {
        "scenario": "%s %dx%d" % (
            BUDGET_SPEC.scenario.value, BUDGET_SPEC.base_rows, BUDGET_SPEC.other_rows,
        ),
        "chunk_rows": BUDGET_CHUNK_ROWS,
        "train_iterations": BUDGET_TRAIN_ITERATIONS,
        "serial": serial,
        "parallel": threaded,
        "speedup": speedup,
        "required_speedup": floor,
        "guard": guard,
        "factors_bit_identical": bool(factors_identical),
        "max_weight_diff": max_weight_diff,
    }


def run_benchmark() -> dict:
    import tempfile

    cores = parallel.available_cores()
    with tempfile.TemporaryDirectory(prefix="bench-parallel-") as tmp:
        parity = run_parity()
        # run_parity leaves the tuned thresholds behind; restore defaults
        # so the scaling phase sees the stock configuration.
        parallel.set_min_parallel_rows(parallel.DEFAULT_MIN_PARALLEL_ROWS)
        parallel.set_block_rows(parallel.DEFAULT_BLOCK_ROWS)
        scaling = run_scaling(Path(tmp), cores)
    parallel.set_num_workers(None)
    return {"cores": cores, "parity": parity, "scaling": scaling}


def check_guards(results: dict) -> list:
    failures = []
    parity = results["parity"]
    if not parity["factors_bit_identical"]:
        failures.append("parallel build factors are not bit-identical to serial")
    if parity["max_weight_diff"] > PARITY_TOLERANCE:
        failures.append(
            f"parallel GD weights off serial by {parity['max_weight_diff']:.2e} "
            f"(tolerance {PARITY_TOLERANCE:.0e})"
        )
    if not parity["weights_bitwise_2v8"]:
        failures.append("GD weights differ between 2 and 8 workers")
    if parity["max_operator_diff"] > PARITY_TOLERANCE:
        failures.append(
            f"parallel operators off serial by {parity['max_operator_diff']:.2e}"
        )
    if not parity["flop_counters_equal"]:
        failures.append("parallel FLOP counters diverged from the serial formulas")
    scaling = results["scaling"]
    if not scaling["factors_bit_identical"]:
        failures.append("scaling-run factor digests differ between 1 and 4 workers")
    if scaling["max_weight_diff"] > PARITY_TOLERANCE:
        failures.append(
            f"scaling-run weights off serial by {scaling['max_weight_diff']:.2e}"
        )
    if scaling["speedup"] < scaling["required_speedup"]:
        failures.append(
            f"4-worker speedup {scaling['speedup']:.2f}x below the floor "
            f"{scaling['required_speedup']:.2f}x on {results['cores']} core(s)"
        )
    return failures


def save_results(results: dict) -> Path:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return RESULTS_PATH


def report_lines(results: dict) -> list:
    parity = results["parity"]
    scaling = results["scaling"]
    return [
        "parallel parity: factors identical=%s weight diff=%.2e operator diff=%.2e "
        "flops equal=%s"
        % (
            parity["factors_bit_identical"], parity["max_weight_diff"],
            parity["max_operator_diff"], parity["flop_counters_equal"],
        ),
        "scaling %s (%d cores): serial %.1fs, %d workers %.1fs -> %.2fx (%s)"
        % (
            scaling["scenario"], results["cores"], scaling["serial"]["total_seconds"],
            SCALING_WORKERS, scaling["parallel"]["total_seconds"],
            scaling["speedup"], scaling["guard"],
        ),
    ]


if __name__ == "__main__":
    benchmark_results = run_benchmark()
    path = save_results(benchmark_results)
    print("\n".join(report_lines(benchmark_results)))
    print(f"\nresults written to {path}")
    guard_failures = check_guards(benchmark_results)
    if guard_failures:
        print("SCALING GUARD FAILED:", "; ".join(guard_failures), file=sys.stderr)
        raise SystemExit(1)
    print("parallel guards passed")

"""Dense vs. sparse vs. auto compute backends on factorized workloads.

Run standalone to emit JSON::

    PYTHONPATH=src python benchmarks/bench_backends.py

or through pytest for the report + acceptance checks::

    PYTHONPATH=src python -m pytest benchmarks/bench_backends.py -s -q

The workload per scenario is one training setup: a cross-product (normal
equations) plus ``EPOCHS`` gradient passes (one LMM + one transpose-LMM
each) over the factorized target — the mix the §IV-A rewrites serve. The
acceptance bars of the backend subsystem:

* ``SparseBackend`` beats ``DenseBackend`` on the one-hot scenarios
  (≥95% sparsity);
* ``AutoBackend`` never loses more than 10% to the better of the two on
  any scenario.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

if __name__ == "__main__":  # allow `python benchmarks/bench_backends.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.datagen.synthetic import (
    OneHotSpec,
    SyntheticSiloSpec,
    generate_integrated_pair,
    generate_one_hot_pair,
)
from repro.factorized.normalized_matrix import AmalurMatrix

BACKENDS = ["dense", "sparse", "auto"]
EPOCHS = 2
OPERAND_COLUMNS = 8
REPEATS = 7

RESULTS_PATH = Path(__file__).parent / "results" / "backends.json"


def scenarios():
    """Name → integrated dataset, spanning the density spectrum."""
    return {
        "one_hot_95": generate_one_hot_pair(
            OneHotSpec(n_rows=40_000, n_categories=20, base_columns=5,
                       n_entities=40_000, seed=0)
        ),
        "one_hot_99": generate_one_hot_pair(
            OneHotSpec(n_rows=40_000, n_categories=100, base_columns=5,
                       n_entities=40_000, seed=0)
        ),
        "dense_join": generate_integrated_pair(
            SyntheticSiloSpec(base_rows=20_000, base_columns=10,
                              other_rows=4_000, other_columns=40, seed=0)
        ),
        "nulls_95": generate_integrated_pair(
            SyntheticSiloSpec(base_rows=20_000, base_columns=10,
                              other_rows=4_000, other_columns=40,
                              null_ratio=0.95, seed=0)
        ),
        "nulls_50": generate_integrated_pair(
            SyntheticSiloSpec(base_rows=20_000, base_columns=10,
                              other_rows=4_000, other_columns=40,
                              null_ratio=0.5, seed=0)
        ),
    }


def _training_pass(matrix: AmalurMatrix, x: np.ndarray, y: np.ndarray) -> None:
    matrix.crossprod()
    for _ in range(EPOCHS):
        matrix.lmm(x)
        matrix.transpose_lmm(y)


def _best_time(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark() -> dict:
    """Time every scenario on every backend; return the result record."""
    rng = np.random.default_rng(7)
    results = {}
    for name, dataset in scenarios().items():
        x = rng.standard_normal((dataset.shape[1], OPERAND_COLUMNS))
        y = rng.standard_normal((dataset.shape[0], OPERAND_COLUMNS))
        record = {
            "source_densities": [round(d, 4) for d in dataset.source_densities()],
            "backends": {},
        }
        for backend in BACKENDS:
            matrix = AmalurMatrix(dataset, backend=backend)
            _training_pass(matrix, x, y)  # warm-up: storage prep + caches
            seconds = _best_time(lambda m=matrix: _training_pass(m, x, y))
            counted = AmalurMatrix(dataset, backend=backend)
            _training_pass(counted, x, y)
            record["backends"][backend] = {
                "seconds": round(seconds, 6),
                "storage_formats": matrix.storage_formats(),
                "flops": counted.counter.total,
            }
        times = {b: record["backends"][b]["seconds"] for b in BACKENDS}
        fastest = min(times["dense"], times["sparse"])
        record["speedup_sparse_vs_dense"] = round(times["dense"] / times["sparse"], 3)
        record["auto_vs_best"] = round(times["auto"] / fastest, 3)
        results[name] = record
    return {
        "workload": {
            "epochs": EPOCHS,
            "operand_columns": OPERAND_COLUMNS,
            "repeats": REPEATS,
            "pass": "crossprod + epochs x (lmm + transpose_lmm)",
        },
        "scenarios": results,
    }


def save_results(results: dict) -> Path:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    return RESULTS_PATH


def report_lines(results: dict):
    lines = ["backend comparison (best-of-%d, seconds)" % REPEATS]
    header = f"{'scenario':<12} {'dense':>9} {'sparse':>9} {'auto':>9} {'sparse speedup':>15} {'auto/best':>10}"
    lines.append(header)
    for name, record in results["scenarios"].items():
        times = record["backends"]
        lines.append(
            f"{name:<12} {times['dense']['seconds']:>9.4f} "
            f"{times['sparse']['seconds']:>9.4f} {times['auto']['seconds']:>9.4f} "
            f"{record['speedup_sparse_vs_dense']:>14.2f}x "
            f"{record['auto_vs_best']:>10.2f}"
        )
    return lines


# -- pytest entry points --------------------------------------------------------------


def test_report_backends(report):
    """Regenerate the dense/sparse/auto comparison and check the acceptance bars."""
    results = run_benchmark()
    save_results(results)
    report("backends", report_lines(results))

    scenarios_record = results["scenarios"]
    for name in ("one_hot_95", "one_hot_99"):
        times = scenarios_record[name]["backends"]
        assert times["sparse"]["seconds"] < times["dense"]["seconds"], (
            f"sparse backend should beat dense on {name}"
        )
    for name, record in scenarios_record.items():
        assert record["auto_vs_best"] <= 1.10, (
            f"auto backend lost more than 10% to the best engine on {name}"
        )


def test_sparse_flops_accounting_lower_on_one_hot():
    """The FLOP counters agree with the wall-clock story analytically."""
    dataset = generate_one_hot_pair(
        OneHotSpec(n_rows=5_000, n_categories=50, base_columns=5, seed=1)
    )
    x = np.ones((dataset.shape[1], 4))
    dense = AmalurMatrix(dataset, backend="dense")
    sparse = AmalurMatrix(dataset, backend="sparse")
    dense.lmm(x)
    sparse.lmm(x)
    assert sparse.counter.total < dense.counter.total


if __name__ == "__main__":
    benchmark_results = run_benchmark()
    path = save_results(benchmark_results)
    print("\n".join(report_lines(benchmark_results)))
    print(f"\nresults written to {path}")

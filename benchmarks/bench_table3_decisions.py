"""Table III reproduction: percentage of correct factorization decisions.

The paper's footnote-3 experiment: ``c_S1 = 1``, ``c_S2 = 100``, ``r_S1``
swept across several orders of magnitude with ``r_S2 = 0.2 · r_S1``, ten
scenarios per cell of a 2×2 grid (redundancy in the sources × redundancy
in the target). For every scenario the ground truth is measured by timing
the factorized LMM against materialization + dense LMM; both decision
procedures (Amalur's DI-metadata cost model and the Morpheus tuple/feature
ratio heuristic) are scored by how often they predict the faster strategy.

Expected shape (paper Table III): Amalur is correct at least as often as
Morpheus in every cell, with the largest gap in the "no redundancy in the
target table" row (paper: 20–30% vs 70–80%).

The row sweep is scaled down from the paper's 5M ceiling so the grid runs
in about a minute; the relative behaviour of the two predictors is
preserved because it only depends on the tuple/feature ratios and on the
redundancy flags, not on absolute sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np
import pytest

from repro.costmodel.amalur_cost import AmalurCostModel
from repro.costmodel.decision import Decision, DecisionAdvisor, measure_ground_truth
from repro.costmodel.parameters import CostParameters
from repro.datagen.synthetic import SyntheticSiloSpec, generate_integrated_pair
from repro.factorized.normalized_matrix import AmalurMatrix

# r_S1 sweep (paper: 10 … 5,000,000; scaled down to laptop sizes — like the
# paper's sweep, most points sit where the asymptotics rather than constant
# overheads decide the winner).
BASE_ROW_SWEEP = [5_000, 10_000, 20_000, 50_000, 75_000, 100_000, 150_000, 200_000, 250_000, 300_000]
OTHER_ROW_FRACTION = 0.2
BASE_COLUMNS = 1
OTHER_COLUMNS = 100
OPERAND_COLUMNS = 8  # a small multi-output / mini-batch LMM workload
TRAINING_REUSE = 10  # gradient-descent passes the materialization is amortized over
STOPWATCH_REPEATS = 2


@dataclass
class CellResult:
    amalur_correct: int = 0
    morpheus_correct: int = 0
    total: int = 0

    def percentages(self) -> Tuple[float, float]:
        if self.total == 0:
            return 0.0, 0.0
        return (
            100.0 * self.amalur_correct / self.total,
            100.0 * self.morpheus_correct / self.total,
        )


def _spec(base_rows: int, redundancy_in_sources: bool, redundancy_in_target: bool,
          seed: int) -> SyntheticSiloSpec:
    return SyntheticSiloSpec(
        base_rows=base_rows,
        base_columns=BASE_COLUMNS,
        other_rows=max(1, int(round(OTHER_ROW_FRACTION * base_rows))),
        other_columns=OTHER_COLUMNS,
        redundancy_in_target=redundancy_in_target,
        redundancy_in_sources=redundancy_in_sources,
        # Without target redundancy the scenario is an inner join where only
        # half of the smaller source's entities overlap, so the target is
        # strictly smaller than the sources (the Example IV.1 situation).
        overlap_row_fraction=1.0 if redundancy_in_target else 0.5,
        seed=seed,
    )


def _evaluate_cell(redundancy_in_sources: bool, redundancy_in_target: bool) -> CellResult:
    result = CellResult()
    amalur_advisor = DecisionAdvisor(
        method="amalur", cost_model=AmalurCostModel(reuse=TRAINING_REUSE)
    )
    morpheus_advisor = DecisionAdvisor(method="morpheus")
    for seed, base_rows in enumerate(BASE_ROW_SWEEP):
        dataset = generate_integrated_pair(
            _spec(base_rows, redundancy_in_sources, redundancy_in_target, seed)
        )
        matrix = AmalurMatrix(dataset)
        truth = measure_ground_truth(
            matrix,
            operand_columns=OPERAND_COLUMNS,
            repeats=STOPWATCH_REPEATS,
            reuse=TRAINING_REUSE,
        )
        parameters = CostParameters.from_dataset(dataset, operand_columns=OPERAND_COLUMNS)
        amalur_decision = amalur_advisor.decide(parameters).decision
        morpheus_decision = morpheus_advisor.decide(parameters).decision
        result.total += 1
        result.amalur_correct += int(amalur_decision is truth)
        result.morpheus_correct += int(morpheus_decision is truth)
    return result


def test_report_table3(report, benchmark):
    """Regenerate Table III: % correct decisions, Amalur vs Morpheus, 2×2 grid."""
    grid: Dict[Tuple[bool, bool], CellResult] = {}
    for redundancy_in_sources in (True, False):
        for redundancy_in_target in (True, False):
            grid[(redundancy_in_sources, redundancy_in_target)] = _evaluate_cell(
                redundancy_in_sources, redundancy_in_target
            )

    lines = [
        "Table III: percentage of correct factorization decisions (Amalur vs Morpheus)",
        f"sweep r_S1 = {BASE_ROW_SWEEP}, r_S2 = 0.2*r_S1, c_S1={BASE_COLUMNS}, c_S2={OTHER_COLUMNS}",
        "=" * 78,
        f"{'':>28} | {'target redundancy: yes':>24} | {'target redundancy: no':>23}",
    ]
    for redundancy_in_sources in (True, False):
        row_label = f"source redundancy: {'yes' if redundancy_in_sources else 'no '}"
        cells = []
        for redundancy_in_target in (True, False):
            amalur_pct, morpheus_pct = grid[(redundancy_in_sources, redundancy_in_target)].percentages()
            cells.append(f"Morpheus {morpheus_pct:4.0f}% / Amalur {amalur_pct:4.0f}%")
        lines.append(f"{row_label:>28} | {cells[0]:>24} | {cells[1]:>23}")
    lines.append("")
    lines.append("paper reference values:")
    lines.append("  source yes: Morpheus 70% / Amalur 70%   |  Morpheus 20% / Amalur 80%")
    lines.append("  source no : Morpheus 70% / Amalur 70%   |  Morpheus 30% / Amalur 70%")
    report("table3_decisions", lines)

    # Shape assertions: Amalur never loses to Morpheus on aggregate, and wins
    # clearly in the no-target-redundancy column (the paper's main claim).
    total_amalur = sum(cell.amalur_correct for cell in grid.values())
    total_morpheus = sum(cell.morpheus_correct for cell in grid.values())
    assert total_amalur >= total_morpheus
    no_target_amalur = sum(
        grid[(src, False)].amalur_correct for src in (True, False)
    )
    no_target_morpheus = sum(
        grid[(src, False)].morpheus_correct for src in (True, False)
    )
    assert no_target_amalur > no_target_morpheus

    # Representative timing: one cost-model decision (it is metadata-only, so
    # it must be orders of magnitude cheaper than running the workload).
    dataset = generate_integrated_pair(_spec(10_000, True, True, 0))
    parameters = CostParameters.from_dataset(dataset, operand_columns=OPERAND_COLUMNS)
    advisor = DecisionAdvisor(method="amalur", cost_model=AmalurCostModel(reuse=TRAINING_REUSE))
    benchmark(advisor.decide, parameters)


@pytest.mark.parametrize("base_rows", [1_000, 10_000, 50_000])
def test_benchmark_ground_truth_measurement(benchmark, base_rows):
    """Time the factorized LMM that the ground-truth stopwatch compares."""
    dataset = generate_integrated_pair(_spec(base_rows, False, True, seed=1))
    matrix = AmalurMatrix(dataset)
    operand = np.random.default_rng(0).standard_normal((matrix.n_columns, OPERAND_COLUMNS))
    benchmark(matrix.lmm, operand)

"""Observability guard: live-metrics overhead, scrape validity, flight dumps.

Run standalone to emit ``benchmarks/results/BENCH_OBSERVABILITY.json``
(exits non-zero when a guard fails — the CI ``obs-guard`` job)::

    PYTHONPATH=src python benchmarks/obs_guard.py

Three phases:

* **Enabled overhead**: the mixed serving workload (4 client threads of
  windowed predicts interleaved with append deltas and warm retrains)
  runs in interleaved pairs — once with the live tier, the OpenMetrics
  endpoint and a concurrent scraper all on, once with everything off.
  Guard: best-of-pairs wall-clock ratio on/off stays at or under
  **1.05** (the ≤5%% always-on budget).

* **Scrape validity**: every ``/metrics`` response collected while the
  workload ran must pass the structural OpenMetrics validator, and
  ``/health`` must answer 200 with a well-formed JSON body. Guard: at
  least a handful of scrapes happened and none were torn or malformed.

* **Flight recorder**: a pinned fault plan fails enough requests to trip
  a session breaker. Guard: exactly one ``breaker_open`` post-mortem is
  dumped and it contains the failing ``serving.request`` span, the
  breaker-state map and the fault plan. Dump files land in
  ``benchmarks/results/flight/`` (a CI artifact, never committed).

Only machine-invariant numbers (the overhead *ratio*, booleans, counts)
are guarded or compared across machines; absolute wall seconds are
recorded for context only.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

if __name__ == "__main__":  # allow `python benchmarks/obs_guard.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import telemetry
from repro.datagen.scenarios import ScenarioSpec, generate_scenario_tables
from repro.exceptions import CircuitOpenError, TransientError
from repro.metadata.mappings import ScenarioType
from repro.reliability import faults
from repro.serving import AmalurService, DatasetSession
from repro.system.plan import ModelSpec
from repro.system.requests import DeltaBatch, IntegrationConfig, PredictRequest, TrainRequest
from repro.telemetry import flight, live
from repro.telemetry.exporter import validate_openmetrics

RESULTS = Path(__file__).resolve().parent / "results" / "BENCH_OBSERVABILITY.json"
FLIGHT_DIR = RESULTS.parent / "flight"

OVERHEAD_CEILING = 1.05  # live tier + exporter + scraper vs all off
N_PAIRS = 7  # interleaved on/off pairs; best-of each side is compared
SCRAPE_INTERVAL_S = 0.25  # a realistic scrape cadence (prod scrapes are seconds apart)

BASE_ROWS = 20_000
OTHER_ROWS = 8_000
OVERLAP_ROWS = 6_000
N_CLIENTS = 4
PREDICTS_PER_CLIENT = 800
WINDOW = 512
N_BATCHES = 8
ROWS_PER_BATCH = 200


def build_inputs(seed: int = 0):
    spec = ScenarioSpec(
        scenario=ScenarioType.LEFT_JOIN,
        base_rows=BASE_ROWS,
        other_rows=OTHER_ROWS,
        overlap_rows=OVERLAP_ROWS,
        base_features=4,
        other_features=5,
        overlap_columns=2,
        seed=seed,
    )
    base, other, matches, _, target_columns = generate_scenario_tables(spec)
    config = IntegrationConfig(
        base="S1", other="S2", target_columns=target_columns,
        scenario=ScenarioType.LEFT_JOIN, label_column="label",
    )
    return base, other, matches, config


def append_batch(session, rng, next_id):
    table = session.table("S1")
    rows = {"id": list(range(next_id, next_id + ROWS_PER_BATCH))}
    next_id += ROWS_PER_BATCH
    for column in table.schema:
        if column.name == "id":
            continue
        if column.name == "label":
            rows["label"] = rng.integers(0, 2, size=ROWS_PER_BATCH).tolist()
        else:
            rows[column.name] = np.round(
                rng.standard_normal(ROWS_PER_BATCH), 4
            ).tolist()
    return DeltaBatch(table="S1", kind="append", rows=rows), next_id


def run_workload(service, seed):
    """4 client threads of windowed predicts + deltas and warm retrains.

    Returns the workload wall seconds; raises if any request failed.
    """
    rng = np.random.default_rng(seed)
    next_id = BASE_ROWS + OTHER_ROWS + 500_000
    errors = []

    def client(client_seed):
        client_rng = np.random.default_rng(client_seed)
        try:
            for _ in range(PREDICTS_PER_CLIENT):
                n_rows = service.session("bench").n_target_rows
                start = int(client_rng.integers(0, max(n_rows - WINDOW, 1)))
                service.predict(
                    "bench", PredictRequest(row_range=(start, start + WINDOW))
                )
        except Exception as error:  # pragma: no cover - failure evidence
            errors.append(error)

    threads = [
        threading.Thread(target=client, args=(100 + i,)) for i in range(N_CLIENTS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    session = service.session("bench")
    for _ in range(N_BATCHES):
        batch, next_id = append_batch(session, rng, next_id)
        service.apply_delta("bench", batch)
        service.train(
            "bench", TrainRequest(model=ModelSpec(task="regression"), warm_start=True)
        )
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    return wall


def timed_run(observed: bool, seed: int, scrape_log=None):
    """One workload run; ``observed`` turns the live tier + exporter on."""
    base, other, matches, config = build_inputs(seed=7)
    session = DatasetSession(base, other, config, column_matches=matches)
    if observed:
        live.enable()
    else:
        live.disable()
    try:
        with AmalurService(
            n_workers=4, max_queue=256, max_rows_per_request=WINDOW,
            metrics_port=0 if observed else None,
        ) as service:
            service.register_session("bench", session)
            service.train("bench", TrainRequest(model=ModelSpec(task="regression")))

            stop = threading.Event()
            scraper = None
            raw_scrapes = []
            if observed:
                # The scraper only *collects* inside the timed window;
                # validation and JSON parsing happen after the run so the
                # measurement charges the system, not the test harness.
                def scrape_loop():
                    while not stop.is_set():
                        body = urllib.request.urlopen(
                            service.metrics_url("/metrics"), timeout=5
                        ).read()
                        health = urllib.request.urlopen(
                            service.metrics_url("/health"), timeout=5
                        )
                        raw_scrapes.append((body, health.status, health.read()))
                        stop.wait(SCRAPE_INTERVAL_S)

                scraper = threading.Thread(target=scrape_loop)
                scraper.start()
            try:
                wall = run_workload(service, seed)
            finally:
                stop.set()
                if scraper is not None:
                    scraper.join()
            for body, health_status, health_body in raw_scrapes:
                scrape_log.append(
                    {
                        "metrics_errors": validate_openmetrics(body.decode()),
                        "health_status": health_status,
                        "health_ok": json.loads(health_body).get("status") == "ok",
                    }
                )
    finally:
        live.enable()
    return wall


def phase_overhead_and_scrapes():
    scrape_log = []
    on_walls, off_walls = [], []
    for pair in range(N_PAIRS):
        off_walls.append(timed_run(observed=False, seed=200 + pair))
        on_walls.append(timed_run(observed=True, seed=200 + pair, scrape_log=scrape_log))
    ratio = min(on_walls) / min(off_walls)
    n_scrapes = len(scrape_log)
    bad = [s for s in scrape_log if s["metrics_errors"] or not s["health_ok"]]
    all_valid = n_scrapes > 0 and not bad
    print(
        f"overhead: observed best {min(on_walls):.3f}s vs bare best "
        f"{min(off_walls):.3f}s -> ratio {ratio:.3f} "
        f"({n_scrapes} scrapes, {len(bad)} invalid)"
    )
    assert ratio <= OVERHEAD_CEILING, (
        f"always-on observability costs {ratio:.3f}x (ceiling {OVERHEAD_CEILING}x)"
    )
    assert n_scrapes >= 5, f"only {n_scrapes} scrapes landed; exporter starved"
    assert all_valid, f"{len(bad)} malformed scrapes: {bad[:3]}"
    return (
        {
            "ratio": round(ratio, 4),
            "observed_walls_s": [round(w, 4) for w in on_walls],
            "bare_walls_s": [round(w, 4) for w in off_walls],
            "n_pairs": N_PAIRS,
            "workload_requests": N_CLIENTS * PREDICTS_PER_CLIENT + 2 * N_BATCHES + 1,
        },
        {
            "n_scrapes": n_scrapes,
            "n_invalid": len(bad),
            "all_valid": bool(all_valid),
        },
    )


def phase_flight():
    FLIGHT_DIR.mkdir(parents=True, exist_ok=True)
    for stale in FLIGHT_DIR.glob("flight_*.json"):
        stale.unlink()
    recorder = flight.install(dump_dir=FLIGHT_DIR)
    telemetry.enable(sample_memory=False)
    base, other, matches, config = build_inputs(seed=7)
    try:
        with AmalurService(
            n_workers=1, max_queue=8, breaker_threshold=2, metrics_port=0
        ) as service:
            service.register_session(
                "bench", DatasetSession(base, other, config, column_matches=matches)
            )
            service.train("bench", TrainRequest(model=ModelSpec(task="regression")))
            with faults.active_plan("serving.request:p=1,n=2,kind=transient"):
                breaker_rejected = False
                for _ in range(3):
                    try:
                        service.predict("bench")
                    except TransientError:
                        continue
                    except CircuitOpenError:
                        breaker_rejected = True
        dumps = [d for d in recorder.dumps if d["reason"] == "breaker_open"]
        breaker_opened = len(dumps) == 1 and breaker_rejected
        dump = dumps[0] if dumps else {}
        has_span = any(
            span["name"] == "serving.request" and span["attrs"].get("error")
            for span in dump.get("spans", [])
        )
        dump_files = sorted(p.name for p in FLIGHT_DIR.glob("flight_*.json"))
    finally:
        telemetry.disable()
        flight.clear()
        faults.clear()
    print(
        f"flight: breaker_opened={breaker_opened} failing_span={has_span} "
        f"dumps={dump_files}"
    )
    assert breaker_opened, "fault plan failed to open the session breaker"
    assert has_span, "post-mortem is missing the failing serving.request span"
    assert dump_files, "no flight dump file written"
    return {
        "breaker_opened": bool(breaker_opened),
        "dump_contains_request_span": bool(has_span),
        "breaker_states": dump.get("breaker_states", {}),
        "dump_files": dump_files,
    }


def main() -> None:
    overhead, scrape = phase_overhead_and_scrapes()
    record = {
        "version": 1,
        "overhead": overhead,
        "scrape": scrape,
        "flight": phase_flight(),
    }
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {RESULTS}")


if __name__ == "__main__":
    main()

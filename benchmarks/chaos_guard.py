"""Chaos matrix: fault-injected full-pipeline runs must match fault-free.

Run standalone to emit ``benchmarks/results/CHAOS_RUN_REPORT.json`` (exits
non-zero when a guard fails — the CI ``fault-guard`` job)::

    PYTHONPATH=src python benchmarks/chaos_guard.py

One fault-free reference run of the wide streaming scenario (the same
450k x 287 left join ``bench_streaming.py`` budgets) is followed by a
matrix of chaos runs, each under a pinned-seed fault plan that injects
transient read/ingest/task failures and torn spill writes into an
otherwise unmodified build + ``StreamingGD`` training pass. Guards, per
chaos run:

* at least one fault actually triggered (a plan that never fires guards
  nothing);
* trained weights, intercept and loss history match the reference within
  **1e-8** — and, because retries redo idempotent block work and repairs
  rewrite exact bytes, bit-for-bit equality is recorded too;
* every torn write was caught by a CRC32 mismatch and repaired.

Each run's telemetry (fault/retry/repair counters, spans) lands in the
report JSON, which CI uploads as the ``fault-guard`` artifact.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

if __name__ == "__main__":  # allow `python benchmarks/chaos_guard.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import parallel, telemetry
from repro.datagen.scenarios import ScenarioSpec, generate_scenario_streams
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.learning import StreamingGD
from repro.metadata.mappings import ScenarioType
from repro.reliability import faults
from repro.streaming import SpillStore, integrate_streams

RESULTS_PATH = Path(__file__).parent / "results" / "CHAOS_RUN_REPORT.json"

PARITY_TOLERANCE = 1e-8
WORKERS = 2  # chaos must cross the parallel build/train paths

SPEC = ScenarioSpec(
    ScenarioType.LEFT_JOIN,
    base_rows=450_000,
    other_rows=220_000,
    base_features=150,
    other_features=140,
    overlap_rows=60_000,
    overlap_columns=4,
    seed=17,
)
CHUNK_ROWS = 8_192
TRAIN_ITERATIONS = 4

# Pinned-seed chaos matrix. Every trigger budget stays below the wired
# retry limit (8 attempts), so completion is guaranteed by construction
# and the guard tests *recovery*, not crash behavior.
CHAOS_MATRIX = [
    {
        "name": "storage",
        "plan": "spill.read:p=0.05,n=6,seed=101;"
                "spill.write:kind=corrupt,p=0.03,n=3,seed=102",
    },
    {
        "name": "compute",
        "plan": "ingest.chunk:p=0.1,n=5,seed=201;"
                "parallel.task:p=0.05,n=6,seed=202",
    },
    {
        "name": "everything",
        "plan": "spill.read:p=0.04,n=4,seed=301;"
                "spill.write:kind=corrupt,p=0.03,n=2,seed=302;"
                "ingest.chunk:p=0.08,n=4,seed=303;"
                "parallel.task:p=0.04,n=4,seed=304",
    },
]


def _run_pipeline(tmp_dir: Path, tag: str) -> dict:
    base, other, matches, row_matches, targets = generate_scenario_streams(
        SPEC, chunk_rows=CHUNK_ROWS
    )
    start = time.perf_counter()
    # Checksums on for every run (reference included, so the timings are
    # comparable): torn writes must be caught and repaired, not trained on.
    with SpillStore(tmp_dir / f"spill-{tag}", checksums=True) as store:
        dataset = integrate_streams(
            base, other, matches, row_matches, targets, SPEC.scenario,
            label_column="label", store=store,
        )
        model = StreamingGD(
            task="linear",
            block_rows=CHUNK_ROWS,
            n_iterations=TRAIN_ITERATIONS,
            release_pages=store.release,
        ).fit(AmalurMatrix(dataset))
    return {
        "seconds": time.perf_counter() - start,
        "coef": model.coef_,
        "intercept": model.intercept_,
        "loss_history": np.asarray(model.loss_history_, dtype=np.float64),
    }


def _chaos_run(tmp_dir: Path, entry: dict, reference: dict) -> dict:
    session = telemetry.enable(sample_memory=False)
    try:
        with faults.active_plan(entry["plan"]) as injector:
            run = _run_pipeline(tmp_dir, entry["name"])
            triggered = {
                site: {"hits": hits, "triggers": triggers}
                for site, (hits, triggers) in sorted(injector.snapshot().items())
            }
    finally:
        telemetry.disable()
    report = session.report()
    total_triggers = sum(site["triggers"] for site in triggered.values())
    corrupt_triggers = triggered.get("spill.write", {}).get("triggers", 0)
    counters = report.to_dict().get("counters", {})

    coef_diff = float(np.max(np.abs(run["coef"] - reference["coef"])))
    loss_diff = float(
        np.max(np.abs(run["loss_history"] - reference["loss_history"]))
    )
    return {
        "plan": entry["plan"],
        "seconds": run["seconds"],
        "sites": triggered,
        "total_triggers": total_triggers,
        "faults_injected_counter": counters.get("faults.injected", 0),
        "retry_attempts": counters.get("retry.attempts", 0),
        "crc_mismatches": counters.get("spill.crc_mismatch", 0),
        "blocks_repaired": counters.get("spill.blocks_repaired", 0),
        "corrupt_writes": corrupt_triggers,
        "max_coef_diff": coef_diff,
        "max_loss_diff": loss_diff,
        "intercept_diff": float(
            abs(run["intercept"] - reference["intercept"])
        ),
        "bit_identical": bool(
            np.array_equal(run["coef"], reference["coef"])
            and run["intercept"] == reference["intercept"]
            and np.array_equal(run["loss_history"], reference["loss_history"])
        ),
        "telemetry": report.to_dict(),
    }


def run_benchmark() -> dict:
    import tempfile

    parallel.set_num_workers(WORKERS)
    parallel.set_min_parallel_rows(0)
    faults.clear()
    results = {"workers": WORKERS, "train_iterations": TRAIN_ITERATIONS}
    with tempfile.TemporaryDirectory(prefix="chaos-guard-") as tmp:
        tmp_dir = Path(tmp)
        reference = _run_pipeline(tmp_dir, "reference")
        results["reference_seconds"] = reference["seconds"]
        results["scenario"] = {
            "rows": SPEC.base_rows,
            "chunk_rows": CHUNK_ROWS,
        }
        results["runs"] = {
            entry["name"]: _chaos_run(tmp_dir, entry, reference)
            for entry in CHAOS_MATRIX
        }
    return results


def check_guards(results: dict) -> list:
    failures = []
    for name, run in results["runs"].items():
        if run["total_triggers"] == 0:
            failures.append(f"chaos run '{name}' never triggered a fault")
        if run["faults_injected_counter"] != run["total_triggers"]:
            failures.append(
                f"chaos run '{name}': telemetry counted "
                f"{run['faults_injected_counter']} injected faults, the "
                f"injector recorded {run['total_triggers']}"
            )
        if run["max_coef_diff"] > PARITY_TOLERANCE:
            failures.append(
                f"chaos run '{name}': weights diverged from fault-free by "
                f"{run['max_coef_diff']:.2e} (> {PARITY_TOLERANCE:.0e})"
            )
        if run["max_loss_diff"] > PARITY_TOLERANCE:
            failures.append(
                f"chaos run '{name}': loss history diverged by "
                f"{run['max_loss_diff']:.2e} (> {PARITY_TOLERANCE:.0e})"
            )
        if run["corrupt_writes"] and not run["blocks_repaired"]:
            failures.append(
                f"chaos run '{name}': {run['corrupt_writes']} torn writes "
                f"but no blocks were repaired"
            )
    return failures


def save_results(results: dict) -> Path:
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    return RESULTS_PATH


def report_lines(results: dict) -> list:
    lines = [
        "fault-free reference: %.1fs (%d workers, %d GD iterations)"
        % (results["reference_seconds"], results["workers"],
           results["train_iterations"])
    ]
    for name, run in results["runs"].items():
        lines.append(
            "chaos '%s': %d triggers (%d torn writes, %d repaired), "
            "max coef diff %.1e, bit identical=%s, %.1fs"
            % (
                name, run["total_triggers"], run["corrupt_writes"],
                run["blocks_repaired"], run["max_coef_diff"],
                run["bit_identical"], run["seconds"],
            )
        )
    return lines


if __name__ == "__main__":
    benchmark_results = run_benchmark()
    path = save_results(benchmark_results)
    print("\n".join(report_lines(benchmark_results)))
    print(f"\nresults written to {path}")
    guard_failures = check_guards(benchmark_results)
    if guard_failures:
        print("FAULT GUARD FAILED:", "; ".join(guard_failures), file=sys.stderr)
        raise SystemExit(1)
    print("fault guards passed")

"""Shared helpers for the benchmark harness.

Every table and figure of the paper's evaluation has one ``bench_*.py``
module (see DESIGN.md §3). Each module contains:

* pytest-benchmark micro-benchmarks timing the relevant operations, and
* one ``test_report_*`` function that regenerates the table/figure rows the
  paper reports and prints them (run with ``-s`` to see the output; the
  rows are also appended to ``benchmarks/results/`` as plain text).

Sizes are scaled down from the paper's sweeps so the whole harness runs on
a laptop in a few minutes; the *shape* of each result (who wins, by what
factor, where the crossover falls) is what the reproduction checks.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def save_report(name: str, lines) -> None:
    """Print a report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print("\n" + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def report():
    return save_report

"""Figure 5 reproduction: the factorize/materialize decision areas.

Figure 5 is a conceptual sketch: somewhere in the space of workload shapes
there is a boundary between the region where factorization is faster
(Area I — easy wins the Morpheus heuristic already finds), the region
where materialization is faster (Area II), and the hard cases in between
(Area III). The harness makes the figure concrete: it sweeps the tuple
ratio (how often dimension rows are re-used in the target) and the feature
ratio (how much wider the dimension table is than the entity table),
measures the factorized-over-materialized speedup of an LMM training
workload at every grid point, and prints the resulting decision map
together with where each predictor places the boundary.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

import numpy as np
import pytest

from repro.costmodel.amalur_cost import AmalurCostModel
from repro.costmodel.morpheus_rule import MorpheusRule
from repro.costmodel.parameters import CostParameters
from repro.datagen.synthetic import SyntheticSiloSpec, generate_integrated_pair
from repro.factorized.normalized_matrix import AmalurMatrix

TUPLE_RATIOS = [1, 2, 5, 10, 20, 50]
FEATURE_RATIOS = [2, 5, 10, 25, 50]
OTHER_ROWS = 2_000
OPERAND_COLUMNS = 4
REUSE = 10


def _dataset_for(tuple_ratio: int, feature_ratio: int):
    base_rows = OTHER_ROWS * tuple_ratio
    other_columns = max(2, feature_ratio - 1)
    return generate_integrated_pair(
        SyntheticSiloSpec(
            base_rows=base_rows,
            base_columns=1,
            other_rows=OTHER_ROWS,
            other_columns=other_columns,
            redundancy_in_target=True,
            redundancy_in_sources=False,
            seed=tuple_ratio * 100 + feature_ratio,
        )
    )


def _measure_speedup(dataset) -> float:
    """Measured materialized-time / factorized-time for the LMM workload."""
    matrix = AmalurMatrix(dataset)
    operand = np.random.default_rng(0).standard_normal((matrix.n_columns, OPERAND_COLUMNS))

    start = time.perf_counter()
    for _ in range(REUSE):
        matrix.lmm(operand)
    factorized = time.perf_counter() - start

    start = time.perf_counter()
    target = dataset.materialize()
    for _ in range(REUSE):
        target @ operand
    materialized = time.perf_counter() - start
    return materialized / factorized if factorized > 0 else float("inf")


def test_report_figure5(report, benchmark):
    amalur_model = AmalurCostModel(reuse=REUSE)
    morpheus_rule = MorpheusRule()
    grid: Dict[Tuple[int, int], Tuple[float, bool, bool]] = {}
    for tuple_ratio in TUPLE_RATIOS:
        for feature_ratio in FEATURE_RATIOS:
            dataset = _dataset_for(tuple_ratio, feature_ratio)
            speedup = _measure_speedup(dataset)
            parameters = CostParameters.from_dataset(dataset, operand_columns=OPERAND_COLUMNS)
            grid[(tuple_ratio, feature_ratio)] = (
                speedup,
                amalur_model.predict_factorize(parameters),
                morpheus_rule.predict_factorize(parameters),
            )

    lines = [
        "Figure 5: factorize/materialize decision areas",
        f"(measured speedup of factorization; workload = {REUSE} LMM passes, "
        f"{OPERAND_COLUMNS} operand columns; F = factorization faster)",
        "=" * 76,
        "rows: tuple ratio (r_T / r_S2); columns: feature ratio (c_T / c_S1)",
        "",
        "measured speedup (×):",
        "        " + "".join(f"{fr:>9}" for fr in FEATURE_RATIOS),
    ]
    for tuple_ratio in TUPLE_RATIOS:
        row = [f"{grid[(tuple_ratio, fr)][0]:>8.2f}{'F' if grid[(tuple_ratio, fr)][0] > 1 else 'M'}"
               for fr in FEATURE_RATIOS]
        lines.append(f"  tr={tuple_ratio:>3} " + "".join(row))
    lines.append("")
    lines.append("decision agreement (measured / Amalur cost model / Morpheus heuristic):")
    lines.append("        " + "".join(f"{fr:>9}" for fr in FEATURE_RATIOS))
    for tuple_ratio in TUPLE_RATIOS:
        cells = []
        for fr in FEATURE_RATIOS:
            speedup, amalur_says, morpheus_says = grid[(tuple_ratio, fr)]
            truth = "F" if speedup > 1 else "M"
            cells.append(
                f"    {truth}/{'F' if amalur_says else 'M'}/{'F' if morpheus_says else 'M'}"
            )
        lines.append(f"  tr={tuple_ratio:>3} " + "".join(cells))

    measured_factorize = sum(1 for s, _, _ in grid.values() if s > 1)
    amalur_agreement = sum(
        1 for s, a, _ in grid.values() if (s > 1) == a
    ) / len(grid)
    morpheus_agreement = sum(
        1 for s, _, m in grid.values() if (s > 1) == m
    ) / len(grid)
    lines.append("")
    lines.append(
        f"grid points where factorization wins: {measured_factorize}/{len(grid)}; "
        f"Amalur agreement {amalur_agreement:.0%}, Morpheus agreement {morpheus_agreement:.0%}"
    )
    report("figure5_boundary", lines)

    # Shape assertions: the boundary behaves like Figure 5 — factorization
    # wins clearly in the Area I corner (high tuple ratio AND high feature
    # ratio) and materialization wins at tuple ratio 1 (Area II). The points
    # in between are the hard Area III cases the paper argues need a better
    # cost model; the report records how often each predictor matches the
    # stopwatch there.
    assert grid[(max(TUPLE_RATIOS), max(FEATURE_RATIOS))][0] > 1.0
    assert grid[(1, FEATURE_RATIOS[0])][0] <= 1.0

    benchmark(_measure_speedup, _dataset_for(10, 10))


@pytest.mark.parametrize("tuple_ratio", [1, 10, 50])
def test_benchmark_factorized_workload_by_tuple_ratio(benchmark, tuple_ratio):
    dataset = _dataset_for(tuple_ratio, 10)
    matrix = AmalurMatrix(dataset)
    operand = np.random.default_rng(0).standard_normal((matrix.n_columns, OPERAND_COLUMNS))
    benchmark(matrix.lmm, operand)

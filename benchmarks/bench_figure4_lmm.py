"""Figure 4 reproduction: the three matrices and the LMM rewrite (Eq. 2).

Figure 4 shows, for the running example: (a) the mapping matrices and
their compressed forms, (b) the compressed indicator matrices, (c) the
redundancy matrix and the rewritten left matrix multiplication
``T X → I1 D1 M1ᵀ X + ((I2 D2 M2ᵀ) ∘ R2) X``. The harness prints all of
them, verifies the rewrite against the materialized product, and times the
rewrite against materialization on scaled-up versions of the same
integration pattern.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.hospital import hospital_integrated_dataset
from repro.datagen.synthetic import SyntheticSiloSpec, generate_integrated_pair
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.metadata.mappings import ScenarioType

# The operand X used in Figure 4c (4×2, matching T's four columns).
FIGURE_4C_OPERAND = np.array([[6.0, 2.0], [5.0, 2.0], [3.0, 4.0], [2.0, 1.0]])


@pytest.fixture(scope="module")
def running_example():
    dataset = hospital_integrated_dataset(ScenarioType.FULL_OUTER_JOIN)
    return dataset, AmalurMatrix(dataset)


class TestFigure4Correctness:
    def test_rewrite_equals_materialized_product(self, running_example):
        dataset, matrix = running_example
        assert np.allclose(
            matrix.lmm(FIGURE_4C_OPERAND), dataset.materialize() @ FIGURE_4C_OPERAND
        )

    def test_local_results_plus_redundancy_assembly(self, running_example):
        dataset, _ = running_example
        t1 = dataset.factors[0].masked_contribution()
        t2 = dataset.factors[1].contribution()
        r2 = dataset.factors[1].redundancy.to_dense()
        lhs = t1 @ FIGURE_4C_OPERAND + (t2 * r2) @ FIGURE_4C_OPERAND
        assert np.allclose(lhs, dataset.materialize() @ FIGURE_4C_OPERAND)


def _scaled_dataset(base_rows: int):
    return generate_integrated_pair(
        SyntheticSiloSpec(
            base_rows=base_rows,
            base_columns=3,
            other_rows=max(2, base_rows // 10),
            other_columns=60,
            redundancy_in_target=True,
            redundancy_in_sources=True,
            seed=0,
        )
    )


@pytest.mark.parametrize("base_rows", [2_000, 20_000, 100_000])
def test_benchmark_factorized_lmm(benchmark, base_rows):
    dataset = _scaled_dataset(base_rows)
    matrix = AmalurMatrix(dataset)
    operand = np.random.default_rng(1).standard_normal((matrix.n_columns, 4))
    benchmark(matrix.lmm, operand)


@pytest.mark.parametrize("base_rows", [2_000, 20_000, 100_000])
def test_benchmark_materialized_lmm(benchmark, base_rows):
    dataset = _scaled_dataset(base_rows)
    operand = np.random.default_rng(1).standard_normal((len(dataset.target_columns), 4))

    def run():
        return dataset.materialize() @ operand

    benchmark(run)


def test_report_figure4(report, benchmark, running_example):
    dataset, matrix = running_example
    m1, m2 = (f.mapping for f in dataset.factors)
    i1, i2 = (f.indicator for f in dataset.factors)
    r2 = dataset.factors[1].redundancy

    lines = ["Figure 4: mapping, indicator, and redundancy matrices", "=" * 64]
    lines.append("(a) mapping matrices")
    lines.append(f"    M1 =\n{m1.to_dense()}")
    lines.append(f"    CM1 = {m1.compressed.tolist()}")
    lines.append(f"    M2 =\n{m2.to_dense()}")
    lines.append(f"    CM2 = {m2.compressed.tolist()}")
    lines.append("(b) compressed indicator matrices")
    lines.append(f"    CI1 = {i1.compressed.tolist()}")
    lines.append(f"    CI2 = {i2.compressed.tolist()}")
    lines.append("(c) redundancy matrix R2 and the LMM rewrite")
    lines.append(f"    R2 =\n{r2.to_dense()}")
    lines.append(f"    X =\n{FIGURE_4C_OPERAND}")
    lines.append(f"    T1 X =\n{dataset.factors[0].masked_contribution() @ FIGURE_4C_OPERAND}")
    lines.append(
        "    (T2 ∘ R2) X =\n"
        f"{dataset.factors[1].masked_contribution() @ FIGURE_4C_OPERAND}"
    )
    lines.append(f"    T X (factorized rewrite) =\n{matrix.lmm(FIGURE_4C_OPERAND)}")
    lines.append(f"    T X (materialized)       =\n{dataset.materialize() @ FIGURE_4C_OPERAND}")
    report("figure4_lmm", lines)

    benchmark(matrix.lmm, FIGURE_4C_OPERAND)

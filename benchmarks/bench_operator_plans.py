"""Wall-time of the compiled operator plans vs. the seed per-element loops.

Run standalone to emit ``benchmarks/results/BENCH_OPERATORS.json`` (exits
non-zero when a perf or parity guard fails — the CI ``perf-guard`` job)::

    PYTHONPATH=src python benchmarks/bench_operator_plans.py           # small cases
    PYTHONPATH=src python benchmarks/bench_operator_plans.py --scale   # + 1M × 10k

Workloads:

* the **four Table I integration scenarios** (inner/left/outer join and
  union, with overlap rows and overlapping columns so the redundancy
  correction paths run), timed per GD iteration (one LMM + one
  transpose-LMM) and per operator, with exact-parity checks against the
  materialized target;
* a **wide one-hot scenario** (8k rows × 4k categories, ~4k target
  columns, many-to-one join, auto backend) — the regime the paper's
  factorization targets, where the seed's Python-level column loops
  dominated; the guard requires a ≥10× GD-iteration speedup here;
* with ``--scale``, the **1M × 10k one-hot scenario** from the PR 2
  memory-guard, timed compiled-vs-seed (the target is not
  materializable, so parity is checked between the two implementations).

The "seed path" is the pre-compiled-plan implementation (per-element
``for target_col, source_col in enumerate(compressed)`` gather/scatter
loops and per-call list-comprehension effective contributions), preserved
verbatim below as the perf baseline. Guards: compiled must never be
slower than the seed path (×1.25 tolerance for the sub-millisecond small
cases), the wide case must speed up ≥10×, and every operator must match
its reference to 1e-10.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

if __name__ == "__main__":  # allow `python benchmarks/bench_operator_plans.py`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import parallel, telemetry
from repro.datagen.scenarios import ScenarioSpec, generate_scenario_dataset
from repro.datagen.synthetic import OneHotSpec, generate_one_hot_pair
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.metadata.mappings import ScenarioType

PARITY_ATOL = 1e-10
SMALL_TOLERANCE = 1.25  # compiled may never be slower than seed × this
WIDE_MIN_SPEEDUP = 10.0  # required GD-iteration speedup on the wide case
SMALL_REPEATS = 7
WIDE_REPEATS = 5
SCALE_REPEATS = 3

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_OPERATORS.json"

SCENARIO_SPECS = {
    "inner_join": ScenarioSpec(
        ScenarioType.INNER_JOIN,
        base_rows=400, other_rows=300, base_features=30, other_features=40,
        overlap_rows=150, overlap_columns=5, seed=7,
    ),
    "left_join": ScenarioSpec(
        ScenarioType.LEFT_JOIN,
        base_rows=400, other_rows=300, base_features=30, other_features=40,
        overlap_rows=150, overlap_columns=5, seed=7,
    ),
    "outer_join": ScenarioSpec(
        ScenarioType.FULL_OUTER_JOIN,
        base_rows=400, other_rows=300, base_features=30, other_features=40,
        overlap_rows=150, overlap_columns=5, seed=7,
    ),
    "union": ScenarioSpec(
        ScenarioType.UNION,
        base_rows=400, other_rows=300, base_features=30, other_features=40,
        overlap_rows=150, overlap_columns=5, seed=7,
    ),
}
WIDE_SPEC = OneHotSpec(n_rows=8_000, n_categories=4_000, base_columns=5, seed=3)
SCALE_SPEC = OneHotSpec(n_rows=1_000_000, n_categories=10_000, base_columns=5, seed=3)


class SeedPathOps:
    """The seed (pre-OperatorPlan) implementation of the §IV-A rewrites.

    Kept verbatim as the perf-guard baseline: per-element Python loops over
    the compressed mapping vector in lmm/transpose_lmm, and effective
    contributions rebuilt from list comprehensions on every crossprod call.
    Shares the wrapped matrix's storages, backend and corrections, so the
    *only* difference measured is loop structure vs. compiled plans.
    """

    def __init__(self, matrix: AmalurMatrix):
        self.matrix = matrix

    def lmm(self, x: np.ndarray) -> np.ndarray:
        matrix = self.matrix
        x = matrix._check_lmm_operand(x)
        result = np.zeros((matrix.n_rows, x.shape[1]))
        for index, factor in enumerate(matrix.dataset.factors):
            gathered = np.zeros((factor.n_columns, x.shape[1]))
            compressed = factor.mapping.compressed
            for target_col, source_col in enumerate(compressed):
                if source_col >= 0:
                    gathered[source_col] = x[target_col]
            storage = matrix._storages[index]
            local = matrix.backend.matmul(storage, gathered)
            result += factor.indicator.apply(local)
            if not factor.redundancy.is_trivial:
                result -= matrix._correction(index) @ x
        return result

    def transpose_lmm(self, x: np.ndarray) -> np.ndarray:
        matrix = self.matrix
        x = matrix._check_transpose_operand(x)
        result = np.zeros((matrix.n_columns, x.shape[1]))
        for index, factor in enumerate(matrix.dataset.factors):
            projected = factor.indicator.apply_transpose(x)
            storage = matrix._storages[index]
            local = matrix.backend.transpose_matmul(storage, projected)
            compressed = factor.mapping.compressed
            for target_col, source_col in enumerate(compressed):
                if source_col >= 0:
                    result[target_col] += local[source_col]
            if not factor.redundancy.is_trivial:
                result -= matrix._correction(index).T @ x
        return result

    def crossprod(self) -> np.ndarray:
        matrix = self.matrix
        gram = np.zeros((matrix.n_columns, matrix.n_columns))
        effective = [
            self._effective_contribution(i) for i in range(matrix.dataset.n_sources)
        ]
        for k, (rows_k, block_k, cols_k) in enumerate(effective):
            local = matrix.backend.crossprod(block_k)
            gram[np.ix_(cols_k, cols_k)] += local
            for other in range(k + 1, matrix.dataset.n_sources):
                rows_l, block_l, cols_l = effective[other]
                shared, idx_k, idx_l = np.intersect1d(
                    rows_k, rows_l, assume_unique=False, return_indices=True
                )
                if shared.size == 0:
                    continue
                left = matrix.backend.take_rows(block_k, idx_k)
                right = matrix.backend.take_rows(block_l, idx_l)
                cross = matrix.backend.gram_pair(left, right)
                gram[np.ix_(cols_k, cols_l)] += cross
                gram[np.ix_(cols_l, cols_k)] += cross.T
        return gram

    def _effective_contribution(self, index: int):
        matrix = self.matrix
        factor = matrix.dataset.factors[index]
        storage = matrix._storages[index]
        compressed_rows = factor.indicator.compressed
        compressed_cols = factor.mapping.compressed
        rows = np.asarray([i for i, j in enumerate(compressed_rows) if j >= 0], dtype=int)
        cols = [i for i, j in enumerate(compressed_cols) if j >= 0]
        source_rows = compressed_rows[rows]
        source_cols = [int(compressed_cols[c]) for c in cols]
        block = matrix.backend.take_columns(
            matrix.backend.take_rows(storage, source_rows), source_cols
        )
        if not factor.redundancy.is_trivial:
            restricted = factor.redundancy.submatrix(rows, cols)
            block = matrix.backend.apply_redundancy(block, restricted)
        return rows, block, cols


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _gd_iteration(ops, weights: np.ndarray, targets: np.ndarray):
    """One full-batch GD iteration: predictions (LMM) + gradient (TLMM)."""
    predictions = ops.lmm(weights)
    residuals = predictions - targets
    return ops.transpose_lmm(residuals)


def _max_abs_err(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.max(np.abs(a - b))) if a.size else 0.0


def _bench_case(name, dataset, backend, repeats, materializable, failures):
    matrix = AmalurMatrix(dataset, backend=backend)
    seed_ops = SeedPathOps(matrix)
    rng = np.random.default_rng(0)
    weights = rng.standard_normal((matrix.n_columns, 1))
    targets = rng.standard_normal((matrix.n_rows, 1))

    # Warm the shared lazy structure (corrections, storages) outside timing.
    compiled_gd = _gd_iteration(matrix, weights, targets)
    seed_gd = _gd_iteration(seed_ops, weights, targets)

    # -- parity -------------------------------------------------------------
    if materializable:
        target = dataset.materialize()
        reference_lmm = target @ weights
        reference_tlmm = target.T @ targets
        parity_reference = "materialized"
    else:
        reference_lmm = seed_ops.lmm(weights)
        reference_tlmm = seed_ops.transpose_lmm(targets)
        parity_reference = "seed_path"
    lmm_err = _max_abs_err(matrix.lmm(weights), reference_lmm)
    tlmm_err = _max_abs_err(matrix.transpose_lmm(targets), reference_tlmm)
    gd_err = _max_abs_err(compiled_gd, seed_gd)
    crossprod_err = None
    if materializable:
        crossprod_err = _max_abs_err(matrix.crossprod(), target.T @ target)
    parity_errs = [e for e in (lmm_err, tlmm_err, gd_err, crossprod_err) if e is not None]
    if max(parity_errs) > PARITY_ATOL:
        failures.append(
            f"{name}: parity vs {parity_reference} broke "
            f"(lmm={lmm_err:.2e}, tlmm={tlmm_err:.2e}, gd={gd_err:.2e})"
        )

    # -- wall time ----------------------------------------------------------
    seed_iter = _best_of(lambda: _gd_iteration(seed_ops, weights, targets), repeats)
    compiled_iter = _best_of(lambda: _gd_iteration(matrix, weights, targets), repeats)
    seed_lmm = _best_of(lambda: seed_ops.lmm(weights), repeats)
    compiled_lmm = _best_of(lambda: matrix.lmm(weights), repeats)
    seed_tlmm = _best_of(lambda: seed_ops.transpose_lmm(targets), repeats)
    compiled_tlmm = _best_of(lambda: matrix.transpose_lmm(targets), repeats)
    # Compiled crossprod on a fresh view per repeat: times the uncached plan
    # path (plan build included), not the Gram cache hit.
    seed_cross = _best_of(seed_ops.crossprod, repeats)
    compiled_cross = _best_of(
        lambda: AmalurMatrix(dataset, backend=backend).crossprod(), repeats
    )
    cached_cross = _best_of(matrix.crossprod, repeats)

    record = {
        "shape": list(matrix.shape),
        "backend": matrix.backend.name,
        "storage_formats": matrix.storage_formats(),
        "parity_reference": parity_reference,
        "parity_max_abs_err": max(parity_errs),
        "seed_gd_iteration_s": seed_iter,
        "compiled_gd_iteration_s": compiled_iter,
        "gd_iteration_speedup": seed_iter / compiled_iter if compiled_iter else float("inf"),
        "operators": {
            "lmm": {"seed_s": seed_lmm, "compiled_s": compiled_lmm},
            "transpose_lmm": {"seed_s": seed_tlmm, "compiled_s": compiled_tlmm},
            "crossprod": {
                "seed_s": seed_cross,
                "compiled_s": compiled_cross,
                "compiled_cached_s": cached_cross,
            },
        },
    }
    print(
        f"  {name:<14} {matrix.shape[0]:>9}x{matrix.shape[1]:<6} "
        f"seed {seed_iter * 1e3:9.3f} ms  compiled {compiled_iter * 1e3:9.3f} ms  "
        f"speedup {record['gd_iteration_speedup']:7.1f}x  "
        f"parity {record['parity_max_abs_err']:.1e}"
    )
    return record


def _telemetry_record(dataset, backend, failures) -> dict:
    """One instrumented compiled GD iteration + crossprod on the wide case.

    Embeds the run report in the results JSON so the trajectory keeps span
    timings and FLOP counters alongside the wall times, and guards that the
    telemetry ``flops.*`` counters agree exactly with the legacy ops counter.
    """
    session = telemetry.enable()
    matrix = AmalurMatrix(dataset, backend=backend)
    rng = np.random.default_rng(0)
    weights = rng.standard_normal((matrix.n_columns, 1))
    targets = rng.standard_normal((matrix.n_rows, 1))
    _gd_iteration(matrix, weights, targets)
    matrix.crossprod()
    telemetry.disable()
    report = session.report()
    legacy = {f"flops.{op}": count for op, count in matrix.counter.by_operation.items()}
    mirrored = {
        name: value for name, value in report.counters.items() if name.startswith("flops.")
    }
    if mirrored != legacy:
        failures.append(
            "telemetry flops.* counters disagree with the legacy FLOP counter: "
            f"{mirrored} vs {legacy}"
        )
    return report.to_dict()


def run(scale: bool = False) -> int:
    failures: list = []
    cases = {}

    print("GD-iteration wall time (one LMM + one transpose-LMM), best of N:")
    for name, spec in SCENARIO_SPECS.items():
        dataset = generate_scenario_dataset(spec)
        cases[name] = _bench_case(
            name, dataset, None, SMALL_REPEATS, materializable=True, failures=failures
        )

    wide_dataset = generate_one_hot_pair(WIDE_SPEC, backend="auto")
    cases["wide_one_hot"] = _bench_case(
        "wide_one_hot", wide_dataset, "auto", WIDE_REPEATS,
        materializable=True, failures=failures,
    )
    telemetry_record = _telemetry_record(wide_dataset, "auto", failures)

    if scale:
        scale_dataset = generate_one_hot_pair(SCALE_SPEC, backend="auto")
        cases["scale_one_hot"] = _bench_case(
            "scale_one_hot", scale_dataset, "auto", SCALE_REPEATS,
            materializable=False, failures=failures,
        )

    # -- guards -------------------------------------------------------------
    for name, record in cases.items():
        ratio = record["compiled_gd_iteration_s"] / record["seed_gd_iteration_s"]
        if ratio > SMALL_TOLERANCE:
            failures.append(
                f"{name}: compiled GD iteration is {ratio:.2f}x the seed path "
                f"(tolerance {SMALL_TOLERANCE}x)"
            )
        for op, timing in record["operators"].items():
            if timing["compiled_s"] > timing["seed_s"] * SMALL_TOLERANCE:
                failures.append(
                    f"{name}.{op}: compiled {timing['compiled_s'] * 1e3:.3f} ms vs "
                    f"seed {timing['seed_s'] * 1e3:.3f} ms exceeds tolerance"
                )
    wide_speedup = cases["wide_one_hot"]["gd_iteration_speedup"]
    if wide_speedup < WIDE_MIN_SPEEDUP:
        failures.append(
            f"wide_one_hot: GD-iteration speedup {wide_speedup:.1f}x "
            f"is below the required {WIDE_MIN_SPEEDUP}x"
        )

    # Merge with any existing record so a default (no --scale) run never
    # drops the committed scale_one_hot baseline from the trajectory file.
    if RESULTS_PATH.exists():
        try:
            previous = json.loads(RESULTS_PATH.read_text()).get("cases", {})
        except (ValueError, OSError):
            previous = {}
        for name, case in previous.items():
            cases.setdefault(name, case)
    record = {
        "benchmark": "operator_plans",
        "parity_atol": PARITY_ATOL,
        "small_tolerance": SMALL_TOLERANCE,
        "wide_min_speedup": WIDE_MIN_SPEEDUP,
        "cases": cases,
        "telemetry": telemetry_record,
        "guards_failed": failures,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {RESULTS_PATH}")

    if failures:
        print("\nperf-guard FAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"perf-guard ok: wide GD-iteration speedup {wide_speedup:.1f}x "
        f"(bar {WIDE_MIN_SPEEDUP}x), parity <= {PARITY_ATOL}"
    )
    return 0


if __name__ == "__main__":
    # The 1e-10 parity guards and seed-vs-compiled timings compare serial
    # engines; blocked parallel reductions only promise 1e-8.
    parallel.set_num_workers(1)
    sys.exit(run(scale="--scale" in sys.argv))

"""Synthetic stand-ins for the public factorized-learning benchmark datasets.

The factorized-learning literature the paper builds on (Kumar et al.'s
Hamlet and Chen et al.'s Morpheus, references [34] and [27]) evaluates on
a standard set of key–foreign-key join datasets: Expedia, Movies, Yelp,
Walmart, LastFM, Books and Flights. The raw data is not redistributable
and is not needed for the reproduction: the factorized-vs-materialized
trade-off depends only on the *shape* statistics (rows and columns of the
entity and attribute tables, hence tuple and feature ratios). This module
records those published statistics and generates synthetic numeric tables
with the same shapes, scaled down by default so the benchmarks run on a
laptop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.factorized.morpheus import MorpheusMatrix
from repro.matrices.builder import IntegratedDataset, SourceFactor
from repro.matrices.indicator_matrix import IndicatorMatrix
from repro.matrices.mapping_matrix import MappingMatrix
from repro.matrices.redundancy_matrix import RedundancyMatrix
from repro.metadata.mappings import ScenarioType


@dataclass(frozen=True)
class HamletDatasetSpec:
    """Shape statistics of one benchmark dataset (entity + dimension tables)."""

    name: str
    entity_rows: int
    entity_features: int
    dimensions: Tuple[Tuple[int, int], ...]  # (rows, features) per dimension table

    @property
    def tuple_ratios(self) -> List[float]:
        return [self.entity_rows / rows for rows, _ in self.dimensions]

    @property
    def feature_ratio(self) -> float:
        total = self.entity_features + sum(cols for _, cols in self.dimensions)
        widest = max([self.entity_features] + [cols for _, cols in self.dimensions])
        return total / widest if widest else 0.0


# Approximate published shape statistics (features are the dense-equivalent
# feature counts, scaled from the one-hot encodings used in the original
# papers so that dense numpy kernels remain tractable).
HAMLET_DATASETS: Dict[str, HamletDatasetSpec] = {
    "expedia": HamletDatasetSpec("expedia", 942_142, 27, ((11_939, 60), (37_021, 40))),
    "movies": HamletDatasetSpec("movies", 1_000_209, 0, ((6_040, 50), (3_706, 40))),
    "yelp": HamletDatasetSpec("yelp", 215_879, 0, ((11_535, 60), (43_873, 55))),
    "walmart": HamletDatasetSpec("walmart", 421_570, 1, ((2_340, 30), (45, 12))),
    "lastfm": HamletDatasetSpec("lastfm", 343_747, 0, ((4_999, 50), (50_000, 45))),
    "books": HamletDatasetSpec("books", 253_120, 0, ((27_876, 40), (49_972, 35))),
    "flights": HamletDatasetSpec("flights", 66_548, 20, ((540, 25), (3_167, 30), (3_170, 30))),
}


def _scaled(spec: HamletDatasetSpec, row_scale: float, column_scale: float) -> HamletDatasetSpec:
    def scale_rows(rows: int) -> int:
        return max(2, int(round(rows * row_scale)))

    def scale_cols(cols: int) -> int:
        return max(1, int(round(cols * column_scale))) if cols else 0

    return HamletDatasetSpec(
        spec.name,
        scale_rows(spec.entity_rows),
        scale_cols(spec.entity_features),
        tuple((scale_rows(rows), max(1, scale_cols(cols))) for rows, cols in spec.dimensions),
    )


def generate_hamlet_morpheus(
    name: str,
    row_scale: float = 0.01,
    column_scale: float = 0.5,
    seed: int = 0,
) -> MorpheusMatrix:
    """Generate a Morpheus normalized matrix with a dataset's (scaled) shape."""
    spec = _scaled(HAMLET_DATASETS[name], row_scale, column_scale)
    rng = np.random.default_rng(seed)
    entity = (
        rng.standard_normal((spec.entity_rows, spec.entity_features))
        if spec.entity_features
        else None
    )
    attribute_tables = [rng.standard_normal((rows, cols)) for rows, cols in spec.dimensions]
    indicators = [
        rng.integers(0, rows, size=spec.entity_rows) for rows, _ in spec.dimensions
    ]
    return MorpheusMatrix(entity, attribute_tables, indicators)


def generate_hamlet_dataset(
    name: str,
    row_scale: float = 0.01,
    column_scale: float = 0.5,
    seed: int = 0,
    with_label: bool = True,
) -> IntegratedDataset:
    """Generate an Amalur :class:`IntegratedDataset` with a dataset's shape.

    The entity table is the base source (holding the label when
    ``with_label``), each dimension table is an additional source joined
    through a key–foreign-key indicator, columns are disjoint across
    sources (no source redundancy — the classic Morpheus setting).
    """
    spec = _scaled(HAMLET_DATASETS[name], row_scale, column_scale)
    rng = np.random.default_rng(seed)
    n_rows = spec.entity_rows

    factors: List[SourceFactor] = []
    target_columns: List[str] = []
    label_column = None

    entity_features = max(spec.entity_features, 1)
    entity_columns = [f"e{i}" for i in range(entity_features)]
    if with_label:
        entity_columns = ["label"] + entity_columns
        label_column = "label"
    entity_data = rng.standard_normal((n_rows, len(entity_columns)))
    if with_label:
        entity_data[:, 0] = rng.integers(0, 2, size=n_rows)
    target_columns.extend(entity_columns)

    dimension_payload = []
    for index, (rows, cols) in enumerate(spec.dimensions):
        columns = [f"d{index}_{i}" for i in range(cols)]
        data = rng.standard_normal((rows, cols))
        indicator = rng.integers(0, rows, size=n_rows)
        dimension_payload.append((columns, data, indicator))
        target_columns.extend(columns)

    entity_mapping = MappingMatrix("entity", target_columns, entity_columns,
                                   {c: c for c in entity_columns})
    entity_indicator = IndicatorMatrix("entity", n_rows, n_rows, np.arange(n_rows))
    entity_redundancy = RedundancyMatrix.all_ones("entity", n_rows, len(target_columns))
    factors.append(
        SourceFactor("entity", entity_data, entity_columns, entity_mapping,
                     entity_indicator, entity_redundancy)
    )

    for index, (columns, data, indicator) in enumerate(dimension_payload):
        name_k = f"dim{index}"
        mapping = MappingMatrix(name_k, target_columns, columns, {c: c for c in columns})
        indicator_matrix = IndicatorMatrix(name_k, n_rows, data.shape[0], indicator)
        redundancy = RedundancyMatrix.all_ones(name_k, n_rows, len(target_columns))
        factors.append(
            SourceFactor(name_k, data, columns, mapping, indicator_matrix, redundancy)
        )

    return IntegratedDataset(
        target_columns=target_columns,
        n_target_rows=n_rows,
        factors=factors,
        scenario=ScenarioType.INNER_JOIN,
        label_column=label_column,
        name=name,
    )

"""The paper's running example: hospital mortality prediction (Figure 2).

``S1(m, n, a, hr)`` comes from the ER department (label ``m`` = mortality,
features age and resting heart rate); ``S2(m, n, a, o, dd)`` comes from the
pulmonary department and contributes the new feature ``o`` (blood oxygen).
Jane appears in both tables (the "Same Entity" of Figure 2), and the
mediated schema is ``T(m, a, hr, o)``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.matrices.builder import IntegratedDataset, integrate_tables
from repro.metadata.entity_resolution import RowMatch
from repro.metadata.mappings import ScenarioType
from repro.metadata.schema_matching import ColumnMatch
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType


def hospital_tables() -> Tuple[Table, Table]:
    """The exact S1 and S2 instances of Figure 2a-b."""
    s1_schema = Schema(
        [
            Column("m", DataType.INT, is_label=True, description="mortality"),
            Column("n", DataType.STRING, is_key=True, description="name"),
            Column("a", DataType.INT, description="age"),
            Column("hr", DataType.INT, description="resting heart rate"),
        ]
    )
    s1 = Table.from_rows(
        "S1",
        s1_schema,
        [
            (0, "Jack", 20, 60),
            (1, "Sam", 35, 58),
            (0, "Ruby", 22, 65),
            (1, "Jane", 37, 70),
        ],
    )
    s2_schema = Schema(
        [
            Column("m", DataType.INT, is_label=True, description="mortality"),
            Column("n", DataType.STRING, is_key=True, description="name"),
            Column("a", DataType.INT, description="age"),
            Column("o", DataType.INT, description="blood oxygen level"),
            Column("dd", DataType.STRING, description="date diagnosed"),
        ]
    )
    s2 = Table.from_rows(
        "S2",
        s2_schema,
        [
            (1, "Rose", 45, 95, "1/4/21"),
            (0, "Castiel", 20, 97, "3/8/22"),
            (1, "Jane", 37, 92, "11/5/21"),
        ],
    )
    return s1, s2


def hospital_column_matches() -> List[ColumnMatch]:
    """The schema-matching output of the running example (m, n, a overlap)."""
    return [
        ColumnMatch("S1", "m", "S2", "m", 1.0),
        ColumnMatch("S1", "n", "S2", "n", 1.0),
        ColumnMatch("S1", "a", "S2", "a", 1.0),
    ]


def hospital_row_matches() -> List[RowMatch]:
    """The entity-resolution output: S1 row 3 (Jane) == S2 row 2 (Jane)."""
    return [RowMatch(3, 2, 1.0)]


def hospital_integrated_dataset(
    scenario: ScenarioType = ScenarioType.FULL_OUTER_JOIN,
) -> IntegratedDataset:
    """The running example integrated under any of the Table I scenarios.

    The default full outer join reproduces the 6-row target table
    ``T(m, a, hr, o)`` of Figure 2d / Figure 4.
    """
    s1, s2 = hospital_tables()
    return integrate_tables(
        base=s1,
        other=s2,
        column_matches=hospital_column_matches(),
        row_matches=hospital_row_matches(),
        target_columns=["m", "a", "hr", "o"],
        scenario=scenario,
        label_column="m",
        name="T",
    )

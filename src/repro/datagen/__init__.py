"""Workload and dataset generators for tests, examples and benchmarks."""

from repro.datagen.hospital import hospital_tables, hospital_integrated_dataset
from repro.datagen.scenarios import (
    ScenarioSpec,
    generate_scenario_tables,
    generate_scenario_dataset,
)
from repro.datagen.synthetic import (
    OneHotSpec,
    SyntheticSiloSpec,
    generate_integrated_pair,
    generate_one_hot_pair,
    generate_table3_grid,
)
from repro.datagen.hamlet import (
    HAMLET_DATASETS,
    HamletDatasetSpec,
    generate_hamlet_dataset,
    generate_hamlet_morpheus,
)

__all__ = [
    "hospital_tables",
    "hospital_integrated_dataset",
    "ScenarioSpec",
    "generate_scenario_tables",
    "generate_scenario_dataset",
    "SyntheticSiloSpec",
    "generate_integrated_pair",
    "generate_table3_grid",
    "OneHotSpec",
    "generate_one_hot_pair",
    "HAMLET_DATASETS",
    "HamletDatasetSpec",
    "generate_hamlet_dataset",
    "generate_hamlet_morpheus",
]

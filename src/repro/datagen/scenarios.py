"""Generators for the four Table I integration scenarios on relational tables.

These generators produce *small-to-medium* relational tables (they go
through :class:`repro.relational.Table`, so every cell is a Python value)
together with their DI metadata, and are used by tests, examples and the
Table I benchmark. For the large shape sweeps of Table III / Figure 5 use
:mod:`repro.datagen.synthetic`, which builds the factorized representation
directly from numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.matrices.builder import IntegratedDataset, integrate_tables
from repro.metadata.entity_resolution import RowMatch
from repro.metadata.mappings import ScenarioType
from repro.metadata.schema_matching import ColumnMatch
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType


@dataclass
class ScenarioSpec:
    """Parameters of a two-silo integration scenario.

    ``overlap_rows`` is the number of entities present in both sources;
    ``overlap_columns`` the number of feature columns both sources store
    (besides the key), which creates source redundancy.
    """

    scenario: ScenarioType
    base_rows: int = 100
    other_rows: int = 60
    base_features: int = 4
    other_features: int = 5
    overlap_rows: int = 30
    overlap_columns: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        self.overlap_rows = min(self.overlap_rows, self.base_rows, self.other_rows)
        self.overlap_columns = min(self.overlap_columns, self.base_features, self.other_features)


def _feature_schema(prefix: str, n_features: int, shared: int, label: bool) -> Schema:
    columns = [Column("id", DataType.INT, is_key=True)]
    if label:
        columns.append(Column("label", DataType.INT, is_label=True))
    for i in range(shared):
        columns.append(Column(f"shared_{i}", DataType.FLOAT))
    for i in range(n_features - shared):
        columns.append(Column(f"{prefix}_{i}", DataType.FLOAT))
    return Schema(columns)


def generate_scenario_tables(
    spec: ScenarioSpec,
) -> Tuple[Table, Table, List[ColumnMatch], List[RowMatch], List[str]]:
    """Generate the two source tables plus their DI metadata.

    For union scenarios the two tables share the full feature schema (the
    HFL case); otherwise the base carries the label and ``base_features``
    columns, the other table carries ``other_features`` columns of which
    ``overlap_columns`` duplicate base columns (source redundancy).

    Returns ``(base, other, column_matches, row_matches, target_columns)``.
    """
    rng = np.random.default_rng(spec.seed)
    is_union = spec.scenario is ScenarioType.UNION
    shared = spec.base_features if is_union else spec.overlap_columns

    base_schema = _feature_schema("b", spec.base_features, shared, label=True)
    other_features = spec.base_features if is_union else spec.other_features
    other_schema = _feature_schema("o", other_features, shared, label=is_union)

    overlap_ids = list(range(spec.overlap_rows))
    base_ids = list(range(spec.base_rows))
    if is_union:
        other_ids = list(range(spec.base_rows, spec.base_rows + spec.other_rows))
    else:
        other_only = list(range(spec.base_rows, spec.base_rows + spec.other_rows - spec.overlap_rows))
        other_ids = overlap_ids + other_only

    def build_rows(ids, schema: Schema):
        rows = []
        for entity_id in ids:
            row = []
            entity_rng = np.random.default_rng(spec.seed * 1_000_003 + entity_id)
            for column in schema:
                if column.name == "id":
                    row.append(entity_id)
                elif column.is_label:
                    row.append(int(entity_rng.integers(0, 2)))
                elif column.name.startswith("shared_"):
                    row.append(float(np.round(entity_rng.normal(), 4)))
                else:
                    row.append(float(np.round(rng.normal(), 4)))
            rows.append(row)
        return rows

    base = Table.from_rows("S1", base_schema, build_rows(base_ids, base_schema))
    other = Table.from_rows("S2", other_schema, build_rows(other_ids, other_schema))

    column_matches = [ColumnMatch("S1", "id", "S2", "id", 1.0)]
    for i in range(shared):
        column_matches.append(ColumnMatch("S1", f"shared_{i}", "S2", f"shared_{i}", 1.0))
    if is_union:
        column_matches.append(ColumnMatch("S1", "label", "S2", "label", 1.0))
        for i in range(spec.base_features - shared):
            column_matches.append(ColumnMatch("S1", f"b_{i}", "S2", f"b_{i}", 1.0))

    if is_union:
        row_matches: List[RowMatch] = []
    else:
        other_index = {entity_id: j for j, entity_id in enumerate(other_ids)}
        row_matches = [
            RowMatch(i, other_index[entity_id], 1.0)
            for i, entity_id in enumerate(base_ids)
            if entity_id in other_index
        ]

    target_columns = ["label"]
    target_columns += [f"shared_{i}" for i in range(shared)]
    target_columns += [f"b_{i}" for i in range(spec.base_features - shared)]
    if not is_union:
        target_columns += [f"o_{i}" for i in range(other_features - shared)]
    return base, other, column_matches, row_matches, target_columns


def generate_scenario_dataset(spec: ScenarioSpec) -> IntegratedDataset:
    """Generate a scenario and integrate it into a factorized dataset."""
    base, other, column_matches, row_matches, target_columns = generate_scenario_tables(spec)
    return integrate_tables(
        base=base,
        other=other,
        column_matches=column_matches,
        row_matches=row_matches,
        target_columns=target_columns,
        scenario=spec.scenario,
        label_column="label",
    )

"""Generators for the four Table I integration scenarios on relational tables.

These generators produce *small-to-medium* relational tables (they go
through :class:`repro.relational.Table`, so every cell is a Python value)
together with their DI metadata, and are used by tests, examples and the
Table I benchmark. For the large shape sweeps of Table III / Figure 5 use
:mod:`repro.datagen.synthetic`, which builds the factorized representation
directly from numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.matrices.builder import IntegratedDataset, integrate_tables
from repro.metadata.entity_resolution import RowMatch
from repro.metadata.mappings import ScenarioType
from repro.metadata.schema_matching import ColumnMatch
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType


@dataclass
class ScenarioSpec:
    """Parameters of a two-silo integration scenario.

    ``overlap_rows`` is the number of entities present in both sources;
    ``overlap_columns`` the number of feature columns both sources store
    (besides the key), which creates source redundancy.
    """

    scenario: ScenarioType
    base_rows: int = 100
    other_rows: int = 60
    base_features: int = 4
    other_features: int = 5
    overlap_rows: int = 30
    overlap_columns: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        self.overlap_rows = min(self.overlap_rows, self.base_rows, self.other_rows)
        self.overlap_columns = min(self.overlap_columns, self.base_features, self.other_features)


def _feature_schema(prefix: str, n_features: int, shared: int, label: bool) -> Schema:
    columns = [Column("id", DataType.INT, is_key=True)]
    if label:
        columns.append(Column("label", DataType.INT, is_label=True))
    for i in range(shared):
        columns.append(Column(f"shared_{i}", DataType.FLOAT))
    for i in range(n_features - shared):
        columns.append(Column(f"{prefix}_{i}", DataType.FLOAT))
    return Schema(columns)


def generate_scenario_tables(
    spec: ScenarioSpec,
) -> Tuple[Table, Table, List[ColumnMatch], List[RowMatch], List[str]]:
    """Generate the two source tables plus their DI metadata.

    For union scenarios the two tables share the full feature schema (the
    HFL case); otherwise the base carries the label and ``base_features``
    columns, the other table carries ``other_features`` columns of which
    ``overlap_columns`` duplicate base columns (source redundancy).

    Tables are assembled column-array-at-a-time: entity-level values (label,
    shared features) are drawn once per entity from a dedicated stream and
    indexed by entity id, so overlapping entities carry identical values in
    both sources without per-row RNG construction.

    Returns ``(base, other, column_matches, row_matches, target_columns)``.
    """
    is_union = spec.scenario is ScenarioType.UNION
    shared = spec.base_features if is_union else spec.overlap_columns

    base_schema = _feature_schema("b", spec.base_features, shared, label=True)
    other_features = spec.base_features if is_union else spec.other_features
    other_schema = _feature_schema("o", other_features, shared, label=is_union)

    base_ids = np.arange(spec.base_rows, dtype=np.int64)
    if is_union:
        other_ids = np.arange(
            spec.base_rows, spec.base_rows + spec.other_rows, dtype=np.int64
        )
    else:
        other_ids = np.concatenate(
            [
                np.arange(spec.overlap_rows, dtype=np.int64),
                np.arange(
                    spec.base_rows,
                    spec.base_rows + spec.other_rows - spec.overlap_rows,
                    dtype=np.int64,
                ),
            ]
        )

    # Entity-level value streams, indexed by entity id (shared across tables).
    n_entities = spec.base_rows + spec.other_rows
    entity_rng = np.random.default_rng(spec.seed * 1_000_003 + 1)
    labels_all = entity_rng.integers(0, 2, size=n_entities)
    shared_all = np.round(entity_rng.standard_normal((n_entities, shared)), 4)
    # Table-local feature draws (not shared between sources).
    rng = np.random.default_rng(spec.seed)

    def build_columns(ids: np.ndarray, schema: Schema):
        columns = {}
        for column in schema:
            if column.name == "id":
                columns[column.name] = ids
            elif column.is_label:
                columns[column.name] = labels_all[ids]
            elif column.name.startswith("shared_"):
                columns[column.name] = shared_all[ids, int(column.name[len("shared_"):])]
            else:
                columns[column.name] = np.round(rng.standard_normal(ids.size), 4)
        return columns

    base = Table("S1", base_schema, build_columns(base_ids, base_schema))
    other = Table("S2", other_schema, build_columns(other_ids, other_schema))

    column_matches = [ColumnMatch("S1", "id", "S2", "id", 1.0)]
    for i in range(shared):
        column_matches.append(ColumnMatch("S1", f"shared_{i}", "S2", f"shared_{i}", 1.0))
    if is_union:
        column_matches.append(ColumnMatch("S1", "label", "S2", "label", 1.0))
        for i in range(spec.base_features - shared):
            column_matches.append(ColumnMatch("S1", f"b_{i}", "S2", f"b_{i}", 1.0))

    if is_union:
        row_matches: List[RowMatch] = []
    else:
        # Overlapping entities are ids 0..overlap_rows-1, sitting at the same
        # position in both tables by construction.
        row_matches = [RowMatch(i, i, 1.0) for i in range(spec.overlap_rows)]

    target_columns = ["label"]
    target_columns += [f"shared_{i}" for i in range(shared)]
    target_columns += [f"b_{i}" for i in range(spec.base_features - shared)]
    if not is_union:
        target_columns += [f"o_{i}" for i in range(other_features - shared)]
    return base, other, column_matches, row_matches, target_columns


def generate_scenario_dataset(spec: ScenarioSpec) -> IntegratedDataset:
    """Generate a scenario and integrate it into a factorized dataset."""
    base, other, column_matches, row_matches, target_columns = generate_scenario_tables(spec)
    return integrate_tables(
        base=base,
        other=other,
        column_matches=column_matches,
        row_matches=row_matches,
        target_columns=target_columns,
        scenario=spec.scenario,
        label_column="label",
    )

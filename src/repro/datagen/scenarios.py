"""Generators for the four Table I integration scenarios on relational tables.

These generators produce *small-to-medium* relational tables (they go
through :class:`repro.relational.Table`, so every cell is a Python value)
together with their DI metadata, and are used by tests, examples and the
Table I benchmark. For the large shape sweeps of Table III / Figure 5 use
:mod:`repro.datagen.synthetic`, which builds the factorized representation
directly from numpy arrays.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.matrices.builder import IntegratedDataset, integrate_tables
from repro.metadata.entity_resolution import RowMatch
from repro.metadata.mappings import ScenarioType
from repro.metadata.schema_matching import ColumnMatch
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType
from repro.streaming.chunks import DEFAULT_CHUNK_ROWS, TableChunk, TableChunkStream


@dataclass
class ScenarioSpec:
    """Parameters of a two-silo integration scenario.

    ``overlap_rows`` is the number of entities present in both sources;
    ``overlap_columns`` the number of feature columns both sources store
    (besides the key), which creates source redundancy.
    """

    scenario: ScenarioType
    base_rows: int = 100
    other_rows: int = 60
    base_features: int = 4
    other_features: int = 5
    overlap_rows: int = 30
    overlap_columns: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        self.overlap_rows = min(self.overlap_rows, self.base_rows, self.other_rows)
        self.overlap_columns = min(self.overlap_columns, self.base_features, self.other_features)


def _feature_schema(prefix: str, n_features: int, shared: int, label: bool) -> Schema:
    columns = [Column("id", DataType.INT, is_key=True)]
    if label:
        columns.append(Column("label", DataType.INT, is_label=True))
    for i in range(shared):
        columns.append(Column(f"shared_{i}", DataType.FLOAT))
    for i in range(n_features - shared):
        columns.append(Column(f"{prefix}_{i}", DataType.FLOAT))
    return Schema(columns)


def generate_scenario_tables(
    spec: ScenarioSpec,
) -> Tuple[Table, Table, List[ColumnMatch], List[RowMatch], List[str]]:
    """Generate the two source tables plus their DI metadata.

    For union scenarios the two tables share the full feature schema (the
    HFL case); otherwise the base carries the label and ``base_features``
    columns, the other table carries ``other_features`` columns of which
    ``overlap_columns`` duplicate base columns (source redundancy).

    Tables are assembled column-array-at-a-time: entity-level values (label,
    shared features) are drawn once per entity from a dedicated stream and
    indexed by entity id, so overlapping entities carry identical values in
    both sources without per-row RNG construction.

    Returns ``(base, other, column_matches, row_matches, target_columns)``.
    """
    is_union = spec.scenario is ScenarioType.UNION
    shared = spec.base_features if is_union else spec.overlap_columns

    base_schema = _feature_schema("b", spec.base_features, shared, label=True)
    other_features = spec.base_features if is_union else spec.other_features
    other_schema = _feature_schema("o", other_features, shared, label=is_union)

    base_ids = np.arange(spec.base_rows, dtype=np.int64)
    if is_union:
        other_ids = np.arange(
            spec.base_rows, spec.base_rows + spec.other_rows, dtype=np.int64
        )
    else:
        other_ids = np.concatenate(
            [
                np.arange(spec.overlap_rows, dtype=np.int64),
                np.arange(
                    spec.base_rows,
                    spec.base_rows + spec.other_rows - spec.overlap_rows,
                    dtype=np.int64,
                ),
            ]
        )

    # Entity-level value streams, indexed by entity id (shared across tables).
    n_entities = spec.base_rows + spec.other_rows
    entity_rng = np.random.default_rng(spec.seed * 1_000_003 + 1)
    labels_all = entity_rng.integers(0, 2, size=n_entities)
    shared_all = np.round(entity_rng.standard_normal((n_entities, shared)), 4)
    # Table-local feature draws (not shared between sources).
    rng = np.random.default_rng(spec.seed)

    def build_columns(ids: np.ndarray, schema: Schema):
        columns = {}
        for column in schema:
            if column.name == "id":
                columns[column.name] = ids
            elif column.is_label:
                columns[column.name] = labels_all[ids]
            elif column.name.startswith("shared_"):
                columns[column.name] = shared_all[ids, int(column.name[len("shared_"):])]
            else:
                columns[column.name] = np.round(rng.standard_normal(ids.size), 4)
        return columns

    base = Table("S1", base_schema, build_columns(base_ids, base_schema))
    other = Table("S2", other_schema, build_columns(other_ids, other_schema))

    column_matches = [ColumnMatch("S1", "id", "S2", "id", 1.0)]
    for i in range(shared):
        column_matches.append(ColumnMatch("S1", f"shared_{i}", "S2", f"shared_{i}", 1.0))
    if is_union:
        column_matches.append(ColumnMatch("S1", "label", "S2", "label", 1.0))
        for i in range(spec.base_features - shared):
            column_matches.append(ColumnMatch("S1", f"b_{i}", "S2", f"b_{i}", 1.0))

    if is_union:
        row_matches: List[RowMatch] = []
    else:
        # Overlapping entities are ids 0..overlap_rows-1, sitting at the same
        # position in both tables by construction.
        row_matches = [RowMatch(i, i, 1.0) for i in range(spec.overlap_rows)]

    target_columns = ["label"]
    target_columns += [f"shared_{i}" for i in range(shared)]
    target_columns += [f"b_{i}" for i in range(spec.base_features - shared)]
    if not is_union:
        target_columns += [f"o_{i}" for i in range(other_features - shared)]
    return base, other, column_matches, row_matches, target_columns


def generate_scenario_dataset(spec: ScenarioSpec) -> IntegratedDataset:
    """Generate a scenario and integrate it into a factorized dataset."""
    base, other, column_matches, row_matches, target_columns = generate_scenario_tables(spec)
    return integrate_tables(
        base=base,
        other=other,
        column_matches=column_matches,
        row_matches=row_matches,
        target_columns=target_columns,
        scenario=spec.scenario,
        label_column="label",
    )


# ---------------------------------------------------------------------------------
# Streaming scenario generation (out-of-core)
# ---------------------------------------------------------------------------------
#
# The chunked generator never materializes a table: every cell is a pure
# function of (seed, table, column, entity id / row index) via a vectorized
# splitmix64 hash, so any row block can be produced independently — the
# emitted values do not depend on the chunk size, overlapping entities carry
# identical label/shared values in both sources, and materializing the
# stream (``read_table``) equals consuming it chunk-wise bit for bit.

_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SPLITMIX_MUL1 = np.uint64(0xBF58476D1CE4E5B9)
_SPLITMIX_MUL2 = np.uint64(0x94D049BB133111EB)


def _mix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, vectorized over uint64 (modular arithmetic)."""
    with np.errstate(over="ignore"):
        z = (x + _SPLITMIX_GAMMA).astype(np.uint64)
        z = (z ^ (z >> np.uint64(30))) * _SPLITMIX_MUL1
        z = (z ^ (z >> np.uint64(27))) * _SPLITMIX_MUL2
        return z ^ (z >> np.uint64(31))


def _hash_uniform(indices: np.ndarray, salt: int) -> np.ndarray:
    """Deterministic uniforms in [0, 1) for (index, salt) pairs."""
    with np.errstate(over="ignore"):
        mixed = _mix64(indices.astype(np.uint64) ^ _mix64(np.uint64(salt & 0xFFFFFFFFFFFFFFFF)))
    return (mixed >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)


def _column_salt(seed: int, scope: str, column: str) -> int:
    token = f"{scope}/{column}".encode()
    return (zlib.crc32(token) << 20) ^ (seed * 1_000_003 + 7)


class HashedScenarioStream(TableChunkStream):
    """One scenario source table as a chunk stream of hashed values.

    ``ids`` gives each row's entity id; entity-scoped columns (label,
    shared features) hash the id, table-local feature columns hash the
    absolute row index under a table-specific salt. Every chunk is a pure
    function of ``(index, seed)``, so the stream is randomly accessible
    and the parallel builder can hash chunks on every core at once.
    """

    supports_random_access = True

    def __init__(self, name: str, schema: Schema, ids: np.ndarray, seed: int,
                 chunk_rows: int = DEFAULT_CHUNK_ROWS):
        self.name = name
        self._schema = schema
        self._ids = np.asarray(ids, dtype=np.int64)
        self._seed = int(seed)
        self._chunk_rows = max(1, int(chunk_rows))

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def n_rows(self) -> int:
        return int(self._ids.size)

    @property
    def chunk_rows(self) -> int:
        return self._chunk_rows

    def _column_block(self, column, ids: np.ndarray, start: int) -> np.ndarray:
        if column.name == "id":
            return ids
        if column.is_label:
            return (_hash_uniform(ids, _column_salt(self._seed, "entity", "label")) < 0.5
                    ).astype(np.int64)
        if column.name.startswith("shared_"):
            uniform = _hash_uniform(ids, _column_salt(self._seed, "entity", column.name))
            return np.round(uniform * 2.0 - 1.0, 4)
        rows = np.arange(start, start + ids.size, dtype=np.int64)
        uniform = _hash_uniform(rows, _column_salt(self._seed, self.name, column.name))
        return np.round(uniform * 2.0 - 1.0, 4)

    def chunk_at(self, index: int) -> TableChunk:
        start = index * self._chunk_rows
        if index < 0 or start >= max(self.n_rows, 1):
            raise IndexError(f"chunk index {index} out of range for {self.chunk_count} chunks")
        stop = min(start + self._chunk_rows, self.n_rows)
        ids = self._ids[start:stop]
        data = {}
        valid = {}
        for column in self._schema:
            data[column.name] = self._column_block(column, ids, start)
            valid[column.name] = np.ones(ids.size, dtype=bool)
        return TableChunk(self._schema, data, valid, offset=start)

    def chunks(self) -> Iterator[TableChunk]:
        for index in range(self.chunk_count):
            yield self.chunk_at(index)


def generate_scenario_streams(
    spec: ScenarioSpec, chunk_rows: int = DEFAULT_CHUNK_ROWS
) -> Tuple[
    HashedScenarioStream,
    HashedScenarioStream,
    List[ColumnMatch],
    Tuple[np.ndarray, np.ndarray],
    List[str],
]:
    """The two source tables of a scenario as bounded-memory chunk streams.

    Row structure (entity ids, overlap placement), schemas, column matches
    and target columns mirror :func:`generate_scenario_tables`; values come
    from the hash streams above instead of sequential RNG draws, so a row
    block can be generated without generating its predecessors. Row
    matches are returned as ``(left_rows, right_rows)`` index arrays — the
    builder's vectorized fast path.
    """
    is_union = spec.scenario is ScenarioType.UNION
    shared = spec.base_features if is_union else spec.overlap_columns

    base_schema = _feature_schema("b", spec.base_features, shared, label=True)
    other_features = spec.base_features if is_union else spec.other_features
    other_schema = _feature_schema("o", other_features, shared, label=is_union)

    base_ids = np.arange(spec.base_rows, dtype=np.int64)
    if is_union:
        other_ids = np.arange(
            spec.base_rows, spec.base_rows + spec.other_rows, dtype=np.int64
        )
    else:
        other_ids = np.concatenate(
            [
                np.arange(spec.overlap_rows, dtype=np.int64),
                np.arange(
                    spec.base_rows,
                    spec.base_rows + spec.other_rows - spec.overlap_rows,
                    dtype=np.int64,
                ),
            ]
        )

    base = HashedScenarioStream("S1", base_schema, base_ids, spec.seed, chunk_rows)
    other = HashedScenarioStream("S2", other_schema, other_ids, spec.seed, chunk_rows)

    column_matches = [ColumnMatch("S1", "id", "S2", "id", 1.0)]
    for i in range(shared):
        column_matches.append(ColumnMatch("S1", f"shared_{i}", "S2", f"shared_{i}", 1.0))
    if is_union:
        column_matches.append(ColumnMatch("S1", "label", "S2", "label", 1.0))
        for i in range(spec.base_features - shared):
            column_matches.append(ColumnMatch("S1", f"b_{i}", "S2", f"b_{i}", 1.0))

    if is_union:
        row_matches = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    else:
        overlap = np.arange(spec.overlap_rows, dtype=np.int64)
        row_matches = (overlap, overlap.copy())

    target_columns = ["label"]
    target_columns += [f"shared_{i}" for i in range(shared)]
    target_columns += [f"b_{i}" for i in range(spec.base_features - shared)]
    if not is_union:
        target_columns += [f"o_{i}" for i in range(other_features - shared)]
    return base, other, column_matches, row_matches, target_columns

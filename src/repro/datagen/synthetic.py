"""Synthetic silo-pair generator used by the Table III and Figure 5 sweeps.

The generator builds an :class:`repro.matrices.IntegratedDataset` directly
from numpy arrays (bypassing the relational layer) so that the shape sweep
of the paper's footnote 3 — ``c_S1 = 1``, ``c_S2 = 100``, ``r_S1`` swept
over several orders of magnitude with ``r_S2 = 0.2 · r_S1`` — runs at
laptop scale. The two Table III axes are controlled explicitly:

* ``redundancy_in_target`` — when True, the join is many-to-one (each base
  row references one of the other source's rows, Morpheus' key–foreign-key
  case), so the other source's rows are repeated in the target (tuple
  ratio ≈ r_S1 / r_S2). When False, the integration is a one-to-one inner
  join on the overlapping entities: only ``r_S2`` rows survive into the
  target, so the target is no larger than the sources (the Example IV.1
  situation).
* ``redundancy_in_sources`` — when True, a fraction of the other source's
  columns duplicates base columns, producing redundant cells that the
  redundancy matrices must mask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import MappingError
from repro.matrices.builder import IntegratedDataset, SourceFactor
from repro.matrices.indicator_matrix import IndicatorMatrix
from repro.matrices.mapping_matrix import MappingMatrix
from repro.matrices.redundancy_matrix import RedundancyMatrix
from repro.metadata.mappings import ScenarioType


@dataclass
class SyntheticSiloSpec:
    """Parameters of a synthetic two-silo integration."""

    base_rows: int
    base_columns: int
    other_rows: int
    other_columns: int
    redundancy_in_target: bool = True
    redundancy_in_sources: bool = False
    overlap_column_fraction: float = 0.5
    overlap_row_fraction: float = 1.0
    null_ratio: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_rows <= 0 or self.other_rows <= 0:
            raise MappingError("source row counts must be positive")
        if self.base_columns <= 0 or self.other_columns <= 0:
            raise MappingError("source column counts must be positive")
        if not self.redundancy_in_target and self.other_rows > self.base_rows:
            # One-to-one matching needs at least as many base rows as other rows.
            self.other_rows = self.base_rows


def generate_integrated_pair(spec: SyntheticSiloSpec) -> IntegratedDataset:
    """Generate the factorized two-silo dataset described by ``spec``."""
    rng = np.random.default_rng(spec.seed)
    base_data = rng.standard_normal((spec.base_rows, spec.base_columns))
    other_data = rng.standard_normal((spec.other_rows, spec.other_columns))
    if spec.null_ratio > 0:
        base_data[rng.random(base_data.shape) < spec.null_ratio] = 0.0
        other_data[rng.random(other_data.shape) < spec.null_ratio] = 0.0

    base_columns = [f"b{i}" for i in range(spec.base_columns)]
    other_columns = [f"o{i}" for i in range(spec.other_columns)]

    n_overlap_columns = 0
    if spec.redundancy_in_sources:
        n_overlap_columns = max(
            1, int(round(spec.overlap_column_fraction * min(spec.base_columns, spec.other_columns)))
        )

    # Target schema: all base columns, then the non-overlapping other columns.
    target_columns = list(base_columns) + other_columns[n_overlap_columns:]
    n_target_columns = len(target_columns)

    # Row alignment.
    if spec.redundancy_in_target:
        # Key–foreign-key join: every base row references one other-source row,
        # so the other source's rows are repeated in the target.
        n_target_rows = spec.base_rows
        base_row_map = np.arange(spec.base_rows, dtype=np.int64)
        other_row_map = rng.integers(0, spec.other_rows, size=n_target_rows, dtype=np.int64)
    else:
        # One-to-one inner join on the overlapping entities: only the matched
        # rows survive, so no source row appears more than once in the target.
        # ``overlap_row_fraction`` controls how many of the smaller source's
        # entities actually overlap (1.0 = all of them).
        n_target_rows = max(1, int(round(spec.overlap_row_fraction * spec.other_rows)))
        base_row_map = np.arange(n_target_rows, dtype=np.int64)
        other_row_map = np.arange(n_target_rows, dtype=np.int64)

    base_mapping = MappingMatrix(
        "S1", target_columns, base_columns, {c: c for c in base_columns}
    )
    other_correspondences = {}
    for j, column in enumerate(other_columns):
        if j < n_overlap_columns:
            other_correspondences[column] = base_columns[j]
        else:
            other_correspondences[column] = column
    other_mapping = MappingMatrix("S2", target_columns, other_columns, other_correspondences)

    base_indicator = IndicatorMatrix("S1", n_target_rows, spec.base_rows, base_row_map)
    other_indicator = IndicatorMatrix("S2", n_target_rows, spec.other_rows, other_row_map)

    base_redundancy = RedundancyMatrix.all_ones("S1", n_target_rows, n_target_columns)
    other_mask = np.ones((n_target_rows, n_target_columns))
    if n_overlap_columns:
        overlapping_rows = other_row_map >= 0
        overlap_target_indices = [target_columns.index(base_columns[j]) for j in range(n_overlap_columns)]
        other_mask[np.ix_(overlapping_rows, overlap_target_indices)] = 0.0
    other_redundancy = RedundancyMatrix("S2", other_mask)

    factors = [
        SourceFactor("S1", base_data, base_columns, base_mapping, base_indicator, base_redundancy),
        SourceFactor("S2", other_data, other_columns, other_mapping, other_indicator, other_redundancy),
    ]
    scenario = (
        ScenarioType.INNER_JOIN if spec.redundancy_in_target else ScenarioType.LEFT_JOIN
    )
    return IntegratedDataset(
        target_columns=target_columns,
        n_target_rows=n_target_rows,
        factors=factors,
        scenario=scenario,
        name="T_synthetic",
    )


def generate_table3_grid(
    base_row_sweep: List[int],
    base_columns: int = 1,
    other_columns: int = 100,
    other_row_fraction: float = 0.2,
    seeds_per_point: int = 1,
) -> List[SyntheticSiloSpec]:
    """The scenario grid of the paper's footnote 3 for one Table III cell.

    ``c_S1 = base_columns (1)``, ``c_S2 = other_columns (100)``,
    ``r_S1`` swept over ``base_row_sweep`` and ``r_S2 = 0.2 · r_S1``.
    The redundancy flags are filled in by the caller per Table III cell.
    """
    specs: List[SyntheticSiloSpec] = []
    for base_rows in base_row_sweep:
        other_rows = max(1, int(round(other_row_fraction * base_rows)))
        for seed in range(seeds_per_point):
            specs.append(
                SyntheticSiloSpec(
                    base_rows=base_rows,
                    base_columns=base_columns,
                    other_rows=other_rows,
                    other_columns=other_columns,
                    seed=seed,
                )
            )
    return specs

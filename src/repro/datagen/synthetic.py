"""Synthetic silo-pair generator used by the Table III and Figure 5 sweeps.

The generator builds an :class:`repro.matrices.IntegratedDataset` directly
from numpy arrays (bypassing the relational layer) so that the shape sweep
of the paper's footnote 3 — ``c_S1 = 1``, ``c_S2 = 100``, ``r_S1`` swept
over several orders of magnitude with ``r_S2 = 0.2 · r_S1`` — runs at
laptop scale. The two Table III axes are controlled explicitly:

* ``redundancy_in_target`` — when True, the join is many-to-one (each base
  row references one of the other source's rows, Morpheus' key–foreign-key
  case), so the other source's rows are repeated in the target (tuple
  ratio ≈ r_S1 / r_S2). When False, the integration is a one-to-one inner
  join on the overlapping entities: only ``r_S2`` rows survive into the
  target, so the target is no larger than the sources (the Example IV.1
  situation).
* ``redundancy_in_sources`` — when True, a fraction of the other source's
  columns duplicates base columns, producing redundant cells that the
  redundancy matrices must mask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
from scipy import sparse

from repro.backends import BackendSpec, resolve_backend
from repro.exceptions import MappingError
from repro.matrices.builder import IntegratedDataset, SourceFactor
from repro.matrices.indicator_matrix import IndicatorMatrix
from repro.matrices.mapping_matrix import MappingMatrix
from repro.matrices.redundancy_matrix import RedundancyMatrix
from repro.metadata.mappings import ScenarioType


@dataclass
class SyntheticSiloSpec:
    """Parameters of a synthetic two-silo integration."""

    base_rows: int
    base_columns: int
    other_rows: int
    other_columns: int
    redundancy_in_target: bool = True
    redundancy_in_sources: bool = False
    overlap_column_fraction: float = 0.5
    overlap_row_fraction: float = 1.0
    null_ratio: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_rows <= 0 or self.other_rows <= 0:
            raise MappingError("source row counts must be positive")
        if self.base_columns <= 0 or self.other_columns <= 0:
            raise MappingError("source column counts must be positive")
        if not self.redundancy_in_target and self.other_rows > self.base_rows:
            # One-to-one matching needs at least as many base rows as other rows.
            self.other_rows = self.base_rows


def generate_integrated_pair(
    spec: SyntheticSiloSpec, backend: BackendSpec = None
) -> IntegratedDataset:
    """Generate the factorized two-silo dataset described by ``spec``."""
    rng = np.random.default_rng(spec.seed)
    base_data = rng.standard_normal((spec.base_rows, spec.base_columns))
    other_data = rng.standard_normal((spec.other_rows, spec.other_columns))
    if spec.null_ratio > 0:
        base_data[rng.random(base_data.shape) < spec.null_ratio] = 0.0
        other_data[rng.random(other_data.shape) < spec.null_ratio] = 0.0

    base_columns = [f"b{i}" for i in range(spec.base_columns)]
    other_columns = [f"o{i}" for i in range(spec.other_columns)]

    n_overlap_columns = 0
    if spec.redundancy_in_sources:
        n_overlap_columns = max(
            1, int(round(spec.overlap_column_fraction * min(spec.base_columns, spec.other_columns)))
        )

    # Target schema: all base columns, then the non-overlapping other columns.
    target_columns = list(base_columns) + other_columns[n_overlap_columns:]
    n_target_columns = len(target_columns)

    # Row alignment.
    if spec.redundancy_in_target:
        # Key–foreign-key join: every base row references one other-source row,
        # so the other source's rows are repeated in the target.
        n_target_rows = spec.base_rows
        base_row_map = np.arange(spec.base_rows, dtype=np.int64)
        other_row_map = rng.integers(0, spec.other_rows, size=n_target_rows, dtype=np.int64)
    else:
        # One-to-one inner join on the overlapping entities: only the matched
        # rows survive, so no source row appears more than once in the target.
        # ``overlap_row_fraction`` controls how many of the smaller source's
        # entities actually overlap (1.0 = all of them).
        n_target_rows = max(1, int(round(spec.overlap_row_fraction * spec.other_rows)))
        base_row_map = np.arange(n_target_rows, dtype=np.int64)
        other_row_map = np.arange(n_target_rows, dtype=np.int64)

    base_mapping = MappingMatrix(
        "S1", target_columns, base_columns, {c: c for c in base_columns}
    )
    other_correspondences = {}
    for j, column in enumerate(other_columns):
        if j < n_overlap_columns:
            other_correspondences[column] = base_columns[j]
        else:
            other_correspondences[column] = column
    other_mapping = MappingMatrix("S2", target_columns, other_columns, other_correspondences)

    base_indicator = IndicatorMatrix("S1", n_target_rows, spec.base_rows, base_row_map)
    other_indicator = IndicatorMatrix("S2", n_target_rows, spec.other_rows, other_row_map)

    base_redundancy = RedundancyMatrix.all_ones("S1", n_target_rows, n_target_columns)
    if n_overlap_columns:
        # The redundant cells form an overlap rectangle (rows matched to the
        # other source × columns the base already provides); build the sparse
        # complement straight from the index sets — no dense r_T × c_T mask.
        overlapping_rows = np.nonzero(other_row_map >= 0)[0]
        overlap_target_indices = [
            target_columns.index(base_columns[j]) for j in range(n_overlap_columns)
        ]
        other_redundancy = RedundancyMatrix.from_rectangle(
            "S2", (n_target_rows, n_target_columns),
            overlapping_rows, overlap_target_indices,
        )
    else:
        other_redundancy = RedundancyMatrix.all_ones("S2", n_target_rows, n_target_columns)

    resolved_backend = resolve_backend(backend) if backend is not None else None
    factors = [
        SourceFactor(
            "S1", base_data, base_columns, base_mapping, base_indicator, base_redundancy,
            backend=resolved_backend,
        ),
        SourceFactor(
            "S2", other_data, other_columns, other_mapping, other_indicator, other_redundancy,
            backend=resolved_backend,
        ),
    ]
    scenario = (
        ScenarioType.INNER_JOIN if spec.redundancy_in_target else ScenarioType.LEFT_JOIN
    )
    return IntegratedDataset(
        target_columns=target_columns,
        n_target_rows=n_target_rows,
        factors=factors,
        scenario=scenario,
        name="T_synthetic",
        backend=resolved_backend,
    )


@dataclass
class OneHotSpec:
    """Parameters of a high-sparsity one-hot silo pair.

    The base silo is a dense entity table (``n_rows × base_columns``); the
    other silo is a dimension table whose features are the one-hot encoding
    of a categorical attribute with ``n_categories`` levels — density
    exactly ``1 / n_categories``, the regime where the sparse backend wins.
    The join is key–foreign-key (every base row references one dimension
    row), matching the Morpheus star-schema case with redundancy in the
    target but none in the sources.
    """

    n_rows: int
    n_categories: int
    base_columns: int = 5
    n_entities: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_rows <= 0 or self.base_columns <= 0:
            raise MappingError("one-hot spec needs positive base dimensions")
        if self.n_categories < 2:
            raise MappingError("one-hot encoding needs at least two categories")
        if self.n_entities is None:
            self.n_entities = self.n_categories
        if self.n_entities <= 0:
            raise MappingError("one-hot spec needs at least one entity")

    @property
    def one_hot_density(self) -> float:
        """Density of the one-hot source (``1 / n_categories``)."""
        return 1.0 / self.n_categories

    @property
    def sparsity(self) -> float:
        """Fraction of zero cells in the one-hot source."""
        return 1.0 - self.one_hot_density


def generate_one_hot_pair(spec: OneHotSpec, backend: BackendSpec = None) -> IntegratedDataset:
    """Generate a dense-base × one-hot-dimension integrated dataset.

    ``backend`` (name, instance or ``None``) is attached to the dataset and
    its factors so the factorized operators execute on it; ``"auto"`` will
    keep the base dense and store the one-hot factor as CSR whenever
    ``1 / n_categories`` falls below the shared density threshold.
    """
    rng = np.random.default_rng(spec.seed)
    base_data = rng.standard_normal((spec.n_rows, spec.base_columns))
    categories = rng.integers(0, spec.n_categories, size=spec.n_entities)
    # Built directly as CSR (nnz = n_entities): a 10k-category dimension
    # table never materializes its dense n_entities × n_categories form
    # unless a dense code path explicitly asks for it.
    one_hot = sparse.csr_matrix(
        (
            np.ones(spec.n_entities),
            (np.arange(spec.n_entities), categories),
        ),
        shape=(spec.n_entities, spec.n_categories),
    )

    base_columns = [f"x{i}" for i in range(spec.base_columns)]
    other_columns = [f"cat_{j}" for j in range(spec.n_categories)]
    target_columns = base_columns + other_columns

    base_mapping = MappingMatrix("S1", target_columns, base_columns, {c: c for c in base_columns})
    other_mapping = MappingMatrix(
        "S2", target_columns, other_columns, {c: c for c in other_columns}
    )
    base_indicator = IndicatorMatrix(
        "S1", spec.n_rows, spec.n_rows, np.arange(spec.n_rows, dtype=np.int64)
    )
    other_indicator = IndicatorMatrix(
        "S2", spec.n_rows, spec.n_entities,
        rng.integers(0, spec.n_entities, size=spec.n_rows, dtype=np.int64),
    )
    base_redundancy = RedundancyMatrix.all_ones("S1", spec.n_rows, len(target_columns))
    other_redundancy = RedundancyMatrix.all_ones("S2", spec.n_rows, len(target_columns))

    resolved_backend = resolve_backend(backend) if backend is not None else None
    factors = [
        SourceFactor(
            "S1", base_data, base_columns, base_mapping, base_indicator, base_redundancy,
            backend=resolved_backend,
        ),
        SourceFactor(
            "S2", one_hot, other_columns, other_mapping, other_indicator, other_redundancy,
            backend=resolved_backend,
        ),
    ]
    return IntegratedDataset(
        target_columns=target_columns,
        n_target_rows=spec.n_rows,
        factors=factors,
        scenario=ScenarioType.INNER_JOIN,
        name="T_one_hot",
        backend=resolved_backend,
    )


def generate_table3_grid(
    base_row_sweep: List[int],
    base_columns: int = 1,
    other_columns: int = 100,
    other_row_fraction: float = 0.2,
    seeds_per_point: int = 1,
) -> List[SyntheticSiloSpec]:
    """The scenario grid of the paper's footnote 3 for one Table III cell.

    ``c_S1 = base_columns (1)``, ``c_S2 = other_columns (100)``,
    ``r_S1`` swept over ``base_row_sweep`` and ``r_S2 = 0.2 · r_S1``.
    The redundancy flags are filled in by the caller per Table III cell.
    """
    specs: List[SyntheticSiloSpec] = []
    for base_rows in base_row_sweep:
        other_rows = max(1, int(round(other_row_fraction * base_rows)))
        for seed in range(seeds_per_point):
            specs.append(
                SyntheticSiloSpec(
                    base_rows=base_rows,
                    base_columns=base_columns,
                    other_rows=other_rows,
                    other_columns=other_columns,
                    seed=seed,
                )
            )
    return specs

"""Virtual (non-materialized) aggregate queries over an integrated dataset.

Paper §III-C motivates the redundancy matrix with a query: *"how many
patients aged above 30 are in S1 and S2?"* — the correct answer is three,
not four, because Jane's overlapping row must be counted once. This module
answers such aggregate queries directly over the factorized representation
(the virtual-data-integration path of the paper's footnote 2): predicates
and aggregates are evaluated column-by-column on the reconstructed target
columns, redundancy is already resolved by the redundancy matrices, and
cells no source covers are treated as NULL rather than zero.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import FactorizationError
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.matrices.builder import IntegratedDataset

_OPERATORS: Dict[str, Callable[[np.ndarray, float], np.ndarray]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
}

Predicate = Tuple[str, str, float]


@dataclass
class QueryResult:
    """Result of a virtual aggregate query."""

    value: float
    n_matching_rows: int
    columns_used: List[str]


class VirtualQueryEngine:
    """Answer aggregate queries over the virtual target table.

    The engine never materializes the full target: it reconstructs only the
    columns referenced by the query (each reconstruction is one factorized
    LMM with a selector vector) together with their coverage masks, so the
    deduplication guaranteed by the redundancy matrices carries over to the
    query answers.
    """

    def __init__(self, dataset: Union[IntegratedDataset, AmalurMatrix]):
        if isinstance(dataset, AmalurMatrix):
            self.matrix = dataset
            self.dataset = dataset.dataset
        else:
            self.dataset = dataset
            self.matrix = AmalurMatrix(dataset)

    # -- column reconstruction ---------------------------------------------------------
    def _column_index(self, column: str) -> int:
        try:
            return self.dataset.target_columns.index(column)
        except ValueError as exc:
            raise FactorizationError(f"no target column named {column!r}") from exc

    def column_values(self, column: str) -> np.ndarray:
        """The reconstructed values of one target column (NULLs as 0)."""
        self._column_index(column)
        return self.matrix.column(column)

    def column_coverage(self, column: str) -> np.ndarray:
        """Boolean mask of target rows where some source provides ``column``."""
        index = self._column_index(column)
        covered = np.zeros(self.dataset.n_target_rows, dtype=bool)
        for factor in self.dataset.factors:
            if factor.mapping.compressed[index] < 0:
                continue
            covered |= factor.indicator.compressed >= 0
        return covered

    # -- predicates ---------------------------------------------------------------------
    def _selection_mask(self, where: Optional[Sequence[Predicate]]) -> np.ndarray:
        mask = np.ones(self.dataset.n_target_rows, dtype=bool)
        if not where:
            return mask
        for column, op_name, value in where:
            if op_name not in _OPERATORS:
                raise FactorizationError(
                    f"unsupported operator {op_name!r}; use one of {sorted(_OPERATORS)}"
                )
            values = self.column_values(column)
            covered = self.column_coverage(column)
            mask &= covered & _OPERATORS[op_name](values, float(value))
        return mask

    # -- aggregates ---------------------------------------------------------------------
    def count(self, where: Optional[Sequence[Predicate]] = None) -> QueryResult:
        """COUNT(*) over the virtual target, with optional predicates.

        Overlapping entities are counted once — the §III-C example.
        """
        mask = self._selection_mask(where)
        columns = [column for column, _, _ in (where or [])]
        return QueryResult(float(mask.sum()), int(mask.sum()), columns)

    def _aggregate(
        self,
        column: str,
        where: Optional[Sequence[Predicate]],
        reducer: Callable[[np.ndarray], float],
    ) -> QueryResult:
        mask = self._selection_mask(where) & self.column_coverage(column)
        values = self.column_values(column)[mask]
        if values.size == 0:
            raise FactorizationError(
                f"aggregate over {column!r} has no qualifying rows"
            )
        used = [column] + [c for c, _, _ in (where or [])]
        return QueryResult(float(reducer(values)), int(mask.sum()), used)

    def sum(self, column: str, where: Optional[Sequence[Predicate]] = None) -> QueryResult:
        return self._aggregate(column, where, np.sum)

    def avg(self, column: str, where: Optional[Sequence[Predicate]] = None) -> QueryResult:
        return self._aggregate(column, where, np.mean)

    def min(self, column: str, where: Optional[Sequence[Predicate]] = None) -> QueryResult:
        return self._aggregate(column, where, np.min)

    def max(self, column: str, where: Optional[Sequence[Predicate]] = None) -> QueryResult:
        return self._aggregate(column, where, np.max)

    def group_by_count(
        self, column: str, where: Optional[Sequence[Predicate]] = None
    ) -> Dict[float, int]:
        """COUNT(*) grouped by the (discrete) values of one target column."""
        mask = self._selection_mask(where) & self.column_coverage(column)
        values = self.column_values(column)[mask]
        groups: Dict[float, int] = {}
        for value in values:
            groups[float(value)] = groups.get(float(value), 0) + 1
        return groups

"""Morpheus-style factorized linear algebra (Chen et al., PVLDB'17).

This is the baseline the paper compares against (reference [27]): linear
algebra over *normalized* data produced by a key–foreign-key inner join in
a single database. The normalized matrix is ``T = [S, K_1 R_1, ..., K_q R_q]``
where ``S`` is the entity (fact) table's feature block, ``R_k`` the
attribute (dimension) tables, and ``K_k`` the indicator matrices mapping
each entity row to its dimension row. Columns of the sources are disjoint
in the target and there is no redundancy handling — exactly the Area I
cases of Figure 5.

The original LMM rewrite (paper Eq. 1) is::

    T X → S X[0:d_S, ] + Σ_k K_k (R_k X[offset_k : offset_k + d_k, ])
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.backends import BackendSpec, resolve_backend
from repro.backends.base import as_float64
from repro.exceptions import FactorizationError
from repro.factorized.ops_counter import FlopCounter


class MorpheusMatrix:
    """Normalized matrix for a star-schema inner join (the Morpheus baseline)."""

    def __init__(
        self,
        entity_block: Optional[np.ndarray],
        attribute_tables: Sequence[np.ndarray],
        indicators: Sequence[np.ndarray],
        counter: Optional[FlopCounter] = None,
        backend: BackendSpec = None,
    ):
        """Create a normalized matrix.

        Parameters
        ----------
        entity_block:
            The ``n_s × d_s`` feature block of the entity table (may be
            ``None``/empty when the entity table only carries keys).
        attribute_tables:
            Dimension-table feature blocks ``R_k`` of shape ``n_k × d_k``;
            dense arrays or SciPy sparse matrices.
        indicators:
            For each dimension table, either a dense binary ``n_s × n_k``
            matrix or a 1-D integer array of length ``n_s`` giving, per
            entity row, the matching dimension row.
        backend:
            Compute backend (``repro.backends``) storing and multiplying
            the blocks; ``None`` keeps the dense seed behavior.
        """
        if len(attribute_tables) != len(indicators):
            raise FactorizationError("need one indicator per attribute table")
        if entity_block is None and not attribute_tables:
            raise FactorizationError("normalized matrix needs at least one block")

        self.counter = counter or FlopCounter()
        self.backend = resolve_backend(backend)
        self._attribute_tables = [self.backend.prepare(r) for r in attribute_tables]
        self._indicator_rows: List[np.ndarray] = []
        n_rows = None
        for table, indicator in zip(self._attribute_tables, indicators):
            indicator = np.asarray(indicator)
            if indicator.ndim == 2:
                if (indicator.sum(axis=1) != 1).any():
                    raise FactorizationError(
                        "Morpheus indicators must map every entity row to exactly one "
                        "dimension row (inner join, no redundancy)"
                    )
                indicator = indicator.argmax(axis=1)
            indicator = indicator.astype(int)
            if indicator.min(initial=0) < 0 or indicator.max(initial=0) >= table.shape[0]:
                raise FactorizationError("indicator refers to a dimension row out of range")
            if n_rows is None:
                n_rows = indicator.shape[0]
            elif indicator.shape[0] != n_rows:
                raise FactorizationError("all indicators must have the same number of rows")
            self._indicator_rows.append(indicator)

        if entity_block is None:
            entity_size = 0
        elif sparse.issparse(entity_block):
            entity_size = entity_block.shape[0] * entity_block.shape[1]
        else:
            entity_size = np.asarray(entity_block).size
        if entity_size:
            self._entity_block = self.backend.prepare(entity_block)
            if n_rows is None:
                n_rows = self._entity_block.shape[0]
            elif self._entity_block.shape[0] != n_rows:
                raise FactorizationError("entity block row count does not match indicators")
        else:
            self._entity_block = None
        if n_rows is None:
            raise FactorizationError("cannot determine the number of target rows")
        self._n_rows = int(n_rows)

    # -- shapes ---------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        d_s = self._entity_block.shape[1] if self._entity_block is not None else 0
        return d_s + sum(r.shape[1] for r in self._attribute_tables)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_rows, self.n_columns)

    def _column_offsets(self) -> List[Tuple[int, int]]:
        """(start, end) column offsets of each block in the target."""
        offsets = []
        start = self._entity_block.shape[1] if self._entity_block is not None else 0
        if self._entity_block is not None:
            offsets.append((0, start))
        for table in self._attribute_tables:
            offsets.append((start, start + table.shape[1]))
            start += table.shape[1]
        return offsets

    # -- operators --------------------------------------------------------------------
    def lmm(self, x: np.ndarray) -> np.ndarray:
        """``T @ X`` via the original Morpheus rewrite (paper Eq. 1)."""
        x = as_float64(x)
        if x.ndim == 1:
            x = x[:, None]
        if x.shape[0] != self.n_columns:
            raise FactorizationError(
                f"LMM operand has {x.shape[0]} rows, target has {self.n_columns} columns"
            )
        result = np.zeros((self.n_rows, x.shape[1]))
        offsets = iter(self._column_offsets())
        if self._entity_block is not None:
            start, end = next(offsets)
            result += self.backend.matmul(self._entity_block, x[start:end])
            self.counter.add(
                "lmm.entity", self.backend.matmul_flops(self._entity_block, x.shape[1])
            )
        for table, indicator in zip(self._attribute_tables, self._indicator_rows):
            start, end = next(offsets)
            local = self.backend.matmul(table, x[start:end])
            self.counter.add("lmm.attribute", self.backend.matmul_flops(table, x.shape[1]))
            result += local[indicator]
            self.counter.add("lmm.lift", float(self.n_rows) * x.shape[1])
        return result

    def transpose_lmm(self, x: np.ndarray) -> np.ndarray:
        """``Tᵀ @ X`` via the Morpheus rewrite."""
        x = as_float64(x)
        if x.ndim == 1:
            x = x[:, None]
        if x.shape[0] != self.n_rows:
            raise FactorizationError(
                f"Tᵀ X operand has {x.shape[0]} rows, target has {self.n_rows} rows"
            )
        result = np.zeros((self.n_columns, x.shape[1]))
        offsets = iter(self._column_offsets())
        if self._entity_block is not None:
            start, end = next(offsets)
            result[start:end] = self.backend.transpose_matmul(self._entity_block, x)
            self.counter.add(
                "tlmm.entity", self.backend.matmul_flops(self._entity_block, x.shape[1])
            )
        for table, indicator in zip(self._attribute_tables, self._indicator_rows):
            start, end = next(offsets)
            grouped = np.zeros((table.shape[0], x.shape[1]))
            np.add.at(grouped, indicator, x)
            self.counter.add("tlmm.group", float(self.n_rows) * x.shape[1])
            result[start:end] = self.backend.transpose_matmul(table, grouped)
            self.counter.add(
                "tlmm.attribute", self.backend.matmul_flops(table, x.shape[1])
            )
        return result

    def rmm(self, x: np.ndarray) -> np.ndarray:
        """``X @ T`` via the Morpheus rewrite."""
        x = as_float64(x)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[1] != self.n_rows:
            raise FactorizationError(
                f"RMM operand has {x.shape[1]} columns, target has {self.n_rows} rows"
            )
        return self.transpose_lmm(x.T).T

    def crossprod(self) -> np.ndarray:
        """``Tᵀ T`` via per-block Gram computations."""
        blocks: List[np.ndarray] = []
        if self._entity_block is not None:
            blocks.append(self._entity_block)
        for table, indicator in zip(self._attribute_tables, self._indicator_rows):
            blocks.append(self.backend.take_rows(table, indicator))
        gram = np.zeros((self.n_columns, self.n_columns))
        offsets = self._column_offsets()
        for (start_a, end_a), block_a in zip(offsets, blocks):
            for (start_b, end_b), block_b in zip(offsets, blocks):
                if start_b < start_a:
                    continue
                product = self.backend.gram_pair(block_a, block_b)
                self.counter.add(
                    "crossprod", self.backend.gram_pair_flops(block_a, block_b)
                )
                gram[start_a:end_a, start_b:end_b] = product
                if start_a != start_b:
                    gram[start_b:end_b, start_a:end_a] = product.T
        return gram

    def row_sums(self) -> np.ndarray:
        return self.lmm(np.ones((self.n_columns, 1)))[:, 0]

    def column_sums(self) -> np.ndarray:
        return self.transpose_lmm(np.ones((self.n_rows, 1)))[:, 0]

    def total_sum(self) -> float:
        return float(self.column_sums().sum())

    # -- materialization ---------------------------------------------------------------
    def materialize(self) -> np.ndarray:
        """Materialize the joined target table (always dense)."""
        blocks = []
        if self._entity_block is not None:
            blocks.append(self.backend.to_dense(self._entity_block))
        for table, indicator in zip(self._attribute_tables, self._indicator_rows):
            blocks.append(self.backend.to_dense(self.backend.take_rows(table, indicator)))
        self.counter.add("materialize", float(self.n_rows) * self.n_columns)
        return np.hstack(blocks)

    def __repr__(self) -> str:
        return (
            f"MorpheusMatrix(shape={self.shape}, dims={len(self._attribute_tables)}, "
            f"backend={self.backend.name!r})"
        )

"""Factorized linear algebra over silos (paper §IV).

:class:`AmalurMatrix` executes linear-algebra operators directly over the
source factors ``(D_k, M_k, I_k, R_k)`` of an
:class:`repro.matrices.IntegratedDataset`, never materializing the target
table, using the rewrite of Eq. (2):

    ``T X → Σ_k ((I_k D_k M_kᵀ) ∘ R_k) X``

:class:`MorpheusMatrix` is the baseline of Chen et al. (PVLDB'17) — the
state of the art the paper compares against — which handles the
star-schema/inner-join case with disjoint source columns and no
redundancy.
"""

from repro.factorized.ops_counter import FlopCounter
from repro.factorized.operator_plan import OperatorPlan
from repro.factorized.normalized_matrix import AmalurMatrix
from repro.factorized.morpheus import MorpheusMatrix
from repro.factorized.queries import VirtualQueryEngine, QueryResult

__all__ = [
    "FlopCounter",
    "OperatorPlan",
    "AmalurMatrix",
    "MorpheusMatrix",
    "VirtualQueryEngine",
    "QueryResult",
]

"""Compiled per-factor operator plans for the §IV-A rewrites.

An :class:`OperatorPlan` is built once per source factor when an
:class:`~repro.factorized.normalized_matrix.AmalurMatrix` is constructed.
It precomputes every index array the LMM / RMM / transpose-LMM /
cross-product hot loops need from the compressed mapping (``CM_k``) and
indicator (``CI_k``) vectors, so the per-iteration paths of gradient
descent run as pure NumPy fancy indexing and CSR kernels with **zero
Python-level per-element loops**.

What is precomputed
-------------------
* ``target_cols`` / ``source_cols`` — mapped target-column indices and the
  corresponding source-column indices (from ``CM_k``). They drive the
  operand-row gather of LMM (``M_kᵀ X``) and the column/row scatter of
  RMM / transpose-LMM (``M_k`` on the result side). Both index lists are
  duplicate-free by construction (a mapping matrix has at most one ``1``
  per row and per column), so scatters are single fancy-indexed ``+=``.
* ``target_rows`` / ``source_rows`` — mapped target-row indices and the
  corresponding source-row indices (from ``CI_k``). They drive the
  indicator lift of LMM (``I_k ·``) and the row projection of RMM /
  transpose-LMM (``I_kᵀ ·``).
* ``projector`` — only for many-to-one joins (one source row feeding
  several target rows): ``I_kᵀ`` as a CSR matrix, so the row accumulation
  runs as one compiled sparse-times-dense matmul. 1:1 joins skip it and
  use plain fancy indexing.
* the factor's **effective contribution** for ``crossprod`` — the
  deduplicated block of covered rows × mapped columns in backend storage
  form (CSR stays CSR) — cached after the first Gram computation.
* the sparse **correction matrix** holding the values of the factor's
  redundant cells, cached after first use by any operator.

When plans are invalidated
--------------------------
A plan is immutable and tied to one ``(factor, storage, backend)``
triple. Every operation that yields a different factorization —
``AmalurMatrix.with_backend``, ``select_columns``, ``scale`` — returns a
*new* ``AmalurMatrix``, which builds fresh plans (and a fresh Gram cache)
for its own factors; existing plans are never mutated, so stale index
arrays cannot leak across views.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro import telemetry as _telemetry
from repro.backends import Backend
from repro.backends.base import Storage
from repro.matrices.builder import SourceFactor
from repro.reliability import faults as _faults
from repro.reliability.retry import SPILL_RETRY


class GramCache:
    """Single-slot cache of a view's Gram matrix with hit/miss/evict stats.

    :meth:`repro.factorized.AmalurMatrix.crossprod` stores ``TᵀT`` here;
    the factors of a view are immutable, so the cache only ever needs
    explicit invalidation (serving-layer refreshes, tests). Hits, misses
    and evictions are counted locally and — when telemetry is enabled —
    mirrored into the session counters ``gram_cache.hit`` / ``.miss`` /
    ``.evict``.

    All mutations happen under one lock, so concurrent serving requests
    (or parallel-engine workers) racing on a cold cache compute the Gram
    once and count exactly one miss.
    """

    __slots__ = ("value", "hits", "misses", "evictions", "_lock")

    def __init__(self):
        self.value: Optional[np.ndarray] = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()

    def get_or_compute(self, compute) -> np.ndarray:
        with self._lock:
            if self.value is not None:
                self.hits += 1
                if _telemetry.ENABLED:
                    _telemetry.counter_add("gram_cache.hit")
                return self.value
            self.misses += 1
            if _telemetry.ENABLED:
                _telemetry.counter_add("gram_cache.miss")
            self.value = compute()
            return self.value

    def invalidate(self) -> None:
        """Drop the cached Gram (the next ``get_or_compute`` recomputes)."""
        with self._lock:
            if self.value is not None:
                self.evictions += 1
                if _telemetry.ENABLED:
                    _telemetry.counter_add("gram_cache.evict")
            self.value = None

    def seed(self, value: np.ndarray) -> None:
        """Install an externally maintained Gram (read-only) without
        counting a miss — the serving layer's incrementally updated
        ``TᵀT`` lands here so the first ``crossprod`` after a delta batch
        is a hit instead of a full recompute."""
        value = np.array(value, dtype=np.float64)  # own copy: caller keeps mutating theirs
        value.setflags(write=False)
        with self._lock:
            self.value = value
        if _telemetry.ENABLED:
            _telemetry.counter_add("gram_cache.seed")

    @property
    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "evictions": self.evictions}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cached" if self.value is not None else "empty"
        return f"GramCache({state}, hits={self.hits}, misses={self.misses})"


class OperatorPlan:
    """Precomputed gather/scatter structure of one source factor.

    See the module docstring for what is precomputed and when plans are
    rebuilt. All arrays exposed here are read-only views shared with the
    factor's mapping/indicator caches — cheap to hold, safe to index with.
    """

    __slots__ = (
        "factor",
        "storage",
        "backend",
        "n_source_columns",
        "n_source_rows",
        "target_cols",
        "source_cols",
        "target_rows",
        "source_rows",
        "rows_injective",
        "rows_fully_mapped",
        "projector",
        "n_mapped_rows",
        "n_mapped_cols",
        "has_correction",
        "_correction",
        "_effective",
    )

    def __init__(self, factor: SourceFactor, storage: Storage, backend: Backend):
        self.factor = factor
        self.storage = storage
        self.backend = backend
        mapping = factor.mapping
        indicator = factor.indicator
        self.n_source_columns = mapping.n_source_columns
        self.n_source_rows = indicator.n_source_rows
        # Column maps (CM_k): duplicate-free on both sides.
        self.target_cols = mapping.mapped_target_indices()
        self.source_cols = mapping.mapped_source_indices()
        # Row maps (CI_k): target side duplicate-free, source side only for
        # 1:1 joins.
        self.target_rows = indicator.mapped_target_rows()
        self.source_rows = indicator.mapped_source_rows()
        self.rows_injective = indicator.is_injective
        self.n_mapped_rows = int(self.target_rows.size)
        self.n_mapped_cols = int(self.target_cols.size)
        # Every target row covered ⇒ the lift is a pure gather followed by
        # a contiguous add, which beats a fancy-indexed scatter by a wide
        # margin at millions of rows.
        self.rows_fully_mapped = self.n_mapped_rows == indicator.n_target_rows
        # I_kᵀ as CSR for the many-to-one accumulation; 1:1 joins scatter
        # with fancy indexing instead (cheaper than a sparse matmul).
        self.projector: Optional[sparse.csr_matrix] = None
        if not self.rows_injective:
            self.projector = sparse.csr_matrix(
                (
                    np.ones(self.n_mapped_rows, dtype=np.float64),
                    (self.source_rows, self.target_rows),
                ),
                shape=(self.n_source_rows, indicator.n_target_rows),
            )
        self.has_correction = not factor.redundancy.is_trivial
        self._correction: Optional[sparse.csr_matrix] = None
        self._effective = None

    # -- mapping-side kernels (columns) ----------------------------------------------------
    def gather_operand_rows(self, x: np.ndarray) -> np.ndarray:
        """``M_kᵀ X`` — gather operand rows onto source columns (c_Sk × m)."""
        gathered = np.zeros((self.n_source_columns, x.shape[1]))
        gathered[self.source_cols] = x[self.target_cols]
        return gathered

    def scatter_add_rows(self, out: np.ndarray, local: np.ndarray) -> None:
        """``out += M_k @ local`` — scatter source-column rows of ``local``
        onto the mapped target-column rows of ``out`` (transpose-LMM)."""
        self.backend.scatter_add(out, self.target_cols, local[self.source_cols])

    def scatter_add_columns(self, out: np.ndarray, local: np.ndarray) -> None:
        """``out += local @ M_kᵀ`` — scatter source columns of ``local`` onto
        the mapped target columns of ``out`` (RMM)."""
        out[:, self.target_cols] += local[:, self.source_cols]

    # -- indicator-side kernels (rows) -----------------------------------------------------
    def lift_add(self, out: np.ndarray, local: np.ndarray) -> None:
        """``out += I_k @ local`` — lift source rows onto target rows (LMM)."""
        if self.rows_fully_mapped:
            out += local[self.source_rows]
        else:
            self.backend.scatter_add(out, self.target_rows, local[self.source_rows])

    def project_rows(self, x: np.ndarray) -> np.ndarray:
        """``I_kᵀ X`` — accumulate target rows onto source rows (r_Sk × m)."""
        if self.rows_injective:
            out = np.zeros((self.n_source_rows, x.shape[1]))
            out[self.source_rows] = x[self.target_rows]
            return out
        return self.projector @ x

    def invalidate(self) -> None:
        """Drop the lazily cached correction/effective-contribution
        structure after the underlying factor's data changed in place
        (serving-layer delta updates); the index arrays themselves are
        still valid as long as the factor's shape and maps are unchanged."""
        self._correction = None
        self._effective = None
        if _telemetry.ENABLED:
            _telemetry.counter_add("plan_cache.invalidate")

    # -- cached heavy structure ------------------------------------------------------------
    def correction(self) -> sparse.csr_matrix:
        """Sparse matrix with the values of this factor's redundant cells.

        Subtracting ``correction @ x`` (or transposes thereof) turns the
        cheap unmasked rewrite into the exact masked result. Cached after
        the first build; only meaningful when ``has_correction``.
        """
        if self._correction is not None:
            if _telemetry.ENABLED:
                _telemetry.counter_add("plan_cache.correction.hit")
            return self._correction
        if _telemetry.ENABLED:
            _telemetry.counter_add("plan_cache.correction.miss")
        if self._correction is None:
            factor = self.factor
            complement = factor.redundancy.to_sparse_complement().tocoo()
            target_rows = np.asarray(complement.row, dtype=np.intp)
            target_cols = np.asarray(complement.col, dtype=np.intp)
            compressed_rows = np.asarray(factor.indicator.compressed)
            compressed_cols = np.asarray(factor.mapping.compressed)
            source_rows = compressed_rows[target_rows]
            source_cols = compressed_cols[target_cols]
            mapped = (source_rows >= 0) & (source_cols >= 0)
            target_rows, target_cols = target_rows[mapped], target_cols[mapped]
            # One vectorized gather over D_k (sparse storage stays sparse).
            values = factor.cells(source_rows[mapped], source_cols[mapped])
            nonzero = values != 0.0
            self._correction = sparse.csr_matrix(
                (values[nonzero], (target_rows[nonzero], target_cols[nonzero])),
                shape=(factor.indicator.n_target_rows, factor.mapping.n_target_columns),
            )
        return self._correction

    def effective_contribution(self) -> Tuple[np.ndarray, Storage, np.ndarray]:
        """Covered target rows, the deduplicated block there (in backend
        storage form — CSR stays CSR), and the mapped target columns.

        This is the per-factor structure ``crossprod`` reduces over; it is
        cached because Gram computations revisit it across solver calls.
        """
        if self._effective is not None:
            if _telemetry.ENABLED:
                _telemetry.counter_add("plan_cache.effective.hit")
            return self._effective
        if _telemetry.ENABLED:
            _telemetry.counter_add("plan_cache.effective.miss")
        if self._effective is None:
            block = self.backend.take_columns(
                self.backend.take_rows(self.storage, self.source_rows),
                self.source_cols,
            )
            if self.has_correction:
                # Mask-aware slicing: restrict R_k to the covered rows ×
                # mapped columns without densifying, then zero the redundant
                # cells in whatever format the backend stores the block.
                restricted = self.factor.redundancy.submatrix(
                    self.target_rows, self.target_cols
                )
                block = self.backend.apply_redundancy(block, restricted)
            self._effective = (self.target_rows, block, self.target_cols)
        return self._effective

    def __repr__(self) -> str:
        return (
            f"OperatorPlan({self.factor.name!r}, mapped_rows={self.n_mapped_rows}, "
            f"mapped_cols={self.n_mapped_cols}, injective={self.rows_injective}, "
            f"correction={self.has_correction})"
        )


class BlockedFactorView:
    """Row-block execution structure of one factor for out-of-core training.

    Reuses the compiled plan's gather indices: ``plan.target_rows`` is
    sorted ascending (it comes from ``np.nonzero`` over ``CI_k``), so the
    slice of the row maps falling inside a target-row block ``[start,
    stop)`` is found with two ``searchsorted`` probes — no per-block index
    rebuild, and the factor's backing storage (typically an
    ``np.memmap`` spilled by the streaming builder) is only ever gathered
    one block of rows at a time.

    ``keep_targets`` optionally restricts the view to a subset of target
    columns *at the index level* (``CM_k`` re-aimed at the subset's
    positions), so selecting the feature columns of a spilled dataset
    copies no data — unlike ``AmalurMatrix.select_columns``, which slices
    ``D_k`` itself.
    """

    __slots__ = (
        "plan", "backend", "storage",
        "sel_source_cols", "sel_target_pos", "all_source_cols", "n_out_columns",
        "_correction_sel",
    )

    def __init__(self, plan: OperatorPlan, keep_targets: Optional[np.ndarray] = None):
        self.plan = plan
        self.backend = plan.backend
        self.storage = plan.storage
        n_target_columns = plan.factor.mapping.n_target_columns
        if keep_targets is None:
            self.sel_source_cols = plan.source_cols
            self.sel_target_pos = plan.target_cols
            self.n_out_columns = n_target_columns
        else:
            keep_targets = np.asarray(keep_targets, dtype=np.intp)
            new_position = np.full(n_target_columns, -1, dtype=np.int64)
            new_position[keep_targets] = np.arange(keep_targets.size)
            kept = new_position[plan.target_cols] >= 0
            self.sel_source_cols = plan.source_cols[kept]
            self.sel_target_pos = new_position[plan.target_cols[kept]].astype(np.intp)
            self.n_out_columns = int(keep_targets.size)
        self.all_source_cols = (
            self.sel_source_cols.size == plan.n_source_columns
        )
        self._correction_sel = None
        if plan.has_correction:
            correction = plan.correction()
            if keep_targets is None:
                self._correction_sel = correction
            else:
                self._correction_sel = correction[:, keep_targets].tocsr()

    def _row_bounds(self, start: int, stop: int) -> Tuple[int, int]:
        rows = self.plan.target_rows
        return (
            int(np.searchsorted(rows, start, side="left")),
            int(np.searchsorted(rows, stop, side="left")),
        )

    def _storage_block(self, lo: int, hi: int):
        """The (rows × selected columns) slice of ``D_k`` a block touches.

        This is the spill *refault* site: with a fault plan active, a
        triggered ``spill.read`` fault is retried with backoff — the
        gather is a pure read of disjoint source rows, so a retried
        refault returns bit-identical data.
        """
        if _faults.ACTIVE:
            return SPILL_RETRY.call(self._storage_block_once, lo, hi, site="spill.read")
        return self._storage_block_once(lo, hi)

    def _storage_block_once(self, lo: int, hi: int):
        _faults.fault_point("spill.read", lo=lo, hi=hi)
        block = self.backend.take_rows(self.storage, self.plan.source_rows[lo:hi])
        if not self.all_source_cols:
            block = self.backend.take_columns(block, self.sel_source_cols)
        if _telemetry.ENABLED and isinstance(self.storage, np.memmap):
            # The gather pulled these rows off the spill file (or its page
            # cache); account them as spill read traffic.
            _telemetry.counter_add("spill.bytes_read", float(getattr(block, "nbytes", 0)))
        return block

    def lmm_block_add(self, x: np.ndarray, start: int, stop: int, out: np.ndarray) -> None:
        """Add this factor's share of ``(T @ X)[start:stop]`` into ``out``."""
        lo, hi = self._row_bounds(start, stop)
        if hi > lo:
            gathered = np.zeros((self.sel_source_cols.size, x.shape[1]))
            gathered[:] = x[self.sel_target_pos]
            local = self.backend.matmul(self._storage_block(lo, hi), gathered)
            out[self.plan.target_rows[lo:hi] - start] += local
        if self._correction_sel is not None:
            out -= self._correction_sel[start:stop] @ x

    def transpose_lmm_block_add(
        self, x_block: np.ndarray, start: int, stop: int, out: np.ndarray
    ) -> None:
        """Accumulate this factor's share of ``Tᵀ X`` for rows ``[start, stop)``."""
        lo, hi = self._row_bounds(start, stop)
        if hi > lo:
            rows = x_block[self.plan.target_rows[lo:hi] - start]
            local = self.backend.transpose_matmul(self._storage_block(lo, hi), rows)
            out[self.sel_target_pos] += local
        if self._correction_sel is not None:
            out -= self._correction_sel[start:stop].T @ x_block


class BlockedMatrixView:
    """Row-block view over a factorized matrix (all factors together).

    The view computes exactly what ``AmalurMatrix.lmm`` /
    ``transpose_lmm`` compute, one target-row block at a time, so
    gradient-descent training can run in bounded memory over factors whose
    backing storage lives on disk. Constructed via
    :meth:`repro.factorized.AmalurMatrix.blocked`.
    """

    def __init__(
        self,
        plans: Sequence,
        n_rows: int,
        n_target_columns: int,
        keep_targets: Optional[np.ndarray] = None,
    ):
        self.factors = [BlockedFactorView(plan, keep_targets) for plan in plans]
        n_columns = (
            int(np.asarray(keep_targets).size)
            if keep_targets is not None
            else n_target_columns
        )
        self.shape = (int(n_rows), n_columns)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_columns(self) -> int:
        return self.shape[1]

    def row_blocks(self, block_rows: int) -> Sequence[Tuple[int, int]]:
        """The ``[start, stop)`` block bounds covering every target row."""
        block_rows = max(1, int(block_rows))
        return [
            (start, min(start + block_rows, self.shape[0]))
            for start in range(0, self.shape[0], block_rows)
        ]

    def lmm_block(self, x: np.ndarray, start: int, stop: int) -> np.ndarray:
        """``(T @ X)[start:stop]`` — one row block of the LMM result."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        out = np.zeros((stop - start, x.shape[1]))
        for factor in self.factors:
            factor.lmm_block_add(x, start, stop, out)
        return out

    def transpose_lmm_add(
        self, x_block: np.ndarray, start: int, stop: int, out: np.ndarray
    ) -> None:
        """Accumulate ``Tᵀ X`` contributions of rows ``[start, stop)`` into
        ``out`` (shape ``n_columns × m``); summing over all blocks yields
        exactly ``transpose_lmm`` of the stacked operand."""
        x_block = np.asarray(x_block, dtype=np.float64)
        if x_block.ndim == 1:
            x_block = x_block[:, None]
        for factor in self.factors:
            factor.transpose_lmm_block_add(x_block, start, stop, out)

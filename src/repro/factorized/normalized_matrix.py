"""The Amalur normalized matrix: factorized linear algebra with DI metadata.

Implements the operator rewrites of paper §IV-A over an
:class:`repro.matrices.IntegratedDataset`. Every operator is equivalent to
applying the same operator to the materialized target table
``T = Σ_k (I_k D_k M_kᵀ) ∘ R_k`` — the property tests assert this — but is
computed in the source (silo) dimension:

* ``lmm(X)``        = ``T @ X``            (Eq. 2 of the paper)
* ``rmm(X)``        = ``X @ T``
* ``transpose_lmm`` = ``Tᵀ @ X``
* ``crossprod()``   = ``Tᵀ T``             (needed by normal equations)
* element-wise scalar ops, row/column/total sums

Redundant cells (marked by ``R_k``) are handled with a sparse correction
term instead of a full Hadamard product: the rewrite computes the cheap
``I_k (D_k (M_kᵀ X))`` and subtracts the contribution of the (few)
redundant cells.

Execution is block-parallel above a row threshold: when
:mod:`repro.parallel` is configured with more than one worker and the
target has at least ``REPRO_PARALLEL_MIN_ROWS`` rows, ``lmm`` /
``transpose_lmm`` / ``crossprod`` fan their row blocks over the shared
worker pool and reduce the partial results on the calling thread in
fixed block order. The partition depends only on the block size — never
the worker count — so parallel results are identical at any worker count
>= 2 and agree with the serial path to reassociation (<= 1e-8); one
worker is the exact legacy path. FLOP counters are charged with the
legacy per-factor formulas on the calling thread, preserving the
telemetry mirror parity regardless of blocking.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro import parallel as _parallel
from repro import telemetry as _telemetry
from repro.backends import Backend, BackendSpec, resolve_backend
from repro.backends.base import as_float64 as _as_float64
from repro.exceptions import FactorizationError
from repro.factorized.operator_plan import BlockedMatrixView, GramCache, OperatorPlan
from repro.factorized.ops_counter import FlopCounter
from repro.matrices.builder import IntegratedDataset, SourceFactor


class AmalurMatrix:
    """Factorized view of a target table, backed by per-source factors.

    ``backend`` picks the compute engine (:mod:`repro.backends`) the
    per-source kernels run on: dense BLAS, SciPy CSR, or per-factor
    density dispatch. It defaults to the dataset's backend (dense when the
    dataset does not carry one). All operators produce identical results
    on every backend — only storage, wall-clock and the FLOP accounting
    change.
    """

    def __init__(
        self,
        dataset: IntegratedDataset,
        counter: Optional[FlopCounter] = None,
        backend: BackendSpec = None,
    ):
        self.dataset = dataset
        self.counter = counter or FlopCounter()
        self.backend: Backend = resolve_backend(
            backend if backend is not None else dataset.backend
        )
        # Backend-prepared physical form of each D_k (dense ndarray or CSR).
        self._storages = [factor.storage(self.backend) for factor in dataset.factors]
        # Compiled operator plans: per-factor gather/scatter index arrays,
        # many-to-one projectors, and lazily cached corrections/effective
        # contributions (see repro.factorized.operator_plan). Rebuilt by any
        # operation returning a new AmalurMatrix (with_backend,
        # select_columns, scale).
        self._plans: List[OperatorPlan] = [
            OperatorPlan(factor, storage, self.backend)
            for factor, storage in zip(dataset.factors, self._storages)
        ]
        # Gram cache for crossprod(); factors are immutable, so TᵀT never
        # changes for this view unless explicitly invalidated.
        self.gram_cache = GramCache()
        # Row-block view over all columns, built lazily on the calling
        # thread the first time an operator takes the parallel path (so
        # the plans' correction caches are populated before fan-out).
        self._blocked_view: Optional[BlockedMatrixView] = None

    # -- shapes ---------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self.dataset.shape

    @property
    def n_rows(self) -> int:
        return self.dataset.shape[0]

    @property
    def n_columns(self) -> int:
        return self.dataset.shape[1]

    # -- backend introspection ---------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Stored non-zero cells across every source factor (cached per factor)."""
        return sum(factor.nnz for factor in self.dataset.factors)

    @property
    def density(self) -> float:
        """Overall non-zero density of the source factors."""
        total = sum(s.shape[0] * s.shape[1] for s in self._storages)
        return self.nnz / total if total else 1.0

    def storage_formats(self) -> List[str]:
        """Physical format ("csr"/"dense") chosen per factor, in order."""
        return [
            "csr" if self.backend.is_sparse_storage(s) else "dense"
            for s in self._storages
        ]

    def with_backend(self, backend: BackendSpec) -> "AmalurMatrix":
        """The same factorized view running on a different compute backend."""
        return AmalurMatrix(self.dataset, self.counter, backend=backend)

    # -- helpers --------------------------------------------------------------------
    def _correction(self, index: int) -> sparse.csr_matrix:
        """Sparse matrix with the values of redundant cells of factor ``index``."""
        return self._plans[index].correction()

    def _check_lmm_operand(self, x: np.ndarray) -> np.ndarray:
        x = _as_float64(x)
        if x.ndim == 1:
            x = x[:, None]
        if x.shape[0] != self.n_columns:
            raise FactorizationError(
                f"LMM operand has {x.shape[0]} rows, target has {self.n_columns} columns"
            )
        return x

    def _check_rmm_operand(self, x: np.ndarray) -> np.ndarray:
        x = _as_float64(x)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[1] != self.n_rows:
            raise FactorizationError(
                f"RMM operand has {x.shape[1]} columns, target has {self.n_rows} rows"
            )
        return x

    def _check_transpose_operand(self, x: np.ndarray) -> np.ndarray:
        x = _as_float64(x)
        if x.ndim == 1:
            x = x[:, None]
        if x.shape[0] != self.n_rows:
            raise FactorizationError(
                f"Tᵀ X operand has {x.shape[0]} rows, target has {self.n_rows} rows"
            )
        return x

    # -- core operators -----------------------------------------------------------------
    def lmm(self, x: np.ndarray) -> np.ndarray:
        """Left matrix multiplication ``T @ X`` (paper Eq. 2), factorized.

        Runs entirely on the compiled per-factor plans: an operand-row
        gather (``M_kᵀ X``), the backend matmul, and a fancy-indexed
        indicator lift — no Python-level per-element loops.
        """
        x = self._check_lmm_operand(x)
        if _telemetry.ENABLED:
            with _telemetry.span("amalur.lmm", rows=self.n_rows, operand_cols=x.shape[1]):
                return self._lmm(x)
        return self._lmm(x)

    def _full_blocked_view(self) -> BlockedMatrixView:
        if self._blocked_view is None:
            self._blocked_view = self.blocked()
        return self._blocked_view

    def _row_block_bounds(self) -> List[Tuple[int, int]]:
        return list(self._full_blocked_view().row_blocks(_parallel.get_block_rows()))

    def _charge_lmm_flops(self, m: int) -> None:
        """The legacy per-factor ``lmm.*`` charges, independent of blocking."""
        for plan, storage in zip(self._plans, self._storages):
            self.counter.add("lmm.local", self.backend.matmul_flops(storage, m))
            self.counter.add("lmm.lift", float(plan.n_mapped_rows) * m)
            if plan.has_correction:
                self.counter.add("lmm.correction", float(plan.correction().nnz) * m)

    def _charge_transpose_lmm_flops(self, m: int) -> None:
        """The legacy per-factor ``tlmm.*`` charges, independent of blocking."""
        for plan, storage in zip(self._plans, self._storages):
            self.counter.add("tlmm.project", float(plan.n_mapped_rows) * m)
            self.counter.add("tlmm.local", self.backend.matmul_flops(storage, m))
            self.counter.add("tlmm.scatter", float(plan.n_mapped_cols) * m)
            if plan.has_correction:
                self.counter.add("tlmm.correction", float(plan.correction().nnz) * m)

    def _lmm_blocked(self, x: np.ndarray) -> np.ndarray:
        """Block-parallel ``T @ X``: each worker fills a disjoint row slice."""
        m = x.shape[1]
        view = self._full_blocked_view()
        result = np.zeros((self.n_rows, m))

        def _fill(bounds: Tuple[int, int]) -> None:
            start, stop = bounds
            result[start:stop] = view.lmm_block(x, start, stop)

        _parallel.parallel_map(_fill, self._row_block_bounds(), label="lmm")
        self._charge_lmm_flops(m)
        return result

    def _lmm(self, x: np.ndarray) -> np.ndarray:
        m = x.shape[1]
        if _parallel.should_parallelize(self.n_rows):
            return self._lmm_blocked(x)
        result = np.zeros((self.n_rows, m))
        for plan, storage in zip(self._plans, self._storages):
            gathered = plan.gather_operand_rows(x)  # (c_Sk × m)
            local = self.backend.matmul(storage, gathered)  # (r_Sk × m)
            self.counter.add("lmm.local", self.backend.matmul_flops(storage, m))
            plan.lift_add(result, local)
            self.counter.add("lmm.lift", float(plan.n_mapped_rows) * m)
            if plan.has_correction:
                correction = plan.correction()
                result -= correction @ x
                self.counter.add("lmm.correction", float(correction.nnz) * m)
        return result

    def rmm(self, x: np.ndarray) -> np.ndarray:
        """Right matrix multiplication ``X @ T``, factorized."""
        x = self._check_rmm_operand(x)
        if _telemetry.ENABLED:
            with _telemetry.span("amalur.rmm", rows=self.n_rows, operand_rows=x.shape[0]):
                return self._rmm(x)
        return self._rmm(x)

    def _rmm(self, x: np.ndarray) -> np.ndarray:
        m = x.shape[0]
        result = np.zeros((m, self.n_columns))
        for plan, storage in zip(self._plans, self._storages):
            # X I_k — accumulate the target-row columns of X onto source rows.
            projected = plan.project_rows(x.T)  # (r_Sk × m)
            self.counter.add("rmm.project", float(plan.n_mapped_rows) * m)
            # projected @ D_k computed as (D_kᵀ @ projected)ᵀ so sparse
            # storages go through the CSR kernel.
            local = self.backend.transpose_matmul(storage, projected).T  # (m × c_Sk)
            self.counter.add("rmm.local", self.backend.matmul_flops(storage, m))
            # Scatter the source columns onto target columns (M_kᵀ on the right).
            plan.scatter_add_columns(result, local)
            self.counter.add("rmm.scatter", float(plan.n_mapped_cols) * m)
            if plan.has_correction:
                correction = plan.correction()
                result -= (correction.T @ x.T).T
                self.counter.add("rmm.correction", float(correction.nnz) * m)
        return result

    def transpose_lmm(self, x: np.ndarray) -> np.ndarray:
        """``Tᵀ @ X``, factorized — the workhorse of model gradients."""
        x = self._check_transpose_operand(x)
        if _telemetry.ENABLED:
            with _telemetry.span(
                "amalur.transpose_lmm", rows=self.n_rows, operand_cols=x.shape[1]
            ):
                return self._transpose_lmm(x)
        return self._transpose_lmm(x)

    def _transpose_lmm_blocked(self, x: np.ndarray) -> np.ndarray:
        """Block-parallel ``Tᵀ @ X``: per-block partial sums reduced in
        block order on the calling thread (deterministic reassociation)."""
        m = x.shape[1]
        view = self._full_blocked_view()

        def _partial(bounds: Tuple[int, int]) -> np.ndarray:
            start, stop = bounds
            out = np.zeros((self.n_columns, m))
            view.transpose_lmm_add(x[start:stop], start, stop, out)
            return out

        partials = _parallel.parallel_map(
            _partial, self._row_block_bounds(), label="transpose_lmm"
        )
        result = np.zeros((self.n_columns, m))
        for partial in partials:
            result += partial
        self._charge_transpose_lmm_flops(m)
        return result

    def _transpose_lmm(self, x: np.ndarray) -> np.ndarray:
        m = x.shape[1]
        if _parallel.should_parallelize(self.n_rows):
            return self._transpose_lmm_blocked(x)
        result = np.zeros((self.n_columns, m))
        for plan, storage in zip(self._plans, self._storages):
            projected = plan.project_rows(x)  # (r_Sk × m)
            self.counter.add("tlmm.project", float(plan.n_mapped_rows) * m)
            local = self.backend.transpose_matmul(storage, projected)  # (c_Sk × m)
            self.counter.add("tlmm.local", self.backend.matmul_flops(storage, m))
            plan.scatter_add_rows(result, local)
            self.counter.add("tlmm.scatter", float(plan.n_mapped_cols) * m)
            if plan.has_correction:
                correction = plan.correction()
                result -= correction.T @ x
                self.counter.add("tlmm.correction", float(correction.nnz) * m)
        return result

    def crossprod(self) -> np.ndarray:
        """``Tᵀ T`` — the Gram matrix needed by normal-equation solvers.

        Same-source terms are computed in the source dimension
        (``M_k D_kᵀ I_kᵀ I_k D_k M_kᵀ`` collapses to a per-source Gram over
        the rows that reach the target); cross-source terms only involve
        target rows covered by both sources and are computed on those rows.

        The result is cached on this matrix (the factors are immutable),
        so the normal-equation solver and repeated fits reuse one Gram;
        treat the returned array as read-only. Views produced by
        ``with_backend`` / ``select_columns`` / ``scale`` start with a
        fresh cache. ``gram_cache`` exposes hit/miss/evict stats and
        :meth:`invalidate_gram` forces a recompute.
        """
        if _telemetry.ENABLED:
            with _telemetry.span("amalur.crossprod", cols=self.n_columns):
                return self.gram_cache.get_or_compute(self._compute_gram)
        return self.gram_cache.get_or_compute(self._compute_gram)

    def invalidate_gram(self) -> None:
        """Drop the cached Gram matrix; the next ``crossprod`` recomputes."""
        self.gram_cache.invalidate()

    def invalidate(self) -> None:
        """Drop every lazily cached structure: the Gram *and* each plan's
        correction/effective-contribution caches. Call after mutating a
        factor's data in place (the serving layer's delta updates); plans'
        index arrays stay valid while shapes and row/column maps do."""
        self.gram_cache.invalidate()
        for plan in self._plans:
            plan.invalidate()

    def _compute_gram_blocked(self) -> np.ndarray:
        """Block-parallel ``Tᵀ T``: row-block partial sums of every
        same-source and cross-source term, reduced in a fixed task order.

        The effective contributions and shared-row intersections are
        prepared serially (they populate the plan caches); only the
        ``blockᵀ block`` / ``leftᵀ right`` partial products fan out.
        FLOP charges are the legacy whole-block formulas.
        """
        gram = np.zeros((self.n_columns, self.n_columns))
        effective = [plan.effective_contribution() for plan in self._plans]
        block_rows = _parallel.get_block_rows()
        # (compute, target_rows_ix, transpose_target_ix_or_None), in the
        # deterministic order the reduction below replays.
        tasks: List[Tuple] = []
        for k, (rows_k, block_k, cols_k) in enumerate(effective):
            n_k = block_k.shape[0]
            ix_same = np.ix_(cols_k, cols_k)
            for lo in range(0, max(n_k, 1), block_rows):
                hi = min(lo + block_rows, n_k)
                tasks.append((self._gram_local_task(block_k, lo, hi), ix_same, None))
            self.counter.add("crossprod.local", self.backend.crossprod_flops(block_k))
            for other in range(k + 1, self.dataset.n_sources):
                rows_l, block_l, cols_l = effective[other]
                shared, idx_k, idx_l = np.intersect1d(
                    rows_k, rows_l, assume_unique=False, return_indices=True
                )
                if shared.size == 0:
                    continue
                left = self.backend.take_rows(block_k, idx_k)
                right = self.backend.take_rows(block_l, idx_l)
                for lo in range(0, shared.size, block_rows):
                    hi = min(lo + block_rows, shared.size)
                    tasks.append(
                        (
                            self._gram_cross_task(left, right, lo, hi),
                            np.ix_(cols_k, cols_l),
                            np.ix_(cols_l, cols_k),
                        )
                    )
                self.counter.add(
                    "crossprod.cross", self.backend.gram_pair_flops(left, right)
                )
        partials = _parallel.parallel_map(
            lambda task: task[0](), tasks, label="crossprod"
        )
        for (_, ix, ix_t), partial in zip(tasks, partials):
            gram[ix] += partial
            if ix_t is not None:
                gram[ix_t] += partial.T
        gram.setflags(write=False)
        return gram

    def _gram_local_task(self, block, lo: int, hi: int):
        return lambda: self.backend.crossprod(block[lo:hi])

    def _gram_cross_task(self, left, right, lo: int, hi: int):
        return lambda: self.backend.gram_pair(left[lo:hi], right[lo:hi])

    def _compute_gram(self) -> np.ndarray:
        if _parallel.should_parallelize(self.n_rows):
            return self._compute_gram_blocked()
        gram = np.zeros((self.n_columns, self.n_columns))
        effective = [plan.effective_contribution() for plan in self._plans]
        for k, (rows_k, block_k, cols_k) in enumerate(effective):
            # Same-source term, computed in source dimensions.
            local = self.backend.crossprod(block_k)
            self.counter.add("crossprod.local", self.backend.crossprod_flops(block_k))
            gram[np.ix_(cols_k, cols_k)] += local
            for other in range(k + 1, self.dataset.n_sources):
                rows_l, block_l, cols_l = effective[other]
                shared, idx_k, idx_l = np.intersect1d(
                    rows_k, rows_l, assume_unique=False, return_indices=True
                )
                if shared.size == 0:
                    continue
                left = self.backend.take_rows(block_k, idx_k)
                right = self.backend.take_rows(block_l, idx_l)
                cross = self.backend.gram_pair(left, right)
                self.counter.add(
                    "crossprod.cross", self.backend.gram_pair_flops(left, right)
                )
                gram[np.ix_(cols_k, cols_l)] += cross
                gram[np.ix_(cols_l, cols_k)] += cross.T
        gram.setflags(write=False)
        return gram

    # -- element-wise and aggregation operators ----------------------------------------------
    def scale(self, alpha: float) -> "AmalurMatrix":
        """Return a factorized view of ``alpha * T`` (scalar multiplication).

        Scalar multiplication distributes over the factorization, so only
        the (small) source data matrices are touched.
        """
        factors = []
        for factor in self.dataset.factors:
            factors.append(
                SourceFactor(
                    factor.name,
                    factor.data * alpha,
                    list(factor.source_columns),
                    factor.mapping,
                    factor.indicator,
                    factor.redundancy,
                    backend=factor.backend,
                )
            )
            self.counter.add("scale", float(factor.data.size))
        dataset = IntegratedDataset(
            target_columns=list(self.dataset.target_columns),
            n_target_rows=self.dataset.n_target_rows,
            factors=factors,
            scenario=self.dataset.scenario,
            label_column=self.dataset.label_column,
            name=self.dataset.name,
            backend=self.dataset.backend,
        )
        return AmalurMatrix(dataset, self.counter, backend=self.backend)

    def row_sums(self) -> np.ndarray:
        """``T @ 1`` — per-target-row sums, factorized."""
        ones = np.ones((self.n_columns, 1))
        return self.lmm(ones)[:, 0]

    def column_sums(self) -> np.ndarray:
        """``Tᵀ @ 1`` — per-target-column sums, factorized."""
        ones = np.ones((self.n_rows, 1))
        return self.transpose_lmm(ones)[:, 0]

    def total_sum(self) -> float:
        """Sum of every cell of the (virtual) target table."""
        return float(self.column_sums().sum())

    def column_means(self) -> np.ndarray:
        return self.column_sums() / self.n_rows

    # -- materialization ---------------------------------------------------------------
    def materialize(self) -> np.ndarray:
        """Materialize the target table (the alternative execution strategy)."""
        self.counter.add("materialize", float(self.n_rows) * self.n_columns)
        return self.dataset.materialize()

    def column(self, name: str) -> np.ndarray:
        """One target column, reconstructed without materializing the rest."""
        if name not in self.dataset.target_columns:
            raise FactorizationError(f"no target column named {name!r}")
        selector = np.zeros((self.n_columns, 1))
        selector[self.dataset.target_columns.index(name), 0] = 1.0
        return self.lmm(selector)[:, 0]

    def labels(self) -> np.ndarray:
        if self.dataset.label_column is None:
            raise FactorizationError("dataset has no label column")
        return self.column(self.dataset.label_column)

    def feature_matrix_view(self) -> "AmalurMatrix":
        """A factorized view restricted to the feature (non-label) columns."""
        if self.dataset.label_column is None:
            return self
        keep = [c for c in self.dataset.target_columns if c != self.dataset.label_column]
        return self.select_columns(keep)

    def blocked(self, columns: Optional[Sequence[str]] = None) -> BlockedMatrixView:
        """A row-block view for bounded-memory (out-of-core) execution.

        ``columns`` optionally restricts the view to a subset of target
        columns *at the plan-index level* — unlike :meth:`select_columns`
        no factor data is sliced or copied, so the view works over spilled
        (memory-mapped) factors without pulling them into RAM. Used by
        :class:`repro.learning.StreamingGD` to train on datasets larger
        than memory.
        """
        keep = None
        if columns is not None:
            missing = [n for n in columns if n not in self.dataset.target_columns]
            if missing:
                raise FactorizationError(f"unknown target columns {missing}")
            keep = np.asarray(
                [self.dataset.target_columns.index(n) for n in columns], dtype=np.intp
            )
        return BlockedMatrixView(self._plans, self.n_rows, self.n_columns, keep)

    def select_columns(self, names: Sequence[str]) -> "AmalurMatrix":
        """Project the factorized target onto a subset of its columns."""
        missing = [n for n in names if n not in self.dataset.target_columns]
        if missing:
            raise FactorizationError(f"unknown target columns {missing}")
        keep_indices = [self.dataset.target_columns.index(n) for n in names]
        factors = []
        for factor in self.dataset.factors:
            new_correspondences = {
                source_col: target_col
                for source_col, target_col in factor.mapping.correspondences.items()
                if target_col in names
            }
            kept_source_cols = [
                c for c in factor.source_columns if c in new_correspondences
            ]
            if not kept_source_cols:
                continue
            col_indices = [factor.source_columns.index(c) for c in kept_source_cols]
            from repro.matrices.mapping_matrix import MappingMatrix

            mapping = MappingMatrix(
                factor.name, list(names), kept_source_cols,
                {c: new_correspondences[c] for c in kept_source_cols},
            )
            redundancy = factor.redundancy.select_columns(keep_indices)
            factors.append(
                SourceFactor(
                    factor.name,
                    factor.data[:, col_indices],
                    kept_source_cols,
                    mapping,
                    factor.indicator,
                    redundancy,
                    backend=factor.backend,
                )
            )
        if not factors:
            raise FactorizationError("column selection removed every source factor")
        label = self.dataset.label_column if self.dataset.label_column in names else None
        dataset = IntegratedDataset(
            target_columns=list(names),
            n_target_rows=self.dataset.n_target_rows,
            factors=factors,
            scenario=self.dataset.scenario,
            label_column=label,
            name=self.dataset.name,
            backend=self.dataset.backend,
        )
        return AmalurMatrix(dataset, self.counter, backend=self.backend)

    def __repr__(self) -> str:
        return (
            f"AmalurMatrix(shape={self.shape}, "
            f"sources={[f.name for f in self.dataset.factors]}, "
            f"backend={self.backend.name!r})"
        )

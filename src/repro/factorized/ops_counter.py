"""Floating-point operation accounting for factorized vs. materialized plans.

The counters let benchmarks and the cost model compare plans analytically
(in FLOPs) in addition to wall-clock time, which keeps the Table III /
Figure 5 reproductions stable across machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class FlopCounter:
    """Accumulates multiply-add counts per labelled operation."""

    total: float = 0.0
    by_operation: Dict[str, float] = field(default_factory=dict)

    def add(self, operation: str, flops: float) -> None:
        self.total += flops
        self.by_operation[operation] = self.by_operation.get(operation, 0.0) + flops

    def reset(self) -> None:
        self.total = 0.0
        self.by_operation.clear()

    def merge(self, other: "FlopCounter") -> None:
        for operation, flops in other.by_operation.items():
            self.add(operation, flops)


def dense_matmul_flops(n: int, k: int, m: int) -> float:
    """Multiply-add count of an ``(n×k) @ (k×m)`` dense matrix product."""
    return float(n) * float(k) * float(m)


def materialized_lmm_flops(n_rows: int, n_cols: int, x_cols: int) -> float:
    """FLOPs of ``T @ X`` on the materialized target."""
    return dense_matmul_flops(n_rows, n_cols, x_cols)


def factorized_lmm_flops(
    source_shapes,
    n_target_rows: int,
    x_cols: int,
    redundant_cells: int = 0,
) -> float:
    """FLOPs of the factorized rewrite ``Σ_k I_k (D_k (M_kᵀ X))``.

    ``source_shapes`` is an iterable of ``(r_Sk, c_Sk)``; the mapping
    application is a row gather (free), the indicator lift costs one add
    per output cell, and each redundant cell adds one multiply-add of
    correction per column of X.
    """
    flops = 0.0
    for n_rows, n_cols in source_shapes:
        flops += dense_matmul_flops(n_rows, n_cols, x_cols)  # D_k @ (M_kᵀ X)
        flops += float(n_target_rows) * x_cols  # indicator lift / accumulate
    flops += float(redundant_cells) * x_cols  # redundancy correction
    return flops

"""Floating-point operation accounting for factorized vs. materialized plans.

The counters let benchmarks and the cost model compare plans analytically
(in FLOPs) in addition to wall-clock time, which keeps the Table III /
Figure 5 reproductions stable across machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro import telemetry as _telemetry


@dataclass
class FlopCounter:
    """Accumulates multiply-add counts per labelled operation.

    When telemetry is enabled (:mod:`repro.telemetry`), every ``add`` is
    mirrored into the session counter ``flops.<operation>`` — same label,
    same value, same accumulation order — so a telemetry run report carries
    the legacy per-operation totals exactly.
    """

    total: float = 0.0
    by_operation: Dict[str, float] = field(default_factory=dict)

    def add(self, operation: str, flops: float) -> None:
        self.total += flops
        self.by_operation[operation] = self.by_operation.get(operation, 0.0) + flops
        if _telemetry.ENABLED:
            _telemetry.counter_add("flops." + operation, flops)

    def reset(self) -> None:
        self.total = 0.0
        self.by_operation.clear()

    def merge(self, other: "FlopCounter") -> None:
        for operation, flops in other.by_operation.items():
            self.add(operation, flops)


def dense_matmul_flops(n: int, k: int, m: int) -> float:
    """Multiply-add count of an ``(n×k) @ (k×m)`` dense matrix product."""
    return float(n) * float(k) * float(m)


def sparse_matmul_flops(nnz: int, m: int) -> float:
    """Multiply-add count of ``A @ X`` when ``A`` is sparse with ``nnz``
    stored cells and ``X`` is dense with ``m`` columns.

    A CSR matmul touches each stored cell once per operand column, so the
    count is ``nnz · m`` regardless of A's nominal shape — the formula the
    dense counter overcounts by ``1/density``.
    """
    return float(nnz) * float(m)


def sparse_crossprod_flops(nnz: int, n_cols: int) -> float:
    """Multiply-add upper bound of ``Aᵀ A`` for a sparse ``A``.

    Each stored cell of ``A`` meets at most ``n_cols`` partners in its row,
    giving ``nnz · n_cols``; the true count (``Σ_rows nnz_row²``) is lower
    for uneven rows, so this is the safe planning estimate.
    """
    return float(nnz) * float(n_cols)


def materialized_lmm_flops(n_rows: int, n_cols: int, x_cols: int) -> float:
    """FLOPs of ``T @ X`` on the materialized target."""
    return dense_matmul_flops(n_rows, n_cols, x_cols)


def redundancy_apply_flops(n_redundant: int) -> float:
    """Cost of applying a redundancy mask ``R_k`` to a contribution.

    With the lazy/sparse representations, masking zeroes exactly the
    redundant cells — one operation per stored cell of the complement —
    instead of the ``r_T · c_T`` Hadamard product a dense mask paid. A
    trivial (all-ones) mask costs nothing.
    """
    return float(n_redundant)


def _normalize_per_source(shapes, values, name: str):
    """Pad a per-source value list with ``None`` to match ``shapes``.

    A list longer than ``shapes`` is a caller bug — reject it rather than
    silently dropping entries.
    """
    if values is None:
        return [None] * len(shapes)
    value_list = list(values)
    if len(value_list) > len(shapes):
        raise ValueError(
            f"{name} has {len(value_list)} entries for {len(shapes)} sources"
        )
    return value_list + [None] * (len(shapes) - len(value_list))


def _normalize_source_nnz(shapes, source_nnz):
    """Pad a per-source nnz list with ``None`` (dense) to match ``shapes``."""
    return _normalize_per_source(shapes, source_nnz, "source_nnz")


def factorized_lmm_flops(
    source_shapes,
    n_target_rows: int,
    x_cols: int,
    redundant_cells: int = 0,
    source_nnz=None,
    mapped_rows=None,
) -> float:
    """FLOPs of the factorized rewrite ``Σ_k I_k (D_k (M_kᵀ X))``.

    ``source_shapes`` is an iterable of ``(r_Sk, c_Sk)``; the mapping
    application is a row gather (free), the indicator lift costs one add
    per output cell, and each redundant cell adds one multiply-add of
    correction per column of X.

    When ``source_nnz`` is given (one stored-cell count per source, or
    ``None`` entries for dense sources), the per-source multiply uses the
    sparse ``nnz · m`` count instead of the dense ``r·c·m`` count — the
    nnz-aware formula for plans executed on a sparse backend.

    When ``mapped_rows`` is given (one mapped-target-row count per source,
    or ``None`` entries meaning every target row), the indicator lift is
    charged per *mapped* row instead of per target row — matching what the
    compiled operator plans execute: a partial-coverage source (outer
    join, union) scatters only the rows it actually covers.
    """
    shapes = list(source_shapes)
    per_source_mapped = _normalize_per_source(shapes, mapped_rows, "mapped_rows")
    flops = 0.0
    for (n_rows, n_cols), nnz, lifted in zip(
        shapes, _normalize_source_nnz(shapes, source_nnz), per_source_mapped
    ):
        if nnz is None:
            flops += dense_matmul_flops(n_rows, n_cols, x_cols)  # D_k @ (M_kᵀ X)
        else:
            flops += sparse_matmul_flops(nnz, x_cols)
        lift_rows = n_target_rows if lifted is None else lifted
        flops += float(lift_rows) * x_cols  # indicator lift / accumulate
    flops += float(redundant_cells) * x_cols  # redundancy correction
    return flops


def factorized_crossprod_flops(source_shapes, source_nnz=None) -> float:
    """FLOPs of the factorized Gram computation ``Σ_k D̃_kᵀ D̃_k`` (same-source
    terms only — the dominant cost; cross terms involve only overlap rows).

    ``source_nnz`` works as in :func:`factorized_lmm_flops`.
    """
    shapes = list(source_shapes)
    flops = 0.0
    for (n_rows, n_cols), nnz in zip(shapes, _normalize_source_nnz(shapes, source_nnz)):
        if nnz is None:
            flops += dense_matmul_flops(n_cols, n_rows, n_cols)
        else:
            flops += sparse_crossprod_flops(nnz, n_cols)
    return flops

"""Circuit breaker: stop hammering a handler that keeps failing.

Classic three-state machine, used per session by the serving layer:

* **closed** — requests flow; consecutive failures are counted, and at
  ``failure_threshold`` the breaker *opens*;
* **open** — requests are rejected immediately with
  :class:`~repro.exceptions.CircuitOpenError` (no queue slot, no worker
  time) until ``reset_timeout`` seconds have passed;
* **half-open** — after the cool-down, exactly one probe request is let
  through: success closes the breaker, failure re-opens it and restarts
  the cool-down.

The clock is injectable (``clock=time.monotonic``) so tests and chaos
runs never sleep. State transitions emit a per-name gauge
(``breaker.state.<name>``: 0 closed, 1 half-open, 2 open) and counters
(``breaker.opened``, ``breaker.rejected``, ``breaker.recovered``); while
a :mod:`~repro.telemetry.flight` recorder is active every transition is
noted there too, and an *opening* breaker triggers a post-mortem dump.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro import telemetry as _telemetry
from repro.exceptions import CircuitOpenError
from repro.telemetry import flight as _flight

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATE_GAUGE = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


class CircuitBreaker:
    """Thread-safe per-resource circuit breaker.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (with no success in between) that open the
        breaker.
    reset_timeout:
        Seconds the breaker stays open before allowing a half-open probe.
    name:
        Telemetry label (gauge ``breaker.state.<name>``).
    clock:
        Monotonic time source; injectable for tests.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        name: str = "default",
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout < 0:
            raise ValueError(f"reset_timeout must be >= 0, got {reset_timeout}")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_out = False

    # -- state ------------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    def _maybe_half_open(self) -> None:
        # Caller holds the lock.
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._set_state(HALF_OPEN)
            self._probe_out = False

    def _set_state(self, state: str) -> None:
        # Caller holds the lock.
        self._state = state
        if _telemetry.ENABLED:
            _telemetry.gauge_set(f"breaker.state.{self.name}", _STATE_GAUGE[state])
        if _flight.ACTIVE:
            _flight.note_breaker(self.name, state)

    # -- protocol ---------------------------------------------------------------------
    def before_request(self) -> None:
        """Gate one request; raises :class:`CircuitOpenError` when open.

        In half-open state only a single in-flight probe is admitted;
        concurrent requests are rejected until the probe settles.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return
            if self._state == HALF_OPEN and not self._probe_out:
                self._probe_out = True
                return
            remaining = max(
                0.0, self.reset_timeout - (self._clock() - self._opened_at)
            )
        if _telemetry.ENABLED:
            _telemetry.counter_add("breaker.rejected")
            _telemetry.counter_add(f"breaker.rejected.{self.name}")
        raise CircuitOpenError(
            f"circuit {self.name!r} is open after {self.failure_threshold} "
            f"consecutive failures; retry in {remaining:.3f}s"
        )

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probe_out = False
            if self._state != CLOSED:
                self._set_state(CLOSED)
                if _telemetry.ENABLED:
                    _telemetry.counter_add("breaker.recovered")

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open, fresh cool-down.
                self._probe_out = False
                self._opened_at = self._clock()
                self._set_state(OPEN)
                opened = True
            else:
                self._failures += 1
                opened = self._state == CLOSED and (
                    self._failures >= self.failure_threshold
                )
                if opened:
                    self._opened_at = self._clock()
                    self._set_state(OPEN)
        if opened:
            if _telemetry.ENABLED:
                _telemetry.counter_add("breaker.opened")
                _telemetry.counter_add(f"breaker.opened.{self.name}")
            if _flight.ACTIVE:
                # A breaker opening is exactly the moment a post-mortem is
                # worth having: freeze the recent spans/events/counters.
                _flight.trigger(
                    "breaker_open",
                    breaker=self.name,
                    failure_threshold=self.failure_threshold,
                )

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self.state!r}, "
            f"failures={self.consecutive_failures})"
        )

"""Atomic, checksummed checkpoints for long-running training loops.

A checkpoint is one self-describing file: a JSON header naming every
array segment (dtype, shape, byte length, CRC32) plus free-form metadata,
followed by the raw segment bytes. Two properties make it crash-safe:

* **atomic publication** — the file is fully written and fsynced under a
  temporary name in the same directory, then ``os.replace``\\ d into
  place, so a reader never observes a half-written checkpoint: it either
  sees the previous complete file or the new complete file;
* **checksummed segments** — every array's CRC32 is validated on load; a
  torn or bit-flipped segment raises
  :class:`~repro.exceptions.IntegrityError` instead of silently feeding
  corrupt weights back into training. :meth:`CheckpointManager.latest`
  skips corrupt files and falls back to the newest valid one, counting
  ``checkpoint.corrupt_skipped``.

:class:`~repro.learning.streaming_gd.StreamingGD` uses this to persist
``(weights, intercept, loss history, iteration counter, block cursor)``
at epoch boundaries and resume **bit-identically**: an interrupted run
restarted from its last checkpoint produces exactly the weights of an
uninterrupted run, because each epoch is a pure function of the restored
state.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro import telemetry as _telemetry
from repro.exceptions import CheckpointError, IntegrityError

PathLike = Union[str, Path]

_MAGIC = b"RPRCKPT1\n"


class Checkpoint:
    """One loaded checkpoint: step, named arrays and metadata."""

    __slots__ = ("step", "arrays", "metadata", "path")

    def __init__(
        self,
        step: int,
        arrays: Dict[str, np.ndarray],
        metadata: Dict[str, object],
        path: Optional[Path] = None,
    ):
        self.step = int(step)
        self.arrays = arrays
        self.metadata = metadata
        self.path = path

    def __repr__(self) -> str:
        return (
            f"Checkpoint(step={self.step}, arrays={sorted(self.arrays)}, "
            f"path={str(self.path)!r})"
        )


class CheckpointManager:
    """A directory of atomically written, CRC32-validated checkpoints.

    Parameters
    ----------
    directory:
        Created if missing. One manager owns one training run's
        checkpoints; files are ``<prefix>-<step>.ckpt``.
    keep:
        Retention: after a successful save, only the newest ``keep``
        checkpoints survive (older ones are deleted). At least one is
        always kept.
    """

    def __init__(self, directory: PathLike, keep: int = 2, prefix: str = "ckpt"):
        if keep < 1:
            raise CheckpointError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = int(keep)
        self.prefix = prefix

    # -- paths ------------------------------------------------------------------------
    def _path_for(self, step: int) -> Path:
        return self.directory / f"{self.prefix}-{int(step):010d}.ckpt"

    def steps(self) -> List[int]:
        """Recorded steps, ascending (corrupt files included — they are
        only detected on load)."""
        out = []
        for path in self.directory.glob(f"{self.prefix}-*.ckpt"):
            stem = path.stem.rsplit("-", 1)[-1]
            if stem.isdigit():
                out.append(int(stem))
        return sorted(out)

    # -- save -------------------------------------------------------------------------
    def save(
        self,
        step: int,
        arrays: Dict[str, np.ndarray],
        metadata: Optional[Dict[str, object]] = None,
    ) -> Path:
        """Atomically write one checkpoint; returns its final path."""
        segments = []
        payloads = []
        for name, array in arrays.items():
            data = np.ascontiguousarray(array)
            raw = data.tobytes()
            segments.append(
                {
                    "name": name,
                    "dtype": str(data.dtype),
                    "shape": list(data.shape),
                    "nbytes": len(raw),
                    "crc32": zlib.crc32(raw),
                }
            )
            payloads.append(raw)
        header = json.dumps(
            {"step": int(step), "segments": segments, "metadata": metadata or {}},
            sort_keys=True,
        ).encode()
        path = self._path_for(step)
        tmp = path.with_suffix(".ckpt.tmp")
        with _telemetry.span("reliability.checkpoint.save", step=int(step)):
            with tmp.open("wb") as handle:
                handle.write(_MAGIC)
                handle.write(len(header).to_bytes(8, "little"))
                handle.write(header)
                for raw in payloads:
                    handle.write(raw)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        if _telemetry.ENABLED:
            _telemetry.counter_add("checkpoint.saves")
            _telemetry.counter_add(
                "checkpoint.bytes_written",
                float(len(_MAGIC) + 8 + len(header) + sum(len(r) for r in payloads)),
            )
        self._prune()
        return path

    def _prune(self) -> None:
        steps = self.steps()
        for step in steps[: -self.keep]:
            try:
                self._path_for(step).unlink()
            except OSError:  # pragma: no cover - concurrent prune
                pass

    # -- load -------------------------------------------------------------------------
    def load(self, step: int) -> Checkpoint:
        """Load and validate one checkpoint; :class:`IntegrityError` on a
        bad magic, short read, or CRC mismatch."""
        path = self._path_for(step)
        if not path.exists():
            raise CheckpointError(f"no checkpoint for step {step} in {self.directory}")
        with _telemetry.span("reliability.checkpoint.load", step=int(step)):
            with path.open("rb") as handle:
                magic = handle.read(len(_MAGIC))
                if magic != _MAGIC:
                    raise IntegrityError(f"{path} is not a checkpoint (bad magic)")
                header_len = int.from_bytes(handle.read(8), "little")
                try:
                    header = json.loads(handle.read(header_len))
                except ValueError as exc:
                    raise IntegrityError(f"{path} has a corrupt header") from exc
                arrays: Dict[str, np.ndarray] = {}
                for segment in header["segments"]:
                    raw = handle.read(segment["nbytes"])
                    if len(raw) != segment["nbytes"]:
                        raise IntegrityError(
                            f"{path} segment {segment['name']!r} is truncated "
                            f"({len(raw)} of {segment['nbytes']} bytes)"
                        )
                    if zlib.crc32(raw) != segment["crc32"]:
                        raise IntegrityError(
                            f"{path} segment {segment['name']!r} failed its CRC32 check"
                        )
                    arrays[segment["name"]] = np.frombuffer(
                        raw, dtype=np.dtype(segment["dtype"])
                    ).reshape(segment["shape"]).copy()
        if _telemetry.ENABLED:
            _telemetry.counter_add("checkpoint.loads")
        return Checkpoint(header["step"], arrays, header["metadata"], path)

    def latest(self) -> Optional[Checkpoint]:
        """The newest *valid* checkpoint; corrupt ones are skipped (and
        counted) so a torn final write degrades to the previous epoch
        instead of killing the resume."""
        for step in reversed(self.steps()):
            try:
                return self.load(step)
            except IntegrityError:
                if _telemetry.ENABLED:
                    _telemetry.counter_add("checkpoint.corrupt_skipped")
                continue
        return None

    def __repr__(self) -> str:
        return f"CheckpointManager({str(self.directory)!r}, steps={self.steps()})"

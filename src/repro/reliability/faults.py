"""Deterministic, seeded fault injection for chaos testing the pipeline.

A :class:`FaultPlan` names *sites* — stable strings compiled into the
long-running layers (``spill.read``, ``spill.write``, ``ingest.chunk``,
``parallel.task``, ``serving.request``) — and per site a probability, an
optional trigger budget and a seed. Each time execution crosses a site it
calls :func:`fault_point` (or :func:`hit` for sites that corrupt data
instead of raising); with a plan installed the site's own
``random.Random`` stream decides whether this hit triggers, so a given
``(plan, hit sequence)`` reproduces the exact same faults on every run —
chaos runs are debuggable, and the CI chaos matrix is pinned by seeds.

The registry is **off by default and near-free while off**: every
instrumented call site tests the module-level :data:`ACTIVE` boolean (one
attribute load + branch) before doing anything, mirroring the telemetry
facade. Activation paths:

* ``REPRO_FAULT_PLAN`` in the environment — parsed on first import, which
  is how the CI ``fault-guard`` job injects faults into an unmodified
  pipeline run;
* :func:`install` / the :func:`active_plan` context manager — tests.

Plan syntax (semicolon-separated sites, comma-separated ``key=value``
fields)::

    REPRO_FAULT_PLAN="spill.read:p=0.3,n=4,seed=7;ingest.chunk:p=1,n=2"

Fields: ``p`` (trigger probability per hit, default 1), ``n`` (total
trigger budget, default unbounded), ``seed`` (per-site RNG seed, default
0), ``after`` (skip the first ``after`` hits), ``kind`` — ``transient``
(raise :class:`~repro.exceptions.TransientError`; the default),
``integrity`` (raise :class:`~repro.exceptions.IntegrityError`) or
``corrupt`` (do not raise; the site itself damages data so checksum
validation can be exercised).

A plan whose trigger budget ``n`` is smaller than the retry policy's
``max_attempts`` is guaranteed to complete: a single unit of work can
never see more consecutive failures than the site has triggers left.
"""

from __future__ import annotations

import os
import random
import threading
import zlib
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro import telemetry as _telemetry
from repro.exceptions import AmalurError, IntegrityError, TransientError

ENV_VAR = "REPRO_FAULT_PLAN"

KINDS = ("transient", "integrity", "corrupt")

#: Every site compiled into the engine, for plan authors and the
#: reliability benchmark's site census. Plans may name other sites (a
#: test can invent its own), but these are the ones production code
#: crosses.
KNOWN_SITES = (
    "ingest.chunk",
    "parallel.task",
    "serving.request",
    "spill.read",
    "spill.write",
)

#: The one branch every fault site tests. Mutated only by :func:`install`
#: and :func:`clear`; read directly (``faults.ACTIVE``) so the disabled
#: cost of a site is a single attribute load.
ACTIVE = False

_state_lock = threading.Lock()
_injector: Optional["FaultInjector"] = None


class FaultSpec:
    """One site's fault configuration inside a plan."""

    __slots__ = ("site", "kind", "probability", "max_triggers", "seed", "after")

    def __init__(
        self,
        site: str,
        kind: str = "transient",
        probability: float = 1.0,
        max_triggers: Optional[int] = None,
        seed: int = 0,
        after: int = 0,
    ):
        if kind not in KINDS:
            raise AmalurError(f"unknown fault kind {kind!r}; expected one of {KINDS}")
        if not (0.0 <= probability <= 1.0):
            raise AmalurError(f"fault probability must be in [0, 1], got {probability}")
        if max_triggers is not None and max_triggers < 0:
            raise AmalurError(f"fault trigger budget must be >= 0, got {max_triggers}")
        self.site = site
        self.kind = kind
        self.probability = float(probability)
        self.max_triggers = max_triggers
        self.seed = int(seed)
        self.after = int(after)

    def __repr__(self) -> str:
        return (
            f"FaultSpec({self.site!r}, kind={self.kind!r}, p={self.probability}, "
            f"n={self.max_triggers}, seed={self.seed}, after={self.after})"
        )


class FaultPlan:
    """A named set of :class:`FaultSpec`\\ s, parseable from the env string."""

    def __init__(self, specs: Iterator[FaultSpec] = ()):
        self.specs: Dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.site in self.specs:
                raise AmalurError(f"fault plan names site {spec.site!r} twice")
            self.specs[spec.site] = spec

    _FIELD_ALIASES = {
        "p": "probability", "probability": "probability",
        "n": "max_triggers", "count": "max_triggers", "max_triggers": "max_triggers",
        "seed": "seed", "after": "after", "kind": "kind",
    }

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse ``site:k=v,k=v;site2:...`` (the ``REPRO_FAULT_PLAN`` syntax)."""
        specs: List[FaultSpec] = []
        for entry in text.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            site, _, field_text = entry.partition(":")
            site = site.strip()
            if not site:
                raise AmalurError(f"fault plan entry {entry!r} has no site name")
            fields: Dict[str, object] = {}
            for pair in field_text.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                key, eq, value = pair.partition("=")
                key = key.strip().lower()
                if not eq:
                    raise AmalurError(f"fault field {pair!r} is not key=value")
                canonical = cls._FIELD_ALIASES.get(key)
                if canonical is None:
                    raise AmalurError(
                        f"unknown fault field {key!r} in {entry!r}; "
                        f"expected one of {sorted(set(cls._FIELD_ALIASES))}"
                    )
                value = value.strip()
                if canonical == "kind":
                    fields[canonical] = value
                elif canonical == "probability":
                    fields[canonical] = float(value)
                else:
                    fields[canonical] = int(value)
            specs.append(FaultSpec(site, **fields))  # type: ignore[arg-type]
        return cls(iter(specs))

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:
        return f"FaultPlan({sorted(self.specs)})"


class _SiteState:
    __slots__ = ("spec", "rng", "hits", "triggers")

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        # Stable per-site stream: the site name hashed with crc32 (never
        # the salted builtin hash) mixed into the plan seed.
        self.rng = random.Random(spec.seed ^ zlib.crc32(spec.site.encode()))
        self.hits = 0
        self.triggers = 0


class FaultInjector:
    """Live trigger state for one installed :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._sites = {site: _SiteState(spec) for site, spec in plan.specs.items()}

    def hit(self, site: str) -> Optional[FaultSpec]:
        """Record one crossing of ``site``; the spec when it triggers.

        The decision consumes exactly one draw of the site's seeded RNG
        per hit, so trigger indices are a pure function of the plan.
        """
        state = self._sites.get(site)
        if state is None:
            return None
        with self._lock:
            state.hits += 1
            spec = state.spec
            if state.hits <= spec.after:
                return None
            if spec.max_triggers is not None and state.triggers >= spec.max_triggers:
                return None
            if spec.probability < 1.0 and state.rng.random() >= spec.probability:
                return None
            state.triggers += 1
        if _telemetry.ENABLED:
            _telemetry.counter_add("faults.injected")
            _telemetry.counter_add(f"faults.injected.{site}")
        return spec

    def snapshot(self) -> Dict[str, Tuple[int, int]]:
        """Per-site ``(hits, triggers)`` counts (tests, chaos reports)."""
        with self._lock:
            return {s: (st.hits, st.triggers) for s, st in self._sites.items()}


def install(plan) -> FaultInjector:
    """Activate a plan (a :class:`FaultPlan` or its string syntax)."""
    global ACTIVE, _injector
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    with _state_lock:
        _injector = FaultInjector(plan)
        ACTIVE = len(plan) > 0
        return _injector


def clear() -> None:
    """Deactivate fault injection (idempotent)."""
    global ACTIVE, _injector
    with _state_lock:
        ACTIVE = False
        _injector = None


def injector() -> Optional[FaultInjector]:
    return _injector


def _restore(previous: Optional[FaultInjector]) -> None:
    global ACTIVE, _injector
    with _state_lock:
        _injector = previous
        ACTIVE = previous is not None


@contextmanager
def active_plan(plan):
    """Install a plan for a block, restoring the previous state on exit."""
    previous = _injector
    installed = install(plan)
    try:
        yield installed
    finally:
        _restore(previous)


def fault_point(site: str, **context) -> None:
    """Raise the planned fault when ``site`` triggers; no-op otherwise.

    Raising sites support ``transient`` and ``integrity`` kinds; a
    ``corrupt`` spec never raises here (sites that can damage data ask
    through :func:`hit` instead).
    """
    if not ACTIVE:
        return
    inj = _injector
    if inj is None:  # pragma: no cover - clear() raced us
        return
    spec = inj.hit(site)
    if spec is None or spec.kind == "corrupt":
        return
    detail = ", ".join(f"{k}={v}" for k, v in sorted(context.items()))
    suffix = f" ({detail})" if detail else ""
    if spec.kind == "integrity":
        raise IntegrityError(f"injected integrity fault at {site}{suffix}")
    raise TransientError(f"injected transient fault at {site}{suffix}")


def hit(site: str) -> Optional[FaultSpec]:
    """The triggered spec for one crossing of ``site`` (``None`` otherwise).

    For sites that implement their own fault behavior — e.g. the spill
    writer corrupting a just-written block when a ``corrupt`` spec
    triggers, so checksum validation has something real to catch.
    """
    if not ACTIVE:
        return None
    inj = _injector
    if inj is None:  # pragma: no cover - clear() raced us
        return None
    return inj.hit(site)


def _activate_from_env() -> None:
    text = os.environ.get(ENV_VAR, "").strip()
    if text:
        install(FaultPlan.parse(text))


_activate_from_env()

"""Fault tolerance for the long-running layers (PR 9).

Four cooperating pieces, each near-free when idle:

* :mod:`repro.reliability.faults` — deterministic, seeded fault
  injection at named sites (``spill.read``, ``spill.write``,
  ``ingest.chunk``, ``parallel.task``, ``serving.request``), activated
  by the ``REPRO_FAULT_PLAN`` environment variable or
  :func:`~repro.reliability.faults.active_plan`;
* :mod:`repro.reliability.retry` — :class:`RetryPolicy` with
  deterministic exponential backoff, applied to spill refaults, ingest
  chunk reads and parallel task execution;
* :mod:`repro.reliability.checkpoint` — :class:`CheckpointManager`
  with atomic write-then-rename and CRC32-checksummed segments, used by
  ``StreamingGD`` for bit-identical epoch resume;
* :mod:`repro.reliability.breaker` — :class:`CircuitBreaker` backing
  the serving layer's graceful degradation.

Import cost is three small pure-python modules; nothing here touches
numpy arrays until a checkpoint is actually saved.
"""

from repro.reliability.breaker import CircuitBreaker
from repro.reliability.checkpoint import Checkpoint, CheckpointManager
from repro.reliability.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    active_plan,
    clear,
    fault_point,
    injector,
    install,
)
from repro.reliability.retry import (
    INGEST_RETRY,
    SPILL_RETRY,
    TASK_RETRY,
    RetryPolicy,
)

__all__ = [
    "CircuitBreaker",
    "Checkpoint",
    "CheckpointManager",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "SPILL_RETRY",
    "INGEST_RETRY",
    "TASK_RETRY",
    "active_plan",
    "clear",
    "fault_point",
    "injector",
    "install",
]

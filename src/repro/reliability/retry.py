"""Retry with exponential backoff for transient pipeline failures.

:class:`RetryPolicy` is the one retry shape every layer shares: spill
refaults during blocked training, chunk reads during ingest and build,
and task dispatch inside the parallel pool. Only exceptions in the
policy's ``retryable`` classes — by default
:class:`~repro.exceptions.TransientError` — are retried; anything else
(including :class:`~repro.exceptions.IntegrityError`, whose artifact must
be rebuilt, not re-read) propagates immediately.

Backoff is exponential and **deterministic** (no random jitter): delay
``i`` is ``base_delay * multiplier**i`` capped at ``max_delay``.
Determinism matters here because the chaos matrix asserts bit parity
between faulty and fault-free runs — a retried unit of work must redo
exactly the same computation, and nothing about scheduling may depend on
an unseeded RNG.

Every retry emits telemetry (``retry.attempts``, ``retry.exhausted`` and
per-site ``retry.attempts.<site>`` counters) so a chaos run's report
shows precisely where recovery work happened.
"""

from __future__ import annotations

import time
from typing import Callable, Tuple, Type, TypeVar

from repro import telemetry as _telemetry
from repro.exceptions import TransientError

R = TypeVar("R")


class RetryPolicy:
    """How many times to retry, how long to wait, and what is retryable.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (``1`` disables retrying).
    base_delay / multiplier / max_delay:
        Deterministic exponential backoff: attempt ``i`` (0-based retry
        index) sleeps ``min(base_delay * multiplier**i, max_delay)``
        seconds before re-running.
    retryable:
        Exception classes worth retrying; everything else propagates on
        the first failure.
    sleep:
        Injection point for tests (defaults to :func:`time.sleep`).
    """

    __slots__ = (
        "max_attempts", "base_delay", "multiplier", "max_delay", "retryable", "sleep",
    )

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.005,
        multiplier: float = 2.0,
        max_delay: float = 0.25,
        retryable: Tuple[Type[BaseException], ...] = (TransientError,),
        sleep: Callable[[float], None] = time.sleep,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0 or multiplier < 1.0:
            raise ValueError(
                "backoff needs base_delay >= 0, max_delay >= 0, multiplier >= 1"
            )
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.max_delay = float(max_delay)
        self.retryable = tuple(retryable)
        self.sleep = sleep

    def delay(self, retry_index: int) -> float:
        """The deterministic backoff before the ``retry_index``-th retry."""
        return min(self.base_delay * self.multiplier**retry_index, self.max_delay)

    def call(self, fn: Callable[..., R], *args, site: str = "", **kwargs) -> R:
        """Run ``fn(*args, **kwargs)``, retrying retryable failures.

        After ``max_attempts`` failures the last exception is re-raised
        unchanged — callers that need escalation (the parallel pool's
        poison-task path) wrap it themselves, keeping this primitive
        exception-transparent.
        """
        retries = self.max_attempts - 1
        for attempt in range(self.max_attempts):
            try:
                return fn(*args, **kwargs)
            except self.retryable:
                if attempt >= retries:
                    if _telemetry.ENABLED:
                        _telemetry.counter_add("retry.exhausted")
                        if site:
                            _telemetry.counter_add(f"retry.exhausted.{site}")
                    raise
                if _telemetry.ENABLED:
                    _telemetry.counter_add("retry.attempts")
                    if site:
                        _telemetry.counter_add(f"retry.attempts.{site}")
                delay = self.delay(attempt)
                if delay > 0:
                    self.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def wraps(self, fn: Callable[..., R], site: str = "") -> Callable[..., R]:
        """A callable applying this policy to every invocation of ``fn``."""

        def wrapped(*args, **kwargs) -> R:
            return self.call(fn, *args, site=site, **kwargs)

        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        return wrapped

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, multiplier={self.multiplier}, "
            f"max_delay={self.max_delay})"
        )


#: Shared defaults for the wired-in layers. Spill refaults and chunk
#: reads back off briefly (page-cache / filesystem hiccups clear fast);
#: the pool keeps the same shape. ``max_attempts`` deliberately exceeds
#: the trigger budgets used by the CI chaos plans, so count-bounded plans
#: always complete.
SPILL_RETRY = RetryPolicy(max_attempts=8, base_delay=0.001, max_delay=0.05)
INGEST_RETRY = RetryPolicy(max_attempts=8, base_delay=0.001, max_delay=0.05)
TASK_RETRY = RetryPolicy(max_attempts=8, base_delay=0.001, max_delay=0.05)

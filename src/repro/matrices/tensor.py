"""Tensor view of data plus DI metadata (paper §III-D).

Section III-D sketches stacking the data matrix ``D_k`` with its mapping
and indicator metadata along a third dimension so that a single tensor
object carries both instances and integration metadata, ready for tensor
runtimes. :class:`MetadataTensor` realizes that view: slice 0 holds the
source's contribution in target shape, slice 1 the structural coverage
(which cells the source maps at all), and slice 2 the redundancy mask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.matrices.builder import IntegratedDataset, SourceFactor


@dataclass
class MetadataTensor:
    """A (n_sources, 3, r_T, c_T) tensor stacking data and DI metadata."""

    tensor: np.ndarray
    source_names: List[str]
    target_columns: List[str]

    DATA_SLICE = 0
    COVERAGE_SLICE = 1
    REDUNDANCY_SLICE = 2

    @property
    def shape(self) -> tuple:
        return self.tensor.shape

    def data(self, source: int) -> np.ndarray:
        return self.tensor[source, self.DATA_SLICE]

    def coverage(self, source: int) -> np.ndarray:
        return self.tensor[source, self.COVERAGE_SLICE]

    def redundancy(self, source: int) -> np.ndarray:
        return self.tensor[source, self.REDUNDANCY_SLICE]

    def materialize(self) -> np.ndarray:
        """Reconstruct the target purely with tensor algebra (einsum)."""
        return np.einsum(
            "krc,krc->rc",
            self.tensor[:, self.DATA_SLICE],
            self.tensor[:, self.REDUNDANCY_SLICE],
        )


def stack_metadata_tensor(dataset: IntegratedDataset) -> MetadataTensor:
    """Stack an integrated dataset into a :class:`MetadataTensor`."""
    slices = []
    names = []
    for factor in dataset.factors:
        contribution = factor.contribution()
        coverage = _coverage(factor)
        redundancy = factor.redundancy.to_dense()
        slices.append(np.stack([contribution, coverage, redundancy]))
        names.append(factor.name)
    tensor = np.stack(slices)
    return MetadataTensor(tensor, names, list(dataset.target_columns))


def _coverage(factor: SourceFactor) -> np.ndarray:
    row_mask = (factor.indicator.compressed >= 0).astype(float)
    col_mask = (factor.mapping.compressed >= 0).astype(float)
    return np.outer(row_mask, col_mask)

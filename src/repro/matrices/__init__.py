"""Matrix representations of data-integration metadata (paper §III).

Three matrices capture the DI metadata of each source table ``S_k``
relative to the target table ``T``:

* :class:`MappingMatrix` ``M_k`` — column correspondences (schema mapping),
  with a compressed row-vector form ``CM_k``;
* :class:`IndicatorMatrix` ``I_k`` — row correspondences (entity
  resolution), with a compressed row-vector form ``CI_k``;
* :class:`RedundancyMatrix` ``R_k`` — marks the cells of a source's
  contribution ``T_k = I_k D_k M_kᵀ`` that repeat values already provided
  by an earlier (base) source.

The :class:`IntegratedDataset` built by :mod:`repro.matrices.builder`
bundles one :class:`SourceFactor` per source and is the input to the
factorized linear-algebra layer.
"""

from repro.matrices.mapping_matrix import MappingMatrix
from repro.matrices.indicator_matrix import IndicatorMatrix
from repro.matrices.redundancy_matrix import (
    RedundancyMatrix,
    TrivialRedundancy,
    SparseComplementRedundancy,
    DenseRedundancy,
)
from repro.matrices.builder import (
    SourceFactor,
    IntegratedDataset,
    build_integrated_dataset,
    integrate_tables,
)
from repro.matrices.tensor import stack_metadata_tensor, MetadataTensor

__all__ = [
    "MappingMatrix",
    "IndicatorMatrix",
    "RedundancyMatrix",
    "TrivialRedundancy",
    "SparseComplementRedundancy",
    "DenseRedundancy",
    "SourceFactor",
    "IntegratedDataset",
    "build_integrated_dataset",
    "integrate_tables",
    "stack_metadata_tensor",
    "MetadataTensor",
]

"""Redundancy matrices ``R_k`` (paper §III-C)."""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse

from repro.exceptions import MappingError


class RedundancyMatrix:
    """Marks redundant cells in a source's contribution to the target.

    ``R_k`` has the shape of the target table ``(r_T, c_T)``;
    ``R_k[i, j] = 0`` when the cell ``T_k[i, j]`` of the contribution
    ``T_k = I_k D_k M_kᵀ`` repeats a value already provided by an earlier
    source (typically the base table), and ``1`` otherwise. The base
    table's redundancy matrix is all ones.

    The matrix is stored as a boolean mask; redundant cells are usually a
    small rectangle (overlapping rows × overlapping columns), so a sparse
    complement view is also available.
    """

    def __init__(self, source_name: str, mask: np.ndarray):
        mask = np.asarray(mask)
        if mask.ndim != 2:
            raise MappingError("redundancy matrix must be 2-D")
        if not np.isin(mask, (0, 1)).all():
            raise MappingError("redundancy matrix must be binary")
        self.source_name = source_name
        self._mask = mask.astype(np.float64)
        self._n_redundant = int(self._mask.size - self._mask.sum())

    @classmethod
    def all_ones(cls, source_name: str, n_target_rows: int, n_target_columns: int) -> "RedundancyMatrix":
        """The base table's redundancy matrix: nothing is redundant."""
        return cls(source_name, np.ones((n_target_rows, n_target_columns)))

    # -- shapes ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self._mask.shape

    @property
    def n_redundant(self) -> int:
        return self._n_redundant

    @property
    def redundancy_ratio(self) -> float:
        return self.n_redundant / self._mask.size if self._mask.size else 0.0

    @property
    def is_trivial(self) -> bool:
        """True when nothing is redundant (all-ones matrix)."""
        return self.n_redundant == 0

    # -- representations ------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        return self._mask.copy()

    def to_sparse_complement(self) -> sparse.csr_matrix:
        """Sparse matrix of the redundant (zero) cells — usually tiny."""
        return sparse.csr_matrix(1.0 - self._mask)

    # -- application ----------------------------------------------------------------
    def apply(self, contribution: np.ndarray) -> np.ndarray:
        """Hadamard-product the mask onto a contribution ``T_k``."""
        contribution = np.asarray(contribution, dtype=np.float64)
        if contribution.shape != self._mask.shape:
            raise MappingError(
                f"contribution shape {contribution.shape} does not match redundancy "
                f"matrix shape {self._mask.shape}"
            )
        return contribution * self._mask

    def column_mask(self) -> np.ndarray:
        """Per-target-column redundancy: fraction of redundant rows per column."""
        return 1.0 - self._mask.mean(axis=0)

    def row_mask(self) -> np.ndarray:
        """Per-target-row redundancy: fraction of redundant columns per row."""
        return 1.0 - self._mask.mean(axis=1)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RedundancyMatrix):
            return NotImplemented
        return np.array_equal(self._mask, other._mask)

    def __repr__(self) -> str:
        return (
            f"RedundancyMatrix({self.source_name!r}, shape={self.shape}, "
            f"redundant={self.n_redundant})"
        )

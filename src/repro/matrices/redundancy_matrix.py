"""Redundancy matrices ``R_k`` (paper §III-C), stored by what they cost.

``R_k`` has the shape of the target table ``(r_T, c_T)``; ``R_k[i, j] = 0``
when the cell ``T_k[i, j]`` of the contribution ``T_k = I_k D_k M_kᵀ``
repeats a value already provided by an earlier source (typically the base
table), and ``1`` otherwise.

A dense ``r_T × c_T`` float mask is the natural textbook encoding but a
terrible physical one: the base table's mask is *always* all ones, and a
non-base mask usually zeroes only a small overlap rectangle. At the scales
the sparse compute backends unlock (a 1M×10k one-hot factor is ~12 MB as
CSR) an all-ones mask would still allocate 80 GB. This module therefore
keeps the *logical* redundancy matrix behind one interface with three
physical representations:

* :class:`TrivialRedundancy` — the all-ones matrix stored lazily (shape
  only, O(1) memory); ``apply()`` is a no-op.
* :class:`SparseComplementRedundancy` — only the redundant (zero) cells,
  as a CSR "complement"; the common overlapping-rectangle case.
* :class:`DenseRedundancy` — the explicit mask, kept as the fallback for
  heavily redundant masks where CSR bookkeeping stops paying off.

Calling ``RedundancyMatrix(name, mask)`` auto-picks the representation
from the redundancy ratio, using the same
:data:`repro.costmodel.parameters.SPARSE_DENSITY_THRESHOLD` the compute
backends and the analytical cost model dispatch on — storage of ``R_k``
and storage of ``D_k`` reason from one constant. All representations are
semantically interchangeable: ``apply``, ``column_mask``, ``row_mask``,
``redundancy_ratio`` and ``__eq__`` agree cell-for-cell (the parity tests
assert this), and ``apply()`` preserves the contribution's storage format
— a CSR contribution stays CSR.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.exceptions import MappingError

#: Cells a validation / complement-extraction pass may touch at once. Bounds
#: every temporary to ~1 MiB of bools instead of the full-mask copies
#: ``np.isin`` used to allocate.
_SCAN_CHUNK_CELLS = 1 << 20


def _mask_sparsity_threshold() -> float:
    """The shared sparse-dispatch threshold (lazy import: costmodel pulls in
    the factorized layer, which imports this module)."""
    from repro.costmodel.parameters import SPARSE_DENSITY_THRESHOLD

    return SPARSE_DENSITY_THRESHOLD


def _iter_row_blocks(mask: np.ndarray) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(start_row, block)`` views covering ``mask`` chunk by chunk."""
    n_rows, n_columns = mask.shape
    rows_per_block = max(1, _SCAN_CHUNK_CELLS // max(n_columns, 1))
    for start in range(0, n_rows, rows_per_block):
        yield start, mask[start : start + rows_per_block]


def _validate_and_count_redundant(mask: np.ndarray) -> int:
    """Check a mask is binary (NaN rejected explicitly) and count its zeros.

    Runs in bounded memory: temporaries never exceed one row block, unlike
    the former ``np.isin(mask, (0, 1))`` which allocated several full-size
    copies of the mask.
    """
    n_redundant = 0
    for _, block in _iter_row_blocks(mask):
        if block.dtype.kind == "f" and np.isnan(block).any():
            raise MappingError("redundancy matrix must not contain NaN")
        zeros = block == 0
        if not np.logical_or(zeros, block == 1).all():
            raise MappingError("redundancy matrix must be binary")
        n_redundant += int(np.count_nonzero(zeros))
    return n_redundant


def _complement_from_mask(mask: np.ndarray) -> sparse.csr_matrix:
    """CSR matrix of the redundant (zero) cells of a dense 0/1 mask."""
    row_chunks = []
    col_chunks = []
    for start, block in _iter_row_blocks(mask):
        rows, cols = np.nonzero(block == 0)
        row_chunks.append(rows + start)
        col_chunks.append(cols)
    rows = np.concatenate(row_chunks) if row_chunks else np.empty(0, dtype=np.intp)
    cols = np.concatenate(col_chunks) if col_chunks else np.empty(0, dtype=np.intp)
    data = np.ones(rows.size, dtype=np.float64)
    return sparse.csr_matrix((data, (rows, cols)), shape=mask.shape)


class RedundancyMatrix:
    """Marks redundant cells in a source's contribution to the target.

    This is the polymorphic interface; instantiating it directly is the
    *auto constructor*: ``RedundancyMatrix(name, mask)`` validates the
    dense 0/1 mask and returns the representation its redundancy ratio
    warrants (see module docstring). Use the classmethods to construct
    without ever materializing a dense mask:

    * :meth:`all_ones` — the base table's matrix (nothing redundant);
    * :meth:`from_complement` — from a (sparse) matrix of redundant cells;
    * :meth:`from_rectangle` — from an overlap rectangle's row/column
      index sets.

    Equality is semantic: two representations compare equal iff they mask
    the same cells, regardless of physical storage.
    """

    source_name: str
    _shape: Tuple[int, int]

    def __new__(cls, *args, **kwargs):
        if cls is not RedundancyMatrix:
            return super().__new__(cls)
        return cls.auto(*args, **kwargs)

    # NOTE on the dispatching constructor: after ``__new__`` returns a
    # subclass instance, Python re-invokes ``type(obj).__init__`` with the
    # original ``(source_name, mask)`` arguments. Every subclass
    # ``__init__`` therefore starts with a ``_built`` guard (and absorbs
    # surplus ``*_args``/``**_kwargs``) making that second call a no-op.

    # -- constructors ---------------------------------------------------------------
    @classmethod
    def auto(cls, source_name: str, mask, threshold: Optional[float] = None) -> "RedundancyMatrix":
        """Pick the cheapest representation for a dense 0/1 mask.

        Trivial when nothing is redundant; a CSR complement while the
        redundancy ratio stays at or below ``threshold`` (default: the
        shared ``SPARSE_DENSITY_THRESHOLD``); the dense mask otherwise.
        """
        if sparse.issparse(mask):
            mask = np.asarray(mask.todense())
        mask = np.asarray(mask)
        if mask.ndim != 2:
            raise MappingError("redundancy matrix must be 2-D")
        n_redundant = _validate_and_count_redundant(mask)
        if n_redundant == 0:
            return TrivialRedundancy(source_name, mask.shape)
        if threshold is None:
            threshold = _mask_sparsity_threshold()
        if n_redundant <= threshold * mask.size:
            complement = _complement_from_mask(mask)
            return SparseComplementRedundancy._prevalidated(source_name, complement)
        # Defensive copy: the caller keeps ownership of its mask array.
        return DenseRedundancy._prevalidated(source_name, mask.astype(np.float64), n_redundant)

    @classmethod
    def all_ones(
        cls, source_name: str, n_target_rows: int, n_target_columns: int
    ) -> "TrivialRedundancy":
        """The base table's redundancy matrix: nothing is redundant.

        Stored lazily — O(1) memory regardless of the target shape.
        """
        return TrivialRedundancy(source_name, (n_target_rows, n_target_columns))

    @classmethod
    def from_complement(
        cls,
        source_name: str,
        shape: Tuple[int, int],
        complement,
        threshold: Optional[float] = None,
    ) -> "RedundancyMatrix":
        """Auto-pick a representation from the redundant cells themselves.

        ``complement`` is anything SciPy can read as a matrix whose
        *non-zero* cells are the redundant ones (a boolean overlap mask, a
        COO/CSR of rectangle coordinates, ...). The dense ``r_T × c_T``
        mask is only materialized if the redundancy ratio exceeds
        ``threshold`` and the dense fallback is selected.
        """
        shape = (int(shape[0]), int(shape[1]))
        if sparse.issparse(complement):
            comp = complement.tocsr()
        else:
            comp = sparse.csr_matrix(np.asarray(complement))
        if comp.shape != shape:
            raise MappingError(f"complement shape {comp.shape} does not match target shape {shape}")
        comp = comp.astype(np.float64)
        comp.sum_duplicates()
        comp.eliminate_zeros()
        if comp.nnz == 0:
            return TrivialRedundancy(source_name, shape)
        comp.data = np.ones_like(comp.data)
        if threshold is None:
            threshold = _mask_sparsity_threshold()
        size = shape[0] * shape[1]
        if comp.nnz <= threshold * size:
            return SparseComplementRedundancy._prevalidated(source_name, comp)
        mask = np.ones(shape, dtype=np.float64)
        coo = comp.tocoo()
        mask[coo.row, coo.col] = 0.0
        return DenseRedundancy._prevalidated(source_name, mask, int(comp.nnz))

    @classmethod
    def from_rectangle(
        cls,
        source_name: str,
        shape: Tuple[int, int],
        redundant_rows,
        redundant_columns,
        threshold: Optional[float] = None,
    ) -> "RedundancyMatrix":
        """Representation for an overlap rectangle ``rows × columns``.

        Builds the CSR complement directly from the two index sets — the
        builder's common case — without a dense intermediate.
        """
        shape = (int(shape[0]), int(shape[1]))
        rows = np.unique(np.asarray(redundant_rows, dtype=np.int64).ravel())
        cols = np.unique(np.asarray(redundant_columns, dtype=np.int64).ravel())
        if rows.size and (rows[0] < 0 or rows[-1] >= shape[0]):
            raise MappingError("redundant row index out of range")
        if cols.size and (cols[0] < 0 or cols[-1] >= shape[1]):
            raise MappingError("redundant column index out of range")
        n_redundant = rows.size * cols.size
        if n_redundant == 0:
            return TrivialRedundancy(source_name, shape)
        if threshold is None:
            threshold = _mask_sparsity_threshold()
        size = shape[0] * shape[1]
        if n_redundant > threshold * size:
            # Heavy rectangle: fill the dense mask directly — the coordinate
            # arrays a CSR detour would allocate cost several times more.
            mask = np.ones(shape, dtype=np.float64)
            mask[np.ix_(rows, cols)] = 0.0
            return DenseRedundancy._prevalidated(source_name, mask, n_redundant)
        row_idx = np.repeat(rows, cols.size)
        col_idx = np.tile(cols, rows.size)
        comp = sparse.csr_matrix(
            (np.ones(n_redundant, dtype=np.float64), (row_idx, col_idx)), shape=shape
        )
        return SparseComplementRedundancy._prevalidated(source_name, comp)

    # -- shapes ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self._shape

    @property
    def size(self) -> int:
        return self._shape[0] * self._shape[1]

    @property
    def n_redundant(self) -> int:
        raise NotImplementedError

    @property
    def redundancy_ratio(self) -> float:
        return self.n_redundant / self.size if self.size else 0.0

    @property
    def is_trivial(self) -> bool:
        """True when nothing is redundant (all-ones matrix)."""
        return self.n_redundant == 0

    @property
    def nbytes(self) -> int:
        """Bytes of the mask payload actually allocated by this representation."""
        raise NotImplementedError

    @property
    def dense_nbytes(self) -> int:
        """Bytes the dense ``r_T × c_T`` float64 encoding would allocate."""
        return self.size * np.dtype(np.float64).itemsize

    # -- representations ------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """The explicit ``r_T × c_T`` 0/1 mask (allocates; escape hatch only)."""
        raise NotImplementedError

    def to_sparse_complement(self) -> sparse.csr_matrix:
        """Sparse matrix of the redundant (zero) cells — usually tiny."""
        raise NotImplementedError

    # -- application ----------------------------------------------------------------
    def apply(self, contribution):
        """Zero the redundant cells of a contribution ``T_k`` (Hadamard with
        the mask), preserving the contribution's storage format: dense in →
        dense out, CSR in → CSR out."""
        raise NotImplementedError

    def _coerce_contribution(self, contribution):
        """Normalize a contribution (array-like or SciPy sparse) to float64
        CSR / ndarray and check it is target-shaped."""
        if sparse.issparse(contribution):
            coerced = contribution.tocsr()
            if coerced.dtype != np.float64:
                coerced = coerced.astype(np.float64)
        else:
            coerced = np.asarray(contribution, dtype=np.float64)
        if coerced.shape != self._shape:
            raise MappingError(
                f"contribution shape {coerced.shape} does not match redundancy "
                f"matrix shape {self._shape}"
            )
        return coerced

    # -- slicing --------------------------------------------------------------------
    def select_columns(self, indices: Sequence[int]) -> "RedundancyMatrix":
        """The redundancy matrix of a column projection of the target."""
        raise NotImplementedError

    def submatrix(self, rows, columns) -> "RedundancyMatrix":
        """The redundancy matrix restricted to given target rows × columns."""
        raise NotImplementedError

    # -- aggregate masks -------------------------------------------------------------
    def column_mask(self) -> np.ndarray:
        """Per-target-column redundancy: fraction of redundant rows per column."""
        counts = np.asarray(self.to_sparse_complement().sum(axis=0)).ravel()
        return counts / self._shape[0] if self._shape[0] else counts

    def row_mask(self) -> np.ndarray:
        """Per-target-row redundancy: fraction of redundant columns per row."""
        counts = np.asarray(self.to_sparse_complement().sum(axis=1)).ravel()
        return counts / self._shape[1] if self._shape[1] else counts

    # -- comparison -----------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RedundancyMatrix):
            return NotImplemented
        if self._shape != other._shape:
            return False
        if self.n_redundant != other.n_redundant:
            return False
        if self.n_redundant == 0:
            return True
        difference = self.to_sparse_complement() != other.to_sparse_complement()
        return difference.nnz == 0

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.source_name!r}, shape={self._shape}, "
            f"redundant={self.n_redundant})"
        )


class TrivialRedundancy(RedundancyMatrix):
    """The all-ones redundancy matrix, stored lazily (shape only).

    ``apply()`` is a no-op: the contribution is returned unchanged (after a
    shape check), whatever its storage format. This is the base table's
    matrix and the common case for disjoint-column star joins, so the
    representation that used to dominate memory now costs O(1).
    """

    def __init__(self, source_name: str = "", shape: Tuple[int, int] = (0, 0), *_args, **_kwargs):
        if getattr(self, "_built", False):
            return  # re-init after the dispatching __new__; already constructed
        n_rows, n_columns = int(shape[0]), int(shape[1])
        if n_rows < 0 or n_columns < 0:
            raise MappingError(f"invalid redundancy matrix shape {shape!r}")
        self.source_name = source_name
        self._shape = (n_rows, n_columns)
        self._built = True

    @property
    def n_redundant(self) -> int:
        return 0

    @property
    def nbytes(self) -> int:
        return 0

    def to_dense(self) -> np.ndarray:
        return np.ones(self._shape, dtype=np.float64)

    def to_sparse_complement(self) -> sparse.csr_matrix:
        return sparse.csr_matrix(self._shape, dtype=np.float64)

    def apply(self, contribution):
        return self._coerce_contribution(contribution)

    def select_columns(self, indices: Sequence[int]) -> "TrivialRedundancy":
        return TrivialRedundancy(self.source_name, (self._shape[0], len(list(indices))))

    def submatrix(self, rows, columns) -> "TrivialRedundancy":
        return TrivialRedundancy(self.source_name, (len(list(rows)), len(list(columns))))

    def column_mask(self) -> np.ndarray:
        return np.zeros(self._shape[1], dtype=np.float64)

    def row_mask(self) -> np.ndarray:
        return np.zeros(self._shape[0], dtype=np.float64)


class SparseComplementRedundancy(RedundancyMatrix):
    """Stores only the redundant cells, as a CSR complement.

    The usual non-trivial case: redundancy is an overlap rectangle
    (overlapping rows × overlapping columns), a vanishing fraction of the
    target. Memory is O(nnz) of the complement instead of O(r_T · c_T).
    """

    def __init__(self, source_name: str = "", complement=None, shape=None, *_args, **_kwargs):
        if getattr(self, "_built", False):
            return  # re-init after the dispatching __new__; already constructed
        if sparse.issparse(complement):
            comp = complement.tocsr()
        else:
            comp = sparse.csr_matrix(np.asarray(complement))
        comp = comp.astype(np.float64)
        comp.sum_duplicates()
        comp.eliminate_zeros()
        if comp.nnz:
            comp.data = np.ones_like(comp.data)
        if shape is not None and (int(shape[0]), int(shape[1])) != comp.shape:
            raise MappingError(
                f"complement shape {comp.shape} does not match target shape {tuple(shape)}"
            )
        self._setup(source_name, comp)

    @classmethod
    def _prevalidated(cls, source_name: str, complement: sparse.csr_matrix):
        """Internal constructor for complements this module built itself
        (canonical CSR, float64, all-ones data): skips re-normalization."""
        instance = cls.__new__(cls)
        instance._setup(source_name, complement)
        return instance

    def _setup(self, source_name: str, complement: sparse.csr_matrix) -> None:
        self.source_name = source_name
        self._shape = (int(complement.shape[0]), int(complement.shape[1]))
        self._complement = complement
        self._coordinates = None
        self._built = True

    @property
    def n_redundant(self) -> int:
        return int(self._complement.nnz)

    @property
    def nbytes(self) -> int:
        comp = self._complement
        return int(comp.data.nbytes + comp.indices.nbytes + comp.indptr.nbytes)

    def _coords(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._coordinates is None:
            coo = self._complement.tocoo()
            self._coordinates = (coo.row, coo.col)
        return self._coordinates

    def to_dense(self) -> np.ndarray:
        mask = np.ones(self._shape, dtype=np.float64)
        rows, cols = self._coords()
        mask[rows, cols] = 0.0
        return mask

    def to_sparse_complement(self) -> sparse.csr_matrix:
        return self._complement.copy()

    def apply(self, contribution):
        coerced = self._coerce_contribution(contribution)
        if sparse.issparse(coerced):
            masked = (coerced - coerced.multiply(self._complement)).tocsr()
            masked.eliminate_zeros()
            return masked
        out = coerced.copy()
        rows, cols = self._coords()
        out[rows, cols] = 0.0
        return out

    def select_columns(self, indices: Sequence[int]) -> RedundancyMatrix:
        indices = list(indices)
        sliced = self._complement.tocsc()[:, indices].tocsr()
        return RedundancyMatrix.from_complement(
            self.source_name, (self._shape[0], len(indices)), sliced
        )

    def submatrix(self, rows, columns) -> RedundancyMatrix:
        rows = np.asarray(rows, dtype=int)
        columns = list(columns)
        sliced = self._complement[rows][:, columns]
        return RedundancyMatrix.from_complement(self.source_name, (rows.size, len(columns)), sliced)


class DenseRedundancy(RedundancyMatrix):
    """The explicit dense 0/1 mask — the fallback representation.

    Appropriate only when redundancy is heavy (ratio above the dispatch
    threshold), where per-cell CSR bookkeeping would cost more than the
    mask itself. The constructor copies the caller's mask; masks built by
    this module take the no-copy :meth:`_prevalidated` path.
    """

    def __init__(self, source_name: str = "", mask=None, *_args, **_kwargs):
        if getattr(self, "_built", False):
            return  # re-init after the dispatching __new__; already constructed
        mask = np.asarray(mask)
        if mask.ndim != 2:
            raise MappingError("redundancy matrix must be 2-D")
        n_redundant = _validate_and_count_redundant(mask)
        # astype always copies, so the caller keeps ownership of its array.
        self._setup(source_name, mask.astype(np.float64), n_redundant)

    @classmethod
    def _prevalidated(cls, source_name: str, mask: np.ndarray, n_redundant: int):
        """Internal constructor for masks this module built (or already
        scanned) itself: takes ownership without re-validating or copying."""
        instance = cls.__new__(cls)
        instance._setup(source_name, mask, n_redundant)
        return instance

    def _setup(self, source_name: str, mask: np.ndarray, n_redundant: int) -> None:
        self.source_name = source_name
        self._mask = mask
        self._shape = (int(mask.shape[0]), int(mask.shape[1]))
        self._n_redundant = n_redundant
        self._built = True

    @property
    def n_redundant(self) -> int:
        return self._n_redundant

    @property
    def nbytes(self) -> int:
        return int(self._mask.nbytes)

    def to_dense(self) -> np.ndarray:
        return self._mask.copy()

    def to_sparse_complement(self) -> sparse.csr_matrix:
        return _complement_from_mask(self._mask)

    def apply(self, contribution):
        coerced = self._coerce_contribution(contribution)
        if sparse.issparse(coerced):
            row_idx = np.repeat(np.arange(coerced.shape[0]), np.diff(coerced.indptr))
            data = coerced.data * self._mask[row_idx, coerced.indices]
            masked = sparse.csr_matrix(
                (data, coerced.indices.copy(), coerced.indptr.copy()), shape=coerced.shape
            )
            masked.eliminate_zeros()
            return masked
        return coerced * self._mask

    def _sliced(self, mask_slice: np.ndarray) -> RedundancyMatrix:
        """Re-dispatch a (freshly copied, known-valid) slice of the mask:
        projecting away the redundant region should drop back to the trivial
        or sparse representation instead of staying dense forever."""
        n_redundant = int(mask_slice.size - np.count_nonzero(mask_slice))
        if n_redundant == 0:
            return TrivialRedundancy(self.source_name, mask_slice.shape)
        if n_redundant <= _mask_sparsity_threshold() * mask_slice.size:
            complement = _complement_from_mask(mask_slice)
            return SparseComplementRedundancy._prevalidated(self.source_name, complement)
        return DenseRedundancy._prevalidated(self.source_name, mask_slice, n_redundant)

    def select_columns(self, indices: Sequence[int]) -> RedundancyMatrix:
        return self._sliced(self._mask[:, list(indices)])

    def submatrix(self, rows, columns) -> RedundancyMatrix:
        rows = np.asarray(rows, dtype=int)
        columns = np.asarray(list(columns), dtype=int)
        return self._sliced(self._mask[np.ix_(rows, columns)])

    def column_mask(self) -> np.ndarray:
        return 1.0 - self._mask.mean(axis=0)

    def row_mask(self) -> np.ndarray:
        return 1.0 - self._mask.mean(axis=1)

"""Build the integrated (factorized) representation of a set of silo tables.

The builder turns relational tables plus DI metadata (column matches from
schema matching, row matches from entity resolution, a Table I scenario)
into one :class:`SourceFactor` per source — the quadruple
``(D_k, M_k, I_k, R_k)`` of the paper — bundled in an
:class:`IntegratedDataset`. The integrated dataset can reconstruct
(materialize) the target table, and is the input to the factorized
linear-algebra layer in :mod:`repro.factorized`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse

from repro.backends import Backend, BackendSpec, resolve_backend
from repro.exceptions import MappingError
from repro.matrices.indicator_matrix import IndicatorMatrix
from repro.matrices.mapping_matrix import MappingMatrix
from repro.matrices.redundancy_matrix import RedundancyMatrix
from repro.metadata.entity_resolution import RowMatch
from repro.metadata.mappings import ScenarioType
from repro.metadata.schema_matching import ColumnMatch
from repro.relational.table import Table


@dataclass
class SourceFactor:
    """One source table in factorized form: ``(D_k, M_k, I_k, R_k)``.

    ``data`` holds the mapped numeric columns of the source (the processed
    matrix ``D_k``); ``source_columns`` names its columns in order.
    SciPy sparse input is accepted and kept sparse: reading ``data``
    densifies lazily (only the dense code paths pay for it), while
    :meth:`storage` exposes the backend-prepared physical form (dense or
    CSR) the factorized operators compute with.
    """

    name: str
    data: np.ndarray  # property-backed (attached below); dense or SciPy sparse input
    source_columns: List[str]
    mapping: MappingMatrix
    indicator: IndicatorMatrix
    redundancy: RedundancyMatrix
    backend: Optional[Backend] = None

    def __post_init__(self) -> None:
        rows, cols = self._data_shape()
        if cols != len(self.source_columns):
            raise MappingError(
                f"data for {self.name!r} has {cols} columns but "
                f"{len(self.source_columns)} column names were given"
            )
        if self.mapping.n_source_columns != cols:
            raise MappingError(
                f"mapping matrix for {self.name!r} expects {self.mapping.n_source_columns} "
                f"source columns, data has {cols}"
            )
        if self.indicator.n_source_rows != rows:
            raise MappingError(
                f"indicator matrix for {self.name!r} expects {self.indicator.n_source_rows} "
                f"source rows, data has {rows}"
            )
        expected_shape = (self.indicator.n_target_rows, self.mapping.n_target_columns)
        if self.redundancy.shape != expected_shape:
            raise MappingError(
                f"redundancy matrix for {self.name!r} has shape {self.redundancy.shape}, "
                f"expected {expected_shape}"
            )

    # -- raw storage state (managed by the `data` property below) ---------------------------
    def _raw_data(self):
        """Whatever was provided, without densifying: CSR or dense ndarray."""
        return self._sparse_data if self._dense_data is None else self._dense_data

    def _data_shape(self) -> Tuple[int, int]:
        return self._raw_data().shape

    @property
    def n_rows(self) -> int:
        return self._data_shape()[0]

    @property
    def n_columns(self) -> int:
        return self._data_shape()[1]

    # -- physical storage (compute backends) ----------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of non-zero cells of ``D_k`` (cached; data is immutable)."""
        if self._nnz is None:
            if self._dense_data is None:
                self._nnz = int(self._sparse_data.nnz)
            else:
                self._nnz = int(np.count_nonzero(self._dense_data))
        return self._nnz

    @property
    def density(self) -> float:
        """Fraction of non-zero cells of ``D_k`` (1.0 for an empty matrix)."""
        rows, cols = self._data_shape()
        return self.nnz / (rows * cols) if rows * cols else 1.0

    def storage(self, backend: BackendSpec = None):
        """The backend-prepared physical form of ``D_k`` (cached per backend).

        ``backend`` defaults to the factor's own backend (dense when unset).
        """
        resolved = resolve_backend(backend if backend is not None else self.backend)
        key = resolved.storage_cache_key
        cached = self._storage_cache.get(key)
        if cached is None:
            cached = resolved.prepare(self._raw_data())
            self._storage_cache[key] = cached
        return cached

    def with_backend(self, backend: BackendSpec) -> "SourceFactor":
        """A copy of this factor bound to ``backend`` (data shared, not densified)."""
        return SourceFactor(
            self.name,
            self._raw_data(),
            list(self.source_columns),
            self.mapping,
            self.indicator,
            self.redundancy,
            backend=resolve_backend(backend),
        )

    def cells(self, rows, cols) -> np.ndarray:
        """Gather ``D_k[rows[i], cols[i]]`` without densifying sparse storage."""
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        raw = self._raw_data()
        if sparse.issparse(raw):
            if rows.size == 0:
                return np.empty(0, dtype=np.float64)
            return np.asarray(raw[rows, cols], dtype=np.float64).ravel()
        return np.asarray(raw[rows, cols], dtype=np.float64)

    def contribution(self) -> np.ndarray:
        """The raw contribution ``T_k = I_k D_k M_kᵀ`` (dense, target-shaped).

        ``M_k`` is a (partial) permutation, so the multiplication is executed
        as a column scatter instead of a dense matmul.
        """
        lifted = self.indicator.apply(self.data)  # (r_T, c_Sk)
        out = np.zeros((self.indicator.n_target_rows, self.mapping.n_target_columns))
        out[:, self.mapping.mapped_target_indices()] = lifted[
            :, self.mapping.mapped_source_indices()
        ]
        return out

    def masked_contribution(self) -> np.ndarray:
        """The deduplicated contribution ``(I_k D_k M_kᵀ) ∘ R_k``."""
        return self.redundancy.apply(self.contribution())


def _source_factor_get_data(self) -> np.ndarray:
    """The canonical dense ``D_k`` (densified lazily from sparse input)."""
    if self._dense_data is None:
        self._dense_data = np.asarray(self._sparse_data.todense(), dtype=np.float64)
    return self._dense_data


def _source_factor_set_data(self, value) -> None:
    # Any (re)assignment invalidates derived state.
    self._storage_cache: Dict[object, object] = {}
    self._nnz: Optional[int] = None
    if sparse.issparse(value):
        csr = value.tocsr().astype(np.float64)
        csr.eliminate_zeros()
        self._sparse_data = csr
        self._dense_data = None
        self._storage_cache["sparse"] = csr  # SparseBackend.storage_cache_key
    else:
        self._dense_data = np.atleast_2d(np.asarray(value, dtype=np.float64))
        self._sparse_data = None


# `data` is property-backed so sparse input stays sparse until a dense code
# path actually reads it. Attached after the dataclass decorator runs, so the
# property object is not mistaken for a field default.
SourceFactor.data = property(_source_factor_get_data, _source_factor_set_data)


@dataclass
class IntegratedDataset:
    """A target table kept in factorized form over its source factors.

    Attributes
    ----------
    target_columns:
        Names of the target (mediated) schema columns, all numeric.
    n_target_rows:
        Number of rows of the (virtual) target table.
    factors:
        One :class:`SourceFactor` per source; the first factor is the base
        table whose redundancy matrix is all ones.
    scenario:
        The Table I scenario the dataset was built under (if known).
    label_column:
        Name of the supervised-learning label column, if any.
    backend:
        The compute backend (``repro.backends``) the factorized operators
        should execute with; ``None`` means dense (the default engine).
    """

    target_columns: List[str]
    n_target_rows: int
    factors: List[SourceFactor]
    scenario: Optional[ScenarioType] = None
    label_column: Optional[str] = None
    name: str = "T"
    backend: Optional[Backend] = None

    def __post_init__(self) -> None:
        if not self.factors:
            raise MappingError("an integrated dataset needs at least one source factor")
        if self.backend is not None:
            self.backend = resolve_backend(self.backend)
        for factor in self.factors:
            if factor.mapping.n_target_columns != len(self.target_columns):
                raise MappingError(
                    f"factor {factor.name!r} maps {factor.mapping.n_target_columns} target "
                    f"columns, dataset has {len(self.target_columns)}"
                )
            if factor.indicator.n_target_rows != self.n_target_rows:
                raise MappingError(
                    f"factor {factor.name!r} indicates {factor.indicator.n_target_rows} target "
                    f"rows, dataset has {self.n_target_rows}"
                )
        if self.label_column is not None and self.label_column not in self.target_columns:
            raise MappingError(f"label column {self.label_column!r} not in target columns")

    # -- shapes ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n_target_rows, len(self.target_columns))

    @property
    def n_sources(self) -> int:
        return len(self.factors)

    @property
    def base(self) -> SourceFactor:
        return self.factors[0]

    @property
    def feature_columns(self) -> List[str]:
        return [c for c in self.target_columns if c != self.label_column]

    def factor(self, name: str) -> SourceFactor:
        for factor in self.factors:
            if factor.name == name:
                return factor
        raise MappingError(f"no source factor named {name!r}")

    # -- backends ------------------------------------------------------------------
    def with_backend(self, backend: BackendSpec) -> "IntegratedDataset":
        """A copy of this dataset (factors re-bound) running on ``backend``."""
        resolved = resolve_backend(backend)
        return IntegratedDataset(
            target_columns=list(self.target_columns),
            n_target_rows=self.n_target_rows,
            factors=[f.with_backend(resolved) for f in self.factors],
            scenario=self.scenario,
            label_column=self.label_column,
            name=self.name,
            backend=resolved,
        )

    # -- statistics used by the cost model ------------------------------------------------
    def total_source_cells(self) -> int:
        return sum(f.n_rows * f.n_columns for f in self.factors)

    def total_source_nnz(self) -> int:
        """Non-zero cells across every source — the sparse-plan cost driver."""
        return sum(f.nnz for f in self.factors)

    def source_densities(self) -> List[float]:
        """Per-factor non-zero density, in factor order."""
        return [f.density for f in self.factors]

    def overall_density(self) -> float:
        total = self.total_source_cells()
        return self.total_source_nnz() / total if total else 1.0

    def target_cells(self) -> int:
        return self.n_target_rows * len(self.target_columns)

    def tuple_ratio(self) -> float:
        """r_T / max_k r_Sk — how much the target replicates source rows."""
        largest_source = max(f.n_rows for f in self.factors)
        return self.n_target_rows / largest_source if largest_source else 0.0

    def feature_ratio(self) -> float:
        """c_T / max_k c_Sk — how much wider the target is than any source."""
        widest_source = max(f.n_columns for f in self.factors)
        return len(self.target_columns) / widest_source if widest_source else 0.0

    def redundancy_in_target(self) -> float:
        """Fraction of target cells that are covered by more than one source."""
        coverage = np.zeros(self.shape)
        for factor in self.factors:
            covered = (np.abs(factor.contribution()) > 0) | self._coverage_mask(factor)
            coverage += covered.astype(float)
        overlapping = np.sum(coverage > 1)
        return float(overlapping) / coverage.size if coverage.size else 0.0

    def _coverage_mask(self, factor: SourceFactor) -> np.ndarray:
        """Cells structurally covered by a factor (mapped row AND mapped column)."""
        row_mask = factor.indicator.compressed >= 0
        col_mask = factor.mapping.compressed >= 0
        return np.outer(row_mask, col_mask)

    # -- materialization -------------------------------------------------------------
    def materialize(self) -> np.ndarray:
        """Reconstruct the target table ``T = Σ_k (I_k D_k M_kᵀ) ∘ R_k``."""
        total = np.zeros(self.shape)
        for factor in self.factors:
            total += factor.masked_contribution()
        return total

    def materialize_table(self) -> Table:
        """Materialize into a relational :class:`Table` (floats, NULLs as 0)."""
        return Table.from_matrix(
            self.name, self.materialize(), self.target_columns, label_column=self.label_column
        )

    def labels(self) -> np.ndarray:
        """The label column of the materialized target as a 1-D array."""
        if self.label_column is None:
            raise MappingError("dataset has no label column")
        index = self.target_columns.index(self.label_column)
        return self.materialize()[:, index]

    def features(self) -> np.ndarray:
        """The non-label columns of the materialized target."""
        indices = [i for i, c in enumerate(self.target_columns) if c != self.label_column]
        return self.materialize()[:, indices]


# ---------------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------------


RowMatchesLike = Union[Sequence[RowMatch], Tuple[np.ndarray, np.ndarray]]


def _row_match_arrays(row_matches: RowMatchesLike) -> Tuple[np.ndarray, np.ndarray]:
    """Normalize row matches to (left_rows, right_rows) int64 index arrays.

    Accepts either a sequence of :class:`RowMatch` (the resolver's object
    form) or a pre-built pair of index arrays (the vectorized fast path of
    ``KeyBasedResolver.resolve_index``).
    """
    if isinstance(row_matches, tuple) and len(row_matches) == 2:
        left, right = row_matches
        return (
            np.asarray(left, dtype=np.int64),
            np.asarray(right, dtype=np.int64),
        )
    left = np.fromiter((m.left_row for m in row_matches), dtype=np.int64,
                       count=len(row_matches))
    right = np.fromiter((m.right_row for m in row_matches), dtype=np.int64,
                        count=len(row_matches))
    return left, right


def _target_rows_for_scenario(
    n_base_rows: int,
    n_other_rows: int,
    row_matches: RowMatchesLike,
    scenario: ScenarioType,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return, per target row, the originating base row and other row (-1 if none).

    Takes plain row counts (not tables) so the out-of-core streaming
    builder can derive the same row maps from chunk-stream metadata.
    """
    matched_left, matched_right = _row_match_arrays(row_matches)
    # Per base row, its matched other row (-1 when unmatched); for duplicate
    # left rows the last match wins, like the dict the seed implementation
    # built.
    other_of_base = np.full(n_base_rows, -1, dtype=np.int64)
    other_of_base[matched_left] = matched_right

    if scenario is ScenarioType.INNER_JOIN:
        base_rows = np.nonzero(other_of_base >= 0)[0].astype(np.int64)
        other_rows = other_of_base[base_rows]
    elif scenario is ScenarioType.LEFT_JOIN:
        base_rows = np.arange(n_base_rows, dtype=np.int64)
        other_rows = other_of_base
    elif scenario is ScenarioType.FULL_OUTER_JOIN:
        matched_other = np.zeros(n_other_rows, dtype=bool)
        matched_other[other_of_base[other_of_base >= 0]] = True
        other_only = np.nonzero(~matched_other)[0].astype(np.int64)
        base_rows = np.concatenate(
            [np.arange(n_base_rows, dtype=np.int64),
             np.full(other_only.size, -1, dtype=np.int64)]
        )
        other_rows = np.concatenate([other_of_base, other_only])
    elif scenario is ScenarioType.UNION:
        base_rows = np.concatenate(
            [np.arange(n_base_rows, dtype=np.int64),
             np.full(n_other_rows, -1, dtype=np.int64)]
        )
        other_rows = np.concatenate(
            [np.full(n_base_rows, -1, dtype=np.int64),
             np.arange(n_other_rows, dtype=np.int64)]
        )
    else:  # pragma: no cover - exhaustive enum
        raise MappingError(f"unknown scenario {scenario!r}")
    return base_rows, other_rows


def two_source_correspondences(
    base_columns: Sequence[str],
    other_columns: Sequence[str],
    column_matches: Sequence[ColumnMatch],
    target_columns: Sequence[str],
) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Source-column → target-column maps for the two-source scenarios.

    The mediated schema names target columns after the base table where the
    base provides them; matched columns of the other table map onto the
    base name, unmatched ones onto their own name (when in the target).
    """
    matched_base_by_other = {m.right_column: m.left_column for m in column_matches}
    target_set = set(target_columns)
    base_correspondences = {
        column: column for column in base_columns if column in target_set
    }
    other_correspondences: Dict[str, str] = {}
    for column in other_columns:
        target = matched_base_by_other.get(column, column)
        if target in target_set:
            other_correspondences[column] = target
    return base_correspondences, other_correspondences


def _numeric_mapped_columns(
    schema, correspondences: Dict[str, str], target_columns: Sequence[str]
) -> List[str]:
    """Source columns that map into the numeric target schema, in source order."""
    wanted = {
        source_column
        for source_column, target_column in correspondences.items()
        if target_column in target_columns
    }
    return [
        column.name
        for column in schema
        if column.name in wanted and column.dtype.is_numeric
    ]


def _contribution_mask(
    table: Table,
    row_map: np.ndarray,
    correspondences: Dict[str, str],
    target_columns: Sequence[str],
) -> np.ndarray:
    """Boolean mask of target cells where this source provides a non-null value."""
    target_index = {c: i for i, c in enumerate(target_columns)}
    row_map = np.asarray(row_map, dtype=np.int64)
    mask = np.zeros((row_map.size, len(target_columns)), dtype=bool)
    mapped = row_map >= 0
    gather = np.where(mapped, row_map, 0)
    for source_column, target_column in correspondences.items():
        j = target_index.get(target_column)
        if j is None:
            continue
        valid = table.column_valid(source_column)
        if valid.size:
            mask[:, j] = mapped & valid[gather]
    return mask


def _build_factor(
    table: Table,
    row_map: np.ndarray,
    correspondences: Dict[str, str],
    target_columns: Sequence[str],
    redundancy: RedundancyMatrix,
    backend: Optional[Backend] = None,
) -> SourceFactor:
    source_columns = _numeric_mapped_columns(table.schema, correspondences, target_columns)
    if not source_columns:
        raise MappingError(f"source {table.name!r} maps no numeric target columns")
    data = table.to_matrix(source_columns)
    mapping = MappingMatrix(
        table.name,
        target_columns,
        source_columns,
        {c: correspondences[c] for c in source_columns},
    )
    # The target-row → source-row map *is* the compressed indicator vector
    # CI_k; no per-row pair expansion needed.
    indicator = IndicatorMatrix(
        table.name, len(row_map), table.n_rows, np.asarray(row_map, dtype=np.int64)
    )
    return SourceFactor(
        table.name, data, source_columns, mapping, indicator, redundancy, backend=backend
    )


def integrate_tables(
    base: Table,
    other: Table,
    column_matches: Sequence[ColumnMatch],
    row_matches: RowMatchesLike,
    target_columns: Sequence[str],
    scenario: ScenarioType,
    label_column: Optional[str] = None,
    name: str = "T",
    backend: BackendSpec = None,
) -> IntegratedDataset:
    """Build an :class:`IntegratedDataset` for the two-source Table I scenarios.

    Parameters
    ----------
    base, other:
        The base table ``S_1`` and the discovered table ``S_2``.
    column_matches:
        Column correspondences *between the two sources* (left = base).
    row_matches:
        Row correspondences between the two sources (left = base row index):
        either a sequence of :class:`RowMatch` or a pre-built
        ``(left_rows, right_rows)`` pair of index arrays.
    target_columns:
        The mediated schema: numeric columns named after the base table's
        columns where the base provides them, otherwise after the other
        table's columns.
    scenario:
        One of the four Table I scenarios.
    label_column:
        Optional label column name (must appear in ``target_columns``).
    backend:
        Compute backend for the factorized operators (name, instance, or
        ``None`` for dense).
    """
    resolved_backend = resolve_backend(backend) if backend is not None else None
    target_columns = list(target_columns)
    base_correspondences, other_correspondences = two_source_correspondences(
        base.schema.names, other.schema.names, column_matches, target_columns
    )

    base_rows, other_rows = _target_rows_for_scenario(
        base.n_rows, other.n_rows, row_matches, scenario
    )
    n_target_rows = int(base_rows.size)

    base_mask = _contribution_mask(base, base_rows, base_correspondences, target_columns)
    other_mask = _contribution_mask(other, other_rows, other_correspondences, target_columns)

    # Base table: nothing redundant (lazy all-ones, no allocation). Other
    # table: redundant where the base already contributed a (non-null) value
    # to the same target cell — stored as a sparse complement built straight
    # from the overlap, never as a dense r_T × c_T float mask.
    target_shape = (n_target_rows, len(target_columns))
    base_redundancy = RedundancyMatrix.all_ones(base.name, *target_shape)
    other_redundancy = RedundancyMatrix.from_complement(
        other.name, target_shape, base_mask & other_mask
    )

    base_factor = _build_factor(
        base, base_rows, base_correspondences, target_columns, base_redundancy,
        backend=resolved_backend,
    )
    other_factor = _build_factor(
        other, other_rows, other_correspondences, target_columns, other_redundancy,
        backend=resolved_backend,
    )
    return IntegratedDataset(
        target_columns=target_columns,
        n_target_rows=n_target_rows,
        factors=[base_factor, other_factor],
        scenario=scenario,
        label_column=label_column,
        name=name,
        backend=resolved_backend,
    )


# ---------------------------------------------------------------------------------
# Delta-aware entry points (online serving)
# ---------------------------------------------------------------------------------


def replace_factor_arrays(
    factor: SourceFactor,
    data: np.ndarray,
    compressed: np.ndarray,
    n_target_rows: int,
    redundancy: RedundancyMatrix,
) -> SourceFactor:
    """A new :class:`SourceFactor` sharing ``factor``'s identity and column
    maps but carrying delta-extended arrays.

    This is the serving layer's incremental-maintenance entry point: after
    a delta batch extended ``D_k`` (new source rows), ``CI_k`` (new/filled
    target rows) and the redundancy complement, only these arrays change —
    the mapping matrix, source columns and backend are structural and are
    reused as-is, skipping the schema-side work of a full
    :func:`integrate_tables` rebuild. ``data`` may be (and typically is) a
    zero-copy view of a growable buffer.
    """
    indicator = IndicatorMatrix(
        factor.name, int(n_target_rows), int(data.shape[0]),
        np.asarray(compressed, dtype=np.int64),
    )
    return SourceFactor(
        factor.name,
        data,
        list(factor.source_columns),
        factor.mapping,
        indicator,
        redundancy,
        backend=factor.backend,
    )


def target_row_values(dataset: IntegratedDataset, rows: np.ndarray) -> np.ndarray:
    """The materialized target values of a subset of target rows.

    Computes ``T[rows, :] = Σ_k ((I_k D_k M_kᵀ) ∘ R_k)[rows, :]`` touching
    only the selected rows — the building block of the serving layer's
    rank-k Gram updates (``Gram += VᵀV`` for appended rows,
    ``Gram += V_newᵀV_new − V_oldᵀV_old`` for updated ones), where a full
    :meth:`IntegratedDataset.materialize` would be O(r_T · c_T).
    """
    rows = np.asarray(rows, dtype=np.int64)
    n_cols = len(dataset.target_columns)
    out = np.zeros((rows.size, n_cols))
    if rows.size == 0:
        return out
    col_range = np.arange(n_cols, dtype=np.int64)
    for factor in dataset.factors:
        source_rows = np.asarray(factor.indicator._compressed)[rows]
        mapped = source_rows >= 0
        if not mapped.any():
            continue
        lifted = np.zeros((rows.size, n_cols))
        block = factor.data[source_rows[mapped]]
        lifted[np.ix_(mapped, factor.mapping.mapped_target_indices())] = block[
            :, factor.mapping.mapped_source_indices()
        ]
        if not factor.redundancy.is_trivial:
            lifted = factor.redundancy.submatrix(rows, col_range).apply(lifted)
        out += lifted
    return out


def build_integrated_dataset(
    sources: Sequence[Table],
    correspondences: Dict[str, Dict[str, str]],
    row_maps: Dict[str, Sequence[int]],
    target_columns: Sequence[str],
    n_target_rows: int,
    scenario: Optional[ScenarioType] = None,
    label_column: Optional[str] = None,
    name: str = "T",
    backend: BackendSpec = None,
) -> IntegratedDataset:
    """General n-source builder from explicit correspondences and row maps.

    ``correspondences[source_name]`` maps source column → target column;
    ``row_maps[source_name]`` gives, per target row, the source row index
    (or -1). The first source is the base; redundancy is resolved in source
    order (earlier sources win), cell-wise on non-null contributions.
    """
    if not sources:
        raise MappingError("need at least one source table")
    resolved_backend = resolve_backend(backend) if backend is not None else None
    target_columns = list(target_columns)
    factors: List[SourceFactor] = []
    claimed = np.zeros((n_target_rows, len(target_columns)), dtype=bool)
    for table in sources:
        table_correspondences = correspondences.get(table.name, {})
        row_map = np.asarray(row_maps.get(table.name, []), dtype=np.int64)
        if row_map.size != n_target_rows:
            raise MappingError(
                f"row map for {table.name!r} has length {row_map.size}, expected {n_target_rows}"
            )
        mask = _contribution_mask(table, row_map, table_correspondences, target_columns)
        redundancy = RedundancyMatrix.from_complement(
            table.name, (n_target_rows, len(target_columns)), claimed & mask
        )
        factors.append(
            _build_factor(
                table, row_map, table_correspondences, target_columns, redundancy,
                backend=resolved_backend,
            )
        )
        claimed |= mask
    return IntegratedDataset(
        target_columns=target_columns,
        n_target_rows=n_target_rows,
        factors=factors,
        scenario=scenario,
        label_column=label_column,
        name=name,
        backend=resolved_backend,
    )

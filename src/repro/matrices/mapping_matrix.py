"""Mapping matrices ``M_k`` and their compressed form ``CM_k`` (paper §III-A)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np
from scipy import sparse

from repro.exceptions import MappingError


class MappingMatrix:
    """Column correspondences between a source table and the target table.

    ``M_k`` has shape ``(c_T, c_Sk)`` with ``M_k[i, j] = 1`` iff the ``j``-th
    (mapped) source column corresponds to the ``i``-th target column. Each
    source column maps to at most one target column and vice versa, so the
    matrix has at most one ``1`` per row and per column.

    The compressed form ``CM_k`` is a vector of length ``c_T`` whose ``i``-th
    entry is the source column index mapped to target column ``i`` (or
    ``-1``).
    """

    def __init__(
        self,
        source_name: str,
        target_columns: Sequence[str],
        source_columns: Sequence[str],
        correspondences: Dict[str, str],
    ):
        """Build from explicit correspondences ``{source_column: target_column}``."""
        self.source_name = source_name
        self.target_columns = list(target_columns)
        self.source_columns = list(source_columns)
        self.correspondences = dict(correspondences)

        target_index = {name: i for i, name in enumerate(self.target_columns)}
        source_index = {name: j for j, name in enumerate(self.source_columns)}
        compressed = np.full(len(self.target_columns), -1, dtype=np.int64)
        seen_targets: set = set()
        for source_column, target_column in self.correspondences.items():
            if source_column not in source_index:
                raise MappingError(
                    f"source column {source_column!r} not among mapped columns of "
                    f"{source_name!r}: {self.source_columns}"
                )
            if target_column not in target_index:
                raise MappingError(
                    f"target column {target_column!r} not in target schema {self.target_columns}"
                )
            if target_column in seen_targets:
                raise MappingError(
                    f"target column {target_column!r} mapped twice from source {source_name!r}"
                )
            seen_targets.add(target_column)
            compressed[target_index[target_column]] = source_index[source_column]
        self._compressed = compressed
        # Cached index arrays (computed once; the compressed vector is
        # immutable) backing the operator-plan gather/scatter kernels. The
        # caches are marked read-only so callers can index with them but
        # never mutate them in place.
        mapped_mask = compressed >= 0
        self._mapped_target_indices = np.nonzero(mapped_mask)[0].astype(np.intp)
        self._mapped_source_indices = compressed[mapped_mask].astype(np.intp)
        self._mapped_target_indices.setflags(write=False)
        self._mapped_source_indices.setflags(write=False)

    # -- shapes ------------------------------------------------------------------
    @property
    def n_target_columns(self) -> int:
        return len(self.target_columns)

    @property
    def n_source_columns(self) -> int:
        return len(self.source_columns)

    @property
    def shape(self) -> tuple:
        return (self.n_target_columns, self.n_source_columns)

    @property
    def n_mapped(self) -> int:
        """Number of target columns this source populates (c_Sk mapped)."""
        return int(np.sum(self._compressed >= 0))

    # -- representations ------------------------------------------------------------
    @property
    def compressed(self) -> np.ndarray:
        """The compressed mapping vector ``CM_k`` (copy)."""
        return self._compressed.copy()

    def to_dense(self) -> np.ndarray:
        """The full binary matrix ``M_k`` of shape ``(c_T, c_Sk)``."""
        dense = np.zeros(self.shape, dtype=np.float64)
        dense[self._mapped_target_indices, self._mapped_source_indices] = 1.0
        return dense

    def to_sparse(self) -> sparse.csr_matrix:
        """The full matrix in CSR form (the physical-level choice of §III-D)."""
        data = np.ones(self._mapped_target_indices.size, dtype=np.float64)
        return sparse.csr_matrix(
            (data, (self._mapped_target_indices, self._mapped_source_indices)),
            shape=self.shape,
        )

    @property
    def density(self) -> float:
        total = self.n_target_columns * self.n_source_columns
        return self.n_mapped / total if total else 0.0

    # -- lookups ------------------------------------------------------------------
    def target_index_of(self, source_column: str) -> Optional[int]:
        target = self.correspondences.get(source_column)
        if target is None:
            return None
        return self.target_columns.index(target)

    def source_index_of(self, target_column: str) -> Optional[int]:
        i = self.target_columns.index(target_column)
        j = int(self._compressed[i])
        return j if j >= 0 else None

    def mapped_target_indices(self) -> np.ndarray:
        """Target-column indices with a source mapping (cached, read-only)."""
        return self._mapped_target_indices

    def mapped_source_indices(self) -> np.ndarray:
        """Source-column indices in mapped-target order (cached, read-only)."""
        return self._mapped_source_indices

    # -- round-trips ----------------------------------------------------------------
    @classmethod
    def from_compressed(
        cls,
        source_name: str,
        target_columns: Sequence[str],
        source_columns: Sequence[str],
        compressed: Sequence[int],
    ) -> "MappingMatrix":
        """Rebuild a mapping matrix from its compressed vector."""
        if len(compressed) != len(target_columns):
            raise MappingError(
                f"compressed vector length {len(compressed)} != number of target "
                f"columns {len(target_columns)}"
            )
        correspondences = {}
        for i, j in enumerate(compressed):
            if j < 0:
                continue
            if j >= len(source_columns):
                raise MappingError(f"compressed entry {j} out of range for source columns")
            correspondences[source_columns[int(j)]] = target_columns[i]
        return cls(source_name, target_columns, source_columns, correspondences)

    @classmethod
    def from_dense(
        cls,
        source_name: str,
        target_columns: Sequence[str],
        source_columns: Sequence[str],
        dense: np.ndarray,
    ) -> "MappingMatrix":
        """Rebuild a mapping matrix from its full binary form."""
        dense = np.asarray(dense)
        if dense.shape != (len(target_columns), len(source_columns)):
            raise MappingError(
                f"dense shape {dense.shape} does not match ({len(target_columns)}, "
                f"{len(source_columns)})"
            )
        if not np.array_equal(dense, dense.astype(bool).astype(dense.dtype)):
            raise MappingError("mapping matrix must be binary")
        if (dense.sum(axis=1) > 1).any() or (dense.sum(axis=0) > 1).any():
            raise MappingError("mapping matrix must have at most one 1 per row and column")
        correspondences = {}
        for i in range(dense.shape[0]):
            for j in range(dense.shape[1]):
                if dense[i, j]:
                    correspondences[source_columns[j]] = target_columns[i]
        return cls(source_name, target_columns, source_columns, correspondences)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MappingMatrix):
            return NotImplemented
        return (
            self.target_columns == other.target_columns
            and self.source_columns == other.source_columns
            and np.array_equal(self._compressed, other._compressed)
        )

    def __repr__(self) -> str:
        return (
            f"MappingMatrix({self.source_name!r}, shape={self.shape}, "
            f"mapped={self.n_mapped})"
        )

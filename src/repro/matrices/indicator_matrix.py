"""Indicator matrices ``I_k`` and their compressed form ``CI_k`` (paper §III-B)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy import sparse

from repro.exceptions import MappingError


class IndicatorMatrix:
    """Row correspondences between a source table and the target table.

    ``I_k`` has shape ``(r_T, r_Sk)`` with ``I_k[i, j] = 1`` iff the ``j``-th
    source row maps to the ``i``-th target row. The compressed form
    ``CI_k`` is a vector of length ``r_T`` whose ``i``-th entry is the
    mapped source row index (or ``-1``).

    Unlike mapping matrices, a source row may map to *several* target rows
    (a many-to-one join expands source tuples), so columns of ``I_k`` may
    contain more than one ``1``; each target row still has at most one
    source row per source.
    """

    def __init__(self, source_name: str, n_target_rows: int, n_source_rows: int,
                 compressed: Sequence[int]):
        if len(compressed) != n_target_rows:
            raise MappingError(
                f"compressed vector length {len(compressed)} != r_T {n_target_rows}"
            )
        compressed = np.asarray(compressed, dtype=np.int64)
        if compressed.size and compressed.max(initial=-1) >= n_source_rows:
            raise MappingError("compressed indicator refers to a source row out of range")
        if compressed.size and compressed.min(initial=0) < -1:
            raise MappingError("compressed indicator entries must be >= -1")
        self.source_name = source_name
        self.n_target_rows = n_target_rows
        self.n_source_rows = n_source_rows
        self._compressed = compressed
        # Cached index arrays for the fast gather/scatter paths in apply()
        # and the compiled operator plans; read-only because they are
        # shared with callers (mapped_target_rows / mapped_source_rows).
        self._mapped_mask = compressed >= 0
        self._mapped_target_indices = np.nonzero(self._mapped_mask)[0].astype(np.intp)
        self._mapped_source_indices = compressed[self._mapped_mask].astype(np.intp)
        self._mapped_target_indices.setflags(write=False)
        self._mapped_source_indices.setflags(write=False)
        self._fully_mapped = bool(self._mapped_mask.all()) if compressed.size else True
        # Injective = no source row is referenced by two target rows (a 1:1
        # join); enables the fast scatter path in apply_transpose().
        self._injective = (
            np.unique(self._mapped_source_indices).size == self._mapped_source_indices.size
        )

    # -- shapes ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return (self.n_target_rows, self.n_source_rows)

    @property
    def n_mapped(self) -> int:
        """Number of target rows this source contributes to (r_Sk mapped)."""
        return int(self._mapped_target_indices.size)

    @property
    def is_injective(self) -> bool:
        """True when no source row feeds two target rows (a 1:1 join)."""
        return self._injective

    @property
    def density(self) -> float:
        total = self.n_target_rows * self.n_source_rows
        return self.n_mapped / total if total else 0.0

    # -- representations ------------------------------------------------------------
    @property
    def compressed(self) -> np.ndarray:
        """The compressed indicator vector ``CI_k`` (copy)."""
        return self._compressed.copy()

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        dense[self._mapped_target_indices, self._mapped_source_indices] = 1.0
        return dense

    def to_sparse(self) -> sparse.csr_matrix:
        data = np.ones(self._mapped_target_indices.size, dtype=np.float64)
        return sparse.csr_matrix(
            (data, (self._mapped_target_indices, self._mapped_source_indices)),
            shape=self.shape,
        )

    def mapped_target_rows(self) -> np.ndarray:
        """Target-row indices this source covers (cached, read-only)."""
        return self._mapped_target_indices

    def mapped_source_rows(self) -> np.ndarray:
        """Source-row indices in mapped-target order (cached, read-only)."""
        return self._mapped_source_indices

    def source_row_of(self, target_row: int) -> Optional[int]:
        j = int(self._compressed[target_row])
        return j if j >= 0 else None

    # -- fast application -------------------------------------------------------------
    def apply(self, source_matrix: np.ndarray, fill: float = 0.0) -> np.ndarray:
        """Compute ``I_k @ source_matrix`` without materializing ``I_k``.

        Rows of the result corresponding to unmapped target rows are
        ``fill`` (0 by default, matching the zero contribution in Figure 4c).
        """
        source_matrix = np.atleast_2d(np.asarray(source_matrix, dtype=np.float64))
        if source_matrix.shape[0] != self.n_source_rows:
            raise MappingError(
                f"matrix with {source_matrix.shape[0]} rows cannot be lifted by indicator "
                f"expecting {self.n_source_rows} source rows"
            )
        if self._fully_mapped and fill == 0.0:
            return source_matrix[self._compressed]
        out = np.full((self.n_target_rows, source_matrix.shape[1]), fill, dtype=np.float64)
        out[self._mapped_target_indices] = source_matrix[self._mapped_source_indices]
        return out

    def apply_transpose(self, target_matrix: np.ndarray) -> np.ndarray:
        """Compute ``I_kᵀ @ target_matrix`` without materializing ``I_k``.

        This scatters/accumulates target rows back onto source rows — the
        operation needed by gradients and cross-products in factorized form.
        """
        target_matrix = np.atleast_2d(np.asarray(target_matrix, dtype=np.float64))
        if target_matrix.shape[0] != self.n_target_rows:
            raise MappingError(
                f"matrix with {target_matrix.shape[0]} rows cannot be projected by indicator "
                f"expecting {self.n_target_rows} target rows"
            )
        out = np.zeros((self.n_source_rows, target_matrix.shape[1]), dtype=np.float64)
        gathered = target_matrix[self._mapped_target_indices]
        if self._injective:
            out[self._mapped_source_indices] = gathered
        else:
            # Group-by-source-row accumulation; bincount per operand column is
            # far faster than np.add.at for the many-to-one (join) case.
            for column in range(gathered.shape[1]):
                out[:, column] = np.bincount(
                    self._mapped_source_indices,
                    weights=gathered[:, column],
                    minlength=self.n_source_rows,
                )
        return out

    # -- round-trips ----------------------------------------------------------------
    @classmethod
    def from_row_pairs(
        cls,
        source_name: str,
        n_target_rows: int,
        n_source_rows: int,
        pairs: Sequence[tuple],
    ) -> "IndicatorMatrix":
        """Build from (target_row, source_row) pairs."""
        compressed = np.full(n_target_rows, -1, dtype=np.int64)
        for target_row, source_row in pairs:
            if not 0 <= target_row < n_target_rows:
                raise MappingError(f"target row {target_row} out of range")
            if not 0 <= source_row < n_source_rows:
                raise MappingError(f"source row {source_row} out of range")
            if compressed[target_row] != -1:
                raise MappingError(f"target row {target_row} mapped twice for {source_name!r}")
            compressed[target_row] = source_row
        return cls(source_name, n_target_rows, n_source_rows, compressed)

    @classmethod
    def from_dense(
        cls, source_name: str, dense: np.ndarray
    ) -> "IndicatorMatrix":
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise MappingError("indicator matrix must be 2-D")
        if not np.array_equal(dense, dense.astype(bool).astype(dense.dtype)):
            raise MappingError("indicator matrix must be binary")
        if (dense.sum(axis=1) > 1).any():
            raise MappingError("each target row maps to at most one source row")
        n_target_rows, n_source_rows = dense.shape
        compressed = np.full(n_target_rows, -1, dtype=np.int64)
        rows, cols = np.nonzero(dense)
        compressed[rows] = cols
        return cls(source_name, n_target_rows, n_source_rows, compressed)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IndicatorMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self._compressed, other._compressed)
        )

    def __repr__(self) -> str:
        return (
            f"IndicatorMatrix({self.source_name!r}, shape={self.shape}, "
            f"mapped={self.n_mapped})"
        )

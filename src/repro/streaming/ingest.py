"""Chunked columnar CSV ingest.

:class:`ChunkedCsvReader` reads row blocks and coerces them straight into
typed numpy columns + validity masks — the storage layout of
:class:`repro.relational.Table` — without the per-cell ``parse_cell`` loop
of the seed reader. Parsing is *block-at-a-time*: each raw chunk is
classified with numpy string kernels (null literals, booleans, integer
candidates) and converted with whole-array ``astype`` casts; only cells the
vectorized casts cannot handle fall back to the scalar parser, so the
semantics are exactly those of ``[parse_cell(c) for c in cells]`` followed
by :func:`repro.relational.types.coerce_column` — the parity suite asserts
this cell-for-cell.

Two consumption modes share one code path:

* ``read()`` — single pass, retains the parsed blocks and assembles a
  resident :class:`Table`; this is what ``repro.relational.io.read_csv``
  routes through (the single-chunk fast path for small files).
* ``chunks()`` — bounded memory: a first scan pass accumulates only the
  per-column type flags and the row count, then a second pass yields typed
  :class:`TableChunk` blocks that are never retained.

Both modes parse in parallel when ``repro.parallel`` is configured with
more than one worker: the file is still *read* sequentially (one handle,
one pass), but each raw row block is classified and typed on a worker via
an ordered bounded-window map, so chunk boundaries, per-chunk results and
yield order — and therefore every downstream byte — are identical to the
serial path at any worker count.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import parallel as _parallel
from repro import telemetry as _telemetry
from repro.exceptions import TableError
from repro.reliability import faults as _faults
from repro.reliability.retry import INGEST_RETRY
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import (
    _STORAGE_DTYPE,
    NULL_LITERALS,
    DataType,
    coerce_value,
    is_null,
    null_placeholder,
    parse_cell,
)
from repro.streaming.chunks import DEFAULT_CHUNK_ROWS, TableChunk, TableChunkStream

PathLike = Union[str, Path]

_NULL_LITERAL_ARR = np.asarray(NULL_LITERALS, dtype=np.str_)
_BOOL_LITERAL_ARR = np.asarray(("true", "false"), dtype=np.str_)

_INT64_MIN = np.iinfo(np.int64).min
_INT64_MAX = np.iinfo(np.int64).max


class ColumnTypeFlags:
    """Which value kinds a column has produced so far (``infer_type`` state).

    Accumulated across chunks, so a streaming pass can infer the same
    :class:`DataType` ``infer_type`` would on the whole materialized column
    while retaining O(1) state per column.
    """

    __slots__ = ("seen_bool", "seen_int", "seen_float", "seen_str", "any_value")

    def __init__(self) -> None:
        self.seen_bool = False
        self.seen_int = False
        self.seen_float = False
        self.seen_str = False
        self.any_value = False

    def merge(self, other: "ColumnTypeFlags") -> None:
        self.seen_bool |= other.seen_bool
        self.seen_int |= other.seen_int
        self.seen_float |= other.seen_float
        self.seen_str |= other.seen_str
        self.any_value |= other.any_value

    def infer(self) -> DataType:
        """The ``infer_type`` priority: str > float > int > bool; all-NULL → FLOAT."""
        if not self.any_value:
            return DataType.FLOAT
        if self.seen_str:
            return DataType.STRING
        if self.seen_float:
            return DataType.FLOAT
        if self.seen_int:
            return DataType.INT
        return DataType.BOOL


class ParsedColumnBlock:
    """One column of one raw chunk, classified into typed value buckets.

    Equivalent to ``[parse_cell(c) for c in cells]``: every cell lands in
    exactly one bucket (null / bool / int64 / float / string), with python
    ints outside the int64 range kept verbatim in ``extra``. ``finalize``
    converts the buckets into ``(storage, valid)`` arrays with the exact
    semantics of ``coerce_column`` on the parsed values.
    """

    __slots__ = (
        "n", "null_mask",
        "bool_pos", "bool_vals", "int_pos", "int_vals",
        "float_pos", "float_vals", "str_pos", "str_vals", "extra",
    )

    def __init__(self, n: int):
        self.n = n
        self.null_mask = np.zeros(n, dtype=bool)
        self.bool_pos = np.empty(0, dtype=np.int64)
        self.bool_vals = np.empty(0, dtype=np.bool_)
        self.int_pos = np.empty(0, dtype=np.int64)
        self.int_vals = np.empty(0, dtype=np.int64)
        self.float_pos = np.empty(0, dtype=np.int64)
        self.float_vals = np.empty(0, dtype=np.float64)
        self.str_pos = np.empty(0, dtype=np.int64)
        self.str_vals: List[str] = []
        self.extra: List[Tuple[int, int]] = []  # out-of-int64-range python ints

    # -- classification -------------------------------------------------------------
    def _scalar_fallback(self, cells: Sequence[str], positions: np.ndarray) -> None:
        """Route cells the vectorized casts rejected through ``parse_cell``."""
        b_pos: List[int] = []
        b_val: List[bool] = []
        i_pos: List[int] = []
        i_val: List[int] = []
        f_pos: List[int] = []
        f_val: List[float] = []
        s_pos: List[int] = []
        for pos in positions.tolist():
            value = parse_cell(cells[pos])
            if is_null(value):
                self.null_mask[pos] = True
            elif isinstance(value, bool):
                b_pos.append(pos)
                b_val.append(value)
            elif isinstance(value, int):
                if _INT64_MIN <= value <= _INT64_MAX:
                    i_pos.append(pos)
                    i_val.append(value)
                else:
                    self.extra.append((pos, value))
            elif isinstance(value, float):
                f_pos.append(pos)
                f_val.append(value)
            else:
                s_pos.append(pos)
                self.str_vals.append(value)
        if b_pos:
            self.bool_pos = np.concatenate([self.bool_pos, np.asarray(b_pos, dtype=np.int64)])
            self.bool_vals = np.concatenate([self.bool_vals, np.asarray(b_val, dtype=np.bool_)])
        if i_pos:
            self.int_pos = np.concatenate([self.int_pos, np.asarray(i_pos, dtype=np.int64)])
            self.int_vals = np.concatenate([self.int_vals, np.asarray(i_val, dtype=np.int64)])
        if f_pos:
            self.float_pos = np.concatenate([self.float_pos, np.asarray(f_pos, dtype=np.int64)])
            self.float_vals = np.concatenate([self.float_vals, np.asarray(f_val, dtype=np.float64)])
        if s_pos:
            self.str_pos = np.concatenate([self.str_pos, np.asarray(s_pos, dtype=np.int64)])

    @property
    def flags(self) -> ColumnTypeFlags:
        flags = ColumnTypeFlags()
        flags.seen_bool = self.bool_pos.size > 0
        flags.seen_int = self.int_pos.size > 0 or bool(self.extra)
        flags.seen_float = self.float_pos.size > 0
        flags.seen_str = self.str_pos.size > 0
        flags.any_value = (
            flags.seen_bool or flags.seen_int or flags.seen_float or flags.seen_str
        )
        return flags

    # -- typed finalization ---------------------------------------------------------
    def finalize(self, dtype: DataType) -> Tuple[np.ndarray, np.ndarray]:
        """``(storage, valid)`` arrays, matching ``coerce_column`` exactly."""
        valid = ~self.null_mask
        if dtype is DataType.FLOAT:
            out = np.full(self.n, np.nan, dtype=np.float64)
            out[self.bool_pos] = self.bool_vals.astype(np.float64)
            out[self.int_pos] = self.int_vals.astype(np.float64)
            out[self.float_pos] = self.float_vals
            for pos, value in zip(self.str_pos.tolist(), self.str_vals):
                out[pos] = coerce_value(value, dtype)
            for pos, value in self.extra:
                out[pos] = coerce_value(value, dtype)
            return out, valid
        if dtype is DataType.INT:
            out = np.zeros(self.n, dtype=np.int64)
            out[self.bool_pos] = self.bool_vals.astype(np.int64)
            out[self.int_pos] = self.int_vals
            for pos, value in zip(self.float_pos.tolist(), self.float_vals.tolist()):
                out[pos] = coerce_value(value, dtype)
            for pos, value in zip(self.str_pos.tolist(), self.str_vals):
                out[pos] = coerce_value(value, dtype)
            for pos, value in self.extra:
                try:
                    out[pos] = coerce_value(value, dtype)
                except OverflowError as exc:
                    from repro.exceptions import SchemaError

                    raise SchemaError(
                        f"value overflows the {dtype.value} column storage"
                    ) from exc
            return out, valid
        if dtype is DataType.BOOL:
            out = np.zeros(self.n, dtype=np.bool_)
            out[self.bool_pos] = self.bool_vals
            for pos_arr, values in (
                (self.int_pos.tolist(), self.int_vals.tolist()),
                (self.float_pos.tolist(), self.float_vals.tolist()),
            ):
                for pos, value in zip(pos_arr, values):
                    out[pos] = coerce_value(value, dtype)
            for pos, value in zip(self.str_pos.tolist(), self.str_vals):
                out[pos] = coerce_value(value, dtype)
            for pos, value in self.extra:
                out[pos] = coerce_value(value, dtype)
            return out, valid
        if dtype is DataType.STRING:
            out = np.empty(self.n, dtype=object)
            out[self.null_mask] = null_placeholder(dtype)
            out[self.bool_pos] = np.where(self.bool_vals, "True", "False")
            out[self.int_pos] = self.int_vals.astype(str).astype(object)
            for pos, value in zip(self.float_pos.tolist(), self.float_vals.tolist()):
                out[pos] = str(value)
            for pos, value in zip(self.str_pos.tolist(), self.str_vals):
                out[pos] = value
            for pos, value in self.extra:
                out[pos] = str(value)
            return out, valid
        raise TableError(f"unknown data type {dtype!r}")  # pragma: no cover


def parse_cell_block(cells: Sequence[str]) -> ParsedColumnBlock:
    """Classify a block of raw CSV cells with vectorized string kernels.

    Fast paths: null/bool literal matching via ``np.isin`` on the lowered
    cells, integer candidates (one optional sign + digits) via one
    ``astype(int64)`` cast, everything else via one ``astype(float64)``
    cast. A cast that raises sends its *whole candidate subset* through the
    scalar ``parse_cell`` fallback — correctness never depends on the fast
    path accepting a cell.
    """
    block = ParsedColumnBlock(len(cells))
    if block.n == 0:
        return block
    arr = np.asarray(cells, dtype=np.str_)
    stripped = np.char.strip(arr)
    lowered = np.char.lower(stripped)
    # Backslash-escaped cells carry the write_csv NULL-literal protection;
    # the scalar parser owns that (rare) unescaping logic.
    escaped = np.char.startswith(stripped, "\\")
    block.null_mask = np.isin(lowered, _NULL_LITERAL_ARR) & ~escaped
    bool_mask = ~block.null_mask & ~escaped & np.isin(lowered, _BOOL_LITERAL_ARR)
    block.bool_pos = np.nonzero(bool_mask)[0].astype(np.int64)
    block.bool_vals = lowered[bool_mask] == "true"

    rest_mask = ~(block.null_mask | bool_mask | escaped)
    rest_pos = np.nonzero(rest_mask)[0].astype(np.int64)
    if escaped.any():
        block._scalar_fallback(cells, np.nonzero(escaped)[0])
    if rest_pos.size == 0:
        return block
    rest = stripped[rest_pos]

    # Integer candidates: at most one leading sign, then digits only.
    body = np.char.lstrip(rest, "+-")
    body_len = np.char.str_len(body)
    sign_len = np.char.str_len(rest) - body_len
    int_cand = (body_len > 0) & (sign_len <= 1) & np.char.isdigit(body)

    int_sel = rest_pos[int_cand]
    if int_sel.size:
        try:
            int_vals = rest[int_cand].astype(np.int64)
        except (ValueError, OverflowError):
            block._scalar_fallback(cells, int_sel)
        else:
            block.int_pos = int_sel
            block.int_vals = int_vals

    float_sel = rest_pos[~int_cand]
    if float_sel.size:
        try:
            values = rest[~int_cand].astype(np.float64)
        except (ValueError, OverflowError):
            block._scalar_fallback(cells, float_sel)
        else:
            # A parsed NaN (e.g. "-nan") is NULL under is_null(), exactly as
            # the scalar pipeline treats it everywhere downstream.
            nan = np.isnan(values)
            block.float_pos = float_sel[~nan]
            block.float_vals = values[~nan]
            block.null_mask[float_sel[nan]] = True
    return block


class ChunkedCsvReader(TableChunkStream):
    """Columnar CSV reader producing typed :class:`TableChunk` row blocks.

    Type inference matches ``read_csv``: the streaming mode runs one scan
    pass accumulating per-column :class:`ColumnTypeFlags` (O(columns)
    state) before yielding typed chunks, while :meth:`read` parses once and
    assembles a resident table. Empty-file and row-width
    :class:`TableError` behavior is bit-for-bit that of the seed reader.
    """

    def __init__(
        self,
        path: PathLike,
        name: Optional[str] = None,
        key_columns: Sequence[str] = (),
        label_column: Optional[str] = None,
        delimiter: str = ",",
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ):
        if chunk_rows <= 0:
            raise TableError(f"chunk_rows must be positive, got {chunk_rows}")
        self._path = Path(path)
        self.name = name if name is not None else self._path.stem
        self._key_columns = tuple(key_columns)
        self._label_column = label_column
        self._delimiter = delimiter
        self._chunk_rows = int(chunk_rows)
        self._schema: Optional[Schema] = None
        self._n_rows: Optional[int] = None

    # -- raw row blocks -------------------------------------------------------------
    def _raw_chunks(self) -> Iterator[Tuple[List[str], List[List[str]]]]:
        """Yield ``(header, rows)`` blocks; validates widths like the seed.

        Every malformed-input failure — width mismatch, undecodable
        bytes, csv-level framing errors — surfaces as a typed
        :class:`TableError` carrying the offending row number, never a
        bare ``ValueError`` from the stdlib.
        """
        with self._path.open(newline="") as handle:
            reader = csv.reader(handle, delimiter=self._delimiter)
            try:
                header = next(reader)
            except StopIteration as exc:
                raise TableError(f"CSV file {self._path} is empty") from exc
            except UnicodeDecodeError as exc:
                raise TableError(
                    f"CSV file {self._path} is not valid UTF-8 "
                    f"(header, row 1): {exc}"
                ) from exc
            except csv.Error as exc:
                raise TableError(
                    f"CSV file {self._path} is malformed (header, row 1): {exc}"
                ) from exc
            width = len(header)
            rows: List[List[str]] = []
            row_number = 1  # 1-based physical row; the header is row 1
            while True:
                try:
                    row = next(reader)
                except StopIteration:
                    break
                except UnicodeDecodeError as exc:
                    raise TableError(
                        f"CSV file {self._path} is not valid UTF-8 "
                        f"near row {row_number + 1}: {exc}"
                    ) from exc
                except csv.Error as exc:
                    raise TableError(
                        f"CSV file {self._path} is malformed "
                        f"at row {row_number + 1}: {exc}"
                    ) from exc
                row_number += 1
                if not row:
                    continue  # blank lines, as in the seed reader
                if len(row) != width:
                    raise TableError(
                        f"CSV row width {len(row)} does not match header width "
                        f"{width} (row {row_number} of {self._path})"
                    )
                rows.append(row)
                if len(rows) >= self._chunk_rows:
                    yield header, rows
                    rows = []
            yield header, rows

    def _numbered_raw_chunks(self) -> Iterator[Tuple[int, List[str], List[List[str]]]]:
        """Non-empty raw blocks with their absolute row offset, computed at
        read time so parse workers never need upstream state."""
        offset = 0
        for header, rows in self._raw_chunks():
            if not rows:
                continue
            yield offset, header, rows
            offset += len(rows)

    def _parse_chunk(self, header: List[str], rows: List[List[str]]):
        if not rows:
            return [ParsedColumnBlock(0) for _ in header]
        transposed = list(zip(*rows))
        return [parse_cell_block(transposed[i]) for i in range(len(header))]

    def _schema_from_flags(self, header: List[str], flags: List[ColumnTypeFlags]) -> Schema:
        return Schema(
            [
                Column(
                    col,
                    flags[i].infer(),
                    is_key=col in self._key_columns,
                    is_label=(col == self._label_column),
                )
                for i, col in enumerate(header)
            ]
        )

    # -- streaming interface ----------------------------------------------------------
    def scan(self) -> Schema:
        """First pass: infer the schema and row count in bounded memory.

        Raw blocks are read sequentially; their type classification runs on
        the worker pool. Flag merging is a commutative boolean OR, but the
        ordered map keeps it deterministic anyway.
        """
        if self._schema is None:
            with _telemetry.span("ingest.scan", file=str(self._path)) as span:
                state: Dict[str, object] = {"header": [], "n_rows": 0}

                def _tasks() -> Iterator[Tuple[List[str], List[List[str]]]]:
                    for header, rows in self._raw_chunks():
                        state["header"] = header
                        state["n_rows"] = int(state["n_rows"]) + len(rows)
                        yield header, rows

                def _chunk_flags(task: Tuple[List[str], List[List[str]]]):
                    header, rows = task
                    return [block.flags for block in self._parse_chunk(header, rows)]

                flags: List[ColumnTypeFlags] = []
                for chunk_flags in _parallel.imap_ordered(_chunk_flags, _tasks(), label="ingest.scan"):
                    if not flags:
                        flags = [ColumnTypeFlags() for _ in chunk_flags]
                    for accumulated, block_flags in zip(flags, chunk_flags):
                        accumulated.merge(block_flags)
                header = list(state["header"])  # type: ignore[arg-type]
                if not flags:
                    flags = [ColumnTypeFlags() for _ in header]
                self._schema = self._schema_from_flags(header, flags)
                self._n_rows = int(state["n_rows"])
                span.set(rows=self._n_rows, columns=len(header))
        return self._schema

    @property
    def schema(self) -> Schema:
        return self.scan()

    @property
    def n_rows(self) -> int:
        self.scan()
        return self._n_rows  # type: ignore[return-value]

    def chunks(self) -> Iterator[TableChunk]:
        schema = self.scan()

        def _typed_chunk_once(task: Tuple[int, List[str], List[List[str]]]) -> TableChunk:
            offset, header, rows = task
            _faults.fault_point("ingest.chunk", file=str(self._path), offset=offset)
            with _telemetry.span(
                "ingest.chunk", file=str(self._path), offset=offset, rows=len(rows)
            ):
                data: Dict[str, np.ndarray] = {}
                valid: Dict[str, np.ndarray] = {}
                for column, block in zip(schema, self._parse_chunk(header, rows)):
                    data[column.name], valid[column.name] = block.finalize(column.dtype)
                return TableChunk(schema, data, valid, offset=offset)

        def _typed_chunk(task: Tuple[int, List[str], List[List[str]]]) -> TableChunk:
            # Typing a chunk is a pure function of the raw rows, so a
            # transient fault is safely retried without re-reading the file.
            if _faults.ACTIVE:
                return INGEST_RETRY.call(_typed_chunk_once, task, site="ingest.chunk")
            return _typed_chunk_once(task)

        for chunk in _parallel.imap_ordered(
            _typed_chunk, self._numbered_raw_chunks(), label="ingest.chunk"
        ):
            if _telemetry.ENABLED:
                _telemetry.counter_add("ingest.chunks")
                _telemetry.counter_add("ingest.rows", float(chunk.n_rows))
            yield chunk

    # -- one-pass materialization ------------------------------------------------------
    def read(self) -> Table:
        """Parse once and assemble a resident :class:`Table` (the
        single-chunk fast path ``read_csv`` routes through)."""
        state: Dict[str, object] = {"header": []}

        def _tasks() -> Iterator[Tuple[List[str], List[List[str]]]]:
            for header, rows in self._raw_chunks():
                state["header"] = header
                yield header, rows

        def _parsed_once(task: Tuple[List[str], List[List[str]]]):
            header, rows = task
            _faults.fault_point("ingest.chunk", file=str(self._path))
            return len(rows), self._parse_chunk(header, rows)

        def _parsed(task: Tuple[List[str], List[List[str]]]):
            if _faults.ACTIVE:
                return INGEST_RETRY.call(_parsed_once, task, site="ingest.chunk")
            return _parsed_once(task)

        flags: List[ColumnTypeFlags] = []
        parsed: List[List[ParsedColumnBlock]] = []
        n_rows = 0
        for rows_in_chunk, blocks in _parallel.imap_ordered(
            _parsed, _tasks(), label="ingest.read"
        ):
            if not flags:
                flags = [ColumnTypeFlags() for _ in blocks]
            for accumulated, block in zip(flags, blocks):
                accumulated.merge(block.flags)
            if rows_in_chunk:
                parsed.append(blocks)
                n_rows += rows_in_chunk
        header = list(state["header"])  # type: ignore[arg-type]
        if not flags:
            flags = [ColumnTypeFlags() for _ in header]
        schema = self._schema_from_flags(header, flags)
        self._schema = schema
        self._n_rows = n_rows
        data: Dict[str, np.ndarray] = {}
        valid: Dict[str, np.ndarray] = {}
        for i, column in enumerate(schema):
            pieces = [blocks[i].finalize(column.dtype) for blocks in parsed]
            if pieces:
                data[column.name] = np.concatenate([p[0] for p in pieces])
                valid[column.name] = np.concatenate([p[1] for p in pieces])
            else:
                data[column.name] = np.empty(0, dtype=_STORAGE_DTYPE[column.dtype])
                valid[column.name] = np.empty(0, dtype=bool)
        return Table._from_storage(self.name, schema, data, valid)

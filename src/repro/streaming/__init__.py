"""Out-of-core streaming: chunked ingest, spillable build, bounded-memory training.

The subsystem moves the whole resolve → build → train pipeline to
bounded-memory chunked execution:

* :mod:`repro.streaming.chunks` — the :class:`TableChunk` /
  :class:`TableChunkStream` abstractions every downstream consumer is
  written against, with an in-memory adapter so the same code path serves
  resident tables.
* :mod:`repro.streaming.ingest` — :class:`ChunkedCsvReader`, a vectorized
  CSV reader that coerces row blocks straight into typed numpy columns +
  validity masks (``read_csv`` routes through its single-chunk fast path).
* :mod:`repro.streaming.spill` — :class:`SpillStore`, the memory-mapped
  factor store the builder spills completed ``D_k`` blocks to.
* :mod:`repro.streaming.builder` — :func:`integrate_streams`, the
  chunk-stream counterpart of ``matrices.builder.integrate_tables``.

Mini-batch training lives in :mod:`repro.learning.streaming_gd`, on top of
the row-block views of :mod:`repro.factorized.operator_plan`.
"""

from repro.streaming.builder import integrate_streams
from repro.streaming.chunks import (
    InMemoryTableStream,
    TableChunk,
    TableChunkStream,
    as_chunk_stream,
)
from repro.streaming.ingest import ChunkedCsvReader
from repro.streaming.spill import SpillStore

__all__ = [
    "ChunkedCsvReader",
    "InMemoryTableStream",
    "SpillStore",
    "TableChunk",
    "TableChunkStream",
    "as_chunk_stream",
    "integrate_streams",
]

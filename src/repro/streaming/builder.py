"""Spillable factor build: ``integrate_tables`` over chunk streams.

:func:`integrate_streams` constructs the same ``(D_k, M_k, I_k, R_k)``
factorization as :func:`repro.matrices.builder.integrate_tables` — identical
``CI_k`` row maps, factor cells and redundancy masks, asserted by the
parity suite — while touching each source one chunk at a time:

* ``D_k`` is assembled block-wise into a :class:`repro.streaming.spill.
  SpillStore` memmap (or a resident array when no store is given), with
  pages released after every chunk so the resident set stays one chunk.
* ``CI_k`` comes straight from the scenario row maps, exactly as in the
  in-memory builder — no per-row expansion.
* the redundancy complement is computed per *shared target column* from
  accumulated validity bitmaps instead of the dense ``r_T × c_T``
  contribution-mask AND, so nothing target-shaped is ever materialized.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro import parallel as _parallel
from repro import telemetry as _telemetry
from repro.backends import BackendSpec, resolve_backend
from repro.exceptions import IntegrityError, MappingError
from repro.reliability import faults as _faults
from repro.reliability.retry import INGEST_RETRY
from repro.matrices.builder import (
    IntegratedDataset,
    RowMatchesLike,
    SourceFactor,
    _numeric_mapped_columns,
    _target_rows_for_scenario,
    two_source_correspondences,
)
from repro.matrices.indicator_matrix import IndicatorMatrix
from repro.matrices.mapping_matrix import MappingMatrix
from repro.matrices.redundancy_matrix import RedundancyMatrix
from repro.metadata.mappings import ScenarioType
from repro.metadata.schema_matching import ColumnMatch
from repro.streaming.chunks import TableChunkStream, as_chunk_stream
from repro.streaming.spill import SpillStore


def _effective_target_map(
    correspondences: Dict[str, str], target_columns: Sequence[str]
) -> Dict[str, str]:
    """Per target column, the source column that provides it.

    Mirrors the in-memory contribution-mask loop, where a later source
    column mapping the same target column overwrites an earlier one.
    """
    target_set = set(target_columns)
    effective: Dict[str, str] = {}
    for source_column, target_column in correspondences.items():
        if target_column in target_set:
            effective[target_column] = source_column
    return effective


def _ingest_stream(
    stream: TableChunkStream,
    correspondences: Dict[str, str],
    target_columns: Sequence[str],
    validity_columns: Sequence[str],
    store: Optional[SpillStore],
    store_key: str,
) -> Tuple[List[str], np.ndarray, Dict[str, np.ndarray]]:
    """One pass over a stream: fill ``D_k`` block-wise, collect validity.

    Returns ``(source_columns, data, validity)`` where ``data`` is the
    spilled memmap (or resident array) holding the numeric mapped columns
    with NULLs as 0.0 — cell-for-cell ``table.to_matrix(source_columns)``
    — and ``validity`` maps each requested source column to its full
    boolean validity bitmap (needed only for overlap columns, so this
    stays O(rows × shared columns)).

    Randomly accessible streams (resident tables, synthetic generators)
    assemble block-parallel: each worker materializes one chunk and writes
    its disjoint ``[offset, offset + n)`` row slice of ``D_k`` — pure data
    movement, so the built factors are bit-identical at every worker
    count. Sequential streams (CSV) keep the ordered fill but pull chunks
    through a background prefetcher so parsing overlaps the memmap copy.
    Completed chunks release their spill pages as they retire either way,
    keeping the resident set at a bounded window of chunks.
    """
    schema = stream.schema
    source_columns = _numeric_mapped_columns(schema, correspondences, target_columns)
    if not source_columns:
        raise MappingError(f"source {stream.name!r} maps no numeric target columns")
    n_rows = stream.n_rows
    with _telemetry.span(
        "build.ingest_stream", source=stream.name, rows=n_rows,
        columns=len(source_columns), spilled=store is not None,
    ):
        if store is not None:
            data = store.allocate(store_key, n_rows, len(source_columns))
        else:
            data = np.zeros((n_rows, len(source_columns)), dtype=np.float64)
        validity = {c: np.zeros(n_rows, dtype=bool) for c in validity_columns}
        checksums = store is not None and store.checksums
        chunk_index_by_offset: Dict[int, int] = {}

        def _write_block(row_start: int, row_stop: int, block: np.ndarray) -> None:
            """Write one chunk's matrix into ``data``, CRC'd before the write.

            The checksum is computed from the in-memory block *before* it
            touches the memmap, so a torn write — simulated here by the
            ``spill.write`` corrupt fault damaging the written slice — is
            caught by the post-fill validation instead of laundered into
            the recorded CRC.
            """
            if checksums:
                store.record_crc(
                    store_key, row_start, row_stop,
                    zlib.crc32(np.ascontiguousarray(block).tobytes()),
                )
            data[row_start:row_stop] = block
            if _faults.ACTIVE:
                spec = _faults.hit("spill.write")
                if spec is not None and spec.kind == "corrupt":
                    torn = data[row_start:row_stop]
                    torn[torn.shape[0] // 2:] = 0.0

        parallel_build = (
            stream.supports_random_access
            and _parallel.get_num_workers() > 1
            and stream.chunk_count > 1
        )
        if parallel_build:

            def _read_chunk(index: int):
                _faults.fault_point("ingest.chunk", source=stream.name, chunk=index)
                return stream.chunk_at(index)

            def _fill_chunk(index: int) -> int:
                if _faults.ACTIVE:
                    chunk = INGEST_RETRY.call(_read_chunk, index, site="ingest.chunk")
                else:
                    chunk = stream.chunk_at(index)
                stop = chunk.offset + chunk.n_rows
                if stop > n_rows:
                    raise MappingError(
                        f"stream {stream.name!r} produced more rows than its declared {n_rows}"
                    )
                chunk_index_by_offset[chunk.offset] = index
                _write_block(chunk.offset, stop, chunk.to_matrix(source_columns))
                for column in validity_columns:
                    validity[column][chunk.offset:stop] = chunk.column_valid(column)
                return chunk.n_rows

            filled = 0
            for produced in _parallel.imap_ordered(
                _fill_chunk, range(stream.chunk_count), label="build.fill"
            ):
                filled += produced
                if _telemetry.ENABLED and store is not None:
                    _telemetry.counter_add(
                        "spill.bytes_written", float(produced * len(source_columns) * 8)
                    )
                if store is not None:
                    store.release()
        else:
            filled = 0
            for chunk in _parallel.prefetch(stream.chunks(), depth=2, label="build.fill"):
                stop = filled + chunk.n_rows
                if stop > n_rows:
                    raise MappingError(
                        f"stream {stream.name!r} produced more rows than its declared {n_rows}"
                    )
                _write_block(filled, stop, chunk.to_matrix(source_columns))
                for column in validity_columns:
                    validity[column][filled:stop] = chunk.column_valid(column)
                if _telemetry.ENABLED and store is not None:
                    _telemetry.counter_add(
                        "spill.bytes_written",
                        float((stop - filled) * len(source_columns) * 8),
                    )
                filled = stop
                if store is not None:
                    store.release()
        if filled != n_rows:
            raise MappingError(
                f"stream {stream.name!r} produced {filled} rows, declared {n_rows}"
            )
        if checksums:
            _validate_spilled(
                store, store_key, stream, source_columns, chunk_index_by_offset
            )
    return source_columns, data, validity


def _validate_spilled(
    store: SpillStore,
    store_key: str,
    stream: TableChunkStream,
    source_columns: List[str],
    chunk_index_by_offset: Dict[int, int],
) -> None:
    """Seal a just-built spilled matrix: re-read it and repair torn blocks.

    A block whose on-disk bytes no longer match the CRC recorded from the
    in-memory chunk is refilled from source — random-access streams fetch
    the owning chunk directly, sequential streams re-iterate to it — then
    re-validated; a block that still mismatches raises
    :class:`~repro.exceptions.IntegrityError`.
    """

    def _repair(row_start: int, row_stop: int, destination: np.ndarray) -> None:
        if stream.supports_random_access and row_start in chunk_index_by_offset:
            chunk = stream.chunk_at(chunk_index_by_offset[row_start])
            destination[...] = chunk.to_matrix(source_columns)
            return
        position = 0
        for chunk in stream.chunks():
            stop = position + chunk.n_rows
            if position == row_start:
                destination[...] = chunk.to_matrix(source_columns)
                return
            position = stop
        raise IntegrityError(
            f"cannot rebuild rows [{row_start}, {row_stop}) of spilled matrix "
            f"{store_key!r}: source stream {stream.name!r} no longer covers them"
        )

    with _telemetry.span("reliability.spill_validate", matrix=store_key):
        repaired = store.verify(store_key, repair=_repair)
    if repaired and _telemetry.ENABLED:
        _telemetry.counter_add("reliability.spill_rebuilt_blocks", float(repaired))


def _overlap_complement(
    target_shape: Tuple[int, int],
    target_columns: Sequence[str],
    base_rows: np.ndarray,
    other_rows: np.ndarray,
    base_map: Dict[str, str],
    other_map: Dict[str, str],
    base_validity: Dict[str, np.ndarray],
    other_validity: Dict[str, np.ndarray],
) -> sparse.coo_matrix:
    """Redundant cells of the other source, one shared target column at a time.

    A target cell is redundant for the other source exactly when both
    sources map its column and both contribute a non-NULL value on that
    row — the nonzero set of the in-memory ``base_mask & other_mask``
    without ever building either dense mask.
    """
    both_rows = (base_rows >= 0) & (other_rows >= 0)
    base_gather = np.where(base_rows >= 0, base_rows, 0)
    other_gather = np.where(other_rows >= 0, other_rows, 0)
    row_chunks: List[np.ndarray] = []
    col_chunks: List[np.ndarray] = []
    for j, target_column in enumerate(target_columns):
        base_col = base_map.get(target_column)
        other_col = other_map.get(target_column)
        if base_col is None or other_col is None:
            continue
        base_valid = base_validity[base_col]
        other_valid = other_validity[other_col]
        if base_valid.size == 0 or other_valid.size == 0:
            continue
        hit = both_rows & base_valid[base_gather] & other_valid[other_gather]
        rows = np.nonzero(hit)[0].astype(np.int64)
        if rows.size:
            row_chunks.append(rows)
            col_chunks.append(np.full(rows.size, j, dtype=np.int64))
    if row_chunks:
        rows = np.concatenate(row_chunks)
        cols = np.concatenate(col_chunks)
    else:
        rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
    data = np.ones(rows.size, dtype=np.float64)
    return sparse.coo_matrix((data, (rows, cols)), shape=target_shape)


def integrate_streams(
    base,
    other,
    column_matches: Sequence[ColumnMatch],
    row_matches: RowMatchesLike,
    target_columns: Sequence[str],
    scenario: ScenarioType,
    label_column: Optional[str] = None,
    name: str = "T",
    backend: BackendSpec = None,
    store: Optional[SpillStore] = None,
    chunk_rows: Optional[int] = None,
) -> IntegratedDataset:
    """Out-of-core counterpart of ``integrate_tables`` over chunk streams.

    Parameters mirror :func:`repro.matrices.builder.integrate_tables`;
    ``base`` and ``other`` may be :class:`TableChunkStream` instances or
    resident :class:`~repro.relational.Table` objects (wrapped with
    ``chunk_rows`` rows per chunk). When ``store`` is given, each source's
    ``D_k`` is spilled to a memory-mapped file in the store and the
    returned factors read from disk; otherwise ``D_k`` is resident (still
    assembled chunk-wise). The resulting :class:`IntegratedDataset` is
    identical to the in-memory build — same ``CI_k``, factor cells and
    redundancy masks.
    """
    base = as_chunk_stream(base, chunk_rows)
    other = as_chunk_stream(other, chunk_rows)
    if _telemetry.ENABLED:
        with _telemetry.span(
            "build.integrate_streams",
            scenario=scenario.value,
            base=base.name,
            other=other.name,
            spilled=store is not None,
        ):
            return _integrate_streams(
                base, other, column_matches, row_matches, target_columns,
                scenario, label_column, name, backend, store,
            )
    return _integrate_streams(
        base, other, column_matches, row_matches, target_columns,
        scenario, label_column, name, backend, store,
    )


def _integrate_streams(
    base: TableChunkStream,
    other: TableChunkStream,
    column_matches: Sequence[ColumnMatch],
    row_matches: RowMatchesLike,
    target_columns: Sequence[str],
    scenario: ScenarioType,
    label_column: Optional[str],
    name: str,
    backend: BackendSpec,
    store: Optional[SpillStore],
) -> IntegratedDataset:
    resolved_backend = resolve_backend(backend) if backend is not None else None
    target_columns = list(target_columns)
    base_correspondences, other_correspondences = two_source_correspondences(
        base.schema.names, other.schema.names, column_matches, target_columns
    )
    base_rows, other_rows = _target_rows_for_scenario(
        base.n_rows, other.n_rows, row_matches, scenario
    )
    n_target_rows = int(base_rows.size)
    target_shape = (n_target_rows, len(target_columns))

    # Validity bitmaps are only needed where the redundancy complement can
    # be nonzero: target columns mapped by *both* sources.
    base_map = _effective_target_map(base_correspondences, target_columns)
    other_map = _effective_target_map(other_correspondences, target_columns)
    shared_targets = [t for t in target_columns if t in base_map and t in other_map]
    base_validity_columns = sorted({base_map[t] for t in shared_targets})
    other_validity_columns = sorted({other_map[t] for t in shared_targets})

    base_key = f"0_{base.name}"
    other_key = f"1_{other.name}"
    try:
        base_source_columns, base_data, base_validity = _ingest_stream(
            base, base_correspondences, target_columns, base_validity_columns,
            store, base_key,
        )
        other_source_columns, other_data, other_validity = _ingest_stream(
            other, other_correspondences, target_columns, other_validity_columns,
            store, other_key,
        )

        base_redundancy = RedundancyMatrix.all_ones(base.name, *target_shape)
        other_redundancy = RedundancyMatrix.from_complement(
            other.name,
            target_shape,
            _overlap_complement(
                target_shape, target_columns, base_rows, other_rows,
                base_map, other_map, base_validity, other_validity,
            ),
        )

        factors = []
        for stream, source_columns, data, correspondences, row_map, redundancy in (
            (base, base_source_columns, base_data, base_correspondences, base_rows,
             base_redundancy),
            (other, other_source_columns, other_data, other_correspondences, other_rows,
             other_redundancy),
        ):
            mapping = MappingMatrix(
                stream.name,
                target_columns,
                source_columns,
                {c: correspondences[c] for c in source_columns},
            )
            indicator = IndicatorMatrix(
                stream.name, n_target_rows, stream.n_rows, row_map
            )
            factors.append(
                SourceFactor(
                    stream.name, data, source_columns, mapping, indicator, redundancy,
                    backend=resolved_backend,
                )
            )
    except BaseException:
        # A failed build can never hand its memmaps to anyone: drop them
        # from the store and delete the backing files, so an aborted
        # integrate_streams leaves no orphaned spill files behind.
        if store is not None:
            store.discard(base_key)
            store.discard(other_key)
        raise
    if store is not None:
        store.release()
    return IntegratedDataset(
        target_columns=target_columns,
        n_target_rows=n_target_rows,
        factors=factors,
        scenario=scenario,
        label_column=label_column,
        name=name,
        backend=resolved_backend,
    )

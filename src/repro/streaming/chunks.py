"""Table chunks and chunk streams — the unit of out-of-core execution.

A :class:`TableChunk` is a horizontal slice of a relational table in the
columnar storage layout of :class:`repro.relational.Table` (typed numpy
arrays + boolean validity masks). A :class:`TableChunkStream` produces a
table as an ordered sequence of such chunks; consumers (the spillable
builder, parity tests, materialization) are written against the stream
interface only, so an on-disk CSV, a resident table and a synthetic
generator all feed the same code paths.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.exceptions import TableError
from repro.relational.schema import Schema
from repro.relational.table import Table

#: Default rows per chunk: small enough that a wide chunk stays a few tens
#: of MB, large enough that per-chunk numpy dispatch overhead is noise.
DEFAULT_CHUNK_ROWS = 65_536


class TableChunk:
    """A row block of a table: per-column typed storage + validity masks."""

    __slots__ = ("schema", "data", "valid", "n_rows", "offset")

    def __init__(
        self,
        schema: Schema,
        data: Dict[str, np.ndarray],
        valid: Dict[str, np.ndarray],
        offset: int = 0,
    ):
        lengths = {len(values) for values in data.values()}
        if len(lengths) > 1:
            raise TableError(f"ragged chunk columns with lengths {sorted(lengths)}")
        self.schema = schema
        self.data = data
        self.valid = valid
        self.n_rows = lengths.pop() if lengths else 0
        #: Absolute row index of this chunk's first row within the table.
        self.offset = offset

    def column_values(self, name: str) -> np.ndarray:
        return self.data[name]

    def column_valid(self, name: str) -> np.ndarray:
        return self.valid[name]

    def to_matrix(self, columns: Sequence[str], null_value: float = 0.0) -> np.ndarray:
        """Dense float block of the named numeric columns (NULL → ``null_value``)."""
        out = np.empty((self.n_rows, len(columns)), dtype=np.float64)
        for j, name in enumerate(columns):
            values = self.data[name]
            valid = self.valid[name]
            if bool(valid.all()):
                out[:, j] = values
            else:
                out[:, j] = np.where(valid, values, null_value)
        return out

    def to_table(self, name: str) -> Table:
        return Table._from_storage(name, self.schema, dict(self.data), dict(self.valid))


class TableChunkStream:
    """An ordered sequence of :class:`TableChunk` making up one table.

    Subclasses provide ``name``, ``schema``, ``n_rows`` and ``chunks()``.
    ``n_rows`` is known up front for every built-in source (resident
    tables, the two-pass CSV reader, synthetic generators), which is what
    lets the builder pre-size its on-disk factor stores.
    """

    name: str

    #: Streams whose chunks can be produced independently and in any order
    #: (resident tables, stateless synthetic generators) set this and
    #: implement :meth:`chunk_at`, which lets the parallel builder assemble
    #: ``D_k`` with a worker per chunk. Inherently sequential sources (a
    #: CSV file) leave it False and are consumed through a prefetcher.
    supports_random_access: bool = False

    @property
    def schema(self) -> Schema:
        raise NotImplementedError

    @property
    def n_rows(self) -> int:
        raise NotImplementedError

    @property
    def chunk_rows(self) -> int:
        """Nominal rows per chunk (random-access streams only)."""
        raise NotImplementedError

    @property
    def chunk_count(self) -> int:
        """Number of chunks :meth:`chunk_at` accepts (random-access only)."""
        return -(-self.n_rows // self.chunk_rows) if self.n_rows else 0

    def chunk_at(self, index: int) -> TableChunk:
        """Chunk ``index`` (0-based), identical to the ``index``-th item of
        :meth:`chunks`. Only random-access streams implement this."""
        raise NotImplementedError(f"{type(self).__name__} is not randomly accessible")

    def chunks(self) -> Iterator[TableChunk]:
        raise NotImplementedError

    def read_table(self) -> Table:
        """Materialize the whole stream into a resident :class:`Table`."""
        schema = self.schema
        blocks: List[TableChunk] = list(self.chunks())
        data: Dict[str, np.ndarray] = {}
        valid: Dict[str, np.ndarray] = {}
        for column in schema:
            if blocks:
                data[column.name] = np.concatenate(
                    [chunk.data[column.name] for chunk in blocks]
                )
                valid[column.name] = np.concatenate(
                    [chunk.valid[column.name] for chunk in blocks]
                )
            else:
                from repro.relational.types import _STORAGE_DTYPE

                data[column.name] = np.empty(0, dtype=_STORAGE_DTYPE[column.dtype])
                valid[column.name] = np.empty(0, dtype=bool)
        return Table._from_storage(self.name, schema, data, valid)


class InMemoryTableStream(TableChunkStream):
    """A resident :class:`Table` exposed as a chunk stream (zero-copy views)."""

    supports_random_access = True

    def __init__(self, table: Table, chunk_rows: int = DEFAULT_CHUNK_ROWS):
        if chunk_rows <= 0:
            raise TableError(f"chunk_rows must be positive, got {chunk_rows}")
        self._table = table
        self._chunk_rows = int(chunk_rows)
        self.name = table.name

    @property
    def schema(self) -> Schema:
        return self._table.schema

    @property
    def n_rows(self) -> int:
        return self._table.n_rows

    @property
    def chunk_rows(self) -> int:
        return self._chunk_rows

    def chunk_at(self, index: int) -> TableChunk:
        table = self._table
        start = index * self._chunk_rows
        if index < 0 or start >= max(table.n_rows, 1):
            raise IndexError(f"chunk index {index} out of range for {self.chunk_count} chunks")
        stop = min(start + self._chunk_rows, table.n_rows)
        names = table.schema.names
        data = {name: table.column_values(name)[start:stop] for name in names}
        valid = {name: table.column_valid(name)[start:stop] for name in names}
        return TableChunk(table.schema, data, valid, offset=start)

    def chunks(self) -> Iterator[TableChunk]:
        for index in range(self.chunk_count):
            yield self.chunk_at(index)

    def read_table(self) -> Table:
        return self._table


def as_chunk_stream(
    source, chunk_rows: Optional[int] = None
) -> TableChunkStream:
    """Coerce a :class:`Table` or stream into a :class:`TableChunkStream`."""
    if isinstance(source, TableChunkStream):
        return source
    if isinstance(source, Table):
        return InMemoryTableStream(source, chunk_rows or DEFAULT_CHUNK_ROWS)
    raise TableError(
        f"cannot stream chunks from object of type {type(source).__name__}"
    )

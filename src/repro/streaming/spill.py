"""Memory-mapped spill store for out-of-core factor data.

The spillable builder writes each source's processed matrix ``D_k`` into a
float64 ``np.memmap`` owned by a :class:`SpillStore` instead of a resident
array. A memmap *is* an ndarray, so the existing :class:`Backend` protocol,
``SourceFactor`` storage and compiled :class:`OperatorPlan` kernels work on
it unchanged — only residency differs.

Residency is the point: file-backed pages count toward RSS while mapped in,
so after writing a block (and between training blocks) callers invoke
:meth:`SpillStore.release` which flushes dirty pages and ``madvise``\\ s the
mappings with ``MADV_DONTNEED``. Clean pages stay in the kernel page cache
(subsequent reads are minor faults, not disk I/O) but leave the process
RSS, which is what keeps the peak under a hard memory budget.
"""

from __future__ import annotations

import mmap
import tempfile
import weakref
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro import telemetry as _telemetry
from repro.exceptions import IntegrityError

PathLike = Union[str, Path]

_MADV_DONTNEED = getattr(mmap, "MADV_DONTNEED", None)


class SpillStore:
    """A directory of named float64 memory-mapped matrices.

    With no ``directory`` argument the store owns a temporary directory
    that is deleted on :meth:`cleanup` (also invoked by garbage collection
    via a weakref finalizer, and by ``with``-statement exit).

    With ``checksums=True`` the builder records a CRC32 per written row
    block (:meth:`record_crc`, computed from the in-memory chunk *before*
    it ever touches the memmap) and :meth:`verify` re-reads the file to
    detect torn or corrupted writes, optionally repairing a block from
    source via a caller-supplied ``repair`` callback. Checksums default
    off: the hot build path stays byte-for-byte the PR 5–8 code.
    """

    def __init__(self, directory: Optional[PathLike] = None, checksums: bool = False):
        if directory is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-spill-")
            self.directory = Path(self._tmp.name)
            self._finalizer = weakref.finalize(self, self._tmp.cleanup)
        else:
            self._tmp = None
            self._finalizer = None
            self.directory = Path(directory)
            self.directory.mkdir(parents=True, exist_ok=True)
        self._maps: Dict[str, np.memmap] = {}
        self.checksums = bool(checksums)
        # name -> list of (row_start, row_stop, crc32) in write order
        self._crcs: Dict[str, List[Tuple[int, int, int]]] = {}

    # -- allocation -------------------------------------------------------------------
    def allocate(self, name: str, n_rows: int, n_columns: int) -> np.memmap:
        """Create a zero-initialized ``n_rows × n_columns`` float64 memmap.

        Names are single-use: re-allocating an existing name raises instead
        of silently clobbering a file a live factor may still be reading —
        use one store per build (or distinct names) for repeated builds.
        """
        if name in self._maps:
            raise ValueError(
                f"spill store already holds a matrix named {name!r}; "
                "use one store per build or distinct names"
            )
        path = self.directory / f"{name}.f64"
        matrix = np.memmap(path, dtype=np.float64, mode="w+", shape=(int(n_rows), int(n_columns)))
        self._maps[name] = matrix
        if _telemetry.ENABLED:
            _telemetry.counter_add("spill.matrices")
            _telemetry.counter_add("spill.bytes_allocated", float(matrix.nbytes))
        return matrix

    def get(self, name: str) -> np.memmap:
        return self._maps[name]

    def discard(self, name: str) -> None:
        """Drop one matrix: close its mapping and delete the backing file.

        Used for orphan cleanup when a build fails mid-way (nothing else
        can ever reference a half-filled matrix) and to rebuild a matrix
        whose checksum validation failed — after ``discard`` the name is
        free to :meth:`allocate` again.
        """
        matrix = self._maps.pop(name, None)
        self._crcs.pop(name, None)
        if matrix is None:
            return
        raw = getattr(matrix, "_mmap", None)
        if raw is not None:
            try:
                raw.close()
            except (BufferError, ValueError):
                pass  # a live view pins the buffer; the file still goes
        try:
            (self.directory / f"{name}.f64").unlink()
        except OSError:
            pass
        if _telemetry.ENABLED:
            _telemetry.counter_add("spill.discarded")

    # -- checksums ----------------------------------------------------------------------
    def record_crc(self, name: str, row_start: int, row_stop: int, crc: int) -> None:
        """Record the CRC32 of rows ``[row_start, row_stop)`` of ``name``.

        The builder computes ``crc`` from the in-memory chunk before the
        memmap write, so a torn or corrupted write is caught by
        :meth:`verify` rather than laundered into the recorded checksum.
        """
        if not self.checksums:
            return
        self._crcs.setdefault(name, []).append((int(row_start), int(row_stop), int(crc)))

    def verify(self, name: str, repair=None) -> int:
        """Re-read ``name`` from its mapping and validate every recorded block.

        Returns the number of blocks repaired. Without a ``repair``
        callback the first mismatch raises
        :class:`~repro.exceptions.IntegrityError`; with one, each bad
        block is handed to ``repair(row_start, row_stop, destination)``
        (which must refill ``destination[...]`` from source) and then
        re-validated — a repair that still mismatches raises.
        """
        if not self.checksums:
            return 0
        matrix = self._maps[name]
        repaired = 0
        for row_start, row_stop, crc in self._crcs.get(name, []):
            block = np.ascontiguousarray(matrix[row_start:row_stop])
            if zlib.crc32(block.tobytes()) == crc:
                continue
            if _telemetry.ENABLED:
                _telemetry.counter_add("spill.crc_mismatch")
            if repair is None:
                raise IntegrityError(
                    f"spill matrix {name!r} rows [{row_start}, {row_stop}) failed "
                    "CRC32 validation (torn or corrupted write)"
                )
            destination = matrix[row_start:row_stop]
            repair(row_start, row_stop, destination)
            block = np.ascontiguousarray(matrix[row_start:row_stop])
            if zlib.crc32(block.tobytes()) != crc:
                raise IntegrityError(
                    f"spill matrix {name!r} rows [{row_start}, {row_stop}) still "
                    "fail CRC32 validation after repair from source"
                )
            repaired += 1
        if repaired and _telemetry.ENABLED:
            _telemetry.counter_add("spill.blocks_repaired", float(repaired))
        return repaired

    @property
    def spilled_bytes(self) -> int:
        """Total bytes of factor data held on disk by this store."""
        return sum(m.nbytes for m in self._maps.values())

    # -- residency control --------------------------------------------------------------
    def release(self) -> None:
        """Flush dirty pages and drop all mappings from the process RSS.

        No-op on platforms without ``madvise``/``MADV_DONTNEED``; data is
        never lost — file-backed shared mappings are written back before
        pages are reclaimed, and later reads fault the pages back in.
        """
        for matrix in self._maps.values():
            matrix.flush()
            raw = getattr(matrix, "_mmap", None)
            if raw is not None and _MADV_DONTNEED is not None and hasattr(raw, "madvise"):
                raw.madvise(_MADV_DONTNEED)
        if _telemetry.ENABLED:
            _telemetry.counter_add("spill.releases")
            _telemetry.gauge_set("spill.bytes_on_disk", float(self.spilled_bytes))

    # -- lifecycle --------------------------------------------------------------------
    def cleanup(self) -> None:
        """Close the mappings and delete the backing files (owned dirs only)."""
        for matrix in self._maps.values():
            raw = getattr(matrix, "_mmap", None)
            if raw is not None:
                try:
                    raw.close()
                except (BufferError, ValueError):
                    pass  # live views still reference the buffer; the
                    # finalizer will retry when they are collected
        self._maps.clear()
        self._crcs.clear()
        if self._finalizer is not None and self._finalizer.alive:
            self._finalizer()

    def __enter__(self) -> "SpillStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.cleanup()

    def __repr__(self) -> str:
        return (
            f"SpillStore({str(self.directory)!r}, matrices={sorted(self._maps)}, "
            f"bytes={self.spilled_bytes})"
        )

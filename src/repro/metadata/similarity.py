"""String and set similarity measures used by schema matching and ER.

The measures are classic data-integration primitives (Rahm & Bernstein
2001 survey): edit distance, Jaro-Winkler, q-gram Jaccard for names, and
value-overlap / Jaccard for instance-based matching. For dirty-key entity
resolution at scale, :func:`ngram_jaccard_matrix` scores whole candidate
*batches* at once via factorized n-gram codes (``np.unique`` over the gram
vocabulary + one sparse set-intersection matmul) instead of a Python loop
per pair.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

import numpy as np
from scipy import sparse


def levenshtein_distance(a: str, b: str) -> int:
    """Classic dynamic-programming edit distance between two strings."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (0 if char_a == char_b else 1)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Edit distance normalized to [0, 1], 1.0 for identical strings."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity between two strings."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    match_window = max(len(a), len(b)) // 2 - 1
    match_window = max(match_window, 0)
    a_matched = [False] * len(a)
    b_matched = [False] * len(b)
    matches = 0
    for i, char_a in enumerate(a):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len(b))
        for j in range(start, end):
            if b_matched[j] or b[j] != char_a:
                continue
            a_matched[i] = True
            b_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(a_matched):
        if not matched:
            continue
        while not b_matched[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len(a) + matches / len(b) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler similarity boosting shared prefixes (up to 4 chars)."""
    jaro = jaro_similarity(a, b)
    prefix_length = 0
    for char_a, char_b in zip(a[:4], b[:4]):
        if char_a != char_b:
            break
        prefix_length += 1
    return jaro + prefix_length * prefix_weight * (1.0 - jaro)


def _ngrams(text: str, n: int) -> Set[str]:
    padded = f"{'#' * (n - 1)}{text.lower()}{'#' * (n - 1)}"
    return {padded[i : i + n] for i in range(len(padded) - n + 1)}


def ngram_jaccard_similarity(a: str, b: str, n: int = 3) -> float:
    """Jaccard similarity of character n-gram sets (default trigrams)."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    grams_a, grams_b = _ngrams(a, n), _ngrams(b, n)
    return len(grams_a & grams_b) / len(grams_a | grams_b)


def ngram_code_sets(strings: Sequence[str], n: int = 3) -> Tuple[np.ndarray, np.ndarray]:
    """Factorize the n-gram sets of many strings into one shared code space.

    Returns ``(codes, indptr)``: string ``i``'s gram set is
    ``codes[indptr[i]:indptr[i + 1]]`` — sorted, duplicate-free integer
    codes where equal grams (across all strings) share a code. Empty
    strings get empty sets (matching the scalar short-circuit, which never
    extracts grams from an empty operand).
    """
    gram_lists: List[Set[str]] = [
        _ngrams(s, n) if s else set() for s in strings
    ]
    lengths = np.fromiter((len(g) for g in gram_lists), dtype=np.int64,
                          count=len(gram_lists))
    indptr = np.zeros(len(gram_lists) + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    flat: List[str] = [gram for grams in gram_lists for gram in grams]
    if flat:
        _, codes = np.unique(np.asarray(flat, dtype=np.str_), return_inverse=True)
        codes = codes.astype(np.int64, copy=False)
    else:
        codes = np.empty(0, dtype=np.int64)
    # Sort each string's run so the sets-as-sorted-codes invariant holds.
    for i in range(len(gram_lists)):
        codes[indptr[i]:indptr[i + 1]].sort()
    return codes, indptr


def _gram_indicator(codes: np.ndarray, indptr: np.ndarray, vocabulary: int
                    ) -> sparse.csr_matrix:
    data = np.ones(codes.size, dtype=np.float64)
    return sparse.csr_matrix(
        (data, codes.astype(np.int64), indptr), shape=(indptr.size - 1, vocabulary)
    )


def ngram_jaccard_matrix(
    left: Sequence[str], right: Sequence[str], n: int = 3
) -> np.ndarray:
    """All-pairs :func:`ngram_jaccard_similarity` as one vectorized batch.

    Gram extraction is linear in total characters; the quadratic pair
    scoring runs as a single sparse set-intersection matmul over the
    factorized gram codes, so scoring a blocking bucket costs no Python
    per pair. Cell ``[i, j]`` equals ``ngram_jaccard_similarity(left[i],
    right[j], n)`` exactly (the parity tests assert this).
    """
    both = list(left) + list(right)
    codes, indptr = ngram_code_sets(both, n)
    vocabulary = int(codes.max(initial=-1)) + 1
    n_left = len(left)
    left_ind = _gram_indicator(codes[: indptr[n_left]], indptr[: n_left + 1], vocabulary)
    right_start = indptr[n_left]
    right_ind = _gram_indicator(
        codes[right_start:], indptr[n_left:] - right_start, vocabulary
    )
    intersection = np.asarray((left_ind @ right_ind.T).todense(), dtype=np.float64)
    left_sizes = np.diff(indptr[: n_left + 1]).astype(np.float64)
    right_sizes = np.diff(indptr[n_left:]).astype(np.float64)
    union = left_sizes[:, None] + right_sizes[None, :] - intersection
    with np.errstate(invalid="ignore", divide="ignore"):
        similarity = np.where(union > 0, intersection / np.where(union > 0, union, 1.0), 1.0)
    return similarity


def jaccard_set_similarity(a: Iterable, b: Iterable) -> float:
    """Jaccard similarity of two value sets."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


def value_overlap(a: Iterable, b: Iterable) -> float:
    """Containment-style overlap: |A ∩ B| / min(|A|, |B|).

    This is the standard instance-based matching signal for detecting that
    two columns draw values from the same domain even when one is a subset
    of the other (e.g. a department table vs. the whole hospital).
    """
    set_a, set_b = set(a), set(b)
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / min(len(set_a), len(set_b))


def token_sort_similarity(a: str, b: str) -> float:
    """Levenshtein similarity after splitting on non-alphanumerics and sorting.

    Useful for names such as ``resting_heart_rate`` vs ``heart rate resting``.
    """
    tokens_a = sorted(_tokenize(a))
    tokens_b = sorted(_tokenize(b))
    return levenshtein_similarity(" ".join(tokens_a), " ".join(tokens_b))


def _tokenize(text: str) -> Sequence[str]:
    tokens = []
    current = []
    for char in text.lower():
        if char.isalnum():
            current.append(char)
        elif current:
            tokens.append("".join(current))
            current = []
    if current:
        tokens.append("".join(current))
    return tokens

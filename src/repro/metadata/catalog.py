"""Hybrid metadata catalog (paper §II-A).

The catalog stores three kinds of metadata:

* *basic metadata* about each source table (schema, row count, null ratio,
  silo location) — :class:`repro.relational.schema.SourceDescription`;
* *data integration metadata* — column matches, row matches, and schema
  mappings between registered sources and target schemas;
* *model metadata* — hyper-parameters, execution environment, evaluation
  metrics, and the link back to the training datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import CatalogError
from repro.metadata.entity_resolution import RowMatch
from repro.metadata.mappings import SchemaMapping
from repro.metadata.schema_matching import ColumnMatch
from repro.relational.schema import SourceDescription
from repro.relational.table import Table


@dataclass
class ModelMetadata:
    """Metadata describing a trained ML model (paper §II-A)."""

    name: str
    model_type: str
    hyperparameters: Dict[str, object] = field(default_factory=dict)
    environment: str = "numpy"
    inputs: List[str] = field(default_factory=list)
    output: str = ""
    metrics: Dict[str, float] = field(default_factory=dict)
    training_datasets: List[str] = field(default_factory=list)


@dataclass
class DIMetadataRecord:
    """DI metadata linking a pair of sources (and optionally a target)."""

    left_source: str
    right_source: str
    column_matches: List[ColumnMatch] = field(default_factory=list)
    row_matches: List[RowMatch] = field(default_factory=list)
    schema_mapping: Optional[SchemaMapping] = None


class MetadataCatalog:
    """In-memory hybrid metadata catalog."""

    def __init__(self) -> None:
        self._sources: Dict[str, SourceDescription] = {}
        self._tables: Dict[str, Table] = {}
        self._di_records: Dict[Tuple[str, str], DIMetadataRecord] = {}
        self._models: Dict[str, ModelMetadata] = {}
        self._auto_named: set = set()

    # -- basic metadata ------------------------------------------------------------
    def register_source(self, table: Table, silo: str = "") -> SourceDescription:
        """Register a source table and derive its basic metadata."""
        description = table.describe(silo=silo)
        self._sources[table.name] = description
        self._tables[table.name] = table
        return description

    def source(self, name: str) -> SourceDescription:
        try:
            return self._sources[name]
        except KeyError as exc:
            raise CatalogError(f"source {name!r} is not registered") from exc

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError as exc:
            raise CatalogError(f"source {name!r} is not registered") from exc

    @property
    def source_names(self) -> List[str]:
        return sorted(self._sources)

    def sources_in_silo(self, silo: str) -> List[SourceDescription]:
        return [d for d in self._sources.values() if d.silo == silo]

    # -- DI metadata ----------------------------------------------------------------
    def _pair_key(self, left: str, right: str) -> Tuple[str, str]:
        return (left, right)

    def record_column_matches(
        self, left: str, right: str, matches: Sequence[ColumnMatch]
    ) -> DIMetadataRecord:
        record = self._di_records.setdefault(
            self._pair_key(left, right), DIMetadataRecord(left, right)
        )
        record.column_matches = list(matches)
        return record

    def record_row_matches(
        self, left: str, right: str, matches: Sequence[RowMatch]
    ) -> DIMetadataRecord:
        record = self._di_records.setdefault(
            self._pair_key(left, right), DIMetadataRecord(left, right)
        )
        record.row_matches = list(matches)
        return record

    def record_schema_mapping(
        self, left: str, right: str, mapping: SchemaMapping
    ) -> DIMetadataRecord:
        record = self._di_records.setdefault(
            self._pair_key(left, right), DIMetadataRecord(left, right)
        )
        record.schema_mapping = mapping
        return record

    def di_metadata(self, left: str, right: str) -> DIMetadataRecord:
        key = self._pair_key(left, right)
        if key not in self._di_records:
            raise CatalogError(f"no DI metadata recorded for ({left!r}, {right!r})")
        return self._di_records[key]

    def has_di_metadata(self, left: str, right: str) -> bool:
        return self._pair_key(left, right) in self._di_records

    @property
    def di_records(self) -> List[DIMetadataRecord]:
        return list(self._di_records.values())

    # -- model metadata ----------------------------------------------------------------
    def register_model(self, metadata: ModelMetadata, auto_named: bool = False) -> None:
        """Register a model; ``auto_named`` marks facade counter names
        (``model_{n}``), whose string lookup :meth:`model` deprecates."""
        self._models[metadata.name] = metadata
        if auto_named:
            self._auto_named.add(metadata.name)
        else:
            self._auto_named.discard(metadata.name)

    def model(self, name) -> ModelMetadata:
        """Look up model metadata by :class:`~repro.system.plan.ModelHandle`
        or by name.

        Addressing an auto-named model by its bare counter string is
        deprecated — hold on to the handle ``Amalur.train`` returns
        instead of reconstructing ``model_{n}``.
        """
        handle_name = getattr(name, "name", None)
        if handle_name is not None:
            name = handle_name
        elif name in self._auto_named:
            import warnings

            warnings.warn(
                f"looking up the auto-generated model name {name!r} by string is "
                "deprecated; use the ModelHandle returned by Amalur.train",
                DeprecationWarning,
                stacklevel=2,
            )
        try:
            return self._models[name]
        except KeyError as exc:
            raise CatalogError(f"model {name!r} is not registered") from exc

    @property
    def model_names(self) -> List[str]:
        return sorted(self._models)

    def models_trained_on(self, source_name: str) -> List[ModelMetadata]:
        """Models whose training datasets include the given source."""
        return [
            metadata
            for metadata in self._models.values()
            if source_name in metadata.training_datasets
        ]

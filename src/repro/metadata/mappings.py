"""Schema mappings as source-to-target tuple-generating dependencies.

Section III-A of the paper formalizes the relationship between source
tables and the target table with s-t tgds of the form
``∀x (ϕ(x) → ∃y ψ(x, y))``. Table I classifies the four integration
scenarios relevant for feature augmentation and federated learning: full
outer join, inner join, left join and union. This module provides a small
first-order representation of those tgds plus the classification logic
that the cost model (Example IV.1) uses as pruning rules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.exceptions import MappingError
from repro.metadata.schema_matching import ColumnMatch
from repro.relational.table import Table


@dataclass(frozen=True)
class Atom:
    """A relational atom ``R(x1, ..., xn)`` appearing in a tgd."""

    relation: str
    variables: Tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.variables)})"


@dataclass(frozen=True)
class TGD:
    """A source-to-target tuple-generating dependency.

    ``body`` is a conjunction of source atoms, ``head`` a single target
    atom; ``existential_variables`` are the head variables not bound in the
    body (the ``∃`` variables of the paper's m2/m3 examples).
    """

    name: str
    body: Tuple[Atom, ...]
    head: Atom

    def __post_init__(self) -> None:
        if not self.body:
            raise MappingError(f"tgd {self.name!r} needs at least one body atom")

    @property
    def body_variables(self) -> Set[str]:
        return {v for atom in self.body for v in atom.variables}

    @property
    def head_variables(self) -> Set[str]:
        return set(self.head.variables)

    @property
    def existential_variables(self) -> Set[str]:
        return self.head_variables - self.body_variables

    @property
    def is_full(self) -> bool:
        """A *full* tgd has no existentially quantified head variables.

        Example IV.1 of the paper uses this property as a pruning rule:
        a full tgd means the target cannot contain more redundancy than the
        sources, so materialization is the straightforward choice.
        """
        return not self.existential_variables

    @property
    def source_relations(self) -> Tuple[str, ...]:
        return tuple(atom.relation for atom in self.body)

    def __str__(self) -> str:
        body = " ∧ ".join(str(atom) for atom in self.body)
        existentials = sorted(self.existential_variables)
        prefix = f"∃{','.join(existentials)} " if existentials else ""
        return f"{self.name}: ∀({body}) → {prefix}{self.head}"


class ScenarioType(enum.Enum):
    """The four dataset relationships of Table I."""

    FULL_OUTER_JOIN = "full_outer_join"
    INNER_JOIN = "inner_join"
    LEFT_JOIN = "left_join"
    UNION = "union"


@dataclass
class SchemaMapping:
    """A schema mapping M = ⟨S, T, Σ⟩ between source schemas and a target.

    Besides the logical tgds, the mapping records the concrete column
    correspondences per source (``source_to_target``) that the mapping
    matrices of §III-A are generated from.
    """

    source_names: List[str]
    target_name: str
    tgds: List[TGD] = field(default_factory=list)
    source_to_target: Dict[str, Dict[str, str]] = field(default_factory=dict)
    target_columns: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        for source in self.source_to_target:
            if source not in self.source_names:
                raise MappingError(f"correspondences refer to unknown source {source!r}")

    def add_tgd(self, tgd: TGD) -> None:
        unknown = set(tgd.source_relations) - set(self.source_names)
        if unknown:
            raise MappingError(f"tgd {tgd.name!r} refers to unknown sources {sorted(unknown)}")
        self.tgds.append(tgd)

    def mapped_target_columns(self, source: str) -> List[str]:
        """Target columns populated by ``source`` (ordered like the target)."""
        correspondences = self.source_to_target.get(source, {})
        mapped = set(correspondences.values())
        return [c for c in self.target_columns if c in mapped]

    def mapped_source_columns(self, source: str) -> List[str]:
        """Source columns of ``source`` that map into the target."""
        return list(self.source_to_target.get(source, {}).keys())

    def classify(self) -> ScenarioType:
        """Classify the mapping into one of the Table I scenarios.

        The classification follows the structure of the tgd set:

        * a join tgd (two-atom body) plus per-source single-atom tgds for
          every source → full outer join;
        * only a join tgd → inner join;
        * a join tgd plus a single-atom tgd for a strict subset of the
          sources → left join (the sources with their own tgd are "kept");
        * only single-atom tgds, and the sources map the same target
          columns → union.
        """
        join_tgds = [t for t in self.tgds if len(t.body) >= 2]
        single_tgds = [t for t in self.tgds if len(t.body) == 1]
        singles_by_source = {t.body[0].relation for t in single_tgds}

        if join_tgds and singles_by_source >= set(self.source_names):
            return ScenarioType.FULL_OUTER_JOIN
        if join_tgds and singles_by_source:
            return ScenarioType.LEFT_JOIN
        if join_tgds:
            return ScenarioType.INNER_JOIN
        if single_tgds:
            return ScenarioType.UNION
        raise MappingError("schema mapping has no tgds to classify")

    def has_full_tgd_only(self) -> bool:
        """True when every tgd is full (no existential variables).

        Used as the Example IV.1 pruning rule in the cost model.
        """
        return all(tgd.is_full for tgd in self.tgds)

    def __str__(self) -> str:
        return "\n".join(str(tgd) for tgd in self.tgds)


def _correspondences_from_matches(
    base: Table,
    other: Table,
    matches: Sequence[ColumnMatch],
    target_columns: Sequence[str],
) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Map each source's columns onto target column names.

    The target column takes the base table's column name when the base
    maps it; otherwise the other table's name.
    """
    base_map: Dict[str, str] = {}
    other_map: Dict[str, str] = {}
    matched_other = {m.right_column: m.left_column for m in matches}
    for column in target_columns:
        if column in base.schema:
            base_map[column] = column
            # A matched column of `other` also populates this target column.
            for other_column, base_column in matched_other.items():
                if base_column == column:
                    other_map[other_column] = column
        elif column in other.schema:
            other_map[column] = column
    return base_map, other_map


def build_scenario_mapping(
    base: Table,
    other: Table,
    matches: Sequence[ColumnMatch],
    target_columns: Sequence[str],
    scenario: ScenarioType,
    target_name: str = "T",
) -> SchemaMapping:
    """Build the Table I schema mapping for two source tables.

    ``matches`` are the column correspondences between ``base`` and
    ``other`` (from schema matching); ``target_columns`` is the mediated
    schema chosen by the user/feature selection.
    """
    base_map, other_map = _correspondences_from_matches(base, other, matches, target_columns)
    mapping = SchemaMapping(
        source_names=[base.name, other.name],
        target_name=target_name,
        source_to_target={base.name: base_map, other.name: other_map},
        target_columns=list(target_columns),
    )

    base_vars = tuple(base.schema.names)
    other_vars = tuple(
        name if name not in matched_vars(matches) else matched_vars(matches)[name]
        for name in other.schema.names
    )
    target_vars = tuple(target_columns)

    base_atom = Atom(base.name, base_vars)
    other_atom = Atom(other.name, other_vars)
    target_atom = Atom(target_name, target_vars)

    join_tgd = TGD("m1", (base_atom, other_atom), target_atom)
    base_only_tgd = TGD("m2", (base_atom,), target_atom)
    other_only_tgd = TGD("m3", (other_atom,), target_atom)

    if scenario is ScenarioType.FULL_OUTER_JOIN:
        mapping.add_tgd(join_tgd)
        mapping.add_tgd(base_only_tgd)
        mapping.add_tgd(other_only_tgd)
    elif scenario is ScenarioType.INNER_JOIN:
        mapping.add_tgd(join_tgd)
    elif scenario is ScenarioType.LEFT_JOIN:
        mapping.add_tgd(join_tgd)
        mapping.add_tgd(base_only_tgd)
    elif scenario is ScenarioType.UNION:
        mapping.add_tgd(base_only_tgd)
        mapping.add_tgd(other_only_tgd)
    else:  # pragma: no cover - exhaustive enum
        raise MappingError(f"unknown scenario {scenario!r}")
    return mapping


def matched_vars(matches: Sequence[ColumnMatch]) -> Dict[str, str]:
    """Map right-table column names to the left-table variable they share."""
    return {m.right_column: m.left_column for m in matches}

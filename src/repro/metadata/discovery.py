"""Data discovery for feature augmentation (paper §I, §II, use case 1).

Given a base table (with a label column) and a set of candidate tables
registered in the metadata catalog, rank the candidates by how useful they
are for augmenting the base table's features:

* *joinability* — can the candidate be linked to the base via high-overlap
  key-like columns (this is what makes an augmentation possible at all);
* *new-feature gain* — how many numeric columns the candidate would add;
* *relevance* — absolute correlation between the candidate's new numeric
  features and the base label, computed over the rows that join (the
  COCOA-style correlation signal the paper cites [33]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.metadata.catalog import MetadataCatalog
from repro.metadata.entity_resolution import KeyBasedResolver, RowMatch
from repro.metadata.schema_matching import ColumnMatch, HybridMatcher, SchemaMatcher
from repro.relational.table import Table
from repro.relational.types import is_null


@dataclass
class AugmentationCandidate:
    """A candidate table for feature augmentation, with its scores."""

    table_name: str
    column_matches: List[ColumnMatch]
    row_matches: List[RowMatch]
    new_features: List[str]
    joinability: float
    relevance: float
    score: float = 0.0
    feature_correlations: Dict[str, float] = field(default_factory=dict)


class DataDiscovery:
    """Rank catalog tables as feature-augmentation candidates for a base table."""

    def __init__(
        self,
        catalog: MetadataCatalog,
        matcher: Optional[SchemaMatcher] = None,
        joinability_weight: float = 0.5,
        relevance_weight: float = 0.5,
    ):
        self.catalog = catalog
        self.matcher = matcher or HybridMatcher(threshold=0.5)
        self.joinability_weight = joinability_weight
        self.relevance_weight = relevance_weight

    def discover(
        self,
        base: Table,
        label_column: str,
        exclude: Sequence[str] = (),
        top_k: Optional[int] = None,
    ) -> List[AugmentationCandidate]:
        """Return augmentation candidates sorted by descending score."""
        excluded = set(exclude) | {base.name}
        candidates: List[AugmentationCandidate] = []
        for name in self.catalog.source_names:
            if name in excluded:
                continue
            candidate = self._evaluate_candidate(base, label_column, self.catalog.table(name))
            if candidate is not None:
                candidates.append(candidate)
        candidates.sort(key=lambda c: -c.score)
        if top_k is not None:
            candidates = candidates[:top_k]
        return candidates

    def _evaluate_candidate(
        self, base: Table, label_column: str, candidate: Table
    ) -> Optional[AugmentationCandidate]:
        column_matches = self.matcher.match(base, candidate)
        if not column_matches:
            return None
        row_matches = self._align_rows(base, candidate, column_matches)
        joinability = len(row_matches) / base.n_rows if base.n_rows else 0.0

        matched_candidate_columns = {m.right_column for m in column_matches}
        new_features = [
            column.name
            for column in candidate.schema
            if column.dtype.is_numeric and column.name not in matched_candidate_columns
        ]
        correlations = self._label_correlations(
            base, label_column, candidate, new_features, row_matches
        )
        relevance = max(correlations.values()) if correlations else 0.0
        score = self.joinability_weight * joinability + self.relevance_weight * relevance
        return AugmentationCandidate(
            table_name=candidate.name,
            column_matches=column_matches,
            row_matches=row_matches,
            new_features=new_features,
            joinability=joinability,
            relevance=relevance,
            score=score,
            feature_correlations=correlations,
        )

    def _align_rows(
        self, base: Table, candidate: Table, column_matches: Sequence[ColumnMatch]
    ) -> List[RowMatch]:
        shared_keys = [
            (column.name, column.name)
            for column in base.schema.key_columns
            if column.name in candidate.schema
        ]
        if shared_keys:
            return KeyBasedResolver(shared_keys).resolve(base, candidate)
        # Fall back to exact equality on the best-scoring matched column pair.
        best = max(column_matches, key=lambda m: m.score)
        return KeyBasedResolver([(best.left_column, best.right_column)]).resolve(base, candidate)

    def _label_correlations(
        self,
        base: Table,
        label_column: str,
        candidate: Table,
        new_features: Sequence[str],
        row_matches: Sequence[RowMatch],
    ) -> Dict[str, float]:
        if not row_matches or not new_features:
            return {}
        labels = []
        feature_rows = []
        for match in row_matches:
            label = base.cell(match.left_row, label_column)
            if is_null(label):
                continue
            row = [candidate.cell(match.right_row, feature) for feature in new_features]
            labels.append(float(label))
            feature_rows.append([0.0 if is_null(v) else float(v) for v in row])
        if len(labels) < 2:
            return {}
        label_array = np.asarray(labels)
        features_array = np.asarray(feature_rows)
        correlations: Dict[str, float] = {}
        for j, feature in enumerate(new_features):
            column = features_array[:, j]
            if np.std(column) == 0 or np.std(label_array) == 0:
                correlations[feature] = 0.0
                continue
            correlations[feature] = float(abs(np.corrcoef(column, label_array)[0, 1]))
        return correlations

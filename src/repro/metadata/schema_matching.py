"""Schema matching: discover column correspondences between tables.

The output — a list of :class:`ColumnMatch` — is the paper's "column
relationships from schema matching" (§II-A) and feeds directly into the
mapping matrices of §III-A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import MatchingError
from repro.metadata.similarity import (
    jaro_winkler_similarity,
    levenshtein_similarity,
    ngram_jaccard_similarity,
    token_sort_similarity,
    value_overlap,
)
from repro.relational.table import Table


@dataclass(frozen=True)
class ColumnMatch:
    """A correspondence between one column of each of two tables."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str
    score: float

    def reversed(self) -> "ColumnMatch":
        return ColumnMatch(
            self.right_table, self.right_column, self.left_table, self.left_column, self.score
        )


class SchemaMatcher:
    """Base class for schema matchers.

    Subclasses implement :meth:`score` for a single column pair; the base
    class provides stable-greedy 1:1 match extraction over the full score
    matrix.
    """

    def __init__(self, threshold: float = 0.6):
        if not 0.0 <= threshold <= 1.0:
            raise MatchingError(f"threshold must be in [0, 1], got {threshold}")
        self.threshold = threshold

    def score(self, left: Table, left_column: str, right: Table, right_column: str) -> float:
        raise NotImplementedError

    def score_matrix(self, left: Table, right: Table) -> Dict[Tuple[str, str], float]:
        """Score every column pair of the two tables."""
        scores: Dict[Tuple[str, str], float] = {}
        for left_column in left.schema.names:
            for right_column in right.schema.names:
                scores[(left_column, right_column)] = self.score(
                    left, left_column, right, right_column
                )
        return scores

    def match(self, left: Table, right: Table) -> List[ColumnMatch]:
        """Extract 1:1 matches greedily by descending score above threshold."""
        scores = self.score_matrix(left, right)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        used_left: set = set()
        used_right: set = set()
        matches: List[ColumnMatch] = []
        for (left_column, right_column), score in ranked:
            if score < self.threshold:
                break
            if left_column in used_left or right_column in used_right:
                continue
            used_left.add(left_column)
            used_right.add(right_column)
            matches.append(
                ColumnMatch(left.name, left_column, right.name, right_column, score)
            )
        return matches


class NameBasedMatcher(SchemaMatcher):
    """Match columns by name similarity.

    Combines Levenshtein, Jaro-Winkler, trigram-Jaccard and token-sort
    similarity; the maximum of the four is used so that each measure's
    strength (typos, prefixes, re-ordered words) is captured.
    """

    def score(self, left: Table, left_column: str, right: Table, right_column: str) -> float:
        a, b = left_column.lower(), right_column.lower()
        if a == b:
            return 1.0
        return max(
            levenshtein_similarity(a, b),
            jaro_winkler_similarity(a, b),
            ngram_jaccard_similarity(a, b),
            token_sort_similarity(a, b),
        )


class InstanceBasedMatcher(SchemaMatcher):
    """Match columns by the overlap of their value sets.

    Columns of different data types never match; numeric columns are also
    compared through range overlap so e.g. two age columns with few shared
    exact values still score well.
    """

    def __init__(self, threshold: float = 0.5, sample_size: int = 1000):
        super().__init__(threshold)
        self.sample_size = sample_size

    def score(self, left: Table, left_column: str, right: Table, right_column: str) -> float:
        left_dtype = left.schema[left_column].dtype
        right_dtype = right.schema[right_column].dtype
        if left_dtype.is_numeric != right_dtype.is_numeric:
            return 0.0
        left_values = list(left.distinct_values(left_column))[: self.sample_size]
        right_values = list(right.distinct_values(right_column))[: self.sample_size]
        if not left_values or not right_values:
            return 0.0
        overlap = value_overlap(left_values, right_values)
        if left_dtype.is_numeric and right_dtype.is_numeric:
            overlap = max(overlap, _range_overlap(left_values, right_values))
        return overlap


def _range_overlap(left_values: Sequence[float], right_values: Sequence[float]) -> float:
    left_lo, left_hi = min(left_values), max(left_values)
    right_lo, right_hi = min(right_values), max(right_values)
    intersection = min(left_hi, right_hi) - max(left_lo, right_lo)
    if intersection <= 0:
        return 0.0
    union = max(left_hi, right_hi) - min(left_lo, right_lo)
    if union <= 0:
        return 1.0
    return intersection / union


class HybridMatcher(SchemaMatcher):
    """Weighted combination of name-based and instance-based matching."""

    def __init__(
        self,
        threshold: float = 0.6,
        name_weight: float = 0.6,
        instance_weight: float = 0.4,
    ):
        super().__init__(threshold)
        total = name_weight + instance_weight
        if total <= 0:
            raise MatchingError("weights must sum to a positive value")
        self.name_weight = name_weight / total
        self.instance_weight = instance_weight / total
        self._name_matcher = NameBasedMatcher(threshold=0.0)
        self._instance_matcher = InstanceBasedMatcher(threshold=0.0)

    def score(self, left: Table, left_column: str, right: Table, right_column: str) -> float:
        name_score = self._name_matcher.score(left, left_column, right, right_column)
        instance_score = self._instance_matcher.score(left, left_column, right, right_column)
        return self.name_weight * name_score + self.instance_weight * instance_score


def match_schemas(
    left: Table,
    right: Table,
    matcher: Optional[SchemaMatcher] = None,
) -> List[ColumnMatch]:
    """Convenience wrapper: match two tables with the default hybrid matcher."""
    matcher = matcher or HybridMatcher()
    return matcher.match(left, right)

"""Data-integration metadata: matching, mappings, catalog, discovery.

This package produces the DI metadata that the paper's matrix
representations (``repro.matrices``) encode: column correspondences from
schema matching, row correspondences from entity resolution, and
declarative schema mappings (s-t tgds) describing how sources populate the
target table.
"""

from repro.metadata.similarity import (
    levenshtein_distance,
    levenshtein_similarity,
    jaro_winkler_similarity,
    ngram_jaccard_similarity,
    value_overlap,
    jaccard_set_similarity,
)
from repro.metadata.schema_matching import (
    ColumnMatch,
    SchemaMatcher,
    NameBasedMatcher,
    InstanceBasedMatcher,
    HybridMatcher,
    match_schemas,
)
from repro.metadata.entity_resolution import (
    RowMatch,
    EntityResolver,
    KeyBasedResolver,
    SimilarityResolver,
    resolve_entities,
)
from repro.metadata.mappings import (
    Atom,
    TGD,
    SchemaMapping,
    ScenarioType,
    build_scenario_mapping,
)
from repro.metadata.catalog import (
    MetadataCatalog,
    ModelMetadata,
    DIMetadataRecord,
)
from repro.metadata.discovery import (
    AugmentationCandidate,
    DataDiscovery,
)

__all__ = [
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaro_winkler_similarity",
    "ngram_jaccard_similarity",
    "value_overlap",
    "jaccard_set_similarity",
    "ColumnMatch",
    "SchemaMatcher",
    "NameBasedMatcher",
    "InstanceBasedMatcher",
    "HybridMatcher",
    "match_schemas",
    "RowMatch",
    "EntityResolver",
    "KeyBasedResolver",
    "SimilarityResolver",
    "resolve_entities",
    "Atom",
    "TGD",
    "SchemaMapping",
    "ScenarioType",
    "build_scenario_mapping",
    "MetadataCatalog",
    "ModelMetadata",
    "DIMetadataRecord",
    "AugmentationCandidate",
    "DataDiscovery",
]

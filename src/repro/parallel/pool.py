"""Shared worker pools and ordered block-parallel maps.

Three primitives cover every parallel call site in the engine:

``parallel_map(fn, items)``
    Eager ordered map over a finite task list — the shape of every
    row-block operator (LMM / transpose-LMM / Gram partial sums). Results
    come back in submission order, so reductions on the caller's thread
    reassociate identically regardless of which worker finished first.

``imap_ordered(fn, iterable)``
    Lazy ordered map with a bounded in-flight window, for pipelines that
    must not materialize every task at once (chunked CSV parse, spillable
    ``D_k`` assembly). At most ``window`` results are buffered, so peak
    memory stays at ``window x chunk`` instead of the whole stream.

``prefetch(iterable)``
    A background feeder that keeps ``depth`` items ready ahead of the
    consumer — the double-buffer that overlaps :class:`SpillStore` block
    I/O with the current matmul in ``StreamingGD``.

Pools are plain ``ThreadPoolExecutor``s, cached per size. Threads are the
right vehicle here: the hot kernels are BLAS matmuls and numpy slice
copies, all of which release the GIL. Tasks submitted from *inside* a
worker run inline on that worker (no nested fan-out), which makes
composition — a parallel builder consuming a parallel ingest — safe by
construction instead of deadlock-prone.
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Deque, Dict, Iterable, Iterator, List, Optional, Sequence, TypeVar

from repro import telemetry as _telemetry
from repro.exceptions import PoisonTaskError, TransientError
from repro.parallel import config
from repro.reliability import faults as _faults
from repro.reliability.retry import TASK_RETRY

T = TypeVar("T")
R = TypeVar("R")

_pool_lock = threading.Lock()
_executors: Dict[int, ThreadPoolExecutor] = {}
_task_local = threading.local()


def _get_executor(workers: int) -> ThreadPoolExecutor:
    executor = _executors.get(workers)
    if executor is None:
        with _pool_lock:
            executor = _executors.get(workers)
            if executor is None:
                executor = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix=f"repro-par-{workers}"
                )
                _executors[workers] = executor
    return executor


def _in_worker() -> bool:
    return getattr(_task_local, "in_worker", False)


def _annotate(exc: BaseException, label: str, index: int) -> None:
    """Stamp a worker exception with its originating site and block index.

    Mutating ``args`` (rather than wrapping) keeps the exception type and
    ``except`` clauses intact while making ``str(exc)`` — and therefore
    any logged traceback — say which unit of work failed.
    """
    note = f"[parallel site={label or 'parallel.task'}, block={index}]"
    if exc.args and isinstance(exc.args[0], str):
        exc.args = (f"{exc.args[0]} {note}",) + exc.args[1:]
    else:
        exc.args = exc.args + (note,)


def _run_task(fn: Callable[[T], R], item: T, label: str = "", index: int = -1) -> R:
    previous = getattr(_task_local, "in_worker", False)
    _task_local.in_worker = True
    try:
        if not _faults.ACTIVE:
            try:
                return fn(item)
            except Exception as exc:
                _annotate(exc, label, index)
                raise
        # Chaos path: the fault site fires before the task body, and
        # transient faults are retried. Tasks are idempotent (each writes
        # a disjoint slice or returns a pure value), so a retried task
        # redoes identical work and block-parity is preserved.

        def _attempt() -> R:
            _faults.fault_point("parallel.task", label=label, index=index)
            return fn(item)

        try:
            return TASK_RETRY.call(_attempt, site="parallel.task")
        except TransientError as exc:
            raise PoisonTaskError(
                f"parallel task kept failing after {TASK_RETRY.max_attempts} "
                f"attempts [parallel site={label or 'parallel.task'}, "
                f"block={index}]",
                site=label or "parallel.task",
                index=index,
            ) from exc
        except Exception as exc:
            _annotate(exc, label, index)
            raise
    finally:
        _task_local.in_worker = previous


def shutdown() -> None:
    """Tear down every cached pool (tests; atexit not required)."""
    with _pool_lock:
        executors = list(_executors.values())
        _executors.clear()
    for executor in executors:
        executor.shutdown(wait=True)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    label: Optional[str] = None,
) -> List[R]:
    """Apply ``fn`` to every item, returning results in item order.

    Falls back to a plain serial loop when one worker is effective or when
    called from inside another parallel task (reentrancy guard). The
    output is order-identical to ``[fn(x) for x in items]`` either way.
    """
    items = list(items)
    effective = config.effective_workers(len(items), workers)
    if effective <= 1 or _in_worker():
        if _faults.ACTIVE:
            # Chaos runs exercise the fault/retry path even on the serial
            # fallback, so a one-core machine still injects worker faults.
            return [
                _run_task(fn, item, label or "", i) for i, item in enumerate(items)
            ]
        return [fn(item) for item in items]
    executor = _get_executor(effective)
    labels = [label or ""] * len(items)
    indices = range(len(items))
    if _telemetry.ENABLED:
        with _telemetry.span(
            "parallel.map", label=label or "", tasks=len(items), workers=effective
        ):
            _telemetry.counter_add("parallel.maps")
            _telemetry.counter_add("parallel.tasks", len(items))
            return list(executor.map(_run_task, [fn] * len(items), items, labels, indices))
    return list(executor.map(_run_task, [fn] * len(items), items, labels, indices))


def imap_ordered(
    fn: Callable[[T], R],
    iterable: Iterable[T],
    workers: Optional[int] = None,
    window: Optional[int] = None,
    label: str = "",
) -> Iterator[R]:
    """Lazily map ``fn`` over ``iterable``, yielding results in input order.

    At most ``window`` tasks (default ``2 x workers``) are in flight or
    buffered at once, which bounds memory for chunk pipelines. Serial
    fallback mirrors ``map(fn, iterable)`` exactly. A task that raises
    surfaces its exception annotated with ``label`` and the task's input
    index, so a failing chunk is identifiable from the message alone.
    """
    effective = config.get_num_workers() if workers is None else max(1, int(workers))
    if effective <= 1 or _in_worker():
        if _faults.ACTIVE:
            for index, item in enumerate(iterable):
                yield _run_task(fn, item, label, index)
            return
        for item in iterable:
            yield fn(item)
        return
    executor = _get_executor(effective)
    depth = max(2, 2 * effective) if window is None else max(1, int(window))
    pending: Deque = deque()
    iterator = iter(iterable)
    submitted = 0
    if _telemetry.ENABLED:
        _telemetry.counter_add("parallel.maps")
    try:
        while True:
            while len(pending) < depth:
                try:
                    item = next(iterator)
                except StopIteration:
                    break
                pending.append(executor.submit(_run_task, fn, item, label, submitted))
                submitted += 1
                if _telemetry.ENABLED:
                    _telemetry.counter_add("parallel.tasks")
            if not pending:
                return
            yield pending.popleft().result()
    finally:
        for future in pending:
            future.cancel()


class _PrefetchDone:
    pass


_DONE = _PrefetchDone()


def prefetch(iterable: Iterable[T], depth: int = 2, label: str = "") -> Iterator[T]:
    """Pull from ``iterable`` on a background thread, ``depth`` items ahead.

    The producer blocks once the buffer is full, so an unconsumed stream
    never runs ahead of the consumer by more than ``depth`` items. Falls
    back to plain iteration at one configured worker (exact legacy path)
    or when already inside a worker task. A producer exception crosses to
    the consumer annotated with ``label`` and the index of the item whose
    production failed.
    """
    if config.get_num_workers() <= 1 or _in_worker():
        yield from iterable
        return
    buffer: "queue.Queue" = queue.Queue(maxsize=max(1, depth))

    def _feed() -> None:
        produced = 0
        try:
            for item in iterable:
                buffer.put(item)
                produced += 1
        except BaseException as exc:  # propagate to the consumer
            _annotate(exc, label or "prefetch", produced)
            buffer.put(exc)
        else:
            buffer.put(_DONE)

    feeder = threading.Thread(target=_feed, name="repro-prefetch", daemon=True)
    feeder.start()
    while True:
        item = buffer.get()
        if isinstance(item, _PrefetchDone):
            return
        if isinstance(item, BaseException):
            raise item
        yield item

"""Parallelism knobs for the block-parallel execution engine.

Three environment variables configure the engine at import time; each has
a runtime setter so tests and benchmarks can reconfigure without touching
the environment:

``REPRO_NUM_THREADS``
    Worker count for every block-parallel map. Defaults to the number of
    cores the process is allowed to run on. ``1`` selects the exact
    legacy serial path everywhere (not merely a one-worker pool).

``REPRO_PARALLEL_MIN_ROWS``
    Row-count threshold below which the factorized operators stay on the
    serial path even when more workers are configured — small matrices
    lose more to task dispatch than they gain from extra cores.

``REPRO_PARALLEL_BLOCK_ROWS``
    Row-block size used when an operator partitions work itself (the
    streaming paths reuse their own chunk/block sizes). The partition is
    a pure function of this value and the matrix shape — never of the
    worker count — which is what keeps results identical across worker
    counts >= 2.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

DEFAULT_MIN_PARALLEL_ROWS = 65_536
DEFAULT_BLOCK_ROWS = 65_536


def available_cores() -> int:
    """Number of cores this process may actually use (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return max(minimum, value)


_lock = threading.Lock()
_num_workers = _env_int("REPRO_NUM_THREADS", available_cores())
_min_parallel_rows = _env_int("REPRO_PARALLEL_MIN_ROWS", DEFAULT_MIN_PARALLEL_ROWS, minimum=0)
_block_rows = _env_int("REPRO_PARALLEL_BLOCK_ROWS", DEFAULT_BLOCK_ROWS)


def get_num_workers() -> int:
    return _num_workers


def set_num_workers(workers: Optional[int]) -> int:
    """Set the global worker count; ``None`` restores the core-count default."""
    global _num_workers
    with _lock:
        _num_workers = available_cores() if workers is None else max(1, int(workers))
        return _num_workers


def get_min_parallel_rows() -> int:
    return _min_parallel_rows


def set_min_parallel_rows(rows: int) -> None:
    global _min_parallel_rows
    with _lock:
        _min_parallel_rows = max(0, int(rows))


def get_block_rows() -> int:
    return _block_rows


def set_block_rows(rows: int) -> None:
    global _block_rows
    with _lock:
        _block_rows = max(1, int(rows))


@contextmanager
def num_threads(workers: Optional[int]) -> Iterator[int]:
    """Temporarily override the worker count (tests, benchmarks)."""
    previous = get_num_workers()
    applied = set_num_workers(workers)
    try:
        yield applied
    finally:
        set_num_workers(previous)


def should_parallelize(n_rows: int, workers: Optional[int] = None) -> bool:
    """True when a row-partitioned map over ``n_rows`` should fan out."""
    effective = get_num_workers() if workers is None else workers
    return effective > 1 and n_rows >= get_min_parallel_rows()


def effective_workers(n_tasks: int, workers: Optional[int] = None) -> int:
    """Workers to actually use for ``n_tasks`` independent tasks."""
    effective = get_num_workers() if workers is None else max(1, int(workers))
    return max(1, min(effective, n_tasks))

"""Block-parallel execution engine.

A single scheduler shared by every layer that walks row blocks: the
factorized operators (LMM / transpose-LMM / Gram partial sums), chunked
CSV ingest, spillable ``D_k`` assembly, and the streaming GD loop.

Determinism contract:

* Work is partitioned by **block size**, never by worker count, and every
  reduction happens on the calling thread in block order. Results are
  therefore identical for any worker count >= 2.
* ``REPRO_NUM_THREADS=1`` (or :func:`set_num_workers(1) <set_num_workers>`)
  is the *exact legacy path* — not a one-worker pool — so single-threaded
  runs are bit-for-bit the pre-engine code.
* Factor assembly is pure data movement into disjoint row slices: the
  built factors are bit-identical at every worker count. Floating-point
  reductions (Gram, GD gradients) reassociate across blocks, so blocked
  results agree with the unblocked serial path to <= 1e-8 while remaining
  bit-identical across worker counts.
"""

from repro.parallel.config import (
    DEFAULT_BLOCK_ROWS,
    DEFAULT_MIN_PARALLEL_ROWS,
    available_cores,
    effective_workers,
    get_block_rows,
    get_min_parallel_rows,
    get_num_workers,
    num_threads,
    set_block_rows,
    set_min_parallel_rows,
    set_num_workers,
    should_parallelize,
)
from repro.parallel.pool import imap_ordered, parallel_map, prefetch, shutdown

__all__ = [
    "DEFAULT_BLOCK_ROWS",
    "DEFAULT_MIN_PARALLEL_ROWS",
    "available_cores",
    "effective_workers",
    "get_block_rows",
    "get_min_parallel_rows",
    "get_num_workers",
    "imap_ordered",
    "num_threads",
    "parallel_map",
    "prefetch",
    "set_block_rows",
    "set_min_parallel_rows",
    "set_num_workers",
    "shutdown",
    "should_parallelize",
]

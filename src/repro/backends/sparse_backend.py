"""SciPy CSR backend — factor data kept sparse end to end."""

from __future__ import annotations

from scipy import sparse

from repro.backends.base import Backend, Storage


class SparseBackend(Backend):
    """Stores every factor as ``scipy.sparse.csr_matrix``.

    All the §IV-A rewrites then run as sparse-times-dense kernels whose
    cost is proportional to ``nnz`` instead of ``rows · cols`` — the regime
    one-hot encoded join keys, NULL-padded outer-join blocks and Hamlet
    feature-augmentation tables live in.
    """

    name = "sparse"

    @property
    def storage_cache_key(self):
        # Exact-type guard: subclasses may carry extra config the name
        # doesn't capture, so they keep the identity-keyed default.
        return "sparse" if type(self) is SparseBackend else self

    def prepare(self, data: Storage) -> sparse.csr_matrix:
        if sparse.issparse(data):
            return data.tocsr().astype(float)
        return sparse.csr_matrix(data, dtype=float)

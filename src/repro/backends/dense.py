"""Dense NumPy backend — the seed behavior, now behind the protocol."""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend, Storage, to_dense


class DenseBackend(Backend):
    """Stores every factor as a dense ``numpy.ndarray`` and runs BLAS kernels.

    This is the right choice for factors whose density is high: BLAS
    matmuls on contiguous memory beat CSR traversal well before the
    zero-skipping advantage pays off.
    """

    name = "dense"

    @property
    def storage_cache_key(self):
        # Exact-type guard: subclasses may carry extra config the name
        # doesn't capture, so they keep the identity-keyed default.
        return "dense" if type(self) is DenseBackend else self

    def prepare(self, data: Storage) -> np.ndarray:
        return to_dense(data)

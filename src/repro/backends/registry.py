"""Backend resolution: names and instances to :class:`Backend` objects."""

from __future__ import annotations

from typing import Dict, Type, Union

from repro.backends.auto import AutoBackend
from repro.backends.base import Backend
from repro.backends.dense import DenseBackend
from repro.backends.sparse_backend import SparseBackend
from repro.exceptions import BackendError

BackendSpec = Union[None, str, Backend]

_REGISTRY: Dict[str, Type[Backend]] = {
    DenseBackend.name: DenseBackend,
    SparseBackend.name: SparseBackend,
    AutoBackend.name: AutoBackend,
}

_DEFAULT = DenseBackend()


def available_backends() -> list:
    """Names of the registered backends."""
    return sorted(_REGISTRY)


def register_backend(name: str, backend_class: Type[Backend]) -> None:
    """Register a custom backend class under ``name`` (plugin hook)."""
    if not issubclass(backend_class, Backend):
        raise BackendError(f"{backend_class!r} is not a Backend subclass")
    _REGISTRY[name] = backend_class


def resolve_backend(spec: BackendSpec = None) -> Backend:
    """Turn ``None`` / a name / an instance into a :class:`Backend`.

    ``None`` resolves to the dense backend — the seed behavior, so every
    existing call site keeps its semantics unless it opts in.
    """
    if spec is None:
        return _DEFAULT
    if isinstance(spec, Backend):
        return spec
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec]()
        except KeyError:
            raise BackendError(
                f"unknown backend {spec!r}; available: {available_backends()}"
            ) from None
    raise BackendError(f"cannot resolve a backend from {type(spec).__name__}")

"""Pluggable compute backends for the factorized linear-algebra layer.

The subsystem decouples the *logical* factorized representation
``(D_k, M_k, I_k, R_k)`` of paper §III from the *physical* storage and
kernels that execute the §IV-A operator rewrites:

* :class:`DenseBackend` — dense NumPy arrays + BLAS (the seed behavior);
* :class:`SparseBackend` — SciPy CSR end to end, cost ∝ ``nnz``;
* :class:`AutoBackend` — per-factor density-threshold dispatch, sharing
  its threshold with the cost model
  (:data:`repro.costmodel.parameters.SPARSE_DENSITY_THRESHOLD`) so plan
  selection and storage selection reason from the same statistics.

``resolve_backend`` accepts ``None`` (dense), a name, or an instance and
is how the builder, :class:`repro.factorized.AmalurMatrix`, the optimizer
and the executor pick their engine.
"""

from repro.backends.auto import AutoBackend
from repro.backends.base import (
    Backend,
    Storage,
    is_sparse,
    storage_density,
    storage_nnz,
    to_dense,
)
from repro.backends.dense import DenseBackend
from repro.backends.registry import (
    BackendSpec,
    available_backends,
    register_backend,
    resolve_backend,
)
from repro.backends.sparse_backend import SparseBackend

__all__ = [
    "Backend",
    "Storage",
    "BackendSpec",
    "DenseBackend",
    "SparseBackend",
    "AutoBackend",
    "available_backends",
    "register_backend",
    "resolve_backend",
    "is_sparse",
    "storage_nnz",
    "storage_density",
    "to_dense",
]

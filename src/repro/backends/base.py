"""The compute-backend protocol: storage-engine-agnostic linear algebra.

A :class:`Backend` decides *how* a source factor's data matrix ``D_k`` is
physically stored (dense ``numpy.ndarray`` vs. SciPy CSR) and executes the
linear-algebra primitives the factorized operator rewrites of paper §IV-A
need — matmul, transpose-matmul, cross-product, element-wise ops, sums —
over that storage. The structured factorized representation
``(D_k, M_k, I_k, R_k)`` stays identical across backends; only the storage
and kernels change, mirroring how the paper separates the logical
representation (§III-A..C) from the physical one (§III-D).

Backends also own FLOP accounting (:meth:`Backend.matmul_flops` and
friends) so that the analytical cost model charges sparse plans ``nnz``
multiply-adds instead of the dense ``n·k·m`` count.

Operand matrices (model weights, gradients) are always dense — only the
factor data is candidate for sparse storage — so every operation returns a
dense ``numpy.ndarray`` unless documented otherwise.
"""

from __future__ import annotations

import abc
import time
from typing import Union

import numpy as np
from scipy import sparse

from repro import telemetry as _telemetry
from repro.exceptions import BackendError

# NOTE: repro.factorized.ops_counter owns the FLOP formulas, but importing
# it at module scope would close an import cycle (factorized → matrices →
# backends → factorized); the accounting hooks import it lazily instead.

#: A backend-prepared data matrix: dense ndarray or any SciPy sparse matrix.
Storage = Union[np.ndarray, sparse.spmatrix]


def is_sparse(storage: Storage) -> bool:
    """True when ``storage`` is a SciPy sparse matrix."""
    return sparse.issparse(storage)


def storage_nnz(storage: Storage) -> int:
    """Number of stored non-zero cells of a storage matrix."""
    if sparse.issparse(storage):
        return int(storage.nnz)
    return int(np.count_nonzero(storage))


def storage_density(storage: Storage) -> float:
    """Fraction of non-zero cells (1.0 for an empty matrix)."""
    rows, cols = storage.shape
    total = rows * cols
    return storage_nnz(storage) / total if total else 1.0


def as_float64(x) -> np.ndarray:
    """``x`` as a float64 ndarray, without copying float64 ndarray input.

    The operand-validation fast path of the factorized operators: model
    weights and residuals are float64 already, so per-iteration calls must
    not re-copy (or even re-inspect dtype via ``np.asarray``) on the way
    in.
    """
    if isinstance(x, np.ndarray) and x.dtype == np.float64:
        return x
    return np.asarray(x, dtype=np.float64)


def to_dense(storage: Storage) -> np.ndarray:
    """Densify a storage matrix into a 2-D float ndarray."""
    if sparse.issparse(storage):
        return np.asarray(storage.todense(), dtype=np.float64)
    return np.atleast_2d(np.asarray(storage, dtype=np.float64))


def _as_dense_result(result) -> np.ndarray:
    """Normalize a matmul result (ndarray, matrix, or sparse) to an ndarray."""
    if sparse.issparse(result):
        return np.asarray(result.todense(), dtype=np.float64)
    return np.asarray(result, dtype=np.float64)


class Backend(abc.ABC):
    """Physical compute engine for factor data matrices.

    Subclasses choose a storage format in :meth:`prepare`; all the generic
    operations dispatch on the storage type, so a backend that mixes
    formats per factor (:class:`repro.backends.AutoBackend`) works through
    the same code paths.
    """

    #: Registry/display name ("dense", "sparse", "auto").
    name: str = "backend"

    # -- storage ---------------------------------------------------------------------
    @abc.abstractmethod
    def prepare(self, data: Storage) -> Storage:
        """Convert raw factor data into this backend's preferred storage."""

    @property
    def storage_cache_key(self):
        """Hashable token identifying what :meth:`prepare` produces.

        Two backends with the same key must prepare identical storage, so
        prepared matrices can be shared between them. The conservative
        default keys by instance identity; stateless built-ins override it
        with their name so separately-resolved instances share a cache.
        """
        return self

    def is_sparse_storage(self, storage: Storage) -> bool:
        return is_sparse(storage)

    # -- introspection ---------------------------------------------------------------
    def nnz(self, storage: Storage) -> int:
        return storage_nnz(storage)

    def density(self, storage: Storage) -> float:
        return storage_density(storage)

    def to_dense(self, storage: Storage) -> np.ndarray:
        return to_dense(storage)

    # -- core linear algebra ---------------------------------------------------------
    def matmul(self, storage: Storage, operand: np.ndarray) -> np.ndarray:
        """``D @ X`` for a dense operand ``X``; always returns dense."""
        operand = np.asarray(operand, dtype=np.float64)
        if storage.shape[1] != operand.shape[0]:
            raise BackendError(
                f"matmul shape mismatch: {storage.shape} @ {operand.shape}"
            )
        if _telemetry.ENABLED:
            start = time.perf_counter()
            result = _as_dense_result(storage @ operand)
            _telemetry.record_op(
                "backend.matmul",
                time.perf_counter() - start,
                self.matmul_flops(storage, operand.shape[1]),
            )
            return result
        return _as_dense_result(storage @ operand)

    def transpose_matmul(self, storage: Storage, operand: np.ndarray) -> np.ndarray:
        """``Dᵀ @ X`` for a dense operand ``X``; always returns dense."""
        operand = np.asarray(operand, dtype=np.float64)
        if storage.shape[0] != operand.shape[0]:
            raise BackendError(
                f"transpose-matmul shape mismatch: {storage.shape}ᵀ @ {operand.shape}"
            )
        if _telemetry.ENABLED:
            start = time.perf_counter()
            result = _as_dense_result(storage.T @ operand)
            _telemetry.record_op(
                "backend.transpose_matmul",
                time.perf_counter() - start,
                self.matmul_flops(storage, operand.shape[1]),
            )
            return result
        return _as_dense_result(storage.T @ operand)

    def crossprod(self, storage: Storage) -> np.ndarray:
        """The Gram matrix ``Dᵀ D`` (dense result)."""
        if _telemetry.ENABLED:
            start = time.perf_counter()
            result = _as_dense_result(storage.T @ storage)
            _telemetry.record_op(
                "backend.crossprod",
                time.perf_counter() - start,
                self.crossprod_flops(storage),
            )
            return result
        return _as_dense_result(storage.T @ storage)

    def gram_pair(self, left: Storage, right: Storage) -> np.ndarray:
        """The cross term ``Lᵀ R`` between two storages (dense result)."""
        if left.shape[0] != right.shape[0]:
            raise BackendError(
                f"gram-pair shape mismatch: {left.shape}ᵀ @ {right.shape}"
            )
        if _telemetry.ENABLED:
            start = time.perf_counter()
            result = _as_dense_result(left.T @ right)
            _telemetry.record_op(
                "backend.gram_pair",
                time.perf_counter() - start,
                self.gram_pair_flops(left, right),
            )
            return result
        return _as_dense_result(left.T @ right)

    # -- element-wise ----------------------------------------------------------------
    def scale(self, storage: Storage, alpha: float) -> Storage:
        """``alpha * D`` in the same storage format."""
        return storage * alpha

    def elementwise_multiply(self, storage: Storage, mask: np.ndarray) -> Storage:
        """Hadamard product ``D ∘ mask`` in the same storage format."""
        if sparse.issparse(storage):
            return storage.multiply(np.asarray(mask, dtype=np.float64)).tocsr()
        return storage * np.asarray(mask, dtype=np.float64)

    def apply_redundancy(self, storage: Storage, redundancy) -> Storage:
        """Zero the redundant cells marked by a ``RedundancyMatrix``.

        Dispatches to the mask representation's own ``apply``, which
        preserves the storage format (a CSR storage stays CSR, dense stays
        dense) and never materializes a dense ``r × c`` mask for trivial or
        sparse-complement representations.
        """
        return redundancy.apply(storage)

    # -- aggregations ----------------------------------------------------------------
    def row_sums(self, storage: Storage) -> np.ndarray:
        return np.asarray(storage.sum(axis=1), dtype=np.float64).reshape(-1)

    def column_sums(self, storage: Storage) -> np.ndarray:
        return np.asarray(storage.sum(axis=0), dtype=np.float64).reshape(-1)

    def total_sum(self, storage: Storage) -> float:
        return float(storage.sum())

    # -- row/column extraction -----------------------------------------------------------
    def take_rows(self, storage: Storage, rows: np.ndarray) -> Storage:
        """Gather a subset of rows, preserving the storage format."""
        return storage[np.asarray(rows, dtype=np.intp)]

    def take_columns(self, storage: Storage, columns) -> Storage:
        """Gather a subset of columns, preserving the storage format.

        ``columns`` may be any integer sequence or ndarray; a CSR storage
        is sliced through CSC so it never densifies.
        """
        columns = np.asarray(columns, dtype=np.intp)
        if sparse.issparse(storage):
            return storage.tocsc()[:, columns].tocsr()
        return storage[:, columns]

    # -- scatter/gather kernels (operator plans) -----------------------------------------
    def scatter_add(
        self,
        out: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
        unique: bool = True,
    ) -> np.ndarray:
        """Accumulate ``values`` onto the ``indices`` rows of dense ``out``.

        With ``unique=True`` (no index appears twice — the mapping/indicator
        compressed vectors guarantee this for target rows and columns) the
        accumulation is a single fancy-indexed ``+=``; duplicate-tolerant
        callers get the unbuffered ``np.add.at`` instead. ``out`` is
        modified in place and returned.
        """
        if unique:
            out[indices] += values
        else:
            np.add.at(out, indices, values)
        return out

    # -- FLOP accounting hooks ---------------------------------------------------------
    def matmul_flops(self, storage: Storage, operand_columns: int) -> float:
        """Multiply-add estimate of ``D @ X`` with ``X`` having ``m`` columns."""
        from repro.factorized.ops_counter import dense_matmul_flops, sparse_matmul_flops

        if sparse.issparse(storage):
            return sparse_matmul_flops(storage.nnz, operand_columns)
        rows, cols = storage.shape
        return dense_matmul_flops(rows, cols, operand_columns)

    def crossprod_flops(self, storage: Storage) -> float:
        """Multiply-add estimate of ``Dᵀ D``."""
        from repro.factorized.ops_counter import dense_matmul_flops, sparse_crossprod_flops

        if sparse.issparse(storage):
            return sparse_crossprod_flops(storage.nnz, storage.shape[1])
        rows, cols = storage.shape
        return dense_matmul_flops(cols, rows, cols)

    def gram_pair_flops(self, left: Storage, right: Storage) -> float:
        """Multiply-add estimate of ``Lᵀ R``."""
        from repro.factorized.ops_counter import dense_matmul_flops, sparse_matmul_flops

        if sparse.issparse(left):
            return sparse_matmul_flops(left.nnz, right.shape[1])
        if sparse.issparse(right):
            return sparse_matmul_flops(right.nnz, left.shape[1])
        return dense_matmul_flops(left.shape[1], left.shape[0], right.shape[1])

    # -- misc ------------------------------------------------------------------------
    def describe(self, storage: Storage) -> str:
        kind = "csr" if sparse.issparse(storage) else "dense"
        return (
            f"{self.name}[{kind} {storage.shape[0]}x{storage.shape[1]}, "
            f"nnz={self.nnz(storage)}]"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

"""Density-threshold dispatch: per-factor dense/sparse storage selection.

The same DI-metadata statistics that drive the factorize-vs-materialize
decision (paper §IV-B) also tell us, per source factor, whether a sparse
kernel beats a dense one: below a density threshold the ``nnz``-bounded
CSR matmul wins, above it BLAS does. :class:`AutoBackend` applies exactly
that rule in :meth:`prepare`, so a mixed workload (a dense base table
joined with a one-hot encoded dimension table) stores each factor in its
winning format and runs each per-source kernel on its own engine.

The threshold lives in
:data:`repro.costmodel.parameters.SPARSE_DENSITY_THRESHOLD` so the
analytical cost model, the optimizer and this backend all reason from the
same constant.
"""

from __future__ import annotations

from typing import Optional

from scipy import sparse

from repro.backends.base import Backend, Storage, storage_density
from repro.backends.dense import DenseBackend
from repro.backends.sparse_backend import SparseBackend
from repro.exceptions import BackendError


class AutoBackend(Backend):
    """Chooses dense or CSR storage per factor from its observed density."""

    name = "auto"

    def __init__(self, density_threshold: Optional[float] = None):
        if density_threshold is None:
            from repro.costmodel.parameters import SPARSE_DENSITY_THRESHOLD

            density_threshold = SPARSE_DENSITY_THRESHOLD
        if not 0.0 <= density_threshold <= 1.0:
            raise BackendError(
                f"density threshold must be in [0, 1], got {density_threshold}"
            )
        self.density_threshold = float(density_threshold)
        self._dense = DenseBackend()
        self._sparse = SparseBackend()

    @property
    def storage_cache_key(self):
        # Exact-type guard: subclasses may carry extra config the threshold
        # doesn't capture, so they keep the identity-keyed default.
        if type(self) is AutoBackend:
            return ("auto", self.density_threshold)
        return self

    def prepare(self, data: Storage) -> Storage:
        if storage_density(data) <= self.density_threshold:
            return self._sparse.prepare(data)
        return self._dense.prepare(data)

    def choose(self, data: Storage) -> str:
        """The storage decision ("sparse" or "dense") without converting."""
        return "sparse" if storage_density(data) <= self.density_threshold else "dense"

    def __repr__(self) -> str:
        return f"AutoBackend(density_threshold={self.density_threshold})"

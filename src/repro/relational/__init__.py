"""In-memory relational substrate used by the Amalur reproduction.

This package provides the minimal relational machinery a data-integration
system needs: typed schemas, column-oriented tables, the join flavours of
Table I in the paper (inner, left, full outer, union) with row provenance,
and CSV import/export.
"""

from repro.relational.types import DataType, NULL, coerce_value, infer_type
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.joins import (
    JoinResult,
    inner_join,
    left_join,
    full_outer_join,
    union_all,
)
from repro.relational.io import read_csv, write_csv

__all__ = [
    "DataType",
    "NULL",
    "coerce_value",
    "infer_type",
    "Column",
    "Schema",
    "Table",
    "JoinResult",
    "inner_join",
    "left_join",
    "full_outer_join",
    "union_all",
    "read_csv",
    "write_csv",
]
